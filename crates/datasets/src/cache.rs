//! The `rock-cache/v1` binary dataset cache: chunked, checksummed,
//! re-readable transaction storage for the out-of-core pipeline.
//!
//! The CSV/basket loaders parse text once; at a million rows and up,
//! re-parsing on every labeling run (or resume) wastes minutes and —
//! worse — ties the streaming labeler's identity checks to mutable text
//! files. A cache is built once beside the source data and then serves
//! fixed-size chunks by direct seek, each verified against a per-chunk
//! FNV-1a 64 checksum on read. The whole file is written atomically
//! (temp file + rename), so a crashed build never leaves a half-cache
//! that a later run could trust.
//!
//! ## Layout (all integers little-endian u64 unless noted)
//!
//! ```text
//! magic     "rock-cache/v1\n"                      (14 bytes)
//! universe  item-id universe size
//! chunk_rows  rows per chunk (last chunk may be short)
//! payload for chunk 0, chunk 1, ...                 (see below)
//! directory: per chunk { offset, rows, bytes, fnv } (32 bytes each)
//! footer:   rows, num_chunks, directory_offset, footer_fnv
//! ```
//!
//! A chunk payload is a sequence of rows, each `count: u32 LE` followed
//! by `count` item ids (`u32 LE`, strictly increasing). The footer FNV
//! covers the directory and the first three footer fields, so a
//! truncated or bit-flipped tail is detected at open; chunk payload
//! corruption is detected at read. The cache's **content identity**
//! ([`DatasetCache::cache_id`]) chains the shape fields and every chunk
//! checksum — the value `rock-checkpoint/v1` records so a resume
//! refuses to run against swapped data.
//!
//! Every failure surfaces as [`RockError::CacheInvalid`] (malformed,
//! exit code 4) or [`RockError::Io`] (filesystem, exit code 3, retried
//! by the streaming labeler); nothing here panics on bad bytes.

use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use rock_core::cast;
use rock_core::data::Transaction;
use rock_core::hash::Fnv1a64;
use rock_core::stream::ChunkSource;
use rock_core::{Result, RockError};

use crate::fault::FaultInjector;

/// Magic bytes opening every cache file; the version is part of them.
pub const MAGIC: &[u8; 14] = b"rock-cache/v1\n";

/// One directory entry: where a chunk lives and how to verify it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ChunkEntry {
    /// Absolute file offset of the chunk payload.
    offset: u64,
    /// Rows in the chunk.
    rows: u64,
    /// Payload length in bytes.
    bytes: u64,
    /// FNV-1a 64 of the payload.
    fnv: u64,
}

fn io_err(path: &Path) -> impl Fn(std::io::Error) -> RockError + '_ {
    move |e| RockError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

fn invalid(message: String) -> RockError {
    RockError::CacheInvalid { message }
}

/// Streaming builder: push transactions in row order, then
/// [`finish`](CacheBuilder::finish). Rows are buffered one chunk at a
/// time, so building a cache never holds more than `chunk_rows` rows in
/// memory. The file materializes at `<path>.tmp` and is renamed into
/// place only when complete.
#[derive(Debug)]
pub struct CacheBuilder {
    path: PathBuf,
    tmp: PathBuf,
    out: std::io::BufWriter<std::fs::File>,
    universe: u64,
    chunk_rows: usize,
    pending: Vec<Transaction>,
    entries: Vec<ChunkEntry>,
    offset: u64,
    rows: u64,
}

impl CacheBuilder {
    /// Opens a builder writing to `<path>.tmp`. `chunk_rows` is clamped
    /// to at least 1.
    ///
    /// # Errors
    /// [`RockError::Io`] when the temp file cannot be created.
    pub fn create(path: &Path, universe: usize, chunk_rows: usize) -> Result<Self> {
        let tmp = tmp_sibling(path);
        let file = std::fs::File::create(&tmp).map_err(io_err(&tmp))?;
        let mut out = std::io::BufWriter::new(file);
        out.write_all(MAGIC).map_err(io_err(&tmp))?;
        let universe = cast::usize_to_u64(universe);
        let chunk_rows = chunk_rows.max(1);
        out.write_all(&universe.to_le_bytes())
            .map_err(io_err(&tmp))?;
        out.write_all(&cast::usize_to_u64(chunk_rows).to_le_bytes())
            .map_err(io_err(&tmp))?;
        Ok(CacheBuilder {
            path: path.to_path_buf(),
            tmp,
            out,
            universe,
            chunk_rows,
            pending: Vec::with_capacity(chunk_rows),
            entries: Vec::new(),
            offset: cast::usize_to_u64(MAGIC.len()) + 16,
            rows: 0,
        })
    }

    /// Appends one transaction.
    ///
    /// # Errors
    /// [`RockError::ItemOutOfRange`] when an item exceeds the declared
    /// universe; [`RockError::Io`] on write failure.
    pub fn push(&mut self, t: &Transaction) -> Result<()> {
        if let Some(&item) = t.items().iter().find(|&&i| u64::from(i) >= self.universe) {
            return Err(RockError::ItemOutOfRange {
                item,
                universe: cast::u64_to_usize(self.universe),
            });
        }
        self.pending.push(t.clone());
        self.rows += 1;
        if self.pending.len() == self.chunk_rows {
            self.flush_chunk()?;
        }
        Ok(())
    }

    fn flush_chunk(&mut self) -> Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let mut payload = Vec::new();
        for t in &self.pending {
            payload.extend_from_slice(&cast::usize_to_u32(t.len()).to_le_bytes());
            for &item in t.items() {
                payload.extend_from_slice(&item.to_le_bytes());
            }
        }
        let mut h = Fnv1a64::new();
        h.update(&payload);
        self.out.write_all(&payload).map_err(io_err(&self.tmp))?;
        self.entries.push(ChunkEntry {
            offset: self.offset,
            rows: cast::usize_to_u64(self.pending.len()),
            bytes: cast::usize_to_u64(payload.len()),
            fnv: h.finish(),
        });
        self.offset += cast::usize_to_u64(payload.len());
        self.pending.clear();
        Ok(())
    }

    /// Flushes the final (possibly short) chunk, writes the directory
    /// and footer, syncs, renames `<path>.tmp` over `path` and reopens
    /// the finished cache.
    ///
    /// # Errors
    /// [`RockError::Io`] on write/rename failure; any
    /// [`RockError::CacheInvalid`] from the verification re-open.
    pub fn finish(mut self) -> Result<DatasetCache> {
        self.flush_chunk()?;
        let directory_offset = self.offset;
        let mut tail = Vec::new();
        for e in &self.entries {
            tail.extend_from_slice(&e.offset.to_le_bytes());
            tail.extend_from_slice(&e.rows.to_le_bytes());
            tail.extend_from_slice(&e.bytes.to_le_bytes());
            tail.extend_from_slice(&e.fnv.to_le_bytes());
        }
        tail.extend_from_slice(&self.rows.to_le_bytes());
        tail.extend_from_slice(&cast::usize_to_u64(self.entries.len()).to_le_bytes());
        tail.extend_from_slice(&directory_offset.to_le_bytes());
        let mut h = Fnv1a64::new();
        h.update(&tail);
        tail.extend_from_slice(&h.finish().to_le_bytes());
        self.out.write_all(&tail).map_err(io_err(&self.tmp))?;
        self.out
            .into_inner()
            .map_err(|e| io_err(&self.tmp)(e.into_error()))?
            .sync_all()
            .map_err(io_err(&self.tmp))?;
        std::fs::rename(&self.tmp, &self.path).map_err(io_err(&self.path))?;
        DatasetCache::open(&self.path)
    }
}

/// Builds a cache at `path` from an iterator of transactions.
///
/// # Errors
/// As [`CacheBuilder::push`] and [`CacheBuilder::finish`].
pub fn build_cache<'a, I: IntoIterator<Item = &'a Transaction>>(
    path: &Path,
    universe: usize,
    chunk_rows: usize,
    rows: I,
) -> Result<DatasetCache> {
    let mut b = CacheBuilder::create(path, universe, chunk_rows)?;
    for t in rows {
        b.push(t)?;
    }
    b.finish()
}

/// An open, verified `rock-cache/v1` file, serving chunks by seek. The
/// shape and directory are validated at [`open`](DatasetCache::open);
/// payloads are verified per [`read_chunk`](ChunkSource::read_chunk).
#[derive(Debug)]
pub struct DatasetCache {
    path: PathBuf,
    universe: u64,
    chunk_rows: u64,
    rows: u64,
    entries: Vec<ChunkEntry>,
    cache_id: u64,
    // Interior mutability: ChunkSource reads take `&self`, but the
    // injector's RNG advances per sampled fault.
    injector: Mutex<Option<FaultInjector>>,
}

impl DatasetCache {
    /// Opens and validates a cache file: magic, footer checksum,
    /// directory shape, per-chunk accounting.
    ///
    /// # Errors
    /// [`RockError::Io`] when the file cannot be read,
    /// [`RockError::CacheInvalid`] when it can be read but not trusted.
    pub fn open(path: &Path) -> Result<Self> {
        let io = io_err(path);
        let mut f = std::fs::File::open(path).map_err(&io)?;
        let file_len = f.metadata().map_err(&io)?.len();
        let head_len = cast::usize_to_u64(MAGIC.len()) + 16;
        if file_len < head_len + 32 {
            return Err(invalid(format!("file too short ({file_len} bytes)")));
        }
        let mut head = [0u8; 30];
        f.read_exact(&mut head).map_err(&io)?;
        if &head[..MAGIC.len()] != MAGIC {
            return Err(invalid("bad magic: not a rock-cache/v1 file".to_owned()));
        }
        let universe = le_u64(&head[14..22]);
        let chunk_rows = le_u64(&head[22..30]);
        if chunk_rows == 0 {
            return Err(invalid("chunk_rows is zero".to_owned()));
        }

        // Footer: rows, num_chunks, directory_offset, footer_fnv.
        f.seek(SeekFrom::End(-32)).map_err(&io)?;
        let mut foot = [0u8; 32];
        f.read_exact(&mut foot).map_err(&io)?;
        let rows = le_u64(&foot[0..8]);
        let num_chunks = le_u64(&foot[8..16]);
        let directory_offset = le_u64(&foot[16..24]);
        let footer_fnv = le_u64(&foot[24..32]);
        let dir_bytes = num_chunks
            .checked_mul(32)
            .ok_or_else(|| invalid(format!("absurd chunk count {num_chunks}")))?;
        let expected_dir_offset = file_len
            .checked_sub(32 + dir_bytes)
            .ok_or_else(|| invalid("directory larger than file".to_owned()))?;
        if directory_offset != expected_dir_offset || directory_offset < head_len {
            return Err(invalid(format!(
                "directory offset {directory_offset} inconsistent with file length {file_len}"
            )));
        }
        f.seek(SeekFrom::Start(directory_offset)).map_err(&io)?;
        let mut tail = vec![0u8; cast::u64_to_usize(dir_bytes)];
        f.read_exact(&mut tail).map_err(&io)?;
        let mut h = Fnv1a64::new();
        h.update(&tail);
        h.update(&foot[0..24]);
        if h.finish() != footer_fnv {
            return Err(invalid(
                "footer checksum mismatch (truncated or corrupt)".to_owned(),
            ));
        }

        let mut entries = Vec::with_capacity(cast::u64_to_usize(num_chunks));
        let mut expect_offset = head_len;
        let mut total_rows = 0u64;
        for (i, rec) in tail.chunks_exact(32).enumerate() {
            let e = ChunkEntry {
                offset: le_u64(&rec[0..8]),
                rows: le_u64(&rec[8..16]),
                bytes: le_u64(&rec[16..24]),
                fnv: le_u64(&rec[24..32]),
            };
            if e.offset != expect_offset {
                return Err(invalid(format!(
                    "chunk {i} offset {} should be {expect_offset}",
                    e.offset
                )));
            }
            if e.rows == 0 || e.rows > chunk_rows {
                return Err(invalid(format!("chunk {i} has {} rows", e.rows)));
            }
            expect_offset += e.bytes;
            total_rows += e.rows;
            entries.push(e);
        }
        if expect_offset != directory_offset {
            return Err(invalid(
                "chunk payloads do not abut the directory".to_owned(),
            ));
        }
        if total_rows != rows {
            return Err(invalid(format!(
                "directory rows {total_rows} disagree with footer rows {rows}"
            )));
        }

        // Content identity: shape + every payload checksum.
        let mut id = Fnv1a64::new();
        id.update(&universe.to_le_bytes());
        id.update(&chunk_rows.to_le_bytes());
        id.update(&rows.to_le_bytes());
        id.update(&num_chunks.to_le_bytes());
        for e in &entries {
            id.update(&e.fnv.to_le_bytes());
        }

        Ok(DatasetCache {
            path: path.to_path_buf(),
            universe,
            chunk_rows,
            rows,
            entries,
            cache_id: id.finish(),
            injector: Mutex::new(None),
        })
    }

    /// Attaches a seeded fault injector: every chunk read first samples
    /// its read-failure gate, surfacing injected [`RockError::Io`]
    /// faults through the same path as real ones.
    pub fn with_fault_injector(self, injector: FaultInjector) -> Self {
        if let Ok(mut slot) = self.injector.lock() {
            *slot = Some(injector);
        }
        self
    }

    /// The item-id universe the cache was declared with.
    pub fn universe(&self) -> usize {
        cast::u64_to_usize(self.universe)
    }

    /// Rows per full chunk.
    pub fn chunk_rows(&self) -> u64 {
        self.chunk_rows
    }

    /// The content identity recorded by checkpoints.
    pub fn cache_id(&self) -> u64 {
        self.cache_id
    }

    /// The file backing this cache.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl ChunkSource for DatasetCache {
    fn total_chunks(&self) -> u64 {
        cast::usize_to_u64(self.entries.len())
    }

    fn total_rows(&self) -> u64 {
        self.rows
    }

    fn identity(&self) -> u64 {
        self.cache_id
    }

    fn read_chunk(&self, index: u64) -> Result<Vec<Transaction>> {
        let Some(entry) = self.entries.get(cast::u64_to_usize(index)) else {
            return Err(invalid(format!(
                "chunk {index} out of range ({} chunks)",
                self.entries.len()
            )));
        };
        if let Ok(mut slot) = self.injector.lock() {
            if let Some(inj) = slot.as_mut() {
                inj.fail_io(&self.path)?;
            }
        }
        let io = io_err(&self.path);
        let mut f = std::fs::File::open(&self.path).map_err(&io)?;
        f.seek(SeekFrom::Start(entry.offset)).map_err(&io)?;
        let mut payload = vec![0u8; cast::u64_to_usize(entry.bytes)];
        f.read_exact(&mut payload).map_err(&io)?;
        let mut h = Fnv1a64::new();
        h.update(&payload);
        if h.finish() != entry.fnv {
            return Err(invalid(format!("chunk {index} checksum mismatch")));
        }
        decode_chunk(&payload, entry.rows, self.universe)
            .map_err(|m| invalid(format!("chunk {index}: {m}")))
    }
}

/// Decodes one verified payload into transactions. Defensive: the
/// checksum already matched, but the encoder could have been buggy, so
/// framing errors report instead of panicking.
fn decode_chunk(
    payload: &[u8],
    rows: u64,
    universe: u64,
) -> std::result::Result<Vec<Transaction>, String> {
    let mut out = Vec::with_capacity(cast::u64_to_usize(rows));
    let mut at = 0usize;
    for r in 0..rows {
        let Some(head) = payload.get(at..at + 4) else {
            return Err(format!("row {r} header past payload end"));
        };
        let count = cast::u32_to_usize(u32::from_le_bytes([head[0], head[1], head[2], head[3]]));
        at += 4;
        let Some(body) = payload.get(at..at + count * 4) else {
            return Err(format!("row {r} items past payload end"));
        };
        let mut items = Vec::with_capacity(count);
        for quad in body.chunks_exact(4) {
            let item = u32::from_le_bytes([quad[0], quad[1], quad[2], quad[3]]);
            if u64::from(item) >= universe {
                return Err(format!("row {r} item {item} outside universe {universe}"));
            }
            if items.last().is_some_and(|&prev| prev >= item) {
                return Err(format!("row {r} items not strictly increasing"));
            }
            items.push(item);
        }
        at += count * 4;
        out.push(Transaction::from_sorted(items));
    }
    if at != payload.len() {
        return Err(format!("{} trailing payload bytes", payload.len() - at));
    }
    Ok(out)
}

fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(n: u32) -> Vec<Transaction> {
        (0..n)
            .map(|i| match i % 3 {
                0 => Transaction::new([0, 1, 2]),
                1 => Transaction::new([3, 4]),
                _ => Transaction::new([5]),
            })
            .collect()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rock-cache-{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn build_open_read_round_trips() {
        let dir = temp_dir("roundtrip");
        let path = dir.join("d.rockcache");
        let data = rows(25);
        let cache = build_cache(&path, 6, 10, &data).unwrap();
        assert_eq!(cache.total_chunks(), 3);
        assert_eq!(cache.total_rows(), 25);
        assert_eq!(cache.universe(), 6);
        assert_eq!(cache.chunk_rows(), 10);
        let mut seen = Vec::new();
        for i in 0..cache.total_chunks() {
            seen.extend(cache.read_chunk(i).unwrap());
        }
        assert_eq!(seen, data);
        // Reopen: identical identity, no temp file left behind.
        let again = DatasetCache::open(&path).unwrap();
        assert_eq!(again.cache_id(), cache.cache_id());
        assert!(!tmp_sibling(&path).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn identity_is_content_sensitive() {
        let dir = temp_dir("identity");
        let a = build_cache(&dir.join("a.rockcache"), 6, 10, &rows(25)).unwrap();
        let b = build_cache(&dir.join("b.rockcache"), 6, 10, &rows(26)).unwrap();
        let c = build_cache(&dir.join("c.rockcache"), 6, 7, &rows(25)).unwrap();
        assert_ne!(a.cache_id(), b.cache_id(), "different rows");
        assert_ne!(a.cache_id(), c.cache_id(), "different chunking");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chunk_corruption_is_detected_on_read() {
        let dir = temp_dir("corrupt");
        let path = dir.join("d.rockcache");
        let cache = build_cache(&path, 6, 10, &rows(25)).unwrap();
        let entry1_offset = cast::u64_to_usize(cache.entries[1].offset);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[entry1_offset + 2] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let reopened = DatasetCache::open(&path).unwrap();
        assert!(
            reopened.read_chunk(0).is_ok(),
            "untouched chunk still reads"
        );
        let err = reopened.read_chunk(1).unwrap_err();
        assert!(matches!(err, RockError::CacheInvalid { .. }), "{err}");
        assert_eq!(err.exit_code(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncation_and_garbage_fail_closed_at_open() {
        let dir = temp_dir("truncate");
        let path = dir.join("d.rockcache");
        build_cache(&path, 6, 10, &rows(25)).unwrap();
        let full = std::fs::read(&path).unwrap();
        for keep in [0, 5, MAGIC.len(), 40, full.len() - 9, full.len() - 1] {
            std::fs::write(&path, &full[..keep]).unwrap();
            let err = DatasetCache::open(&path).unwrap_err();
            assert!(
                matches!(err, RockError::CacheInvalid { .. } | RockError::Io { .. }),
                "keep={keep}: {err}"
            );
        }
        std::fs::write(
            &path,
            b"not a cache at all, but long enough to have a footer read",
        )
        .unwrap();
        assert!(matches!(
            DatasetCache::open(&path).unwrap_err(),
            RockError::CacheInvalid { .. }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn builder_rejects_items_outside_universe() {
        let dir = temp_dir("universe");
        let path = dir.join("d.rockcache");
        let mut b = CacheBuilder::create(&path, 3, 10).unwrap();
        let err = b.push(&Transaction::new([0, 7])).unwrap_err();
        assert!(matches!(err, RockError::ItemOutOfRange { .. }));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_dataset_builds_an_empty_cache() {
        let dir = temp_dir("empty");
        let path = dir.join("d.rockcache");
        let cache = build_cache(&path, 4, 10, &[]).unwrap();
        assert_eq!(cache.total_chunks(), 0);
        assert_eq!(cache.total_rows(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_read_faults_surface_as_io() {
        let dir = temp_dir("faults");
        let path = dir.join("d.rockcache");
        let cache = build_cache(&path, 6, 10, &rows(25))
            .unwrap()
            .with_fault_injector(FaultInjector::new(3).io_failure_rate(1.0));
        let err = cache.read_chunk(0).unwrap_err();
        assert!(matches!(err, RockError::Io { .. }));
        assert!(err.to_string().contains("injected"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streams_through_the_labeler_end_to_end() {
        use rock_core::goodness::{LinkExponent, MarketBasket};
        use rock_core::labeling::Representatives;
        use rock_core::prelude::*;
        use rock_core::snapshot::{OutlierPolicy, SimilarityKind};
        use rock_core::stream::{StreamLabeler, StreamOutcome};

        let dir = temp_dir("e2e");
        let path = dir.join("d.rockcache");
        let data = rows(40);
        let cache = build_cache(&path, 6, 8, &data).unwrap();
        let snap = ModelSnapshot::new(
            0.4,
            MarketBasket.f(0.4),
            SimilarityKind::Jaccard,
            OutlierPolicy::Mark,
            6,
            None,
            Representatives::from_sets(vec![
                vec![Transaction::new([0, 1, 2])],
                vec![Transaction::new([3, 4])],
            ]),
        )
        .unwrap();
        let out = dir.join("d.rockassign");
        let ckpt = dir.join("d.rockckpt");
        let outcome = StreamLabeler::new(&snap)
            .run(&cache, &out, &ckpt, &Guard::unlimited(), &Observer::new())
            .unwrap();
        let StreamOutcome::Complete(stats) = outcome else {
            panic!("expected completion, got {outcome:?}");
        };
        assert_eq!(stats.rows, 40);
        assert_eq!(stats.chunks_done, 5);
        let text = std::fs::read_to_string(&out).unwrap();
        assert!(text.starts_with("rock-assignments v1\nn=40 "));
        std::fs::remove_dir_all(&dir).ok();
    }
}
