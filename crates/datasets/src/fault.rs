//! Deterministic fault injection for robustness testing.
//!
//! The chaos suite (see `tests/chaos.rs`) needs to manufacture the
//! failure modes real deployments hit — truncated downloads, rows mangled
//! by a flaky proxy, disks that error mid-read — *reproducibly*, so a
//! failing case can be replayed from its seed alone. [`FaultInjector`]
//! wraps the crate's vendored RNG ([`rock_core::rng`], splitmix64-seeded)
//! and offers three text-level corruptions plus an injectable I/O
//! failure. Forced budget exhaustion, the fourth fault class, lives in
//! the core layer (`rock_core::guard::Guard::inject_trip_at`) because it
//! must fire inside the pipeline.
//!
//! Everything here is pure: the same seed and inputs produce the same
//! corruption, byte for byte.

use std::path::Path;

use rock_core::rng::Rng;
use rock_core::{Result, RockError};

/// A seeded source of deterministic faults.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rng: Rng,
    io_failure_rate: f64,
}

impl FaultInjector {
    /// Creates an injector. All randomness derives from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultInjector {
            rng: Rng::seed_from_u64(seed),
            io_failure_rate: 0.0,
        }
    }

    /// Sets the probability that [`read_to_string`](Self::read_to_string)
    /// fails with an injected I/O error (default 0).
    pub fn io_failure_rate(mut self, rate: f64) -> Self {
        self.io_failure_rate = rate;
        self
    }

    /// Reads a file, or fails with an injected [`RockError::Io`] at the
    /// configured rate. Real filesystem errors surface the same way, so
    /// callers exercise one code path for both.
    ///
    /// # Errors
    /// The injected or real I/O failure.
    pub fn read_to_string(&mut self, path: &Path) -> Result<String> {
        if self.rng.gen_bool(self.io_failure_rate) {
            return Err(RockError::Io {
                path: path.display().to_string(),
                message: "injected i/o failure".to_owned(),
            });
        }
        std::fs::read_to_string(path).map_err(|e| RockError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })
    }

    /// Corrupts roughly `fraction` of the lines in `text`, choosing per
    /// line among: truncating it mid-field, opening an unterminated
    /// quote, appending a spurious extra field, or replacing it with a
    /// single-field garbage token. All four read as ragged/quote defects
    /// downstream, exactly what lenient ingestion must quarantine.
    pub fn poison_rows(&mut self, text: &str, fraction: f64) -> String {
        let mut out = String::with_capacity(text.len());
        for line in text.lines() {
            if line.trim().is_empty() || !self.rng.gen_bool(fraction) {
                out.push_str(line);
            } else {
                match self.rng.gen_range(0..4usize) {
                    0 => {
                        let cut = floor_char_boundary(line, line.len() / 2);
                        out.push_str(&line[..cut]);
                    }
                    1 => {
                        out.push('"');
                        out.push_str(line);
                    }
                    2 => {
                        out.push_str(line);
                        out.push_str(",spurious");
                    }
                    _ => out.push_str("!!corrupted!!"),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Keeps only the leading `keep_fraction` of `text` (by bytes,
    /// snapped to a character boundary) — a truncated download. The cut
    /// usually lands mid-row, leaving a ragged final record.
    pub fn truncate(&mut self, text: &str, keep_fraction: f64) -> String {
        let target = rock_core::cast::f64_to_usize(
            rock_core::cast::usize_to_f64(text.len()) * keep_fraction.clamp(0.0, 1.0),
        );
        let cut = floor_char_boundary(text, target.min(text.len()));
        text[..cut].to_owned()
    }
}

/// Largest byte index `<= at` that is a char boundary of `s`.
fn floor_char_boundary(s: &str, at: usize) -> usize {
    let mut i = at.min(s.len());
    while i > 0 && !s.is_char_boundary(i) {
        i -= 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv::parse_lenient;

    const CLEAN: &str = "a,b,c\nd,e,f\ng,h,i\nj,k,l\nm,n,o\n";

    #[test]
    fn same_seed_same_corruption() {
        let a = FaultInjector::new(42).poison_rows(CLEAN, 0.5);
        let b = FaultInjector::new(42).poison_rows(CLEAN, 0.5);
        assert_eq!(a, b);
        let c = FaultInjector::new(43).poison_rows(CLEAN, 0.5);
        assert_ne!(a, c, "different seeds should corrupt differently");
    }

    #[test]
    fn poisoned_rows_are_quarantined_not_fatal() {
        let dirty = FaultInjector::new(7).poison_rows(CLEAN, 0.6);
        let parsed = parse_lenient(&dirty, ',');
        assert!(
            !parsed.rejected.is_empty(),
            "60% poison over 5 rows should reject something"
        );
        // Kept rows are mutually consistent: all carry the majority arity.
        let arity = parsed.rows[0].1.len();
        for (_, fields) in &parsed.rows {
            assert_eq!(fields.len(), arity, "kept rows must agree on arity");
        }
    }

    #[test]
    fn zero_fraction_is_identity_modulo_final_newline() {
        let out = FaultInjector::new(1).poison_rows(CLEAN, 0.0);
        assert_eq!(out, CLEAN);
    }

    #[test]
    fn truncation_cuts_at_char_boundary() {
        let text = "héllo,wörld\nrow,two\n";
        let mut inj = FaultInjector::new(9);
        for pct in [0.0, 0.1, 0.3, 0.5, 0.9, 1.0] {
            let cut = inj.truncate(text, pct);
            assert!(text.starts_with(&cut));
        }
        assert_eq!(inj.truncate(text, 1.0), text);
        assert_eq!(inj.truncate(text, 0.0), "");
    }

    #[test]
    fn injected_io_failure_is_a_rock_error() {
        let mut always = FaultInjector::new(3).io_failure_rate(1.0);
        let err = always
            .read_to_string(Path::new("/tmp/whatever"))
            .unwrap_err();
        assert!(matches!(err, RockError::Io { .. }));
        assert!(err.to_string().contains("injected"));
        assert_eq!(err.exit_code(), 3);
    }

    #[test]
    fn io_passthrough_when_rate_is_zero() {
        let dir = std::env::temp_dir().join("rock-fault-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ok.csv");
        std::fs::write(&path, "x,y\n").unwrap();
        let mut never = FaultInjector::new(5).io_failure_rate(0.0);
        assert_eq!(never.read_to_string(&path).unwrap(), "x,y\n");
        let missing = never
            .read_to_string(Path::new("/no/such/file"))
            .unwrap_err();
        assert!(matches!(missing, RockError::Io { .. }));
        std::fs::remove_file(path).ok();
    }
}
