//! Deterministic fault injection for robustness testing.
//!
//! The chaos suite (see `tests/chaos.rs`) needs to manufacture the
//! failure modes real deployments hit — truncated downloads, rows mangled
//! by a flaky proxy, disks that error mid-read — *reproducibly*, so a
//! failing case can be replayed from its seed alone. [`FaultInjector`]
//! wraps the crate's vendored RNG ([`rock_core::rng`], splitmix64-seeded)
//! and offers three text-level corruptions plus injectable I/O failures
//! on both the read path ([`read_to_string`](FaultInjector::read_to_string),
//! [`read`](FaultInjector::read)) and the write path
//! ([`write`](FaultInjector::write), which can also *tear* a write,
//! persisting only a prefix before failing — the crash mode the
//! streaming checkpoint layer must survive). Forced budget exhaustion,
//! the remaining fault class, lives in the core layer
//! (`rock_core::guard::Guard::inject_trip_at`) because it must fire
//! inside the pipeline.
//!
//! Everything here is pure: the same seed and inputs produce the same
//! corruption, byte for byte.

use std::path::Path;

use rock_core::rng::Rng;
use rock_core::{Result, RockError};

/// A seeded source of deterministic faults.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rng: Rng,
    io_failure_rate: f64,
    write_failure_rate: f64,
}

impl FaultInjector {
    /// Creates an injector. All randomness derives from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultInjector {
            rng: Rng::seed_from_u64(seed),
            io_failure_rate: 0.0,
            write_failure_rate: 0.0,
        }
    }

    /// Sets the probability that a read ([`read_to_string`](Self::read_to_string),
    /// [`read`](Self::read), [`fail_io`](Self::fail_io)) fails with an
    /// injected I/O error (default 0).
    pub fn io_failure_rate(mut self, rate: f64) -> Self {
        self.io_failure_rate = rate;
        self
    }

    /// Sets the probability that a [`write`](Self::write) fails with an
    /// injected I/O error — half the time cleanly (nothing persisted),
    /// half the time *torn* (a prefix persisted, then failure). Default 0.
    pub fn write_failure_rate(mut self, rate: f64) -> Self {
        self.write_failure_rate = rate;
        self
    }

    /// Samples the read-failure gate alone: returns the injected
    /// [`RockError::Io`] at the configured rate, `Ok` otherwise. This is
    /// the hook the dataset cache and the streaming labeler's write
    /// probe use to thread injected faults through code that performs
    /// its own I/O.
    ///
    /// # Errors
    /// The injected failure, at `io_failure_rate`.
    pub fn fail_io(&mut self, path: &Path) -> Result<()> {
        if self.rng.gen_bool(self.io_failure_rate) {
            return Err(RockError::Io {
                path: path.display().to_string(),
                message: "injected i/o failure".to_owned(),
            });
        }
        Ok(())
    }

    /// Reads a file, or fails with an injected [`RockError::Io`] at the
    /// configured rate. Real filesystem errors surface the same way, so
    /// callers exercise one code path for both.
    ///
    /// # Errors
    /// The injected or real I/O failure.
    pub fn read_to_string(&mut self, path: &Path) -> Result<String> {
        self.fail_io(path)?;
        std::fs::read_to_string(path).map_err(|e| RockError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })
    }

    /// Binary sibling of [`read_to_string`](Self::read_to_string).
    ///
    /// # Errors
    /// The injected or real I/O failure.
    pub fn read(&mut self, path: &Path) -> Result<Vec<u8>> {
        self.fail_io(path)?;
        std::fs::read(path).map_err(|e| RockError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })
    }

    /// Writes `bytes` to `path`, or fails at the configured
    /// [`write_failure_rate`](Self::write_failure_rate). An injected
    /// failure is clean (nothing written) or torn (a random prefix
    /// persisted before the error) with equal probability — the torn
    /// case is the partial write a power cut leaves behind, which
    /// checkpoint/resume must detect and repair.
    ///
    /// # Errors
    /// The injected or real I/O failure.
    pub fn write(&mut self, path: &Path, bytes: &[u8]) -> Result<()> {
        let io = |e: std::io::Error| RockError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        };
        if self.rng.gen_bool(self.write_failure_rate) {
            if !bytes.is_empty() && self.rng.gen_bool(0.5) {
                let keep = self.rng.gen_range(0..bytes.len());
                std::fs::write(path, &bytes[..keep]).map_err(io)?;
                return Err(RockError::Io {
                    path: path.display().to_string(),
                    message: format!("injected torn write ({keep} of {} bytes)", bytes.len()),
                });
            }
            return Err(RockError::Io {
                path: path.display().to_string(),
                message: "injected write failure".to_owned(),
            });
        }
        std::fs::write(path, bytes).map_err(io)
    }

    /// Corrupts roughly `fraction` of the lines in `text`, choosing per
    /// line among: truncating it mid-field, opening an unterminated
    /// quote, appending a spurious extra field, or replacing it with a
    /// single-field garbage token. All four read as ragged/quote defects
    /// downstream, exactly what lenient ingestion must quarantine.
    pub fn poison_rows(&mut self, text: &str, fraction: f64) -> String {
        let mut out = String::with_capacity(text.len());
        for line in text.lines() {
            if line.trim().is_empty() || !self.rng.gen_bool(fraction) {
                out.push_str(line);
            } else {
                match self.rng.gen_range(0..4usize) {
                    0 => {
                        let cut = floor_char_boundary(line, line.len() / 2);
                        out.push_str(&line[..cut]);
                    }
                    1 => {
                        out.push('"');
                        out.push_str(line);
                    }
                    2 => {
                        out.push_str(line);
                        out.push_str(",spurious");
                    }
                    _ => out.push_str("!!corrupted!!"),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Keeps only the leading `keep_fraction` of `text` (by bytes,
    /// snapped to a character boundary) — a truncated download. The cut
    /// usually lands mid-row, leaving a ragged final record.
    pub fn truncate(&mut self, text: &str, keep_fraction: f64) -> String {
        let target = rock_core::cast::f64_to_usize(
            rock_core::cast::usize_to_f64(text.len()) * keep_fraction.clamp(0.0, 1.0),
        );
        let cut = floor_char_boundary(text, target.min(text.len()));
        text[..cut].to_owned()
    }
}

/// Largest byte index `<= at` that is a char boundary of `s`.
fn floor_char_boundary(s: &str, at: usize) -> usize {
    let mut i = at.min(s.len());
    while i > 0 && !s.is_char_boundary(i) {
        i -= 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv::parse_lenient;

    const CLEAN: &str = "a,b,c\nd,e,f\ng,h,i\nj,k,l\nm,n,o\n";

    #[test]
    fn same_seed_same_corruption() {
        let a = FaultInjector::new(42).poison_rows(CLEAN, 0.5);
        let b = FaultInjector::new(42).poison_rows(CLEAN, 0.5);
        assert_eq!(a, b);
        let c = FaultInjector::new(43).poison_rows(CLEAN, 0.5);
        assert_ne!(a, c, "different seeds should corrupt differently");
    }

    #[test]
    fn poisoned_rows_are_quarantined_not_fatal() {
        let dirty = FaultInjector::new(7).poison_rows(CLEAN, 0.6);
        let parsed = parse_lenient(&dirty, ',');
        assert!(
            !parsed.rejected.is_empty(),
            "60% poison over 5 rows should reject something"
        );
        // Kept rows are mutually consistent: all carry the majority arity.
        let arity = parsed.rows[0].1.len();
        for (_, fields) in &parsed.rows {
            assert_eq!(fields.len(), arity, "kept rows must agree on arity");
        }
    }

    #[test]
    fn zero_fraction_is_identity_modulo_final_newline() {
        let out = FaultInjector::new(1).poison_rows(CLEAN, 0.0);
        assert_eq!(out, CLEAN);
    }

    #[test]
    fn truncation_cuts_at_char_boundary() {
        let text = "héllo,wörld\nrow,two\n";
        let mut inj = FaultInjector::new(9);
        for pct in [0.0, 0.1, 0.3, 0.5, 0.9, 1.0] {
            let cut = inj.truncate(text, pct);
            assert!(text.starts_with(&cut));
        }
        assert_eq!(inj.truncate(text, 1.0), text);
        assert_eq!(inj.truncate(text, 0.0), "");
    }

    #[test]
    fn injected_io_failure_is_a_rock_error() {
        let mut always = FaultInjector::new(3).io_failure_rate(1.0);
        let err = always
            .read_to_string(Path::new("/tmp/whatever"))
            .unwrap_err();
        assert!(matches!(err, RockError::Io { .. }));
        assert!(err.to_string().contains("injected"));
        assert_eq!(err.exit_code(), 3);
    }

    #[test]
    fn injected_write_failures_are_deterministic_and_sometimes_torn() {
        let dir = std::env::temp_dir().join("rock-fault-write-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("victim.bin");
        let payload = vec![0xabu8; 256];
        // With rate 1.0 every write fails; over several attempts both the
        // clean and the torn variant must appear, and the torn variant
        // must leave a strict prefix on disk.
        let mut inj = FaultInjector::new(11).write_failure_rate(1.0);
        let mut saw_torn = false;
        let mut saw_clean = false;
        for _ in 0..32 {
            std::fs::remove_file(&path).ok();
            let err = inj.write(&path, &payload).unwrap_err();
            assert_eq!(err.exit_code(), 3);
            let on_disk = std::fs::read(&path).unwrap_or_default();
            assert!(on_disk.len() < payload.len());
            assert_eq!(on_disk, payload[..on_disk.len()]);
            if err.to_string().contains("torn") {
                saw_torn = true;
                assert!(!on_disk.is_empty() || on_disk.is_empty()); // prefix may be empty
            } else {
                saw_clean = true;
            }
        }
        assert!(saw_torn && saw_clean, "both failure shapes should occur");
        // Same seed, same schedule.
        let mut a = FaultInjector::new(99).write_failure_rate(0.5);
        let mut b = FaultInjector::new(99).write_failure_rate(0.5);
        let results_a: Vec<bool> = (0..16).map(|_| a.write(&path, &payload).is_ok()).collect();
        let results_b: Vec<bool> = (0..16).map(|_| b.write(&path, &payload).is_ok()).collect();
        assert_eq!(results_a, results_b);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_passthrough_when_rate_is_zero() {
        let dir = std::env::temp_dir().join("rock-fault-write-ok");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ok.bin");
        let mut never = FaultInjector::new(5);
        never.write(&path, b"payload").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"payload");
        assert_eq!(never.read(&path).unwrap(), b"payload");
        assert!(never.fail_io(&path).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn io_passthrough_when_rate_is_zero() {
        let dir = std::env::temp_dir().join("rock-fault-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ok.csv");
        std::fs::write(&path, "x,y\n").unwrap();
        let mut never = FaultInjector::new(5).io_failure_rate(0.0);
        assert_eq!(never.read_to_string(&path).unwrap(), "x,y\n");
        let missing = never
            .read_to_string(Path::new("/no/such/file"))
            .unwrap_err();
        assert!(matches!(missing, RockError::Io { .. }));
        std::fs::remove_file(path).ok();
    }
}
