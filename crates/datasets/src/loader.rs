//! Loading labeled categorical tables from UCI-style CSV files.
//!
//! All loading errors are [`RockError`] values, so the CLI and tests deal
//! with exactly one error type (and one table of stable exit codes)
//! across the core and dataset layers.
//!
//! Two ingestion modes are supported ([`IngestMode`]): **strict** fails
//! on the first malformed row, while **lenient** quarantines malformed
//! rows (ragged, unterminated quote, over-full value domains) into an
//! [`IngestReport`] and keeps going — up to a configurable ceiling on the
//! quarantined fraction, past which the file is considered too dirty to
//! trust ([`RockError::QuarantineExceeded`]).

use std::path::Path;

use rock_core::data::{CategoricalTable, Schema};
use rock_core::{Result, RockError};

use crate::csv;

/// Where the class label lives in each record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelPosition {
    /// First column (e.g. mushroom, votes).
    First,
    /// Last column (e.g. nursery, tic-tac-toe).
    Last,
    /// Column by 0-based index.
    Column(usize),
    /// No label column.
    None,
}

/// How malformed rows are treated during ingestion.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum IngestMode {
    /// The first malformed row fails the whole load.
    #[default]
    Strict,
    /// Malformed rows are quarantined into the [`IngestReport`] and the
    /// load continues, unless more than `max_quarantine_fraction` of the
    /// data rows end up quarantined.
    Lenient {
        /// Ceiling on `quarantined / rows_read` (e.g. `0.2` = 20%).
        max_quarantine_fraction: f64,
    },
}

impl IngestMode {
    /// Lenient mode with the default 20% quarantine ceiling.
    pub fn lenient() -> Self {
        IngestMode::Lenient {
            max_quarantine_fraction: 0.2,
        }
    }
}

/// Parsing configuration for a labeled categorical CSV file.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Field delimiter (default `,`).
    pub delimiter: char,
    /// Token marking a missing value (default `?`).
    pub missing: String,
    /// Label column position (default [`LabelPosition::Last`]).
    pub label: LabelPosition,
    /// Skip this many leading data lines (headers). Default 0 — UCI
    /// `.data` files have no header.
    pub skip_lines: usize,
    /// 0-based column indices to drop entirely (e.g. record identifiers
    /// like the Zoo dataset's animal-name column, which would otherwise
    /// make every record trivially unique).
    pub ignore_columns: Vec<usize>,
    /// Malformed-row policy (default [`IngestMode::Strict`]).
    pub mode: IngestMode,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            delimiter: ',',
            missing: "?".to_owned(),
            label: LabelPosition::Last,
            skip_lines: 0,
            ignore_columns: Vec::new(),
            mode: IngestMode::Strict,
        }
    }
}

/// One quarantined row: where it was and why it was set aside.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedRow {
    /// 1-based line number in the source file.
    pub line: usize,
    /// Human-readable reason.
    pub reason: String,
}

/// Per-file ingestion accounting, filled in by [`parse_labeled`].
///
/// Under [`IngestMode::Strict`] the quarantine list is always empty (a
/// malformed row errors instead); under lenient mode it records every row
/// that was set aside.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IngestReport {
    /// Data rows encountered (after header skipping; blank and comment
    /// lines never count).
    pub rows_read: usize,
    /// Rows that made it into the table.
    pub rows_kept: usize,
    /// Rows set aside, in file order.
    pub quarantined: Vec<QuarantinedRow>,
}

impl IngestReport {
    /// Fraction of read rows that were quarantined (0 when nothing was
    /// read).
    pub fn quarantine_fraction(&self) -> f64 {
        if self.rows_read == 0 {
            return 0.0;
        }
        rock_core::cast::usize_to_f64(self.quarantined.len())
            / rock_core::cast::usize_to_f64(self.rows_read)
    }

    /// `true` when every row read was kept.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty()
    }
}

/// A loaded dataset: the categorical feature table plus string labels
/// (empty when [`LabelPosition::None`]) and the ingestion report.
#[derive(Debug, Clone)]
pub struct LabeledTable {
    /// Feature table (label column removed).
    pub table: CategoricalTable,
    /// Per-row class label.
    pub labels: Vec<String>,
    /// What was read, kept, and quarantined.
    pub report: IngestReport,
}

/// Parses CSV text into a labeled categorical table.
///
/// # Errors
/// [`RockError::Csv`] on a malformed row (strict mode),
/// [`RockError::QuarantineExceeded`] when lenient mode sets aside more
/// than the configured fraction, [`RockError::EmptyDataset`] when no rows
/// survive, [`RockError::InvalidLabelColumn`] for an out-of-range label
/// index, and [`RockError::DomainTooLarge`] when a value domain overflows
/// `u16` (strict mode; lenient quarantines the row).
pub fn parse_labeled(text: &str, config: &LoadConfig) -> Result<LabeledTable> {
    let mut report = IngestReport::default();
    let rows: Vec<(usize, Vec<String>)> = match config.mode {
        IngestMode::Strict => csv::parse(text, config.delimiter)?
            .into_iter()
            .enumerate()
            .map(|(i, fields)| (i + 1, fields))
            .skip(config.skip_lines)
            .collect(),
        IngestMode::Lenient { .. } => {
            let parsed = csv::parse_lenient(text, config.delimiter);
            for (line, err) in parsed.rejected {
                report.quarantined.push(QuarantinedRow {
                    line,
                    reason: err.to_string(),
                });
            }
            report.rows_read += report.quarantined.len();
            parsed.rows.into_iter().skip(config.skip_lines).collect()
        }
    };
    report.rows_read += rows.len();
    if rows.is_empty() && report.quarantined.is_empty() {
        return Err(RockError::EmptyDataset);
    }
    let width = rows.first().map_or(0, |(_, fields)| fields.len());
    let label_idx = match config.label {
        LabelPosition::First => Some(0),
        LabelPosition::Last => width.checked_sub(1),
        LabelPosition::Column(i) => {
            if i >= width {
                return Err(RockError::InvalidLabelColumn {
                    index: i,
                    columns: width,
                });
            }
            Some(i)
        }
        LabelPosition::None => None,
    };
    let dropped = |i: usize| config.ignore_columns.contains(&i);
    let num_features = width
        - usize::from(label_idx.is_some())
        - (0..width)
            .filter(|&i| dropped(i) && Some(i) != label_idx)
            .count();
    let mut table = CategoricalTable::new(Schema::with_unnamed(num_features));
    let mut labels = Vec::with_capacity(rows.len());
    for (line, row) in &rows {
        let mut features: Vec<&str> = Vec::with_capacity(num_features);
        let mut label: Option<&str> = None;
        for (i, cell) in row.iter().enumerate() {
            if Some(i) == label_idx {
                label = Some(cell);
            } else if !dropped(i) {
                features.push(cell);
            }
        }
        match table.push_textual(&features, &config.missing) {
            Ok(()) => {
                if let Some(l) = label {
                    labels.push(l.to_owned());
                }
            }
            Err(e) if matches!(config.mode, IngestMode::Lenient { .. }) => {
                report.quarantined.push(QuarantinedRow {
                    line: *line,
                    reason: e.to_string(),
                });
            }
            Err(e) => return Err(e),
        }
    }
    report.rows_kept = table.len();
    if let IngestMode::Lenient {
        max_quarantine_fraction,
    } = config.mode
    {
        if report.quarantine_fraction() > max_quarantine_fraction {
            return Err(RockError::QuarantineExceeded {
                quarantined: report.quarantined.len(),
                rows: report.rows_read,
                max_fraction: max_quarantine_fraction,
            });
        }
    }
    if table.is_empty() {
        return Err(RockError::EmptyDataset);
    }
    Ok(LabeledTable {
        table,
        labels,
        report,
    })
}

/// Loads a labeled categorical table from a file.
///
/// # Errors
/// [`RockError::Io`] on filesystem failure, plus everything
/// [`parse_labeled`] can return.
pub fn load_labeled(path: &Path, config: &LoadConfig) -> Result<LabeledTable> {
    let text = std::fs::read_to_string(path).map_err(|e| RockError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })?;
    parse_labeled(&text, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    const VOTES_SAMPLE: &str = "\
republican,n,y,n,y
democrat,?,y,y,n
democrat,y,y,y,n
";

    #[test]
    fn parses_label_first() {
        let cfg = LoadConfig {
            label: LabelPosition::First,
            ..LoadConfig::default()
        };
        let out = parse_labeled(VOTES_SAMPLE, &cfg).unwrap();
        assert_eq!(out.labels, vec!["republican", "democrat", "democrat"]);
        assert_eq!(out.table.len(), 3);
        assert_eq!(out.table.num_attributes(), 4);
        // Missing value became None.
        assert_eq!(out.table.row(1).unwrap()[0], None);
        assert!(out.report.is_clean());
        assert_eq!(out.report.rows_read, 3);
        assert_eq!(out.report.rows_kept, 3);
    }

    #[test]
    fn parses_label_last() {
        let text = "x,o,win\no,x,lose\n";
        let out = parse_labeled(text, &LoadConfig::default()).unwrap();
        assert_eq!(out.labels, vec!["win", "lose"]);
        assert_eq!(out.table.num_attributes(), 2);
    }

    #[test]
    fn parses_label_by_column() {
        let text = "a,L1,b\nc,L2,d\n";
        let cfg = LoadConfig {
            label: LabelPosition::Column(1),
            ..LoadConfig::default()
        };
        let out = parse_labeled(text, &cfg).unwrap();
        assert_eq!(out.labels, vec!["L1", "L2"]);
        assert_eq!(out.table.num_attributes(), 2);
    }

    #[test]
    fn unlabeled_mode() {
        let text = "a,b\nc,d\n";
        let cfg = LoadConfig {
            label: LabelPosition::None,
            ..LoadConfig::default()
        };
        let out = parse_labeled(text, &cfg).unwrap();
        assert!(out.labels.is_empty());
        assert_eq!(out.table.num_attributes(), 2);
    }

    #[test]
    fn bad_label_column_rejected() {
        let cfg = LoadConfig {
            label: LabelPosition::Column(9),
            ..LoadConfig::default()
        };
        assert!(matches!(
            parse_labeled("a,b\n", &cfg),
            Err(RockError::InvalidLabelColumn {
                index: 9,
                columns: 2
            })
        ));
    }

    #[test]
    fn empty_file_rejected() {
        assert!(matches!(
            parse_labeled("\n\n", &LoadConfig::default()),
            Err(RockError::EmptyDataset)
        ));
    }

    #[test]
    fn malformed_row_is_csv_error_in_strict_mode() {
        let err = parse_labeled("a,b\nc\n", &LoadConfig::default()).unwrap_err();
        assert!(matches!(err, RockError::Csv { line: 2, .. }));
        assert_eq!(err.exit_code(), 4);
    }

    #[test]
    fn skip_lines_drops_header() {
        let text = "col1,col2,class\na,b,pos\n";
        let cfg = LoadConfig {
            skip_lines: 1,
            ..LoadConfig::default()
        };
        let out = parse_labeled(text, &cfg).unwrap();
        assert_eq!(out.labels, vec!["pos"]);
        assert_eq!(out.table.len(), 1);
    }

    #[test]
    fn ignore_columns_drops_identifiers() {
        let text = "aardvark,1,0,mammal\nbass,0,1,fish\n";
        let cfg = LoadConfig {
            label: LabelPosition::Last,
            ignore_columns: vec![0],
            ..LoadConfig::default()
        };
        let out = parse_labeled(text, &cfg).unwrap();
        assert_eq!(out.table.num_attributes(), 2);
        assert_eq!(out.labels, vec!["mammal", "fish"]);
        assert_eq!(out.table.row(0).unwrap().len(), 2);
    }

    #[test]
    fn ignoring_the_label_column_is_harmless() {
        // The label wins over ignore: it is still extracted, not dropped.
        let text = "a,b,L\n";
        let cfg = LoadConfig {
            label: LabelPosition::Column(2),
            ignore_columns: vec![2],
            ..LoadConfig::default()
        };
        let out = parse_labeled(text, &cfg).unwrap();
        assert_eq!(out.labels, vec!["L"]);
        assert_eq!(out.table.num_attributes(), 2);
    }

    #[test]
    fn missing_file_is_io_error() {
        let err =
            load_labeled(Path::new("/nonexistent/file.data"), &LoadConfig::default()).unwrap_err();
        assert!(matches!(err, RockError::Io { .. }));
        assert!(err.to_string().contains("/nonexistent/file.data"));
        assert_eq!(err.exit_code(), 3);
    }

    #[test]
    fn table_converts_to_transactions() {
        let cfg = LoadConfig {
            label: LabelPosition::First,
            ..LoadConfig::default()
        };
        let out = parse_labeled(VOTES_SAMPLE, &cfg).unwrap();
        let ts = out.table.to_transactions();
        assert_eq!(ts.len(), 3);
        // Row 1 has one missing value → 3 items; others have 4.
        assert_eq!(ts.transaction(1).unwrap().len(), 3);
        assert_eq!(ts.transaction(0).unwrap().len(), 4);
    }

    #[test]
    fn lenient_quarantines_ragged_rows() {
        let text = "republican,n,y,n,y\nbroken\ndemocrat,y,y,y,n\n";
        let cfg = LoadConfig {
            label: LabelPosition::First,
            mode: IngestMode::lenient(),
            ..LoadConfig::default()
        };
        // 1 of 3 rows quarantined = 33% > default 20% ceiling.
        let err = parse_labeled(text, &cfg).unwrap_err();
        assert!(matches!(
            err,
            RockError::QuarantineExceeded {
                quarantined: 1,
                rows: 3,
                ..
            }
        ));
        // A laxer ceiling accepts the file and reports the quarantine.
        let cfg = LoadConfig {
            mode: IngestMode::Lenient {
                max_quarantine_fraction: 0.5,
            },
            ..cfg
        };
        let out = parse_labeled(text, &cfg).unwrap();
        assert_eq!(out.table.len(), 2);
        assert_eq!(out.labels, vec!["republican", "democrat"]);
        assert_eq!(out.report.rows_read, 3);
        assert_eq!(out.report.rows_kept, 2);
        assert_eq!(out.report.quarantined.len(), 1);
        assert_eq!(out.report.quarantined[0].line, 2);
        assert!((out.report.quarantine_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn lenient_quarantines_unterminated_quotes() {
        let text = "a,b,c\n\"oops,x,y\nd,e,f\n";
        let cfg = LoadConfig {
            mode: IngestMode::Lenient {
                max_quarantine_fraction: 0.5,
            },
            ..LoadConfig::default()
        };
        let out = parse_labeled(text, &cfg).unwrap();
        assert_eq!(out.table.len(), 2);
        assert!(out.report.quarantined[0].reason.contains("unterminated"));
    }

    #[test]
    fn lenient_labels_stay_aligned_with_kept_rows() {
        let text = "a,b,keep1\nragged\nc,d,keep2\ne,f,keep3\nragged,again,too,wide\n";
        let cfg = LoadConfig {
            mode: IngestMode::Lenient {
                max_quarantine_fraction: 0.5,
            },
            ..LoadConfig::default()
        };
        let out = parse_labeled(text, &cfg).unwrap();
        assert_eq!(out.labels, vec!["keep1", "keep2", "keep3"]);
        assert_eq!(out.table.len(), out.labels.len());
        let lines: Vec<usize> = out.report.quarantined.iter().map(|q| q.line).collect();
        assert_eq!(lines, vec![2, 5]);
    }

    #[test]
    fn lenient_on_fully_garbage_file_errors() {
        let cfg = LoadConfig {
            mode: IngestMode::Lenient {
                max_quarantine_fraction: 1.0,
            },
            ..LoadConfig::default()
        };
        // Everything quarantined but under the (100%) ceiling: the load
        // still fails because no data survived.
        let err = parse_labeled("\"x\n\"y\n", &cfg).unwrap_err();
        assert!(matches!(err, RockError::EmptyDataset));
    }

    #[test]
    fn strict_is_the_default_mode() {
        assert_eq!(LoadConfig::default().mode, IngestMode::Strict);
        assert_eq!(IngestMode::default(), IngestMode::Strict);
    }
}
