//! Loading labeled categorical tables from UCI-style CSV files.

use std::fmt;
use std::path::Path;

use rock_core::data::{CategoricalTable, Schema};

use crate::csv::{self, CsvError};

/// Where the class label lives in each record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelPosition {
    /// First column (e.g. mushroom, votes).
    First,
    /// Last column (e.g. nursery, tic-tac-toe).
    Last,
    /// Column by 0-based index.
    Column(usize),
    /// No label column.
    None,
}

/// Parsing configuration for a labeled categorical CSV file.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Field delimiter (default `,`).
    pub delimiter: char,
    /// Token marking a missing value (default `?`).
    pub missing: String,
    /// Label column position (default [`LabelPosition::Last`]).
    pub label: LabelPosition,
    /// Skip this many leading lines (headers). Default 0 — UCI `.data`
    /// files have no header.
    pub skip_lines: usize,
    /// 0-based column indices to drop entirely (e.g. record identifiers
    /// like the Zoo dataset's animal-name column, which would otherwise
    /// make every record trivially unique).
    pub ignore_columns: Vec<usize>,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            delimiter: ',',
            missing: "?".to_owned(),
            label: LabelPosition::Last,
            skip_lines: 0,
            ignore_columns: Vec::new(),
        }
    }
}

/// A loaded dataset: the categorical feature table plus string labels
/// (empty when [`LabelPosition::None`]).
#[derive(Debug, Clone)]
pub struct LabeledTable {
    /// Feature table (label column removed).
    pub table: CategoricalTable,
    /// Per-row class label.
    pub labels: Vec<String>,
}

/// Errors from dataset loading.
#[derive(Debug)]
pub enum LoadError {
    /// Filesystem error.
    Io(std::io::Error),
    /// Malformed CSV.
    Csv(CsvError),
    /// The file had no data rows.
    Empty,
    /// The label column index is out of range.
    BadLabelColumn {
        /// Requested index.
        index: usize,
        /// Number of columns.
        columns: usize,
    },
    /// Core-layer validation error.
    Core(rock_core::RockError),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "io error: {e}"),
            LoadError::Csv(e) => write!(f, "csv error: {e}"),
            LoadError::Empty => write!(f, "file contains no data rows"),
            LoadError::BadLabelColumn { index, columns } => {
                write!(f, "label column {index} out of range for {columns} columns")
            }
            LoadError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            LoadError::Csv(e) => Some(e),
            LoadError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

impl From<CsvError> for LoadError {
    fn from(e: CsvError) -> Self {
        LoadError::Csv(e)
    }
}

impl From<rock_core::RockError> for LoadError {
    fn from(e: rock_core::RockError) -> Self {
        LoadError::Core(e)
    }
}

/// Parses CSV text into a labeled categorical table.
pub fn parse_labeled(text: &str, config: &LoadConfig) -> Result<LabeledTable, LoadError> {
    let all_rows = csv::parse(text, config.delimiter)?;
    let rows: Vec<&Vec<String>> = all_rows.iter().skip(config.skip_lines).collect();
    if rows.is_empty() {
        return Err(LoadError::Empty);
    }
    let width = rows[0].len();
    let label_idx = match config.label {
        LabelPosition::First => Some(0),
        LabelPosition::Last => Some(width - 1),
        LabelPosition::Column(i) => {
            if i >= width {
                return Err(LoadError::BadLabelColumn {
                    index: i,
                    columns: width,
                });
            }
            Some(i)
        }
        LabelPosition::None => None,
    };
    let dropped = |i: usize| config.ignore_columns.contains(&i);
    let num_features = width
        - usize::from(label_idx.is_some())
        - (0..width)
            .filter(|&i| dropped(i) && Some(i) != label_idx)
            .count();
    let mut table = CategoricalTable::new(Schema::with_unnamed(num_features));
    let mut labels = Vec::with_capacity(rows.len());
    for row in rows {
        let mut features: Vec<&str> = Vec::with_capacity(num_features);
        for (i, cell) in row.iter().enumerate() {
            if Some(i) == label_idx {
                labels.push(cell.clone());
            } else if !dropped(i) {
                features.push(cell);
            }
        }
        table.push_textual(&features, &config.missing)?;
    }
    Ok(LabeledTable { table, labels })
}

/// Loads a labeled categorical table from a file.
pub fn load_labeled(path: &Path, config: &LoadConfig) -> Result<LabeledTable, LoadError> {
    let text = std::fs::read_to_string(path)?;
    parse_labeled(&text, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    const VOTES_SAMPLE: &str = "\
republican,n,y,n,y
democrat,?,y,y,n
democrat,y,y,y,n
";

    #[test]
    fn parses_label_first() {
        let cfg = LoadConfig {
            label: LabelPosition::First,
            ..LoadConfig::default()
        };
        let out = parse_labeled(VOTES_SAMPLE, &cfg).unwrap();
        assert_eq!(out.labels, vec!["republican", "democrat", "democrat"]);
        assert_eq!(out.table.len(), 3);
        assert_eq!(out.table.num_attributes(), 4);
        // Missing value became None.
        assert_eq!(out.table.row(1).unwrap()[0], None);
    }

    #[test]
    fn parses_label_last() {
        let text = "x,o,win\no,x,lose\n";
        let out = parse_labeled(text, &LoadConfig::default()).unwrap();
        assert_eq!(out.labels, vec!["win", "lose"]);
        assert_eq!(out.table.num_attributes(), 2);
    }

    #[test]
    fn parses_label_by_column() {
        let text = "a,L1,b\nc,L2,d\n";
        let cfg = LoadConfig {
            label: LabelPosition::Column(1),
            ..LoadConfig::default()
        };
        let out = parse_labeled(text, &cfg).unwrap();
        assert_eq!(out.labels, vec!["L1", "L2"]);
        assert_eq!(out.table.num_attributes(), 2);
    }

    #[test]
    fn unlabeled_mode() {
        let text = "a,b\nc,d\n";
        let cfg = LoadConfig {
            label: LabelPosition::None,
            ..LoadConfig::default()
        };
        let out = parse_labeled(text, &cfg).unwrap();
        assert!(out.labels.is_empty());
        assert_eq!(out.table.num_attributes(), 2);
    }

    #[test]
    fn bad_label_column_rejected() {
        let cfg = LoadConfig {
            label: LabelPosition::Column(9),
            ..LoadConfig::default()
        };
        assert!(matches!(
            parse_labeled("a,b\n", &cfg),
            Err(LoadError::BadLabelColumn {
                index: 9,
                columns: 2
            })
        ));
    }

    #[test]
    fn empty_file_rejected() {
        assert!(matches!(
            parse_labeled("\n\n", &LoadConfig::default()),
            Err(LoadError::Empty)
        ));
    }

    #[test]
    fn skip_lines_drops_header() {
        let text = "col1,col2,class\na,b,pos\n";
        let cfg = LoadConfig {
            skip_lines: 1,
            ..LoadConfig::default()
        };
        let out = parse_labeled(text, &cfg).unwrap();
        assert_eq!(out.labels, vec!["pos"]);
        assert_eq!(out.table.len(), 1);
    }

    #[test]
    fn ignore_columns_drops_identifiers() {
        let text = "aardvark,1,0,mammal\nbass,0,1,fish\n";
        let cfg = LoadConfig {
            label: LabelPosition::Last,
            ignore_columns: vec![0],
            ..LoadConfig::default()
        };
        let out = parse_labeled(text, &cfg).unwrap();
        assert_eq!(out.table.num_attributes(), 2);
        assert_eq!(out.labels, vec!["mammal", "fish"]);
        assert_eq!(out.table.row(0).unwrap().len(), 2);
    }

    #[test]
    fn ignoring_the_label_column_is_harmless() {
        // The label wins over ignore: it is still extracted, not dropped.
        let text = "a,b,L\n";
        let cfg = LoadConfig {
            label: LabelPosition::Column(2),
            ignore_columns: vec![2],
            ..LoadConfig::default()
        };
        let out = parse_labeled(text, &cfg).unwrap();
        assert_eq!(out.labels, vec!["L"]);
        assert_eq!(out.table.num_attributes(), 2);
    }

    #[test]
    fn missing_file_is_io_error() {
        let err =
            load_labeled(Path::new("/nonexistent/file.data"), &LoadConfig::default()).unwrap_err();
        assert!(matches!(err, LoadError::Io(_)));
        assert!(err.to_string().contains("io error"));
    }

    #[test]
    fn table_converts_to_transactions() {
        let cfg = LoadConfig {
            label: LabelPosition::First,
            ..LoadConfig::default()
        };
        let out = parse_labeled(VOTES_SAMPLE, &cfg).unwrap();
        let ts = out.table.to_transactions();
        assert_eq!(ts.len(), 3);
        // Row 1 has one missing value → 3 items; others have 4.
        assert_eq!(ts.transaction(1).unwrap().len(), 3);
        assert_eq!(ts.transaction(0).unwrap().len(), 4);
    }
}
