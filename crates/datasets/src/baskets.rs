//! Loading market-basket (transaction) files.
//!
//! The other native input format of ROCK: one basket per line, items
//! separated by whitespace or commas, e.g.
//!
//! ```text
//! bread milk butter
//! beer chips
//! bread butter jam
//! ```
//!
//! Item names are interned into a [`Vocabulary`] so results can be
//! rendered back; duplicate items within a basket collapse (baskets are
//! sets), and blank lines are skipped.

use std::path::Path;

use rock_core::data::{Transaction, TransactionSet, Vocabulary};
use rock_core::{Result, RockError};

/// Parses basket text into a [`TransactionSet`] with an attached
/// vocabulary. `delimiter` of `None` splits on any whitespace; `Some(c)`
/// splits on `c` (fields are trimmed).
///
/// # Errors
/// [`RockError::EmptyDataset`] when no baskets are found.
pub fn parse_baskets(text: &str, delimiter: Option<char>) -> Result<TransactionSet> {
    let mut vocab = Vocabulary::new();
    let mut baskets = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let items: Vec<u32> = match delimiter {
            None => line
                .split_whitespace()
                .map(|name| vocab.intern_basket(name).0)
                .collect(),
            Some(c) => line
                .split(c)
                .map(str::trim)
                .filter(|f| !f.is_empty())
                .map(|name| vocab.intern_basket(name).0)
                .collect(),
        };
        baskets.push(Transaction::new(items));
    }
    if baskets.is_empty() {
        return Err(RockError::EmptyDataset);
    }
    let universe = vocab.len();
    Ok(TransactionSet::with_vocabulary(baskets, universe, vocab))
}

/// Loads a basket file from disk.
///
/// # Errors
/// [`RockError::Io`] on filesystem failure, plus everything
/// [`parse_baskets`] can return.
pub fn load_baskets(path: &Path, delimiter: Option<char>) -> Result<TransactionSet> {
    let text = std::fs::read_to_string(path).map_err(|e| RockError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })?;
    parse_baskets(&text, delimiter)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_whitespace_separated_items() {
        let ts = parse_baskets("bread milk butter\nbeer chips\n", None).unwrap();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.universe(), 5);
        assert_eq!(ts.transaction(0).unwrap().len(), 3);
        let vocab = ts.vocabulary().unwrap();
        assert_eq!(vocab.describe(rock_core::data::ItemId(0)), "bread");
    }

    #[test]
    fn shared_items_share_ids() {
        let ts = parse_baskets("a b\nb c\n", None).unwrap();
        let t0 = ts.transaction(0).unwrap();
        let t1 = ts.transaction(1).unwrap();
        assert_eq!(t0.intersection_len(t1), 1);
    }

    #[test]
    fn comma_delimited_with_spaces() {
        let ts = parse_baskets("bread, milk , butter\nmilk,beer\n", Some(',')).unwrap();
        assert_eq!(ts.universe(), 4);
        assert_eq!(ts.transaction(1).unwrap().len(), 2);
    }

    #[test]
    fn duplicates_collapse_and_blanks_skip() {
        let ts = parse_baskets("a a a b\n\n   \nb\n", None).unwrap();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.transaction(0).unwrap().len(), 2);
    }

    #[test]
    fn empty_input_rejected() {
        assert!(matches!(
            parse_baskets("\n  \n", None),
            Err(RockError::EmptyDataset)
        ));
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            load_baskets(Path::new("/no/such/file.basket"), None),
            Err(RockError::Io { .. })
        ));
    }

    #[test]
    fn roundtrip_through_clustering() {
        use rock_core::rock::RockBuilder;
        let mut text = String::new();
        for i in 0..6 {
            text.push_str(&format!("core1 core2 core3 extra{i}\n"));
        }
        for i in 0..6 {
            text.push_str(&format!("grill1 grill2 grill3 other{i}\n"));
        }
        let ts = parse_baskets(&text, None).unwrap();
        let model = RockBuilder::new(2, 0.4).build().fit(&ts).unwrap();
        assert_eq!(model.num_clusters(), 2);
        assert_eq!(model.cluster_sizes(), vec![6, 6]);
    }
}
