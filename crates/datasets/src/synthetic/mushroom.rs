//! Synthetic stand-in for the UCI Mushroom dataset (8124 × 22 categorical
//! attributes, 4208 edible / 3916 poisonous).
//!
//! What makes mushroom interesting for ROCK is its *fine* structure: the
//! two coarse classes decompose into ~21 tight species-like groups of very
//! different sizes (the paper's ROCK run at θ = 0.8, k = 21 recovers them
//! almost perfectly, sizes spanning 8 … 1728). The generator plants
//! exactly that: each group has a template value per attribute; records
//! mutate each attribute away from the template with a small probability.
//! Groups map to edible/poisonous such that class totals approximate the
//! real 4208/3916 split. See `DESIGN.md` *Substitutions*.

use rock_core::data::{CategoricalTable, Schema};
use rock_core::sampling::seeded_rng;

/// Alphabet size per attribute in the real mushroom data (22 attributes;
/// e.g. cap-shape has 6 values, odor 9, gill-color 12, veil-type 1).
pub const MUSHROOM_CARDINALITIES: [usize; 22] = [
    6, 4, 10, 2, 9, 2, 2, 2, 12, 2, 5, 4, 4, 9, 9, 1, 4, 3, 5, 9, 6, 7,
];

/// Group sizes used by the default paper-like configuration (21 groups,
/// summing to 8124, spanning 8 … 1828 like the cluster sizes the paper
/// reports).
pub const PAPER_GROUP_SIZES: [usize; 21] = [
    1828, 1024, 896, 768, 640, 512, 448, 384, 320, 256, 224, 192, 160, 128, 96, 80, 64, 48, 32, 16,
    8,
];

/// Configuration of the synthetic mushroom generator.
#[derive(Debug, Clone)]
pub struct MushroomModel {
    /// Points per latent group.
    pub group_sizes: Vec<usize>,
    /// Alphabet size per attribute.
    pub cardinalities: Vec<usize>,
    /// Probability each attribute of a record mutates away from its
    /// group's template value.
    pub mutation: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MushroomModel {
    fn default() -> Self {
        MushroomModel {
            group_sizes: PAPER_GROUP_SIZES.to_vec(),
            cardinalities: MUSHROOM_CARDINALITIES.to_vec(),
            mutation: 0.04,
            seed: 0,
        }
    }
}

impl MushroomModel {
    /// A scaled-down model with `groups` groups of roughly `n / groups`
    /// points — handy for tests and quick experiments.
    pub fn scaled(n: usize, groups: usize) -> Self {
        assert!(groups > 0 && n >= groups);
        let base = n / groups;
        let mut sizes = vec![base; groups];
        for s in sizes.iter_mut().take(n % groups) {
            *s += 1;
        }
        MushroomModel {
            group_sizes: sizes,
            ..MushroomModel::default()
        }
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total records.
    pub fn num_records(&self) -> usize {
        self.group_sizes.iter().sum()
    }

    /// Generates `(table, class labels, group labels)` where class is
    /// `"e"`/`"p"` and group is the latent species index. Rows are
    /// shuffled.
    pub fn generate(&self) -> (CategoricalTable, Vec<&'static str>, Vec<usize>) {
        let mut rng = seeded_rng(self.seed);
        let d = self.cardinalities.len();

        // Template per group: a uniformly random value for each attribute.
        let templates: Vec<Vec<u16>> = (0..self.group_sizes.len())
            .map(|_| {
                self.cardinalities
                    .iter()
                    .map(|&c| rng.gen_range(0..c) as u16)
                    .collect()
            })
            .collect();

        // Map groups to classes so totals approximate 4208/4000-ish split:
        // greedily assign each group (largest first) to the lighter class.
        let mut order: Vec<usize> = (0..self.group_sizes.len()).collect();
        order.sort_by(|&a, &b| self.group_sizes[b].cmp(&self.group_sizes[a]));
        let mut class_of = vec![""; self.group_sizes.len()];
        let (mut e_total, mut p_total) = (0usize, 0usize);
        for g in order {
            if e_total <= p_total {
                class_of[g] = "e";
                e_total += self.group_sizes[g];
            } else {
                class_of[g] = "p";
                p_total += self.group_sizes[g];
            }
        }

        // Emit rows (group, coded cells), then shuffle.
        let mut rows: Vec<(usize, Vec<Option<u16>>)> = Vec::with_capacity(self.num_records());
        for (g, &size) in self.group_sizes.iter().enumerate() {
            for _ in 0..size {
                let cells: Vec<Option<u16>> = (0..d)
                    .map(|a| {
                        let card = self.cardinalities[a];
                        let v = if card > 1 && rng.gen::<f64>() < self.mutation {
                            // Mutate to a different value uniformly.
                            let alt = rng.gen_range(0..card - 1) as u16;
                            if alt >= templates[g][a] {
                                alt + 1
                            } else {
                                alt
                            }
                        } else {
                            templates[g][a]
                        };
                        Some(v)
                    })
                    .collect();
                rows.push((g, cells));
            }
        }
        for i in (1..rows.len()).rev() {
            let j = rng.gen_range(0..=i);
            rows.swap(i, j);
        }

        // Build the table: intern every code as a textual value `v<code>`
        // so the schema carries the full alphabet.
        let names: Vec<String> = (0..d).map(|a| format!("attr{a}")).collect();
        let mut table = CategoricalTable::new(Schema::with_names(names));
        let mut classes = Vec::with_capacity(rows.len());
        let mut groups = Vec::with_capacity(rows.len());
        for (g, cells) in rows {
            let textual: Vec<String> = cells
                .iter()
                .map(|c| format!("v{}", c.expect("no missing values in mushroom")))
                .collect();
            let refs: Vec<&str> = textual.iter().map(String::as_str).collect();
            table.push_textual(&refs, "?").expect("row width matches");
            classes.push(class_of[g]);
            groups.push(g);
        }
        (table, classes, groups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes_sum_to_8124() {
        assert_eq!(PAPER_GROUP_SIZES.iter().sum::<usize>(), 8124);
        assert_eq!(PAPER_GROUP_SIZES.len(), 21);
        assert_eq!(MUSHROOM_CARDINALITIES.len(), 22);
    }

    #[test]
    fn scaled_model_shape() {
        let m = MushroomModel::scaled(1000, 7);
        assert_eq!(m.num_records(), 1000);
        assert_eq!(m.group_sizes.len(), 7);
        let (table, classes, groups) = m.seed(1).generate();
        assert_eq!(table.len(), 1000);
        assert_eq!(table.num_attributes(), 22);
        assert_eq!(classes.len(), 1000);
        assert_eq!(groups.len(), 1000);
    }

    #[test]
    fn classes_are_roughly_balanced() {
        let (_, classes, _) = MushroomModel::scaled(2000, 10).seed(2).generate();
        let e = classes.iter().filter(|c| **c == "e").count();
        let frac = e as f64 / 2000.0;
        assert!((0.35..=0.65).contains(&frac), "edible fraction {frac}");
    }

    #[test]
    fn groups_are_tight_under_mutation() {
        let m = MushroomModel::scaled(300, 3).seed(3);
        let (table, _, groups) = m.generate();
        // Two records of the same group should agree on most attributes;
        // records of different groups should agree on few.
        let same: Vec<usize> = (0..300)
            .filter(|&i| groups[i] == groups[0] && i != 0)
            .take(5)
            .collect();
        let diff: Vec<usize> = (0..300)
            .filter(|&i| groups[i] != groups[0])
            .take(5)
            .collect();
        let agree = |a: usize, b: usize| -> usize {
            table
                .row(a)
                .unwrap()
                .iter()
                .zip(table.row(b).unwrap())
                .filter(|(x, y)| x == y)
                .count()
        };
        for &i in &same {
            assert!(agree(0, i) >= 17, "same-group agreement too low");
        }
        for &i in &diff {
            assert!(agree(0, i) <= 14, "cross-group agreement too high");
        }
    }

    #[test]
    fn veil_type_is_constant() {
        // Attribute 15 has cardinality 1 (like the real veil-type): it can
        // never mutate and all records share it.
        let (table, _, _) = MushroomModel::scaled(100, 4).seed(4).generate();
        let first = table.row(0).unwrap()[15];
        assert!(table.rows().all(|r| r[15] == first));
    }

    #[test]
    fn deterministic_by_seed() {
        let (a, ca, ga) = MushroomModel::scaled(200, 5).seed(9).generate();
        let (b, cb, gb) = MushroomModel::scaled(200, 5).seed(9).generate();
        assert_eq!(ca, cb);
        assert_eq!(ga, gb);
        assert_eq!(a.row(7), b.row(7));
    }

    #[test]
    fn default_is_full_size() {
        let m = MushroomModel::default();
        assert_eq!(m.num_records(), 8124);
    }
}
