//! Synthetic dataset generators calibrated to the ROCK evaluation's data
//! (see `DESIGN.md`, *Substitutions*, for the paper-resource ↔ generator
//! mapping).

pub mod basket;
pub mod blocks;
pub mod funds;
pub mod latent;
pub mod mushroom;
pub mod votes;

pub use basket::{intro_example, BasketCluster, BasketModel};
pub use blocks::BlockModel;
pub use funds::{FundsModel, Sector};
pub use latent::LatentClassModel;
pub use mushroom::{MushroomModel, MUSHROOM_CARDINALITIES, PAPER_GROUP_SIZES};
pub use votes::{Party, VotesModel};
