//! Planted boolean block model.
//!
//! A generic sparse-boolean planted-partition generator: `k` blocks of
//! points, `k` blocks of features; a point in block `b` includes feature
//! `f` with probability `p_in` when `f` belongs to block `b` and `p_out`
//! otherwise. Transactions are the sets of present features. This is the
//! market-basket analogue of the stochastic block model and produces
//! exactly the structure ROCK's link argument relies on: dense common
//! neighborhoods within a block, sparse across.

use rock_core::data::{Transaction, TransactionSet};
use rock_core::sampling::seeded_rng;

/// Configuration for the planted boolean block model.
#[derive(Debug, Clone)]
pub struct BlockModel {
    /// Points per block.
    pub points_per_block: Vec<usize>,
    /// Features per block (same number of blocks as points).
    pub features_per_block: usize,
    /// Probability of a within-block feature being present.
    pub p_in: f64,
    /// Probability of an out-of-block feature being present.
    pub p_out: f64,
    /// RNG seed.
    pub seed: u64,
}

impl BlockModel {
    /// Symmetric model: `k` blocks of `points` points and `features`
    /// features each.
    pub fn symmetric(k: usize, points: usize, features: usize, p_in: f64, p_out: f64) -> Self {
        BlockModel {
            points_per_block: vec![points; k],
            features_per_block: features,
            p_in,
            p_out,
            seed: 0,
        }
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.points_per_block.len()
    }

    /// Total number of points.
    pub fn num_points(&self) -> usize {
        self.points_per_block.iter().sum()
    }

    /// Generates `(transactions, block labels)`.
    pub fn generate(&self) -> (TransactionSet, Vec<usize>) {
        let k = self.num_blocks();
        let d = self.features_per_block;
        let universe = k * d;
        let mut rng = seeded_rng(self.seed);
        let mut transactions = Vec::with_capacity(self.num_points());
        let mut labels = Vec::with_capacity(self.num_points());
        for (b, &count) in self.points_per_block.iter().enumerate() {
            for _ in 0..count {
                let mut items: Vec<u32> = Vec::new();
                for f in 0..universe {
                    let p = if f / d == b { self.p_in } else { self.p_out };
                    if p > 0.0 && rng.gen::<f64>() < p {
                        items.push(f as u32);
                    }
                }
                transactions.push(Transaction::from_sorted(items));
                labels.push(b);
            }
        }
        (TransactionSet::new(transactions, universe), labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_labels() {
        let (ts, labels) = BlockModel::symmetric(3, 20, 15, 0.5, 0.01)
            .seed(1)
            .generate();
        assert_eq!(ts.len(), 60);
        assert_eq!(labels.len(), 60);
        assert_eq!(ts.universe(), 45);
        assert_eq!(labels.iter().filter(|&&l| l == 2).count(), 20);
        ts.validate().unwrap();
    }

    #[test]
    fn asymmetric_block_sizes() {
        let model = BlockModel {
            points_per_block: vec![5, 15],
            features_per_block: 10,
            p_in: 0.8,
            p_out: 0.0,
            seed: 2,
        };
        let (ts, labels) = model.generate();
        assert_eq!(ts.len(), 20);
        assert_eq!(labels.iter().filter(|&&l| l == 0).count(), 5);
    }

    #[test]
    fn within_block_density_matches_p_in() {
        let (ts, labels) = BlockModel::symmetric(2, 200, 50, 0.4, 0.05)
            .seed(3)
            .generate();
        // Average items per point in its own feature block ≈ p_in · d.
        let mut own = 0usize;
        let mut other = 0usize;
        for (t, &b) in ts.iter().zip(&labels) {
            for &item in t.items() {
                if (item as usize) / 50 == b {
                    own += 1;
                } else {
                    other += 1;
                }
            }
        }
        let own_rate = own as f64 / (400.0 * 50.0);
        let other_rate = other as f64 / (400.0 * 50.0);
        assert!((own_rate - 0.4).abs() < 0.03, "own rate {own_rate}");
        assert!((other_rate - 0.05).abs() < 0.02, "other rate {other_rate}");
    }

    #[test]
    fn zero_p_out_gives_disjoint_item_ranges() {
        let (ts, labels) = BlockModel::symmetric(2, 30, 20, 0.5, 0.0)
            .seed(4)
            .generate();
        for (t, &b) in ts.iter().zip(&labels) {
            for &item in t.items() {
                assert_eq!((item as usize) / 20, b);
            }
        }
    }

    #[test]
    fn seeded_generation_is_deterministic() {
        let m = BlockModel::symmetric(2, 10, 10, 0.5, 0.1).seed(9);
        let (a, _) = m.generate();
        let (b, _) = m.generate();
        for i in 0..a.len() {
            assert_eq!(a.transaction(i).unwrap(), b.transaction(i).unwrap());
        }
    }
}
