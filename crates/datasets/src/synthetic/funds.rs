//! Synthetic stand-in for the US mutual-fund NAV time series the ROCK
//! paper clusters (daily closing prices, Jan 1993 – Mar 1995).
//!
//! The property ROCK exploits is that funds in the same sector (bond,
//! growth, international, precious metals, …) *co-move*: their daily
//! Up/Down patterns agree far more often than across sectors. The
//! generator plants one latent random-walk factor per sector; a fund's
//! daily return is its sector factor plus idiosyncratic noise, so
//! same-sector funds mostly move together. See `DESIGN.md`
//! *Substitutions*.

use rock_core::data::TransactionSet;
use rock_core::rng::Rng;
use rock_core::sampling::seeded_rng;

use crate::timeseries::{encode_returns, UpDownConfig};

/// One fund sector.
#[derive(Debug, Clone)]
pub struct Sector {
    /// Sector name (e.g. "bond").
    pub name: String,
    /// Number of funds.
    pub funds: usize,
}

/// Configuration of the synthetic mutual-fund generator.
#[derive(Debug, Clone)]
pub struct FundsModel {
    /// Sectors with fund counts.
    pub sectors: Vec<Sector>,
    /// Number of trading days.
    pub days: usize,
    /// Daily volatility of the shared sector factor.
    pub sector_vol: f64,
    /// Daily idiosyncratic volatility per fund (smaller ⇒ tighter
    /// co-movement).
    pub idio_vol: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FundsModel {
    /// Paper-like: bond, growth, international, precious-metals and
    /// balanced sectors, ~550 trading days (Jan'93–Mar'95).
    fn default() -> Self {
        FundsModel {
            sectors: vec![
                Sector {
                    name: "bond".into(),
                    funds: 120,
                },
                Sector {
                    name: "growth".into(),
                    funds: 180,
                },
                Sector {
                    name: "international".into(),
                    funds: 80,
                },
                Sector {
                    name: "precious-metals".into(),
                    funds: 30,
                },
                Sector {
                    name: "balanced".into(),
                    funds: 90,
                },
            ],
            days: 550,
            sector_vol: 1.0,
            idio_vol: 0.45,
            seed: 0,
        }
    }
}

/// A standard normal sample via Box–Muller (rand's distributions live in
/// the separate `rand_distr` crate, which we avoid per the dependency
/// policy).
fn normal(rng: &mut Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

impl FundsModel {
    /// A small model for tests: `sectors` sectors of `funds` funds over
    /// `days` days.
    pub fn scaled(sectors: usize, funds: usize, days: usize) -> Self {
        FundsModel {
            sectors: (0..sectors)
                .map(|s| Sector {
                    name: format!("sector{s}"),
                    funds,
                })
                .collect(),
            days,
            ..FundsModel::default()
        }
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total funds.
    pub fn num_funds(&self) -> usize {
        self.sectors.iter().map(|s| s.funds).sum()
    }

    /// Generates raw daily *returns* per fund, plus sector labels.
    pub fn generate_returns(&self) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = seeded_rng(self.seed);
        // Sector factor daily increments.
        let factors: Vec<Vec<f64>> = self
            .sectors
            .iter()
            .map(|_| {
                (0..self.days)
                    .map(|_| self.sector_vol * normal(&mut rng))
                    .collect()
            })
            .collect();
        let mut series = Vec::with_capacity(self.num_funds());
        let mut labels = Vec::with_capacity(self.num_funds());
        for (s, sector) in self.sectors.iter().enumerate() {
            for _ in 0..sector.funds {
                let fund: Vec<f64> = factors[s]
                    .iter()
                    .map(|&f| f + self.idio_vol * normal(&mut rng))
                    .collect();
                series.push(fund);
                labels.push(s);
            }
        }
        (series, labels)
    }

    /// Generates the Up/Down transaction encoding plus sector labels.
    pub fn generate(&self, config: &UpDownConfig) -> (TransactionSet, Vec<usize>) {
        let (returns, labels) = self.generate_returns();
        (encode_returns(&returns, config), labels)
    }

    /// Sector name for a label.
    pub fn sector_name(&self, label: usize) -> &str {
        &self.sectors[label].name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_core::similarity::{Jaccard, Similarity};

    #[test]
    fn shape_and_labels() {
        let m = FundsModel::scaled(3, 10, 50).seed(1);
        let (series, labels) = m.generate_returns();
        assert_eq!(series.len(), 30);
        assert_eq!(labels.len(), 30);
        assert!(series.iter().all(|s| s.len() == 50));
        assert_eq!(m.sector_name(2), "sector2");
    }

    #[test]
    fn same_sector_funds_co_move() {
        let m = FundsModel::scaled(2, 20, 200).seed(2);
        let (ts, labels) = m.generate(&UpDownConfig::default());
        // Average Jaccard within sector must clearly exceed across.
        let mut within = Vec::new();
        let mut across = Vec::new();
        for i in 0..ts.len() {
            for j in (i + 1)..ts.len() {
                let s = Jaccard.sim(ts.transaction(i).unwrap(), ts.transaction(j).unwrap());
                if labels[i] == labels[j] {
                    within.push(s);
                } else {
                    across.push(s);
                }
            }
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            avg(&within) > avg(&across) + 0.15,
            "within {} vs across {}",
            avg(&within),
            avg(&across)
        );
    }

    #[test]
    fn normal_moments() {
        let mut rng = seeded_rng(3);
        let samples: Vec<f64> = (0..20_000).map(|_| normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn default_model_is_paper_scale() {
        let m = FundsModel::default();
        assert_eq!(m.num_funds(), 500);
        assert_eq!(m.days, 550);
        assert_eq!(m.sectors.len(), 5);
    }

    #[test]
    fn deterministic_by_seed() {
        let m = FundsModel::scaled(2, 5, 30).seed(7);
        let (a, _) = m.generate_returns();
        let (b, _) = m.generate_returns();
        assert_eq!(a, b);
    }
}
