//! Market-basket data generators, including the ROCK paper's motivating
//! example.
//!
//! The paper's introduction motivates links with a market-basket database
//! containing two natural transaction clusters whose item universes
//! overlap slightly; similarity-only (Jaccard) hierarchical merging is
//! fooled by "bridge" baskets straddling both universes, while the link
//! count of a bridge pair stays low because bridges have few *common*
//! neighbors. [`BasketModel`] plants that structure generically;
//! [`intro_example`] builds a small deterministic instance.

use rock_core::data::{Transaction, TransactionSet};
use rock_core::rng::Rng;
use rock_core::sampling::seeded_rng;

/// One planted basket cluster.
#[derive(Debug, Clone)]
pub struct BasketCluster {
    /// Items this cluster draws from (inclusive range into the universe).
    pub items: std::ops::Range<u32>,
    /// Number of baskets.
    pub baskets: usize,
    /// Basket size range `(min, max)` inclusive.
    pub basket_size: (usize, usize),
}

/// Configuration of the market-basket generator.
#[derive(Debug, Clone)]
pub struct BasketModel {
    /// The planted clusters.
    pub clusters: Vec<BasketCluster>,
    /// Number of "bridge" baskets mixing items from two adjacent clusters.
    pub bridges: usize,
    /// RNG seed.
    pub seed: u64,
}

impl BasketModel {
    /// `k` disjoint clusters of `baskets` baskets each, over `items_each`
    /// items, basket size in `size`.
    pub fn disjoint(k: usize, baskets: usize, items_each: u32, size: (usize, usize)) -> Self {
        BasketModel {
            clusters: (0..k as u32)
                .map(|c| BasketCluster {
                    items: c * items_each..(c + 1) * items_each,
                    baskets,
                    basket_size: size,
                })
                .collect(),
            bridges: 0,
            seed: 0,
        }
    }

    /// Adds bridge baskets (mixing two adjacent clusters' items).
    pub fn bridges(mut self, bridges: usize) -> Self {
        self.bridges = bridges;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates `(transactions, labels)`. Bridge baskets get the label of
    /// the lower-numbered cluster they straddle.
    pub fn generate(&self) -> (TransactionSet, Vec<usize>) {
        let mut rng = seeded_rng(self.seed);
        let universe = self.clusters.iter().map(|c| c.items.end).max().unwrap_or(0) as usize;
        let mut out = Vec::new();
        let mut labels = Vec::new();
        for (ci, c) in self.clusters.iter().enumerate() {
            let pool: Vec<u32> = c.items.clone().collect();
            for _ in 0..c.baskets {
                let size = rng
                    .gen_range(c.basket_size.0..=c.basket_size.1)
                    .min(pool.len());
                out.push(sample_subset(&pool, size, &mut rng));
                labels.push(ci);
            }
        }
        // Bridges: half items from cluster i, half from cluster i+1.
        for b in 0..self.bridges {
            let ci = b % self.clusters.len().saturating_sub(1).max(1);
            let a = &self.clusters[ci];
            let z = &self.clusters[(ci + 1) % self.clusters.len()];
            let pool_a: Vec<u32> = a.items.clone().collect();
            let pool_z: Vec<u32> = z.items.clone().collect();
            let size = a.basket_size.0.max(2);
            let mut v: Vec<u32> = sample_subset(&pool_a, size / 2 + size % 2, &mut rng)
                .items()
                .to_vec();
            v.extend(sample_subset(&pool_z, size / 2, &mut rng).items());
            out.push(Transaction::new(v));
            labels.push(ci);
        }
        (TransactionSet::new(out, universe), labels)
    }
}

fn sample_subset(pool: &[u32], size: usize, rng: &mut Rng) -> Transaction {
    debug_assert!(size <= pool.len());
    // Floyd's algorithm for a uniform size-`size` subset.
    let n = pool.len();
    let mut chosen = std::collections::BTreeSet::new();
    for j in (n - size)..n {
        let t = rng.gen_range(0..=j);
        if !chosen.insert(pool[t]) {
            chosen.insert(pool[j]);
        }
    }
    Transaction::new(chosen)
}

/// The deterministic two-cluster demonstration used by example code and
/// the E0 experiment: every 3-subset of `{0..5}` (10 baskets, cluster 0)
/// and every 3-subset of `{5..10}` (10 baskets, cluster 1), plus
/// `bridges` baskets containing items from both universes.
pub fn intro_example(bridges: usize) -> (TransactionSet, Vec<usize>) {
    let mut out = Vec::new();
    let mut labels = Vec::new();
    for (cluster, base) in [(0usize, 0u32), (1, 5)] {
        for a in 0..5u32 {
            for b in (a + 1)..5 {
                for c in (b + 1)..5 {
                    out.push(Transaction::new([base + a, base + b, base + c]));
                    labels.push(cluster);
                }
            }
        }
    }
    for i in 0..bridges {
        // Bridges take two items from cluster 0's universe and two from
        // cluster 1's, sliding so bridges differ from each other.
        let s = (i as u32) % 4;
        out.push(Transaction::new([s, s + 1, 5 + s, 6 + s]));
        labels.push(0);
    }
    (TransactionSet::new(out, 10), labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_clusters_shape() {
        let (ts, labels) = BasketModel::disjoint(3, 20, 15, (3, 6)).seed(1).generate();
        assert_eq!(ts.len(), 60);
        assert_eq!(ts.universe(), 45);
        for (t, &l) in ts.iter().zip(&labels) {
            assert!(t.len() >= 3 && t.len() <= 6);
            for &item in t.items() {
                assert_eq!((item / 15) as usize, l);
            }
        }
    }

    #[test]
    fn bridge_baskets_straddle() {
        let (ts, labels) = BasketModel::disjoint(2, 5, 10, (4, 4))
            .bridges(3)
            .seed(2)
            .generate();
        assert_eq!(ts.len(), 13);
        assert_eq!(labels.len(), 13);
        for t in ts.iter().skip(10) {
            let lo = t.items().iter().filter(|&&i| i < 10).count();
            let hi = t.items().iter().filter(|&&i| i >= 10).count();
            assert!(lo > 0 && hi > 0, "bridge must straddle: {:?}", t.items());
        }
    }

    #[test]
    fn subset_sampling_is_uniform_size_and_distinct() {
        let pool: Vec<u32> = (0..30).collect();
        let mut rng = seeded_rng(3);
        for _ in 0..50 {
            let t = sample_subset(&pool, 7, &mut rng);
            assert_eq!(t.len(), 7);
        }
    }

    #[test]
    fn intro_example_structure() {
        let (ts, labels) = intro_example(0);
        assert_eq!(ts.len(), 20);
        assert_eq!(labels.iter().filter(|&&l| l == 0).count(), 10);
        // All cluster-0 baskets draw from items 0..5.
        for (t, &l) in ts.iter().zip(&labels) {
            if l == 0 {
                assert!(t.items().iter().all(|&i| i < 5));
            } else {
                assert!(t.items().iter().all(|&i| (5..10).contains(&i)));
            }
        }
        let (ts, labels) = intro_example(4);
        assert_eq!(ts.len(), 24);
        assert_eq!(labels.len(), 24);
    }

    #[test]
    fn deterministic_by_seed() {
        let m = BasketModel::disjoint(2, 10, 10, (3, 5)).bridges(2).seed(5);
        let (a, _) = m.generate();
        let (b, _) = m.generate();
        for i in 0..a.len() {
            assert_eq!(a.transaction(i).unwrap(), b.transaction(i).unwrap());
        }
    }
}
