//! Latent-class model: the classical generative model for categorical
//! clustering benchmarks.
//!
//! Each latent class has an independent categorical distribution per
//! attribute; a record samples its class, then each attribute from that
//! class's distribution. The votes-like and mushroom-like generators are
//! special cases; this model exposes the machinery directly so
//! experiments can dial class separation (the *concentration* of each
//! class's per-attribute distribution) continuously.

use rock_core::data::{CategoricalTable, Schema};
use rock_core::rng::Rng;
use rock_core::sampling::seeded_rng;

/// Configuration of the latent-class generator.
#[derive(Debug, Clone)]
pub struct LatentClassModel {
    /// Points per class.
    pub class_sizes: Vec<usize>,
    /// Alphabet size per attribute (all classes share the alphabets).
    pub cardinalities: Vec<usize>,
    /// Concentration of each class's per-attribute distribution in
    /// `[0, 1]`: probability mass placed on the class's preferred value;
    /// the rest is spread uniformly over the other values. `1.0` makes
    /// classes deterministic templates; `1/cardinality` makes attributes
    /// pure noise.
    pub concentration: f64,
    /// Fraction of attributes that are *uninformative* (uniform for every
    /// class) — mimicking irrelevant survey questions.
    pub noise_attributes: f64,
    /// RNG seed.
    pub seed: u64,
}

impl LatentClassModel {
    /// `k` classes of `per_class` points over `d` attributes with the
    /// given alphabet size.
    pub fn uniform(k: usize, per_class: usize, d: usize, alphabet: usize) -> Self {
        LatentClassModel {
            class_sizes: vec![per_class; k],
            cardinalities: vec![alphabet; d],
            concentration: 0.8,
            noise_attributes: 0.0,
            seed: 0,
        }
    }

    /// Sets the concentration.
    pub fn concentration(mut self, c: f64) -> Self {
        self.concentration = c;
        self
    }

    /// Sets the uninformative-attribute fraction.
    pub fn noise_attributes(mut self, f: f64) -> Self {
        self.noise_attributes = f;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total records.
    pub fn num_records(&self) -> usize {
        self.class_sizes.iter().sum()
    }

    /// Generates `(table, class labels)`; rows are shuffled.
    ///
    /// # Panics
    /// Panics if `concentration ∉ [0, 1]` or `noise_attributes ∉ [0, 1]`.
    pub fn generate(&self) -> (CategoricalTable, Vec<usize>) {
        assert!((0.0..=1.0).contains(&self.concentration));
        assert!((0.0..=1.0).contains(&self.noise_attributes));
        let mut rng = seeded_rng(self.seed);
        let d = self.cardinalities.len();
        let k = self.class_sizes.len();

        // Preferred value per (class, attribute); noise attributes get
        // sentinel u16::MAX meaning "uniform for everyone".
        let noisy_count = (self.noise_attributes * d as f64).round() as usize;
        let noisy: Vec<bool> = (0..d).map(|a| a < noisy_count).collect();
        let preferred: Vec<Vec<u16>> = (0..k)
            .map(|_| {
                self.cardinalities
                    .iter()
                    .map(|&c| rng.gen_range(0..c.max(1)) as u16)
                    .collect()
            })
            .collect();

        let mut rows: Vec<(usize, Vec<Option<u16>>)> = Vec::with_capacity(self.num_records());
        for (class, &size) in self.class_sizes.iter().enumerate() {
            for _ in 0..size {
                let cells = (0..d)
                    .map(|a| Some(self.sample_cell(class, a, &preferred, &noisy, &mut rng)))
                    .collect();
                rows.push((class, cells));
            }
        }
        for i in (1..rows.len()).rev() {
            let j = rng.gen_range(0..=i);
            rows.swap(i, j);
        }

        let mut table = CategoricalTable::new(Schema::with_unnamed(d));
        let mut labels = Vec::with_capacity(rows.len());
        for (class, cells) in rows {
            let textual: Vec<String> = cells
                .iter()
                .map(|c| format!("v{}", c.expect("always present")))
                .collect();
            let refs: Vec<&str> = textual.iter().map(String::as_str).collect();
            table.push_textual(&refs, "?").expect("width matches");
            labels.push(class);
        }
        (table, labels)
    }

    fn sample_cell(
        &self,
        class: usize,
        attr: usize,
        preferred: &[Vec<u16>],
        noisy: &[bool],
        rng: &mut Rng,
    ) -> u16 {
        let card = self.cardinalities[attr].max(1);
        if noisy[attr] || card == 1 {
            return rng.gen_range(0..card) as u16;
        }
        let fav = preferred[class][attr];
        if rng.gen::<f64>() < self.concentration {
            fav
        } else {
            // Uniform over the other values.
            let alt = rng.gen_range(0..card - 1) as u16;
            if alt >= fav {
                alt + 1
            } else {
                alt
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_labels() {
        let m = LatentClassModel::uniform(3, 50, 10, 4).seed(1);
        let (table, labels) = m.generate();
        assert_eq!(table.len(), 150);
        assert_eq!(table.num_attributes(), 10);
        for c in 0..3 {
            assert_eq!(labels.iter().filter(|&&l| l == c).count(), 50);
        }
    }

    #[test]
    fn high_concentration_gives_tight_classes() {
        let m = LatentClassModel::uniform(2, 40, 12, 5)
            .concentration(0.95)
            .seed(2);
        let (table, labels) = m.generate();
        // Two same-class rows should agree on most attributes.
        let same: Vec<usize> = (1..80).filter(|&i| labels[i] == labels[0]).collect();
        let agree = |a: usize, b: usize| {
            table
                .row(a)
                .unwrap()
                .iter()
                .zip(table.row(b).unwrap())
                .filter(|(x, y)| x == y)
                .count()
        };
        let avg: f64 = same.iter().map(|&i| agree(0, i) as f64).sum::<f64>() / same.len() as f64;
        assert!(avg > 9.0, "same-class agreement {avg}");
    }

    #[test]
    fn zero_concentration_is_noise() {
        // concentration 0 = never the preferred value; classes still far
        // from separable since everything avoids one value uniformly. Use
        // 1/alphabet as the true "noise" level instead.
        let m = LatentClassModel::uniform(2, 30, 8, 4)
            .concentration(0.25)
            .seed(3);
        let (table, _) = m.generate();
        assert_eq!(table.len(), 60);
    }

    #[test]
    fn noise_attributes_are_uninformative() {
        let m = LatentClassModel::uniform(2, 200, 10, 2)
            .concentration(1.0)
            .noise_attributes(0.5)
            .seed(4);
        let (table, labels) = m.generate();
        // First 5 attributes are noise: within-class agreement ~0.5; last
        // 5 are deterministic: agreement 1.0.
        let class0: Vec<usize> = (0..400).filter(|&i| labels[i] == 0).collect();
        let mut noise_agree = 0usize;
        let mut signal_agree = 0usize;
        let mut pairs = 0usize;
        for w in class0.windows(2) {
            let (a, b) = (table.row(w[0]).unwrap(), table.row(w[1]).unwrap());
            for attr in 0..5 {
                noise_agree += usize::from(a[attr] == b[attr]);
            }
            for attr in 5..10 {
                signal_agree += usize::from(a[attr] == b[attr]);
            }
            pairs += 1;
        }
        let noise_rate = noise_agree as f64 / (pairs * 5) as f64;
        let signal_rate = signal_agree as f64 / (pairs * 5) as f64;
        assert!((noise_rate - 0.5).abs() < 0.1, "noise agree {noise_rate}");
        assert_eq!(signal_rate, 1.0);
    }

    #[test]
    fn deterministic_by_seed() {
        let m = LatentClassModel::uniform(2, 20, 6, 3).seed(9);
        let (a, la) = m.generate();
        let (b, lb) = m.generate();
        assert_eq!(la, lb);
        assert_eq!(a.row(5), b.row(5));
    }

    #[test]
    #[should_panic]
    fn rejects_bad_concentration() {
        LatentClassModel::uniform(2, 5, 4, 3)
            .concentration(1.5)
            .generate();
    }
}
