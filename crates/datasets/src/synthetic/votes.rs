//! Synthetic stand-in for the UCI 1984 Congressional Voting Records
//! dataset (435 × 16 boolean votes, 267 democrats / 168 republicans,
//! ~5.6% missing values).
//!
//! The structure ROCK exploits in the real data is that most issues are
//! *party-line*: democrats vote one way with high probability and
//! republicans the other, while a few issues are bipartisan. The generator
//! reproduces exactly that: a configurable number of polarized issues
//! (alternating direction) plus bipartisan coin-flip issues, with missing
//! values sprinkled uniformly. See `DESIGN.md` *Substitutions*.

use rock_core::data::{CategoricalTable, Schema};
use rock_core::sampling::seeded_rng;

/// Party of a synthetic representative.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Party {
    /// Majority class in the 1984 house (267 members).
    Democrat,
    /// Minority class (168 members).
    Republican,
}

impl Party {
    /// Label string, matching the UCI file.
    pub fn label(&self) -> &'static str {
        match self {
            Party::Democrat => "democrat",
            Party::Republican => "republican",
        }
    }
}

/// Configuration of the synthetic votes generator.
#[derive(Debug, Clone)]
pub struct VotesModel {
    /// Number of democrats (UCI: 267).
    pub democrats: usize,
    /// Number of republicans (UCI: 168).
    pub republicans: usize,
    /// Total issues (UCI: 16).
    pub issues: usize,
    /// How many issues are party-polarized (rest are 50/50 coin flips).
    pub partisan_issues: usize,
    /// Probability a member votes with their party on a polarized issue.
    pub party_line: f64,
    /// Probability a vote is missing (`?`).
    pub missing: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for VotesModel {
    /// Matches the UCI dataset's shape: 435 members, 16 issues, 12 of them
    /// polarized at 0.85 party-line probability, 5.6% missing.
    fn default() -> Self {
        VotesModel {
            democrats: 267,
            republicans: 168,
            issues: 16,
            partisan_issues: 12,
            party_line: 0.85,
            missing: 0.056,
            seed: 0,
        }
    }
}

impl VotesModel {
    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total members.
    pub fn num_members(&self) -> usize {
        self.democrats + self.republicans
    }

    /// Generates `(table, party labels)`. Rows are interleaved
    /// (shuffled) so that clustering cannot exploit input order.
    pub fn generate(&self) -> (CategoricalTable, Vec<Party>) {
        assert!(self.partisan_issues <= self.issues);
        let mut rng = seeded_rng(self.seed);
        let mut members: Vec<Party> = std::iter::repeat_n(Party::Democrat, self.democrats)
            .chain(std::iter::repeat_n(Party::Republican, self.republicans))
            .collect();
        // Fisher–Yates shuffle for row order.
        for i in (1..members.len()).rev() {
            let j = rng.gen_range(0..=i);
            members.swap(i, j);
        }

        let names: Vec<String> = (0..self.issues).map(|i| format!("issue{i}")).collect();
        let mut table = CategoricalTable::new(Schema::with_names(names));
        for &party in &members {
            let mut cells: Vec<String> = Vec::with_capacity(self.issues);
            for issue in 0..self.issues {
                if rng.gen::<f64>() < self.missing {
                    cells.push("?".to_owned());
                    continue;
                }
                let yes_prob = if issue < self.partisan_issues {
                    // Alternate which party favors the issue, so neither
                    // party is simply "votes yes on everything".
                    let dem_favored = issue % 2 == 0;
                    match (party, dem_favored) {
                        (Party::Democrat, true) | (Party::Republican, false) => self.party_line,
                        _ => 1.0 - self.party_line,
                    }
                } else {
                    0.5
                };
                cells.push(
                    if rng.gen::<f64>() < yes_prob {
                        "y"
                    } else {
                        "n"
                    }
                    .to_owned(),
                );
            }
            let refs: Vec<&str> = cells.iter().map(String::as_str).collect();
            table
                .push_textual(&refs, "?")
                .expect("row width matches schema");
        }
        (table, members)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_uci_shape() {
        let (table, parties) = VotesModel::default().seed(1).generate();
        assert_eq!(table.len(), 435);
        assert_eq!(table.num_attributes(), 16);
        assert_eq!(
            parties.iter().filter(|p| **p == Party::Democrat).count(),
            267
        );
        // Missing fraction close to configured.
        let mf = table.missing_fraction();
        assert!((mf - 0.056).abs() < 0.02, "missing fraction {mf}");
    }

    #[test]
    fn partisan_issues_polarize() {
        let (table, parties) = VotesModel::default().seed(2).generate();
        // On issue 0 (dem-favored), democrats should vote yes far more
        // often than republicans.
        let yes_code = table
            .schema()
            .attribute(rock_core::data::AttrId(0))
            .unwrap();
        let y = yes_code.code("y").unwrap();
        let mut dem_yes = 0f64;
        let mut dem_tot = 0f64;
        let mut rep_yes = 0f64;
        let mut rep_tot = 0f64;
        for (row, party) in table.rows().zip(&parties) {
            if let Some(v) = row[0] {
                match party {
                    Party::Democrat => {
                        dem_tot += 1.0;
                        if v == y {
                            dem_yes += 1.0;
                        }
                    }
                    Party::Republican => {
                        rep_tot += 1.0;
                        if v == y {
                            rep_yes += 1.0;
                        }
                    }
                }
            }
        }
        assert!(dem_yes / dem_tot > 0.75);
        assert!(rep_yes / rep_tot < 0.25);
    }

    #[test]
    fn bipartisan_issues_are_balanced() {
        let model = VotesModel {
            partisan_issues: 12,
            ..VotesModel::default()
        }
        .seed(3);
        let (table, _) = model.generate();
        // Issue 15 is bipartisan: overall yes rate near 0.5.
        let attr = table
            .schema()
            .attribute(rock_core::data::AttrId(15))
            .unwrap();
        let y = attr.code("y").unwrap();
        let mut yes = 0f64;
        let mut tot = 0f64;
        for row in table.rows() {
            if let Some(v) = row[15] {
                tot += 1.0;
                if v == y {
                    yes += 1.0;
                }
            }
        }
        assert!((yes / tot - 0.5).abs() < 0.08, "rate {}", yes / tot);
    }

    #[test]
    fn rows_are_shuffled() {
        let (_, parties) = VotesModel::default().seed(4).generate();
        // The first 20 rows should not be all democrats (they would be
        // without shuffling).
        let dems_up_front = parties[..20]
            .iter()
            .filter(|p| **p == Party::Democrat)
            .count();
        assert!(dems_up_front < 20);
    }

    #[test]
    fn deterministic_by_seed() {
        let (a, pa) = VotesModel::default().seed(7).generate();
        let (b, pb) = VotesModel::default().seed(7).generate();
        assert_eq!(pa, pb);
        assert_eq!(a.row(0), b.row(0));
        let (_, pc) = VotesModel::default().seed(8).generate();
        assert_ne!(pa, pc);
    }

    #[test]
    fn party_labels() {
        assert_eq!(Party::Democrat.label(), "democrat");
        assert_eq!(Party::Republican.label(), "republican");
    }
}
