//! # rock-datasets
//!
//! Dataset support for the ROCK reproduction:
//!
//! * [`csv`] / [`loader`] — a dependency-free reader for UCI-style
//!   categorical CSV files (missing values, label column anywhere);
//! * [`baskets`] — market-basket (one transaction per line) files;
//! * [`uci`] — descriptors for the datasets the paper evaluates on
//!   (Congressional Votes, Mushroom, …), loading the real files when they
//!   are present on disk;
//! * [`synthetic`] — deterministic generators calibrated to those
//!   datasets' statistical structure, used offline (votes-like,
//!   mushroom-like, market baskets, planted boolean blocks, mutual-fund
//!   sector series);
//! * [`timeseries`] — the paper's numeric-series → Up/Down categorical
//!   conversion;
//! * [`fault`] — deterministic fault injection (poisoned rows, truncated
//!   files, injected I/O failures on read and write) for the chaos suite;
//! * [`cache`] — the `rock-cache/v1` chunked binary dataset cache, the
//!   [`rock_core::stream::ChunkSource`] behind crash-safe out-of-core
//!   labeling.
//!
//! Every fallible entry point returns [`rock_core::RockError`], so the
//! CLI and tests handle one error type with one table of exit codes.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baskets;
pub mod cache;
pub mod csv;
pub mod fault;
pub mod loader;
pub mod synthetic;
pub mod timeseries;
pub mod uci;

pub use baskets::{load_baskets, parse_baskets};
pub use cache::{build_cache, CacheBuilder, DatasetCache};
pub use fault::FaultInjector;
pub use loader::{
    IngestMode, IngestReport, LabelPosition, LabeledTable, LoadConfig, QuarantinedRow,
};
pub use uci::UciDataset;
