//! # rock-datasets
//!
//! Dataset support for the ROCK reproduction:
//!
//! * [`csv`] / [`loader`] — a dependency-free reader for UCI-style
//!   categorical CSV files (missing values, label column anywhere);
//! * [`baskets`] — market-basket (one transaction per line) files;
//! * [`uci`] — descriptors for the datasets the paper evaluates on
//!   (Congressional Votes, Mushroom, …), loading the real files when they
//!   are present on disk;
//! * [`synthetic`] — deterministic generators calibrated to those
//!   datasets' statistical structure, used offline (votes-like,
//!   mushroom-like, market baskets, planted boolean blocks, mutual-fund
//!   sector series);
//! * [`timeseries`] — the paper's numeric-series → Up/Down categorical
//!   conversion;
//! * [`fault`] — deterministic fault injection (poisoned rows, truncated
//!   files, injected I/O failures) for the chaos suite.
//!
//! Every fallible entry point returns [`rock_core::RockError`], so the
//! CLI and tests handle one error type with one table of exit codes.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baskets;
pub mod csv;
pub mod fault;
pub mod loader;
pub mod synthetic;
pub mod timeseries;
pub mod uci;

pub use baskets::{load_baskets, parse_baskets};
pub use fault::FaultInjector;
pub use loader::{
    IngestMode, IngestReport, LabelPosition, LabeledTable, LoadConfig, QuarantinedRow,
};
pub use uci::UciDataset;
