//! # rock-datasets
//!
//! Dataset support for the ROCK reproduction:
//!
//! * [`csv`] / [`loader`] — a dependency-free reader for UCI-style
//!   categorical CSV files (missing values, label column anywhere);
//! * [`baskets`] — market-basket (one transaction per line) files;
//! * [`uci`] — descriptors for the datasets the paper evaluates on
//!   (Congressional Votes, Mushroom, …), loading the real files when they
//!   are present on disk;
//! * [`synthetic`] — deterministic generators calibrated to those
//!   datasets' statistical structure, used offline (votes-like,
//!   mushroom-like, market baskets, planted boolean blocks, mutual-fund
//!   sector series);
//! * [`timeseries`] — the paper's numeric-series → Up/Down categorical
//!   conversion.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baskets;
pub mod csv;
pub mod loader;
pub mod synthetic;
pub mod timeseries;
pub mod uci;

pub use baskets::{load_baskets, parse_baskets};
pub use loader::{LabelPosition, LabeledTable, LoadConfig, LoadError};
pub use uci::UciDataset;
