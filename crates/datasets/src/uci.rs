//! Descriptors for the UCI datasets used by the ROCK evaluation.
//!
//! The paper evaluates on the UCI Congressional Votes and Mushroom
//! datasets. The files are not redistributed here; if you download them
//! (e.g. `house-votes-84.data`, `agaricus-lepiota.data`) into a directory,
//! [`UciDataset::load`] parses them with the correct label position and
//! missing-value token. Offline, the calibrated synthetic generators in
//! [`crate::synthetic`] reproduce their statistical structure (see
//! `DESIGN.md`, *Substitutions*).

use std::path::{Path, PathBuf};

use rock_core::Result;

use crate::loader::{load_labeled, LabelPosition, LabeledTable, LoadConfig};

/// A known UCI categorical dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UciDataset {
    /// 1984 US Congressional Voting Records: 435 × 16 boolean (y/n) with
    /// missing values; classes {democrat, republican} (267/168).
    CongressionalVotes,
    /// Mushroom (Agaricus-Lepiota): 8124 × 22; classes {edible, poisonous}
    /// (4208/3916).
    Mushroom,
    /// Zoo: 101 × 16 mostly-boolean; 7 classes.
    Zoo,
    /// Tic-Tac-Toe endgames: 958 × 9; 2 classes.
    TicTacToe,
    /// Soybean (small): 47 × 35; 4 classes.
    SoybeanSmall,
}

impl UciDataset {
    /// Canonical UCI file name.
    pub fn file_name(&self) -> &'static str {
        match self {
            UciDataset::CongressionalVotes => "house-votes-84.data",
            UciDataset::Mushroom => "agaricus-lepiota.data",
            UciDataset::Zoo => "zoo.data",
            UciDataset::TicTacToe => "tic-tac-toe.data",
            UciDataset::SoybeanSmall => "soybean-small.data",
        }
    }

    /// Expected `(rows, feature columns, classes)` — used to sanity-check a
    /// downloaded file.
    pub fn expected_shape(&self) -> (usize, usize, usize) {
        match self {
            UciDataset::CongressionalVotes => (435, 16, 2),
            UciDataset::Mushroom => (8124, 22, 2),
            UciDataset::Zoo => (101, 16, 7),
            UciDataset::TicTacToe => (958, 9, 2),
            UciDataset::SoybeanSmall => (47, 35, 4),
        }
    }

    /// Parse configuration for the canonical file layout.
    pub fn load_config(&self) -> LoadConfig {
        let label = match self {
            // Votes and mushroom carry the class in column 0.
            UciDataset::CongressionalVotes | UciDataset::Mushroom => LabelPosition::First,
            UciDataset::Zoo => LabelPosition::Last,
            UciDataset::TicTacToe => LabelPosition::Last,
            UciDataset::SoybeanSmall => LabelPosition::Last,
        };
        // Zoo's first column is the animal *name* — an identifier, not a
        // feature.
        let ignore_columns = match self {
            UciDataset::Zoo => vec![0],
            _ => Vec::new(),
        };
        LoadConfig {
            label,
            ignore_columns,
            ..LoadConfig::default()
        }
    }

    /// Path of the dataset file under `dir`.
    pub fn path_in(&self, dir: &Path) -> PathBuf {
        dir.join(self.file_name())
    }

    /// Returns `true` if the dataset file exists under `dir`.
    pub fn available_in(&self, dir: &Path) -> bool {
        self.path_in(dir).is_file()
    }

    /// Loads the dataset from `dir`.
    ///
    /// # Errors
    /// Everything [`load_labeled`] can return ([`rock_core::RockError`]).
    pub fn load(&self, dir: &Path) -> Result<LabeledTable> {
        load_labeled(&self.path_in(dir), &self.load_config())
    }

    /// All known datasets.
    pub fn all() -> [UciDataset; 5] {
        [
            UciDataset::CongressionalVotes,
            UciDataset::Mushroom,
            UciDataset::Zoo,
            UciDataset::TicTacToe,
            UciDataset::SoybeanSmall,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_names_are_distinct() {
        let names: std::collections::HashSet<&str> =
            UciDataset::all().iter().map(|d| d.file_name()).collect();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn expected_shapes_match_uci_catalog() {
        assert_eq!(
            UciDataset::CongressionalVotes.expected_shape(),
            (435, 16, 2)
        );
        assert_eq!(UciDataset::Mushroom.expected_shape(), (8124, 22, 2));
    }

    #[test]
    fn availability_check_on_missing_dir() {
        let dir = Path::new("/definitely/not/here");
        assert!(!UciDataset::Mushroom.available_in(dir));
        assert!(UciDataset::Mushroom.load(dir).is_err());
    }

    #[test]
    fn load_roundtrip_from_temp_file() {
        let dir = std::env::temp_dir().join("rock-uci-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = UciDataset::CongressionalVotes.path_in(&dir);
        std::fs::write(
            &path,
            "republican,n,y,n,y,y,y,n,n,n,y,?,y,y,y,n,y\n\
             democrat,?,y,y,?,y,y,n,n,n,n,y,n,y,y,n,n\n",
        )
        .unwrap();
        let out = UciDataset::CongressionalVotes.load(&dir).unwrap();
        assert_eq!(out.table.len(), 2);
        assert_eq!(out.table.num_attributes(), 16);
        assert_eq!(out.labels[0], "republican");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn path_composition() {
        let p = UciDataset::Zoo.path_in(Path::new("/data"));
        assert_eq!(p, PathBuf::from("/data/zoo.data"));
    }
}
