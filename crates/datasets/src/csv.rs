//! A minimal CSV reader sufficient for UCI `.data` files.
//!
//! UCI categorical datasets (votes, mushroom, zoo, tic-tac-toe, …) are
//! plain comma-separated text without quoting or embedded separators, one
//! record per line, with `?` marking missing values. This parser handles
//! exactly that format — plus optional quoting with `"` since a few
//! mirrors quote string fields — with no external dependency. A UTF-8
//! byte-order mark is stripped, CRLF line endings are handled (via
//! [`str::lines`]), and blank or `#`-comment lines are skipped.
//!
//! Two parsing modes are offered: [`parse`] fails on the first malformed
//! row (strict), while [`parse_lenient`] keeps going and reports the rows
//! it had to reject so the loader can quarantine them.

use std::fmt;

use rock_core::RockError;

/// Errors from CSV parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// A quoted field was never closed.
    UnterminatedQuote {
        /// 1-based line number.
        line: usize,
    },
    /// A row had a different number of fields than the first row.
    RaggedRow {
        /// 1-based line number.
        line: usize,
        /// Fields found on this row.
        found: usize,
        /// Fields expected (from the first row).
        expected: usize,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::UnterminatedQuote { line } => {
                write!(f, "unterminated quote on line {line}")
            }
            CsvError::RaggedRow {
                line,
                found,
                expected,
            } => write!(f, "line {line} has {found} fields, expected {expected}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<CsvError> for RockError {
    fn from(e: CsvError) -> Self {
        match e {
            CsvError::UnterminatedQuote { line } => RockError::Csv {
                line,
                message: "unterminated quote".to_owned(),
            },
            CsvError::RaggedRow {
                line,
                found,
                expected,
            } => RockError::Csv {
                line,
                message: format!("{found} fields, expected {expected}"),
            },
        }
    }
}

/// Strips a leading UTF-8 byte-order mark, if present. UCI mirrors (and
/// files re-saved on Windows) sometimes carry one; it would otherwise be
/// glued onto the first field's value.
pub fn strip_bom(text: &str) -> &str {
    text.strip_prefix('\u{feff}').unwrap_or(text)
}

/// Whether a line carries no record: blank or a `#` comment.
fn skippable(line: &str) -> bool {
    let t = line.trim();
    t.is_empty() || t.starts_with('#')
}

/// Parses one line into fields. `delimiter` is usually `,`.
pub fn parse_line(line: &str, delimiter: char, line_no: usize) -> Result<Vec<String>, CsvError> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    loop {
        match chars.peek().copied() {
            Some('"') if field.is_empty() => {
                chars.next();
                let mut closed = false;
                while let Some(c) = chars.next() {
                    if c == '"' {
                        if chars.peek() == Some(&'"') {
                            chars.next();
                            field.push('"');
                        } else {
                            closed = true;
                            break;
                        }
                    } else {
                        field.push(c);
                    }
                }
                if !closed {
                    return Err(CsvError::UnterminatedQuote { line: line_no });
                }
            }
            Some(c) if c == delimiter => {
                chars.next();
                fields.push(std::mem::take(&mut field).trim().to_owned());
            }
            Some(c) => {
                chars.next();
                field.push(c);
            }
            None => {
                fields.push(std::mem::take(&mut field).trim().to_owned());
                break;
            }
        }
    }
    Ok(fields)
}

/// Parses full CSV text into rows of fields. Blank and `#`-comment lines
/// are skipped, a leading BOM is stripped, and all rows must have the
/// same arity as the first; the first malformed row aborts the parse.
pub fn parse(text: &str, delimiter: char) -> Result<Vec<Vec<String>>, CsvError> {
    let mut rows = Vec::new();
    let mut expected: Option<usize> = None;
    for (i, line) in strip_bom(text).lines().enumerate() {
        if skippable(line) {
            continue;
        }
        let fields = parse_line(line, delimiter, i + 1)?;
        if let Some(e) = expected {
            if fields.len() != e {
                return Err(CsvError::RaggedRow {
                    line: i + 1,
                    found: fields.len(),
                    expected: e,
                });
            }
        } else {
            expected = Some(fields.len());
        }
        rows.push(fields);
    }
    Ok(rows)
}

/// Outcome of [`parse_lenient`]: the rows that parsed cleanly and the
/// ones that had to be rejected, each tagged with its 1-based line number.
#[derive(Debug, Clone, Default)]
pub struct LenientParse {
    /// Well-formed rows, in file order.
    pub rows: Vec<(usize, Vec<String>)>,
    /// Rejected rows and why.
    pub rejected: Vec<(usize, CsvError)>,
}

/// Parses CSV text, setting malformed rows aside instead of failing.
///
/// Same conventions as [`parse`] (BOM strip, blank/`#` lines skipped) but
/// a ragged row or an unterminated quote lands in
/// [`LenientParse::rejected`] and parsing continues with the next line.
/// The expected arity is the *majority* field count among parseable rows
/// (earliest wins a tie), not the first row's — a corrupted first line
/// must cost one row, not the whole file. Never fails: a file of pure
/// garbage simply yields zero kept rows.
pub fn parse_lenient(text: &str, delimiter: char) -> LenientParse {
    let mut out = LenientParse::default();
    let mut parsed: Vec<(usize, Vec<String>)> = Vec::new();
    for (i, line) in strip_bom(text).lines().enumerate() {
        if skippable(line) {
            continue;
        }
        let line_no = i + 1;
        match parse_line(line, delimiter, line_no) {
            Err(e) => out.rejected.push((line_no, e)),
            Ok(fields) => parsed.push((line_no, fields)),
        }
    }
    // Majority vote on arity: count each field-width, keep the most common
    // (first-seen wins ties, so well-behaved files are unaffected).
    let mut tallies: Vec<(usize, usize)> = Vec::new();
    for (_, fields) in &parsed {
        match tallies.iter_mut().find(|(w, _)| *w == fields.len()) {
            Some((_, count)) => *count += 1,
            None => tallies.push((fields.len(), 1)),
        }
    }
    let mut expected: Option<usize> = None;
    let mut best = 0usize;
    for &(width, count) in &tallies {
        if count > best {
            best = count;
            expected = Some(width);
        }
    }
    for (line_no, fields) in parsed {
        match expected {
            Some(e) if fields.len() != e => out.rejected.push((
                line_no,
                CsvError::RaggedRow {
                    line: line_no,
                    found: fields.len(),
                    expected: e,
                },
            )),
            _ => out.rows.push((line_no, fields)),
        }
    }
    out.rejected.sort_unstable_by_key(|&(line, _)| line);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_rows() {
        let rows = parse("a,b,c\nx,y,z\n", ',').unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], vec!["a", "b", "c"]);
        assert_eq!(rows[1], vec!["x", "y", "z"]);
    }

    #[test]
    fn skips_blank_lines_and_trims() {
        let rows = parse("a , b\n\n  \nc,d\n", ',').unwrap();
        assert_eq!(rows, vec![vec!["a", "b"], vec!["c", "d"]]);
    }

    #[test]
    fn handles_missing_markers_verbatim() {
        let rows = parse("y,?,n\n", ',').unwrap();
        assert_eq!(rows[0], vec!["y", "?", "n"]);
    }

    #[test]
    fn handles_quoted_fields() {
        let rows = parse("\"a,b\",c\n", ',').unwrap();
        assert_eq!(rows[0], vec!["a,b", "c"]);
        let rows = parse("\"say \"\"hi\"\"\",x\n", ',').unwrap();
        assert_eq!(rows[0], vec!["say \"hi\"", "x"]);
    }

    #[test]
    fn rejects_unterminated_quote() {
        assert_eq!(
            parse("\"abc\n", ','),
            Err(CsvError::UnterminatedQuote { line: 1 })
        );
    }

    #[test]
    fn rejects_ragged_rows() {
        assert_eq!(
            parse("a,b\nc\n", ','),
            Err(CsvError::RaggedRow {
                line: 2,
                found: 1,
                expected: 2
            })
        );
    }

    #[test]
    fn supports_alternative_delimiters() {
        let rows = parse("a;b\nc;d\n", ';').unwrap();
        assert_eq!(rows[1], vec!["c", "d"]);
    }

    #[test]
    fn empty_fields_preserved() {
        let rows = parse("a,,c\n", ',').unwrap();
        assert_eq!(rows[0], vec!["a", "", "c"]);
    }

    #[test]
    fn single_column() {
        let rows = parse("a\nb\n", ',').unwrap();
        assert_eq!(rows, vec![vec!["a"], vec!["b"]]);
    }

    #[test]
    fn error_messages() {
        let e = CsvError::RaggedRow {
            line: 3,
            found: 2,
            expected: 5,
        };
        assert!(e.to_string().contains("line 3"));
        assert!(CsvError::UnterminatedQuote { line: 1 }
            .to_string()
            .contains("unterminated"));
    }

    #[test]
    fn crlf_line_endings() {
        let rows = parse("a,b\r\nc,d\r\n", ',').unwrap();
        assert_eq!(rows, vec![vec!["a", "b"], vec!["c", "d"]]);
        let lenient = parse_lenient("a,b\r\nc\r\nd,e\r\n", ',');
        assert_eq!(lenient.rows.len(), 2);
        assert_eq!(lenient.rejected.len(), 1);
    }

    #[test]
    fn utf8_bom_is_stripped() {
        let rows = parse("\u{feff}y,n\nn,y\n", ',').unwrap();
        assert_eq!(rows[0], vec!["y", "n"], "BOM must not stick to field 1");
        let lenient = parse_lenient("\u{feff}a,b\n", ',');
        assert_eq!(lenient.rows[0].1, vec!["a", "b"]);
    }

    #[test]
    fn trailing_delimiter_yields_empty_last_field() {
        // `a,b,` is three fields, the last empty — consistently in both
        // modes, and consistently ragged against two-field rows.
        let rows = parse("a,b,\nc,d,\n", ',').unwrap();
        assert_eq!(rows[0], vec!["a", "b", ""]);
        let lenient = parse_lenient("a,b\nc,d,\n", ',');
        assert_eq!(lenient.rows.len(), 1);
        assert_eq!(
            lenient.rejected,
            vec![(
                2,
                CsvError::RaggedRow {
                    line: 2,
                    found: 3,
                    expected: 2
                }
            )]
        );
    }

    #[test]
    fn comment_lines_are_skipped() {
        let text = "# header comment\na,b\n  # indented comment\nc,d\n";
        assert_eq!(parse(text, ',').unwrap().len(), 2);
        let lenient = parse_lenient(text, ',');
        assert_eq!(lenient.rows.len(), 2);
        assert!(lenient.rejected.is_empty());
    }

    #[test]
    fn lone_missing_marker_rows_parse() {
        // A row of only `?` markers is structurally fine; semantics are the
        // loader's business.
        let rows = parse("?,?\ny,n\n", ',').unwrap();
        assert_eq!(rows[0], vec!["?", "?"]);
        let lenient = parse_lenient("?\n", ',');
        assert_eq!(lenient.rows, vec![(1, vec!["?".to_owned()])]);
    }

    #[test]
    fn lenient_keeps_line_numbers_and_recovers() {
        let text = "a,b\n\"broken\nc\nd,e\n# note\nf,g,h\n";
        let out = parse_lenient(text, ',');
        let kept: Vec<usize> = out.rows.iter().map(|&(l, _)| l).collect();
        assert_eq!(kept, vec![1, 4]);
        let rejected: Vec<usize> = out.rejected.iter().map(|&(l, _)| l).collect();
        assert_eq!(rejected, vec![2, 3, 6]);
        assert!(matches!(
            out.rejected[0].1,
            CsvError::UnterminatedQuote { line: 2 }
        ));
    }

    #[test]
    fn lenient_on_pure_garbage_keeps_nothing() {
        let out = parse_lenient("\"x\n\"y\n", ',');
        assert!(out.rows.is_empty());
        assert_eq!(out.rejected.len(), 2);
    }

    #[test]
    fn csv_error_converts_to_rock_error() {
        let e: RockError = CsvError::UnterminatedQuote { line: 7 }.into();
        assert_eq!(
            e,
            RockError::Csv {
                line: 7,
                message: "unterminated quote".to_owned()
            }
        );
        let e: RockError = CsvError::RaggedRow {
            line: 3,
            found: 1,
            expected: 4,
        }
        .into();
        assert!(matches!(e, RockError::Csv { line: 3, .. }));
        assert_eq!(e.exit_code(), 4);
    }
}
