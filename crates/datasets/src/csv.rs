//! A minimal CSV reader sufficient for UCI `.data` files.
//!
//! UCI categorical datasets (votes, mushroom, zoo, tic-tac-toe, …) are
//! plain comma-separated text without quoting or embedded separators, one
//! record per line, with `?` marking missing values. This parser handles
//! exactly that format — plus optional quoting with `"` since a few
//! mirrors quote string fields — with no external dependency.

use std::fmt;

/// Errors from CSV parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// A quoted field was never closed.
    UnterminatedQuote {
        /// 1-based line number.
        line: usize,
    },
    /// A row had a different number of fields than the first row.
    RaggedRow {
        /// 1-based line number.
        line: usize,
        /// Fields found on this row.
        found: usize,
        /// Fields expected (from the first row).
        expected: usize,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::UnterminatedQuote { line } => {
                write!(f, "unterminated quote on line {line}")
            }
            CsvError::RaggedRow {
                line,
                found,
                expected,
            } => write!(f, "line {line} has {found} fields, expected {expected}"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Parses one line into fields. `delimiter` is usually `,`.
pub fn parse_line(line: &str, delimiter: char, line_no: usize) -> Result<Vec<String>, CsvError> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    loop {
        match chars.peek().copied() {
            Some('"') if field.is_empty() => {
                chars.next();
                let mut closed = false;
                while let Some(c) = chars.next() {
                    if c == '"' {
                        if chars.peek() == Some(&'"') {
                            chars.next();
                            field.push('"');
                        } else {
                            closed = true;
                            break;
                        }
                    } else {
                        field.push(c);
                    }
                }
                if !closed {
                    return Err(CsvError::UnterminatedQuote { line: line_no });
                }
            }
            Some(c) if c == delimiter => {
                chars.next();
                fields.push(std::mem::take(&mut field).trim().to_owned());
            }
            Some(c) => {
                chars.next();
                field.push(c);
            }
            None => {
                fields.push(std::mem::take(&mut field).trim().to_owned());
                break;
            }
        }
    }
    Ok(fields)
}

/// Parses full CSV text into rows of fields. Blank lines are skipped; all
/// rows must have the same arity as the first.
pub fn parse(text: &str, delimiter: char) -> Result<Vec<Vec<String>>, CsvError> {
    let mut rows = Vec::new();
    let mut expected: Option<usize> = None;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields = parse_line(line, delimiter, i + 1)?;
        if let Some(e) = expected {
            if fields.len() != e {
                return Err(CsvError::RaggedRow {
                    line: i + 1,
                    found: fields.len(),
                    expected: e,
                });
            }
        } else {
            expected = Some(fields.len());
        }
        rows.push(fields);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_rows() {
        let rows = parse("a,b,c\nx,y,z\n", ',').unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], vec!["a", "b", "c"]);
        assert_eq!(rows[1], vec!["x", "y", "z"]);
    }

    #[test]
    fn skips_blank_lines_and_trims() {
        let rows = parse("a , b\n\n  \nc,d\n", ',').unwrap();
        assert_eq!(rows, vec![vec!["a", "b"], vec!["c", "d"]]);
    }

    #[test]
    fn handles_missing_markers_verbatim() {
        let rows = parse("y,?,n\n", ',').unwrap();
        assert_eq!(rows[0], vec!["y", "?", "n"]);
    }

    #[test]
    fn handles_quoted_fields() {
        let rows = parse("\"a,b\",c\n", ',').unwrap();
        assert_eq!(rows[0], vec!["a,b", "c"]);
        let rows = parse("\"say \"\"hi\"\"\",x\n", ',').unwrap();
        assert_eq!(rows[0], vec!["say \"hi\"", "x"]);
    }

    #[test]
    fn rejects_unterminated_quote() {
        assert_eq!(
            parse("\"abc\n", ','),
            Err(CsvError::UnterminatedQuote { line: 1 })
        );
    }

    #[test]
    fn rejects_ragged_rows() {
        assert_eq!(
            parse("a,b\nc\n", ','),
            Err(CsvError::RaggedRow {
                line: 2,
                found: 1,
                expected: 2
            })
        );
    }

    #[test]
    fn supports_alternative_delimiters() {
        let rows = parse("a;b\nc;d\n", ';').unwrap();
        assert_eq!(rows[1], vec!["c", "d"]);
    }

    #[test]
    fn empty_fields_preserved() {
        let rows = parse("a,,c\n", ',').unwrap();
        assert_eq!(rows[0], vec!["a", "", "c"]);
    }

    #[test]
    fn single_column() {
        let rows = parse("a\nb\n", ',').unwrap();
        assert_eq!(rows, vec![vec!["a"], vec!["b"]]);
    }

    #[test]
    fn error_messages() {
        let e = CsvError::RaggedRow {
            line: 3,
            found: 2,
            expected: 5,
        };
        assert!(e.to_string().contains("line 3"));
        assert!(CsvError::UnterminatedQuote { line: 1 }
            .to_string()
            .contains("unterminated"));
    }
}
