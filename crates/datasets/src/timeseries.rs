//! Converting numeric time series to categorical transactions.
//!
//! The ROCK paper clusters US mutual funds by converting each fund's daily
//! NAV series into a categorical record of daily movements: for every
//! trading day the fund goes *Up*, *Down*, or (below a threshold) *Flat*.
//! Encoded as transactions, two funds share an item exactly when they move
//! the same way on the same day, so co-moving funds have high Jaccard
//! similarity.

use rock_core::data::{Transaction, TransactionSet};

/// Daily movement category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Movement {
    /// Return above `+threshold`.
    Up,
    /// Return below `−threshold`.
    Down,
    /// Return within `±threshold`.
    Flat,
}

/// Encoding configuration.
#[derive(Debug, Clone, Copy)]
pub struct UpDownConfig {
    /// Absolute return below which a day counts as Flat.
    pub flat_threshold: f64,
    /// Whether Flat days contribute an item (the paper effectively uses
    /// Up/Down only; including Flat makes quiet funds look similar).
    pub include_flat: bool,
}

impl Default for UpDownConfig {
    fn default() -> Self {
        UpDownConfig {
            flat_threshold: 0.0,
            include_flat: false,
        }
    }
}

/// Classifies one return.
pub fn classify(ret: f64, config: &UpDownConfig) -> Movement {
    if ret > config.flat_threshold {
        Movement::Up
    } else if ret < -config.flat_threshold {
        Movement::Down
    } else {
        Movement::Flat
    }
}

/// Items per day in the encoding (Up, Down, Flat).
const ITEMS_PER_DAY: u32 = 3;

/// Encodes a series of day-over-day *returns* as a transaction: day `d`
/// moving Up yields item `3d`, Down `3d+1`, Flat `3d+2` (if included).
pub fn returns_to_transaction(returns: &[f64], config: &UpDownConfig) -> Transaction {
    let items = returns
        .iter()
        .enumerate()
        .filter_map(|(d, &r)| match classify(r, config) {
            Movement::Up => Some(ITEMS_PER_DAY * d as u32),
            Movement::Down => Some(ITEMS_PER_DAY * d as u32 + 1),
            Movement::Flat => config.include_flat.then_some(ITEMS_PER_DAY * d as u32 + 2),
        })
        .collect::<Vec<u32>>();
    Transaction::from_sorted(items)
}

/// Converts a *level* (NAV) series to returns, then encodes.
pub fn levels_to_transaction(levels: &[f64], config: &UpDownConfig) -> Transaction {
    let returns: Vec<f64> = levels.windows(2).map(|w| w[1] - w[0]).collect();
    returns_to_transaction(&returns, config)
}

/// Encodes many return series over the same days into a [`TransactionSet`].
pub fn encode_returns(series: &[Vec<f64>], config: &UpDownConfig) -> TransactionSet {
    let days = series.iter().map(Vec::len).max().unwrap_or(0);
    let transactions = series
        .iter()
        .map(|s| returns_to_transaction(s, config))
        .collect();
    TransactionSet::new(transactions, (days as u32 * ITEMS_PER_DAY) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_with_threshold() {
        let cfg = UpDownConfig {
            flat_threshold: 0.5,
            include_flat: true,
        };
        assert_eq!(classify(0.7, &cfg), Movement::Up);
        assert_eq!(classify(-0.7, &cfg), Movement::Down);
        assert_eq!(classify(0.3, &cfg), Movement::Flat);
        assert_eq!(classify(-0.5, &cfg), Movement::Flat);
    }

    #[test]
    fn encode_returns_updown_only() {
        let t = returns_to_transaction(&[1.0, -1.0, 0.0], &UpDownConfig::default());
        // Day 0 up → 0; day 1 down → 4; day 2 flat (ret 0.0) skipped.
        assert_eq!(t.items(), &[0, 4]);
    }

    #[test]
    fn encode_with_flat_items() {
        let cfg = UpDownConfig {
            flat_threshold: 0.1,
            include_flat: true,
        };
        let t = returns_to_transaction(&[1.0, 0.05, -1.0], &cfg);
        assert_eq!(t.items(), &[0, 5, 7]);
    }

    #[test]
    fn levels_become_returns() {
        let t = levels_to_transaction(&[10.0, 11.0, 10.5, 10.5], &UpDownConfig::default());
        // Returns: +1 (up, item 0), −0.5 (down, item 4), 0 (flat, skipped).
        assert_eq!(t.items(), &[0, 4]);
    }

    #[test]
    fn co_moving_series_share_items() {
        let cfg = UpDownConfig::default();
        let a = returns_to_transaction(&[1.0, 1.0, -1.0, 1.0], &cfg);
        let b = returns_to_transaction(&[0.5, 2.0, -0.1, 0.2], &cfg);
        let c = returns_to_transaction(&[-1.0, -1.0, 1.0, -1.0], &cfg);
        assert_eq!(a.intersection_len(&b), 4);
        assert_eq!(a.intersection_len(&c), 0);
    }

    #[test]
    fn encode_set_universe() {
        let set = encode_returns(
            &[vec![1.0, -1.0], vec![-1.0, 1.0]],
            &UpDownConfig::default(),
        );
        assert_eq!(set.len(), 2);
        assert_eq!(set.universe(), 6);
        set.validate().unwrap();
    }

    #[test]
    fn empty_series() {
        let t = returns_to_transaction(&[], &UpDownConfig::default());
        assert!(t.is_empty());
        let set = encode_returns(&[], &UpDownConfig::default());
        assert!(set.is_empty());
    }
}
