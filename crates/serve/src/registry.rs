//! The multi-model registry: named, versioned snapshots behind an
//! atomic hot-swap.
//!
//! A production labeling tier serves *many* fitted models at once —
//! per-dataset variants, per-θ sweeps, k-modes-family baselines — and
//! swaps any of them with zero downtime. The registry is that
//! subsystem:
//!
//! ```text
//! Registry ──► name ──► ModelSlot ──► EpochSwap ──► Arc<ModelEntry>
//!   (BTreeMap, admin-locked)   (lock-free-ish read)   (snapshot +
//!                                                      version +
//!                                                      fingerprint)
//! ```
//!
//! * **Atomic swap.** Each [`ModelSlot`] holds its current entry in an
//!   [`EpochSwap`] — a hand-rolled, `unsafe`-free stand-in for an
//!   `ArcSwap`: two slots, an atomic active index, and an epoch counter.
//!   Readers clone the `Arc` out of the active slot (one uncontended
//!   mutex lock, never blocked by writers); writers fill the *inactive*
//!   slot and flip the index with a release store. A request that
//!   resolved the old entry keeps its `Arc` and finishes on the old
//!   model; every request resolved after the flip sees the new one.
//! * **Fail-closed activation.** [`Registry::install_text`] parses and
//!   validates the uploaded `rock-model/v1` text *before* touching the
//!   slot. A corrupt, truncated or version-mismatched snapshot is
//!   rejected with the prior model still serving; the slot is marked
//!   [`ModelState::Degraded`] and `rejected_swaps` bumped so the
//!   failure is visible in `/healthz` and `/metrics`.
//! * **Identity.** Entries carry the same content fingerprint the
//!   streaming checkpoint layer uses to refuse resuming against a
//!   different model ([`ModelSnapshot::fingerprint`]): two entries
//!   fingerprint equal iff their snapshots render byte-identically.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use rock_core::error::{Result, RockError};
use rock_core::snapshot::ModelSnapshot;
use rock_core::telemetry::trace::LatencyHistogram;

use crate::batch::Batcher;

/// The default model name: `POST /label` routes here.
pub const DEFAULT_MODEL: &str = "default";

/// Locks a mutex, recovering from poisoning (registry state is a map of
/// `Arc`s and counters — a panicked holder cannot leave it torn).
fn lock<'a, T>(mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

// ---------------------------------------------------------------- EpochSwap

/// A hand-rolled atomic `Arc` swap (no `unsafe`, no dependencies).
///
/// Two value slots and an atomic index: readers lock the *active* slot
/// just long enough to clone the `Arc`; writers fill the *inactive*
/// slot, flip the index with a release store, and bump the epoch.
/// Writer mutual exclusion is the caller's job (the registry serializes
/// admin operations); readers never contend with writers for the same
/// slot at swap time, so the read-side lock is effectively always
/// uncontended.
pub struct EpochSwap<T> {
    slot_a: Mutex<Option<Arc<T>>>,
    slot_b: Mutex<Option<Arc<T>>>,
    /// Index of the live slot (0 = a, 1 = b). Publication point.
    active: AtomicUsize,
    /// Monotonic swap count; bumps on every [`EpochSwap::swap`].
    epoch: AtomicU64,
}

impl<T> EpochSwap<T> {
    /// An empty swap cell (epoch 0, nothing installed).
    pub fn new(initial: Option<Arc<T>>) -> Self {
        EpochSwap {
            slot_a: Mutex::new(initial),
            slot_b: Mutex::new(None),
            active: AtomicUsize::new(0),
            epoch: AtomicU64::new(0),
        }
    }

    /// The current value (`None` when nothing is installed). In-flight
    /// holders of a previous `Arc` are unaffected by later swaps.
    pub fn load(&self) -> Option<Arc<T>> {
        let slot = if self.active.load(Ordering::Acquire) == 0 {
            &self.slot_a
        } else {
            &self.slot_b
        };
        lock(slot).clone()
    }

    /// Atomically publishes `next` (or clears with `None`), returning
    /// the new epoch. Callers must serialize writers externally.
    pub fn swap(&self, next: Option<Arc<T>>) -> u64 {
        let active = self.active.load(Ordering::Acquire);
        let (incoming, flipped) = if active == 0 {
            (&self.slot_b, 1)
        } else {
            (&self.slot_a, 0)
        };
        *lock(incoming) = next;
        self.active.store(flipped, Ordering::Release);
        // Tally: the release store above is the publication point.
        self.epoch.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// How many swaps this cell has seen.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }
}

// --------------------------------------------------------------- ModelEntry

/// One immutable installed model version. Requests pin the entry (an
/// `Arc` clone) at dispatch time, so a swap mid-request cannot change
/// which model labels it.
pub struct ModelEntry {
    snapshot: Arc<ModelSnapshot>,
    version: u64,
    fingerprint: u64,
}

impl ModelEntry {
    /// Wraps a validated snapshot as version `version`.
    pub fn new(snapshot: ModelSnapshot, version: u64) -> Self {
        let fingerprint = snapshot.fingerprint();
        ModelEntry {
            snapshot: Arc::new(snapshot),
            version,
            fingerprint,
        }
    }

    /// The fitted model.
    pub fn snapshot(&self) -> &ModelSnapshot {
        &self.snapshot
    }

    /// Monotonic per-name version (1 for the first install).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Content fingerprint (same mechanism as the streaming checkpoint
    /// layer's model identity check).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The fingerprint rendered the way every other subsystem renders
    /// it: 16 lowercase hex digits. Formatted from the cached value —
    /// this sits on the per-response header path, where re-hashing the
    /// snapshot would cost more than the labeling itself.
    pub fn fingerprint_hex(&self) -> String {
        format!("{:016x}", self.fingerprint)
    }
}

// --------------------------------------------------------------- ModelState

/// Health of one registry slot, reported by `/healthz`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelState {
    /// A model is installed and the last admin operation succeeded.
    Ready,
    /// A model is serving, but the *last* swap attempt was rejected —
    /// traffic is answered by the prior version.
    Degraded,
    /// Nothing installed (deleted, or never successfully loaded).
    Empty,
}

impl ModelState {
    /// Stable serialized name (`ready` / `degraded` / `empty`).
    pub fn name(self) -> &'static str {
        match self {
            ModelState::Ready => "ready",
            ModelState::Degraded => "degraded",
            ModelState::Empty => "empty",
        }
    }

    fn from_u8(v: u8) -> ModelState {
        match v {
            0 => ModelState::Ready,
            1 => ModelState::Degraded,
            _ => ModelState::Empty,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            ModelState::Ready => 0,
            ModelState::Degraded => 1,
            ModelState::Empty => 2,
        }
    }
}

// ---------------------------------------------------------- ModelCounters

/// Per-model monotonic request counters.
#[derive(Default)]
pub struct ModelCounters {
    /// Points labeled into a cluster by this model.
    pub labeled: AtomicU64,
    /// Points answered `{"cluster":null}` by this model.
    pub outlier: AtomicU64,
    /// Micro-batches executed against this model.
    pub batches: AtomicU64,
    /// Points that flowed through those batches.
    pub batch_points: AtomicU64,
}

impl ModelCounters {
    /// Bumps `counter` by `n` (a Relaxed tally).
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// A point-in-time `(labeled, outlier, batches, batch_points)` copy.
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.labeled.load(Ordering::Relaxed),
            self.outlier.load(Ordering::Relaxed),
            self.batches.load(Ordering::Relaxed),
            self.batch_points.load(Ordering::Relaxed),
        )
    }
}

// ------------------------------------------------------------------- Slot

/// One named mount point: the current entry behind an [`EpochSwap`],
/// version sequence, per-model counters, the model's micro-batching
/// queue and its batch-latency histogram.
pub struct ModelSlot {
    name: String,
    swap: EpochSwap<ModelEntry>,
    state: AtomicU8,
    version_seq: AtomicU64,
    swaps: AtomicU64,
    rejected_swaps: AtomicU64,
    counters: ModelCounters,
    batcher: Batcher,
    batch_hist: Mutex<LatencyHistogram>,
}

impl ModelSlot {
    fn new(name: &str) -> Self {
        ModelSlot {
            name: name.to_owned(),
            swap: EpochSwap::new(None),
            state: AtomicU8::new(ModelState::Empty.as_u8()),
            version_seq: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            rejected_swaps: AtomicU64::new(0),
            counters: ModelCounters::default(),
            batcher: Batcher::new(),
            batch_hist: Mutex::new(LatencyHistogram::new()),
        }
    }

    /// The slot's registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The currently active entry, if any.
    pub fn current(&self) -> Option<Arc<ModelEntry>> {
        self.swap.load()
    }

    /// The slot's health state.
    pub fn state(&self) -> ModelState {
        ModelState::from_u8(self.state.load(Ordering::Acquire))
    }

    /// Per-model request counters.
    pub fn counters(&self) -> &ModelCounters {
        &self.counters
    }

    /// The slot's micro-batching queue.
    pub fn batcher(&self) -> &Batcher {
        &self.batcher
    }

    /// Records one batch execution latency (nanoseconds).
    pub fn record_batch_ns(&self, ns: u64) {
        lock(&self.batch_hist).record(ns);
    }

    /// A copy of the batch-latency histogram.
    pub fn batch_hist(&self) -> LatencyHistogram {
        lock(&self.batch_hist).clone()
    }

    /// Successful swaps on this slot.
    pub fn swaps(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// Rejected swap attempts on this slot.
    pub fn rejected_swaps(&self) -> u64 {
        self.rejected_swaps.load(Ordering::Relaxed)
    }
}

// --------------------------------------------------------------- Registry

/// What [`Registry::install`] reports back to the admin plane.
pub struct InstallReport {
    /// The slot the model was mounted into.
    pub slot: Arc<ModelSlot>,
    /// The new entry (already live).
    pub entry: Arc<ModelEntry>,
    /// `true` when the name existed before this install.
    pub replaced: bool,
}

impl std::fmt::Debug for InstallReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InstallReport")
            .field("model", &self.slot.name())
            .field("version", &self.entry.version())
            .field("replaced", &self.replaced)
            .finish()
    }
}

/// A point-in-time health row for one model, in deterministic
/// (name-sorted) order from [`Registry::status`].
pub struct ModelStatus {
    /// Registry name.
    pub name: String,
    /// Slot health.
    pub state: ModelState,
    /// Active version (0 when empty).
    pub version: u64,
    /// Active fingerprint, hex (empty string when empty).
    pub fingerprint: String,
    /// Clusters in the active model (0 when empty).
    pub clusters: usize,
    /// Representatives in the active model (0 when empty).
    pub representatives: usize,
    /// Per-model `(labeled, outlier, batches, batch_points)`.
    pub counters: (u64, u64, u64, u64),
    /// Successful swaps on the slot.
    pub swaps: u64,
    /// Rejected swap attempts on the slot.
    pub rejected_swaps: u64,
}

/// The name/version-keyed model registry.
pub struct Registry {
    /// Directory of slots. Lookups hold this lock only long enough to
    /// clone an `Arc`; the hot path then reads through the slot's
    /// [`EpochSwap`]. `BTreeMap` keeps status iteration deterministic.
    slots: Mutex<BTreeMap<String, Arc<ModelSlot>>>,
    /// Serializes admin mutations (install/remove) so [`EpochSwap`]
    /// writers never race each other.
    admin: Mutex<()>,
    swaps: AtomicU64,
    rejected_swaps: AtomicU64,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry {
            slots: Mutex::new(BTreeMap::new()),
            admin: Mutex::new(()),
            swaps: AtomicU64::new(0),
            rejected_swaps: AtomicU64::new(0),
        }
    }

    /// Validates a registry model name: 1–64 chars from
    /// `[A-Za-z0-9._-]`, so names embed cleanly in URL paths, JSON and
    /// trace payloads.
    pub fn valid_name(name: &str) -> bool {
        !name.is_empty()
            && name.len() <= 64
            && name
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
    }

    fn slot_or_insert(&self, name: &str) -> (Arc<ModelSlot>, bool) {
        let mut slots = lock(&self.slots);
        match slots.get(name) {
            Some(slot) => (Arc::clone(slot), true),
            None => {
                let slot = Arc::new(ModelSlot::new(name));
                slots.insert(name.to_owned(), Arc::clone(&slot));
                (slot, false)
            }
        }
    }

    /// Installs (or hot-swaps) an already-validated snapshot under
    /// `name`. The swap is atomic: requests resolve either the old or
    /// the new entry, never a torn state, and in-flight requests finish
    /// on whichever entry they pinned at dispatch.
    ///
    /// # Errors
    /// [`RockError::SnapshotInvalid`] when `name` is not a valid
    /// registry name.
    pub fn install(&self, name: &str, snapshot: ModelSnapshot) -> Result<InstallReport> {
        if !Self::valid_name(name) {
            return Err(RockError::SnapshotInvalid {
                message: format!("invalid model name {name:?} (1-64 chars of [A-Za-z0-9._-])"),
            });
        }
        let _admin = lock(&self.admin);
        let (slot, existed) = self.slot_or_insert(name);
        let replaced = existed && slot.current().is_some();
        let version = slot.version_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let entry = Arc::new(ModelEntry::new(snapshot, version));
        slot.swap.swap(Some(Arc::clone(&entry)));
        slot.state
            .store(ModelState::Ready.as_u8(), Ordering::Release);
        slot.swaps.fetch_add(1, Ordering::Relaxed);
        self.swaps.fetch_add(1, Ordering::Relaxed);
        Ok(InstallReport {
            slot,
            entry,
            replaced,
        })
    }

    /// Parses, validates and installs `rock-model/v1` text under
    /// `name` — the admin-plane upload path. Validation happens
    /// *before* the swap: on any parse, checksum, version or semantic
    /// failure the previous model keeps serving untouched, the slot
    /// (when it exists) is marked [`ModelState::Degraded`], and
    /// `rejected_swaps` is bumped.
    ///
    /// # Errors
    /// The snapshot error classes of [`ModelSnapshot::parse`], plus
    /// [`RockError::SnapshotInvalid`] for a bad name.
    pub fn install_text(&self, name: &str, text: &str) -> Result<InstallReport> {
        match ModelSnapshot::parse(text) {
            Ok(snapshot) => self.install(name, snapshot),
            Err(error) => {
                self.reject_foreign(name);
                Err(error)
            }
        }
    }

    /// Records a rejected activation attempt against `name` — the same
    /// bookkeeping a failed [`Registry::install_text`] performs, for
    /// failures detected before the snapshot parser even runs (e.g. a
    /// non-utf-8 upload body). The prior model keeps serving; a serving
    /// slot is marked [`ModelState::Degraded`].
    pub fn reject_foreign(&self, name: &str) {
        self.rejected_swaps.fetch_add(1, Ordering::Relaxed);
        if let Some(slot) = self.slot(name) {
            slot.rejected_swaps.fetch_add(1, Ordering::Relaxed);
            if slot.current().is_some() {
                slot.state
                    .store(ModelState::Degraded.as_u8(), Ordering::Release);
            }
        }
    }

    /// Unmounts `name`, returning the version that was serving (if
    /// any). In-flight requests holding the entry finish normally; new
    /// lookups see an empty registry slot.
    pub fn remove(&self, name: &str) -> Option<u64> {
        let _admin = lock(&self.admin);
        let slot = {
            let mut slots = lock(&self.slots);
            slots.remove(name)?
        };
        let was = slot.current().map(|e| e.version());
        slot.swap.swap(None);
        slot.state
            .store(ModelState::Empty.as_u8(), Ordering::Release);
        was
    }

    /// The slot registered under `name`, if any.
    pub fn slot(&self, name: &str) -> Option<Arc<ModelSlot>> {
        lock(&self.slots).get(name).map(Arc::clone)
    }

    /// Every registered slot, in deterministic (name-sorted) order —
    /// the iteration surface for metrics rendering and shutdown.
    pub fn slots(&self) -> Vec<Arc<ModelSlot>> {
        lock(&self.slots).values().map(Arc::clone).collect()
    }

    /// Resolves `name` to `(slot, active entry)` — the dispatch-time
    /// pin for a labeling request.
    pub fn resolve(&self, name: &str) -> Option<(Arc<ModelSlot>, Arc<ModelEntry>)> {
        let slot = self.slot(name)?;
        let entry = slot.current()?;
        Some((slot, entry))
    }

    /// Number of slots currently serving a model.
    pub fn models_loaded(&self) -> u64 {
        let slots = lock(&self.slots);
        let mut loaded = 0u64;
        for slot in slots.values() {
            if slot.current().is_some() {
                loaded += 1;
            }
        }
        loaded
    }

    /// Total successful swaps across all slots.
    pub fn swaps(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// Total rejected swap attempts across all slots.
    pub fn rejected_swaps(&self) -> u64 {
        self.rejected_swaps.load(Ordering::Relaxed)
    }

    /// A deterministic (name-sorted) health row per registered model.
    pub fn status(&self) -> Vec<ModelStatus> {
        let slots: Vec<Arc<ModelSlot>> = lock(&self.slots).values().map(Arc::clone).collect();
        slots
            .iter()
            .map(|slot| {
                let entry = slot.current();
                ModelStatus {
                    name: slot.name().to_owned(),
                    state: slot.state(),
                    version: entry.as_ref().map_or(0, |e| e.version()),
                    fingerprint: entry
                        .as_ref()
                        .map_or_else(String::new, |e| e.fingerprint_hex()),
                    clusters: entry.as_ref().map_or(0, |e| e.snapshot().num_clusters()),
                    representatives: entry
                        .as_ref()
                        .map_or(0, |e| e.snapshot().representatives().total()),
                    counters: slot.counters().snapshot(),
                    swaps: slot.swaps(),
                    rejected_swaps: slot.rejected_swaps(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_core::labeling::Representatives;
    use rock_core::prelude::Transaction;
    use rock_core::snapshot::{OutlierPolicy, SimilarityKind};

    fn snapshot(first: [u32; 3], second: [u32; 3]) -> ModelSnapshot {
        let reps = Representatives::from_sets(vec![
            vec![Transaction::new(first)],
            vec![Transaction::new(second)],
        ]);
        ModelSnapshot::new(
            0.5,
            1.0,
            SimilarityKind::Jaccard,
            OutlierPolicy::Mark,
            6,
            None,
            reps,
        )
        .unwrap()
    }

    fn model_a() -> ModelSnapshot {
        snapshot([0, 1, 2], [3, 4, 5])
    }

    fn model_b() -> ModelSnapshot {
        snapshot([3, 4, 5], [0, 1, 2])
    }

    #[test]
    fn epoch_swap_publishes_atomically_and_keeps_old_arcs_alive() {
        let cell = EpochSwap::new(Some(Arc::new(1u64)));
        assert_eq!(cell.epoch(), 0);
        let old = cell.load().unwrap();
        assert_eq!(cell.swap(Some(Arc::new(2u64))), 1);
        assert_eq!(*cell.load().unwrap(), 2);
        // The pinned Arc still reads the old value.
        assert_eq!(*old, 1);
        assert_eq!(cell.swap(None), 2);
        assert!(cell.load().is_none());
        assert_eq!(cell.epoch(), 2);
    }

    #[test]
    fn epoch_swap_concurrent_readers_always_see_a_whole_value() {
        let cell = Arc::new(EpochSwap::new(Some(Arc::new((7u64, 7u64)))));
        std::thread::scope(|scope| {
            let writer = {
                let cell = Arc::clone(&cell);
                scope.spawn(move || {
                    for i in 0..2000u64 {
                        cell.swap(Some(Arc::new((i, i))));
                    }
                })
            };
            for _ in 0..4 {
                let cell = Arc::clone(&cell);
                scope.spawn(move || {
                    for _ in 0..2000 {
                        let v = cell.load().expect("never cleared");
                        assert_eq!(v.0, v.1, "torn read");
                    }
                });
            }
            writer.join().unwrap();
        });
        assert_eq!(cell.epoch(), 2000);
    }

    #[test]
    fn install_resolve_and_versioning() {
        let reg = Registry::new();
        let first = reg.install("default", model_a()).unwrap();
        assert!(!first.replaced);
        assert_eq!(first.entry.version(), 1);
        let (slot, entry) = reg.resolve("default").unwrap();
        assert_eq!(entry.version(), 1);
        assert_eq!(slot.state(), ModelState::Ready);
        assert_eq!(
            entry.snapshot().label(&Transaction::new([0, 1, 2])),
            Some(0)
        );

        let second = reg.install("default", model_b()).unwrap();
        assert!(second.replaced);
        assert_eq!(second.entry.version(), 2);
        let (_, entry2) = reg.resolve("default").unwrap();
        assert_eq!(
            entry2.snapshot().label(&Transaction::new([0, 1, 2])),
            Some(1)
        );
        // The pinned v1 entry still labels with the old model.
        assert_eq!(
            entry.snapshot().label(&Transaction::new([0, 1, 2])),
            Some(0)
        );
        assert_eq!(reg.swaps(), 2);
        assert_eq!(reg.models_loaded(), 1);
    }

    #[test]
    fn corrupt_upload_is_rejected_with_old_model_serving() {
        let reg = Registry::new();
        reg.install("default", model_a()).unwrap();
        let good = model_b().render();
        let corrupt = good.replace("similarity jaccard", "similarity jaccarD");
        let err = reg.install_text("default", &corrupt).unwrap_err();
        assert!(matches!(err, RockError::SnapshotChecksum { .. }));
        // Old model untouched, slot degraded, rejection counted.
        let (slot, entry) = reg.resolve("default").unwrap();
        assert_eq!(entry.version(), 1);
        assert_eq!(
            entry.snapshot().label(&Transaction::new([0, 1, 2])),
            Some(0)
        );
        assert_eq!(slot.state(), ModelState::Degraded);
        assert_eq!(reg.rejected_swaps(), 1);
        assert_eq!(slot.rejected_swaps(), 1);
        // A later good install returns to ready.
        reg.install_text("default", &good).unwrap();
        assert_eq!(reg.slot("default").unwrap().state(), ModelState::Ready);
    }

    #[test]
    fn remove_unmounts_but_in_flight_entries_survive() {
        let reg = Registry::new();
        reg.install("default", model_a()).unwrap();
        let (_, pinned) = reg.resolve("default").unwrap();
        assert_eq!(reg.remove("default"), Some(1));
        assert!(reg.resolve("default").is_none());
        assert_eq!(reg.models_loaded(), 0);
        // The pinned entry still labels.
        assert_eq!(
            pinned.snapshot().label(&Transaction::new([3, 4, 5])),
            Some(1)
        );
        assert_eq!(reg.remove("default"), None);
    }

    #[test]
    fn status_rows_are_name_sorted_and_complete() {
        let reg = Registry::new();
        reg.install("zeta", model_a()).unwrap();
        reg.install("alpha", model_b()).unwrap();
        let rows = reg.status();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "alpha");
        assert_eq!(rows[1].name, "zeta");
        assert_eq!(rows[0].version, 1);
        assert_eq!(rows[0].clusters, 2);
        assert_eq!(rows[0].fingerprint.len(), 16);
        assert_eq!(rows[0].state, ModelState::Ready);
    }

    #[test]
    fn name_validation() {
        assert!(Registry::valid_name("default"));
        assert!(Registry::valid_name("votes.v2-test_A"));
        assert!(!Registry::valid_name(""));
        assert!(!Registry::valid_name("a/b"));
        assert!(!Registry::valid_name("a b"));
        assert!(!Registry::valid_name(&"x".repeat(65)));
        let reg = Registry::new();
        assert!(matches!(
            reg.install("bad name", model_a()),
            Err(RockError::SnapshotInvalid { .. })
        ));
    }

    #[test]
    fn concurrent_swap_and_resolve_yield_whole_models() {
        let reg = Arc::new(Registry::new());
        reg.install("default", model_a()).unwrap();
        let probe = Transaction::new([0, 1, 2]);
        std::thread::scope(|scope| {
            let swapper = {
                let reg = Arc::clone(&reg);
                scope.spawn(move || {
                    for i in 0..500 {
                        let snap = if i % 2 == 0 { model_b() } else { model_a() };
                        reg.install("default", snap).unwrap();
                    }
                })
            };
            for _ in 0..4 {
                let reg = Arc::clone(&reg);
                let probe = probe.clone();
                scope.spawn(move || {
                    for _ in 0..500 {
                        let (_, entry) = reg.resolve("default").expect("always mounted");
                        // Each entry is internally consistent: its label
                        // matches its own fingerprint's model.
                        let label = entry.snapshot().label(&probe).expect("probe labels");
                        let expected = if entry.fingerprint() == model_a().fingerprint() {
                            0
                        } else {
                            1
                        };
                        assert_eq!(label, expected);
                    }
                });
            }
            swapper.join().unwrap();
        });
        assert_eq!(reg.swaps(), 501);
    }
}
