//! `rock-serve` — serve fitted ROCK model snapshots over HTTP.
//!
//! ```text
//! rock-cluster --input data.csv --k 8 --theta 0.7 --save-model m.rockmodel
//! rock-serve --model m.rockmodel --addr 127.0.0.1:7700
//! curl -s http://127.0.0.1:7700/label -d '{"record":["a","b","c"]}'
//! ```
//!
//! `--model` is repeatable and takes `NAME=PATH` (a bare `PATH` mounts
//! as `default`), so one process can serve many models:
//!
//! ```text
//! rock-serve --model votes.rockmodel --model mushroom=m2.rockmodel
//! curl -s http://127.0.0.1:7700/models/mushroom/label -d '{"items":[0,3]}'
//! ```
//!
//! More models can be uploaded (or hot-swapped, atomically) at runtime
//! through `POST /admin/models/{name}` with the `rock-model/v1` text as
//! the request body.
//!
//! The server runs until **stdin closes** (ctrl-D, or the supervisor
//! closing the pipe) — the dependency-free stand-in for a SIGTERM
//! handler, which would require `unsafe` signal code the workspace
//! forbids. On shutdown it drains in-flight requests and flushes the
//! final `rock-serve-metrics/v1` document to `--metrics` (or stderr).
//!
//! Exit codes match `rock-cluster`: 0 ok, 2 usage, 3 I/O, 4 malformed
//! snapshot, 5 invalid configuration.

use std::io::Read;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use rock_core::snapshot::ModelSnapshot;
use rock_serve::registry::{Registry, DEFAULT_MODEL};
use rock_serve::server::{flush_metrics, ServeConfig, Server};

/// Parsed command line.
#[derive(Debug)]
struct Options {
    /// `(registry name, snapshot path)` mounts, in flag order.
    models: Vec<(String, PathBuf)>,
    metrics: Option<PathBuf>,
    config: ServeConfig,
}

const USAGE: &str = "\
usage: rock-serve --model [NAME=]<path> [options]

  --model [NAME=]<path> rock-model/v1 snapshot to serve (repeatable;
                        bare paths mount as \"default\"; required)
  --addr <host:port>    bind address            [default 127.0.0.1:7700]
  --threads <n>         worker threads, 0 = one per CPU  [default 4]
  --queue <n>           accept-queue capacity   [default 64]
  --accept-shards <n>   acceptor threads (1-8)  [default 2]
  --deadline-ms <n>     per-request deadline    [default 1000]
  --max-body <bytes>    request body limit      [default 1048576]
  --admin-max-body <bytes>
                        /admin/ body limit (snapshot uploads)
                        [default 67108864]
  --batch-max <n>       micro-batch point cap   [default 256]
  --batch-wait-us <n>   micro-batch max wait    [default 200]
  --metrics <path>      write final metrics JSON here (default: stderr)
  --trace <path>        write a rock-trace/v1 NDJSON event stream here
                        (serve.request/serve.batch/serve.swap spans;
                        analyze with rock-trace)
  --slow-ms <n>         flag requests slower than this in the trace
                        [default 100]

The server shuts down gracefully when stdin reaches EOF.";

/// Splits a `--model` value into `(name, path)`; bare paths mount as
/// the default model. The name is validated here so a typo fails at
/// startup, not at first request.
fn parse_model_mount(value: &str) -> Result<(String, PathBuf), String> {
    let (name, path) = match value.split_once('=') {
        Some((name, path)) => (name.to_owned(), path),
        None => (DEFAULT_MODEL.to_owned(), value),
    };
    if !Registry::valid_name(&name) {
        return Err(format!(
            "invalid model name {name:?} in --model (1-64 chars of [A-Za-z0-9._-])\n{USAGE}"
        ));
    }
    if path.is_empty() {
        return Err(format!("--model {value:?} has an empty path\n{USAGE}"));
    }
    Ok((name, PathBuf::from(path)))
}

fn parse_args<I: Iterator<Item = String>>(mut args: I) -> Result<Options, String> {
    let mut models: Vec<(String, PathBuf)> = Vec::new();
    let mut metrics: Option<PathBuf> = None;
    let mut config = ServeConfig {
        addr: "127.0.0.1:7700".into(),
        ..ServeConfig::default()
    };
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--model" => {
                let mount = parse_model_mount(&value("--model")?)?;
                if models.iter().any(|(name, _)| *name == mount.0) {
                    return Err(format!("duplicate --model name {:?}\n{USAGE}", mount.0));
                }
                models.push(mount);
            }
            "--addr" => config.addr = value("--addr")?,
            "--threads" => {
                config.threads = value("--threads")?
                    .parse()
                    .map_err(|_| format!("--threads expects an integer\n{USAGE}"))?;
            }
            "--queue" => {
                config.queue_capacity = value("--queue")?
                    .parse()
                    .map_err(|_| format!("--queue expects an integer\n{USAGE}"))?;
            }
            "--accept-shards" => {
                config.accept_shards = value("--accept-shards")?
                    .parse()
                    .map_err(|_| format!("--accept-shards expects an integer\n{USAGE}"))?;
            }
            "--deadline-ms" => {
                let ms: u64 = value("--deadline-ms")?
                    .parse()
                    .map_err(|_| format!("--deadline-ms expects an integer\n{USAGE}"))?;
                config.deadline = Duration::from_millis(ms);
            }
            "--max-body" => {
                config.max_body = value("--max-body")?
                    .parse()
                    .map_err(|_| format!("--max-body expects an integer\n{USAGE}"))?;
            }
            "--admin-max-body" => {
                config.admin_max_body = value("--admin-max-body")?
                    .parse()
                    .map_err(|_| format!("--admin-max-body expects an integer\n{USAGE}"))?;
            }
            "--batch-max" => {
                config.batch_max = value("--batch-max")?
                    .parse()
                    .map_err(|_| format!("--batch-max expects an integer\n{USAGE}"))?;
            }
            "--batch-wait-us" => {
                let us: u64 = value("--batch-wait-us")?
                    .parse()
                    .map_err(|_| format!("--batch-wait-us expects an integer\n{USAGE}"))?;
                config.batch_wait = Duration::from_micros(us);
            }
            "--metrics" => metrics = Some(PathBuf::from(value("--metrics")?)),
            "--trace" => config.trace = Some(PathBuf::from(value("--trace")?)),
            "--slow-ms" => {
                let ms: u64 = value("--slow-ms")?
                    .parse()
                    .map_err(|_| format!("--slow-ms expects an integer\n{USAGE}"))?;
                config.slow_request = Duration::from_millis(ms);
            }
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if models.is_empty() {
        return Err(format!("--model is required\n{USAGE}"));
    }
    Ok(Options {
        models,
        metrics,
        config,
    })
}

fn run(opts: &Options) -> rock_core::Result<()> {
    let registry = Arc::new(Registry::new());
    for (name, path) in &opts.models {
        let snapshot = ModelSnapshot::load(path)?;
        eprintln!(
            "rock-serve: mounted {name} from {} ({} clusters, {} representatives, theta {})",
            path.display(),
            snapshot.num_clusters(),
            snapshot.representatives().total(),
            snapshot.theta(),
        );
        registry.install(name, snapshot)?;
    }
    let handle = Server::start_with_registry(registry, opts.config.clone())?;
    eprintln!("rock-serve: listening on {}", handle.addr());
    eprintln!("rock-serve: close stdin (ctrl-D) to shut down");

    // Block until stdin closes; every read is discarded. This is the
    // shutdown signal — see the module docs.
    let mut sink = [0u8; 4096];
    let mut stdin = std::io::stdin().lock();
    loop {
        match stdin.read(&mut sink) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }

    eprintln!("rock-serve: stdin closed, draining");
    let final_metrics = handle.shutdown();
    flush_metrics(&final_metrics, opts.metrics.as_deref())?;
    eprintln!("rock-serve: bye");
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        parse_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn requires_model() {
        assert!(parse(&[]).unwrap_err().contains("--model is required"));
    }

    #[test]
    fn parses_all_flags() {
        let o = parse(&[
            "--model",
            "m.rockmodel",
            "--model",
            "votes=v.rockmodel",
            "--addr",
            "0.0.0.0:9000",
            "--threads",
            "8",
            "--queue",
            "128",
            "--accept-shards",
            "4",
            "--deadline-ms",
            "250",
            "--max-body",
            "4096",
            "--admin-max-body",
            "8192",
            "--batch-max",
            "512",
            "--batch-wait-us",
            "50",
            "--metrics",
            "serve.json",
            "--trace",
            "serve.trace",
            "--slow-ms",
            "40",
        ])
        .unwrap();
        assert_eq!(
            o.models,
            vec![
                (DEFAULT_MODEL.to_owned(), PathBuf::from("m.rockmodel")),
                ("votes".to_owned(), PathBuf::from("v.rockmodel")),
            ]
        );
        assert_eq!(o.config.addr, "0.0.0.0:9000");
        assert_eq!(o.config.threads, 8);
        assert_eq!(o.config.queue_capacity, 128);
        assert_eq!(o.config.accept_shards, 4);
        assert_eq!(o.config.deadline, Duration::from_millis(250));
        assert_eq!(o.config.max_body, 4096);
        assert_eq!(o.config.admin_max_body, 8192);
        assert_eq!(o.config.batch_max, 512);
        assert_eq!(o.config.batch_wait, Duration::from_micros(50));
        assert_eq!(o.metrics, Some(PathBuf::from("serve.json")));
        assert_eq!(o.config.trace, Some(PathBuf::from("serve.trace")));
        assert_eq!(o.config.slow_request, Duration::from_millis(40));
    }

    #[test]
    fn model_mounts_validate_names_and_reject_duplicates() {
        assert!(parse(&["--model", "bad name=m.rockmodel"])
            .unwrap_err()
            .contains("invalid model name"));
        assert!(parse(&["--model", "votes="])
            .unwrap_err()
            .contains("empty path"));
        assert!(parse(&["--model", "a.rockmodel", "--model", "b.rockmodel"])
            .unwrap_err()
            .contains("duplicate --model name"));
        // NAME=PATH with '=' inside the path splits on the first '='.
        let o = parse(&["--model", "m=a=b.rockmodel"]).unwrap();
        assert_eq!(
            o.models,
            vec![("m".to_owned(), PathBuf::from("a=b.rockmodel"))]
        );
    }

    #[test]
    fn rejects_unknown_and_unparsable_flags() {
        assert!(parse(&["--model", "m", "--wat"]).is_err());
        assert!(parse(&["--model", "m", "--threads", "many"]).is_err());
        assert!(parse(&["--model"]).is_err());
    }

    #[test]
    fn missing_snapshot_maps_to_io_error() {
        let opts = parse(&["--model", "/nonexistent/void.rockmodel"]).unwrap();
        let err = run(&opts).unwrap_err();
        assert_eq!(err.exit_code(), 3);
    }
}
