//! `rock-serve` — serve a fitted ROCK model snapshot over HTTP.
//!
//! ```text
//! rock-cluster --input data.csv --k 8 --theta 0.7 --save-model m.rockmodel
//! rock-serve --model m.rockmodel --addr 127.0.0.1:7700
//! curl -s http://127.0.0.1:7700/label -d '{"record":["a","b","c"]}'
//! ```
//!
//! The server runs until **stdin closes** (ctrl-D, or the supervisor
//! closing the pipe) — the dependency-free stand-in for a SIGTERM
//! handler, which would require `unsafe` signal code the workspace
//! forbids. On shutdown it drains in-flight requests and flushes the
//! final `rock-serve-metrics/v1` document to `--metrics` (or stderr).
//!
//! Exit codes match `rock-cluster`: 0 ok, 2 usage, 3 I/O, 4 malformed
//! snapshot, 5 invalid configuration.

use std::io::Read;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use rock_core::snapshot::ModelSnapshot;
use rock_serve::server::{flush_metrics, ServeConfig, Server};

/// Parsed command line.
#[derive(Debug)]
struct Options {
    model: PathBuf,
    metrics: Option<PathBuf>,
    config: ServeConfig,
}

const USAGE: &str = "\
usage: rock-serve --model <path> [options]

  --model <path>        rock-model/v1 snapshot to serve (required)
  --addr <host:port>    bind address            [default 127.0.0.1:7700]
  --threads <n>         worker threads, 0 = one per CPU  [default 4]
  --queue <n>           accept-queue capacity   [default 64]
  --deadline-ms <n>     per-request deadline    [default 1000]
  --max-body <bytes>    request body limit      [default 1048576]
  --metrics <path>      write final metrics JSON here (default: stderr)
  --trace <path>        write a rock-trace/v1 NDJSON event stream here
                        (one serve.request span per request; analyze
                        with rock-trace)
  --slow-ms <n>         flag requests slower than this in the trace
                        [default 100]

The server shuts down gracefully when stdin reaches EOF.";

fn parse_args<I: Iterator<Item = String>>(mut args: I) -> Result<Options, String> {
    let mut model: Option<PathBuf> = None;
    let mut metrics: Option<PathBuf> = None;
    let mut config = ServeConfig {
        addr: "127.0.0.1:7700".into(),
        ..ServeConfig::default()
    };
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--model" => model = Some(PathBuf::from(value("--model")?)),
            "--addr" => config.addr = value("--addr")?,
            "--threads" => {
                config.threads = value("--threads")?
                    .parse()
                    .map_err(|_| format!("--threads expects an integer\n{USAGE}"))?;
            }
            "--queue" => {
                config.queue_capacity = value("--queue")?
                    .parse()
                    .map_err(|_| format!("--queue expects an integer\n{USAGE}"))?;
            }
            "--deadline-ms" => {
                let ms: u64 = value("--deadline-ms")?
                    .parse()
                    .map_err(|_| format!("--deadline-ms expects an integer\n{USAGE}"))?;
                config.deadline = Duration::from_millis(ms);
            }
            "--max-body" => {
                config.max_body = value("--max-body")?
                    .parse()
                    .map_err(|_| format!("--max-body expects an integer\n{USAGE}"))?;
            }
            "--metrics" => metrics = Some(PathBuf::from(value("--metrics")?)),
            "--trace" => config.trace = Some(PathBuf::from(value("--trace")?)),
            "--slow-ms" => {
                let ms: u64 = value("--slow-ms")?
                    .parse()
                    .map_err(|_| format!("--slow-ms expects an integer\n{USAGE}"))?;
                config.slow_request = Duration::from_millis(ms);
            }
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    let model = model.ok_or_else(|| format!("--model is required\n{USAGE}"))?;
    Ok(Options {
        model,
        metrics,
        config,
    })
}

fn run(opts: &Options) -> rock_core::Result<()> {
    let snapshot = ModelSnapshot::load(&opts.model)?;
    eprintln!(
        "rock-serve: loaded {} ({} clusters, {} representatives, theta {})",
        opts.model.display(),
        snapshot.num_clusters(),
        snapshot.representatives().total(),
        snapshot.theta(),
    );
    let handle = Server::start(snapshot, opts.config.clone())?;
    eprintln!("rock-serve: listening on {}", handle.addr());
    eprintln!("rock-serve: close stdin (ctrl-D) to shut down");

    // Block until stdin closes; every read is discarded. This is the
    // shutdown signal — see the module docs.
    let mut sink = [0u8; 4096];
    let mut stdin = std::io::stdin().lock();
    loop {
        match stdin.read(&mut sink) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }

    eprintln!("rock-serve: stdin closed, draining");
    let final_metrics = handle.shutdown();
    flush_metrics(&final_metrics, opts.metrics.as_deref())?;
    eprintln!("rock-serve: bye");
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        parse_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn requires_model() {
        assert!(parse(&[]).unwrap_err().contains("--model is required"));
    }

    #[test]
    fn parses_all_flags() {
        let o = parse(&[
            "--model",
            "m.rockmodel",
            "--addr",
            "0.0.0.0:9000",
            "--threads",
            "8",
            "--queue",
            "128",
            "--deadline-ms",
            "250",
            "--max-body",
            "4096",
            "--metrics",
            "serve.json",
            "--trace",
            "serve.trace",
            "--slow-ms",
            "40",
        ])
        .unwrap();
        assert_eq!(o.model, PathBuf::from("m.rockmodel"));
        assert_eq!(o.config.addr, "0.0.0.0:9000");
        assert_eq!(o.config.threads, 8);
        assert_eq!(o.config.queue_capacity, 128);
        assert_eq!(o.config.deadline, Duration::from_millis(250));
        assert_eq!(o.config.max_body, 4096);
        assert_eq!(o.metrics, Some(PathBuf::from("serve.json")));
        assert_eq!(o.config.trace, Some(PathBuf::from("serve.trace")));
        assert_eq!(o.config.slow_request, Duration::from_millis(40));
    }

    #[test]
    fn rejects_unknown_and_unparsable_flags() {
        assert!(parse(&["--model", "m", "--wat"]).is_err());
        assert!(parse(&["--model", "m", "--threads", "many"]).is_err());
        assert!(parse(&["--model"]).is_err());
    }

    #[test]
    fn missing_snapshot_maps_to_io_error() {
        let opts = parse(&["--model", "/nonexistent/void.rockmodel"]).unwrap();
        let err = run(&opts).unwrap_err();
        assert_eq!(err.exit_code(), 3);
    }
}
