//! Minimal HTTP/1.1 request parsing and response writing.
//!
//! Just enough of RFC 9112 for a loopback labeling service: a request
//! line, headers, and an optional `Content-Length` body. No chunked
//! transfer encoding (a request declaring it is rejected as
//! unsupported), no multipart, no TLS. The parser is defensive — header
//! and body sizes are capped, and every malformed input maps to a typed
//! error the server turns into a 4xx response instead of a panic.

use std::io::{BufRead, Write};

/// Upper bound on the request line plus all header bytes.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Upper bound on the number of header lines.
const MAX_HEADERS: usize = 64;

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum HttpError {
    /// Underlying socket failure (including read timeouts).
    Io(std::io::Error),
    /// The request violates the grammar this parser accepts.
    Malformed(String),
    /// The declared body exceeds the server's limit (→ 413).
    BodyTooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// Configured ceiling.
        limit: usize,
    },
    /// A feature this server deliberately does not implement (→ 501).
    Unsupported(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "io error: {e}"),
            HttpError::Malformed(msg) => write!(f, "malformed request: {msg}"),
            HttpError::BodyTooLarge { declared, limit } => {
                write!(f, "body of {declared} bytes exceeds limit of {limit}")
            }
            HttpError::Unsupported(what) => write!(f, "unsupported: {what}"),
        }
    }
}

impl std::error::Error for HttpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HttpError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Per-path request-body ceilings.
///
/// Labeling bodies are small (one JSON object per line), but admin-
/// plane snapshot uploads carry a whole `rock-model/v1` rendering, so
/// `/admin/` paths get their own, much larger ceiling. The split lives
/// here because the limit must be enforced when `Content-Length` is
/// parsed — before a single body byte is read — and the request path is
/// already known at that point.
#[derive(Debug, Clone, Copy)]
pub struct BodyLimits {
    /// Ceiling for every non-admin path (→ 413 beyond it).
    pub default: usize,
    /// Ceiling for `/admin/…` paths (snapshot uploads).
    pub admin: usize,
}

impl BodyLimits {
    /// The same ceiling for every path.
    pub fn uniform(limit: usize) -> Self {
        BodyLimits {
            default: limit,
            admin: limit,
        }
    }

    /// The ceiling that applies to `path`.
    pub fn limit_for(&self, path: &str) -> usize {
        if path.starts_with("/admin/") {
            self.admin
        } else {
            self.default
        }
    }
}

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Request target as sent (path only; this server ignores queries).
    pub path: String,
    /// Body bytes (empty when no `Content-Length` was declared).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

/// Reads one request from `reader`.
///
/// Returns `Ok(None)` on clean EOF before any request byte (the peer
/// closed an idle keep-alive connection).
///
/// # Errors
/// [`HttpError::Malformed`] for grammar violations,
/// [`HttpError::BodyTooLarge`] when `Content-Length` exceeds the
/// path's [`BodyLimits`] ceiling, [`HttpError::Unsupported`] for
/// chunked transfer encoding, [`HttpError::Io`] for socket failures.
pub fn read_request<R: BufRead>(
    reader: &mut R,
    limits: &BodyLimits,
) -> Result<Option<Request>, HttpError> {
    let Some(request_line) = read_line(reader, true)? else {
        return Ok(None);
    };
    let mut parts = request_line.split(' ');
    let (Some(method), Some(path), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::Malformed(format!(
            "request line {request_line:?}"
        )));
    };
    if method.is_empty() || path.is_empty() {
        return Err(HttpError::Malformed(format!(
            "request line {request_line:?}"
        )));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Malformed(format!("http version {version:?}")));
    }

    let max_body = limits.limit_for(path);
    let mut content_length: usize = 0;
    let mut keep_alive = version == "HTTP/1.1";
    let mut head_bytes = request_line.len();
    for _ in 0..=MAX_HEADERS {
        let Some(line) = read_line(reader, false)? else {
            return Err(HttpError::Malformed("eof inside headers".into()));
        };
        if line.is_empty() {
            let request = Request {
                method: method.to_ascii_uppercase(),
                path: path.to_owned(),
                body: read_body(reader, content_length)?,
                keep_alive,
            };
            return Ok(Some(request));
        }
        head_bytes += line.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(HttpError::Malformed("headers too large".into()));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("header line {line:?}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                let declared: usize = value
                    .parse()
                    .map_err(|_| HttpError::Malformed(format!("content-length {value:?}")))?;
                if declared > max_body {
                    return Err(HttpError::BodyTooLarge {
                        declared,
                        limit: max_body,
                    });
                }
                content_length = declared;
            }
            "transfer-encoding" => {
                return Err(HttpError::Unsupported(format!(
                    "transfer-encoding {value:?}"
                )));
            }
            "connection" => {
                keep_alive = !value.eq_ignore_ascii_case("close");
            }
            _ => {}
        }
    }
    Err(HttpError::Malformed("too many headers".into()))
}

/// Reads one CRLF- (or bare-LF-) terminated line, without the
/// terminator. `Ok(None)` = EOF before any byte; mid-line EOF or a
/// too-long line is malformed. `allow_blank_prefix` skips empty lines
/// before the payload (RFC 9112 §2.2 tolerance between pipelined
/// requests).
fn read_line<R: BufRead>(
    reader: &mut R,
    allow_blank_prefix: bool,
) -> Result<Option<String>, HttpError> {
    loop {
        let mut buf = Vec::new();
        let mut byte = [0u8; 1];
        loop {
            match reader.read(&mut byte)? {
                0 => {
                    if buf.is_empty() {
                        return Ok(None);
                    }
                    return Err(HttpError::Malformed("eof mid-line".into()));
                }
                _ => {
                    let [b] = byte;
                    if b == b'\n' {
                        break;
                    }
                    buf.push(b);
                    if buf.len() > MAX_HEAD_BYTES {
                        return Err(HttpError::Malformed("line too long".into()));
                    }
                }
            }
        }
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
        if buf.is_empty() && allow_blank_prefix {
            continue;
        }
        return String::from_utf8(buf)
            .map(Some)
            .map_err(|_| HttpError::Malformed("non-utf8 in request head".into()));
    }
}

/// Reads exactly `len` body bytes; a short read is a truncated body.
fn read_body<R: BufRead>(reader: &mut R, len: usize) -> Result<Vec<u8>, HttpError> {
    let mut body = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        // rock-analyze: allow(panic-path) — in-bounds: `filled < len` is the loop condition and `body.len() == len`.
        match reader.read(&mut body[filled..])? {
            0 => {
                return Err(HttpError::Malformed(format!(
                    "body truncated at {filled} of {len} bytes"
                )));
            }
            n => filled += n,
        }
    }
    Ok(body)
}

/// A response ready to be written.
#[derive(Debug)]
pub struct Response {
    status: u16,
    reason: &'static str,
    content_type: &'static str,
    extra_headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Response {
    /// A response with `status`/`reason` and a JSON body.
    pub fn json(status: u16, reason: &'static str, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            reason,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A plain-text response (errors, health probe).
    pub fn text(status: u16, reason: &'static str, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            reason,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Adds a header (e.g. `Retry-After` on a 503).
    #[must_use]
    pub fn header(mut self, name: &str, value: &str) -> Self {
        self.extra_headers.push((name.to_owned(), value.to_owned()));
        self
    }

    /// The status code (for logging and tests).
    pub fn status(&self) -> u16 {
        self.status
    }

    /// Writes the response; `keep_alive` selects the `Connection`
    /// header.
    ///
    /// # Errors
    /// Propagates socket write failures.
    pub fn write_to<W: Write>(&self, out: &mut W, keep_alive: bool) -> std::io::Result<()> {
        write!(out, "HTTP/1.1 {} {}\r\n", self.status, self.reason)?;
        write!(out, "Content-Type: {}\r\n", self.content_type)?;
        write!(out, "Content-Length: {}\r\n", self.body.len())?;
        let conn = if keep_alive { "keep-alive" } else { "close" };
        write!(out, "Connection: {conn}\r\n")?;
        for (name, value) in &self.extra_headers {
            write!(out, "{name}: {value}\r\n")?;
        }
        out.write_all(b"\r\n")?;
        out.write_all(&self.body)?;
        out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Option<Request>, HttpError> {
        read_request(
            &mut Cursor::new(raw.as_bytes().to_vec()),
            &BodyLimits::uniform(1024),
        )
    }

    #[test]
    fn admin_paths_get_their_own_body_ceiling() {
        let limits = BodyLimits {
            default: 8,
            admin: 4096,
        };
        assert_eq!(limits.limit_for("/label"), 8);
        assert_eq!(limits.limit_for("/models/a/label"), 8);
        assert_eq!(limits.limit_for("/admin/models/a"), 4096);
        // A snapshot-sized upload passes on the admin path…
        let raw = format!(
            "POST /admin/models/a HTTP/1.1\r\nContent-Length: 100\r\n\r\n{}",
            "x".repeat(100)
        );
        let r = read_request(&mut Cursor::new(raw.into_bytes()), &limits)
            .unwrap()
            .unwrap();
        assert_eq!(r.body.len(), 100);
        // …and is refused, before any body byte is read, elsewhere.
        let raw = "POST /label HTTP/1.1\r\nContent-Length: 100\r\n\r\n";
        let err = read_request(&mut Cursor::new(raw.as_bytes().to_vec()), &limits).unwrap_err();
        assert!(matches!(
            err,
            HttpError::BodyTooLarge {
                declared: 100,
                limit: 8
            }
        ));
    }

    #[test]
    fn parses_get_without_body() {
        let r = parse("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert!(r.body.is_empty());
        assert!(r.keep_alive);
    }

    #[test]
    fn parses_post_with_body_and_close() {
        let r = parse("POST /label HTTP/1.1\r\nContent-Length: 4\r\nConnection: close\r\n\r\nabcd")
            .unwrap()
            .unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"abcd");
        assert!(!r.keep_alive);
    }

    #[test]
    fn bare_lf_lines_accepted() {
        let r = parse("GET / HTTP/1.1\nHost: x\n\n").unwrap().unwrap();
        assert_eq!(r.path, "/");
    }

    #[test]
    fn http_10_defaults_to_close() {
        let r = parse("GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!r.keep_alive);
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(parse("").unwrap().is_none());
    }

    #[test]
    fn rejects_malformed_request_line() {
        for raw in [
            "GET\r\n\r\n",
            "GET /\r\n\r\n",
            "GET / HTTP/1.1 extra\r\n\r\n",
        ] {
            assert!(matches!(parse(raw), Err(HttpError::Malformed(_))), "{raw}");
        }
    }

    #[test]
    fn rejects_bad_version_and_header() {
        assert!(matches!(
            parse("GET / SPDY/9\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nContent-Length: ten\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_oversized_body_before_reading_it() {
        let err = parse("POST /label HTTP/1.1\r\nContent-Length: 4096\r\n\r\n").unwrap_err();
        assert!(matches!(
            err,
            HttpError::BodyTooLarge {
                declared: 4096,
                limit: 1024
            }
        ));
    }

    #[test]
    fn rejects_truncated_body() {
        let err = parse("POST /label HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").unwrap_err();
        assert!(matches!(err, HttpError::Malformed(_)));
        assert!(err.to_string().contains("truncated"));
    }

    #[test]
    fn rejects_chunked_encoding() {
        let err = parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err();
        assert!(matches!(err, HttpError::Unsupported(_)));
    }

    #[test]
    fn rejects_eof_mid_headers() {
        let err = parse("GET / HTTP/1.1\r\nHost: x\r\n").unwrap_err();
        assert!(matches!(err, HttpError::Malformed(_)));
    }

    #[test]
    fn skips_blank_lines_between_pipelined_requests() {
        let raw = "\r\n\r\nGET /healthz HTTP/1.1\r\n\r\n";
        let r = parse(raw).unwrap().unwrap();
        assert_eq!(r.path, "/healthz");
    }

    #[test]
    fn response_writes_status_headers_and_body() {
        let mut out = Vec::new();
        Response::json(200, "OK", br#"{"ok":true}"#.to_vec())
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }

    #[test]
    fn response_extra_headers_and_close() {
        let mut out = Vec::new();
        Response::text(503, "Service Unavailable", "busy\n")
            .header("Retry-After", "1")
            .write_to(&mut out, false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
    }
}
