//! # rock-serve
//!
//! A dependency-free online labeling server for fitted ROCK models.
//!
//! The offline pipeline (`rock-cluster --save-model`) persists a
//! [`ModelSnapshot`](rock_core::snapshot::ModelSnapshot) — θ, `f(θ)`, the
//! interned vocabulary and the per-cluster representative sets `L_i`
//! drawn by the paper's §4.2 labeling phase. That snapshot is the entire
//! servable state: labeling a new point needs only the representatives
//! and the similarity threshold, never the training data. This crate
//! loads one snapshot and answers labeling queries over HTTP/1.1.
//!
//! Everything is hand-rolled over `std`: the HTTP layer ([`http`]) is a
//! small request parser and response writer over
//! [`std::net::TcpStream`]; the server ([`server`]) runs a fixed worker
//! pool over a bounded connection queue, sheds load with
//! `503 Retry-After` when the queue is full, bounds each request with a
//! [`RunBudget`](rock_core::guard::RunBudget) wall deadline, and drains
//! in-flight work before flushing metrics on shutdown.
//!
//! Endpoints:
//!
//! * `POST /label` — one JSON object, or an NDJSON batch (one object
//!   per line). Each object is `{"items":[…]}` (raw interned ids),
//!   `{"record":[…]}` (textual cells mapped through the snapshot
//!   vocabulary) or `{"basket":[…]}` (market-basket item names). Each
//!   input line yields one NDJSON response line
//!   `{"cluster":<id>}`, with `null` for outliers.
//! * `GET /healthz` — liveness probe.
//! * `GET /metrics` — a `rock-serve-metrics/v1` JSON document embedding
//!   the core `rock-metrics/v1` schema plus server counters.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod http;
pub mod server;

pub use http::{HttpError, Request, Response};
pub use server::{ServeConfig, Server, ServerHandle};
