//! # rock-serve
//!
//! A dependency-free online labeling server for fitted ROCK models.
//!
//! The offline pipeline (`rock-cluster --save-model`) persists a
//! [`ModelSnapshot`](rock_core::snapshot::ModelSnapshot) — θ, `f(θ)`, the
//! interned vocabulary and the per-cluster representative sets `L_i`
//! drawn by the paper's §4.2 labeling phase. That snapshot is the entire
//! servable state: labeling a new point needs only the representatives
//! and the similarity threshold, never the training data. This crate
//! serves *many* such snapshots at once from a named, versioned
//! [`registry`] with atomic hot reload, and answers labeling queries
//! over HTTP/1.1.
//!
//! Everything is hand-rolled over `std`: the HTTP layer ([`http`]) is a
//! small request parser and response writer over
//! [`std::net::TcpStream`]; the server ([`server`]) shards accepting
//! across listener threads into a bounded connection queue drained by a
//! fixed worker pool, sheds load with `503 Retry-After` when the queue
//! is full, bounds each request with a
//! [`RunBudget`](rock_core::guard::RunBudget) wall deadline, coalesces
//! concurrent labeling requests through a per-model group-commit
//! [`batch`] queue, and drains in-flight work before flushing metrics
//! on shutdown. Models live in the [`registry`]: validated
//! `rock-model/v1` snapshots behind a hand-rolled epoch-based Arc swap,
//! so an admin upload activates atomically while in-flight requests
//! finish on the model they pinned at dispatch.
//!
//! Endpoints:
//!
//! * `POST /label` — one JSON object, or an NDJSON batch (one object
//!   per line), labeled by the `default` model. Each object is
//!   `{"items":[…]}` (raw interned ids), `{"record":[…]}` (textual
//!   cells mapped through the snapshot vocabulary) or `{"basket":[…]}`
//!   (market-basket item names). Each input line yields one NDJSON
//!   response line `{"cluster":<id>}`, with `null` for outliers. The
//!   response carries `X-Rock-Model: <name>@v<version>` and
//!   `X-Rock-Model-Fingerprint` headers naming the exact model version
//!   that labeled it.
//! * `POST /models/{name}/label` — the same contract against a named
//!   registry model.
//! * `POST /admin/models/{name}` — upload a `rock-model/v1` snapshot
//!   body: validate, then atomically activate. A corrupt, truncated or
//!   version-mismatched body is rejected with the prior model still
//!   serving.
//! * `DELETE /admin/models/{name}` — unmount a model.
//! * `GET /admin/models` — registry listing with per-model state.
//! * `GET /healthz` — readiness probe reporting per-model
//!   ready/degraded state (`503` + `Retry-After` when nothing is
//!   mounted).
//! * `GET /metrics` — a `rock-serve-metrics/v1` JSON document embedding
//!   the core `rock-metrics/v1` schema plus server counters, registry
//!   gauges and per-model blocks.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod http;
pub mod registry;
pub mod server;

pub use batch::{BatchOptions, BatchReport, Batcher};
pub use http::{HttpError, Request, Response};
pub use registry::{ModelEntry, ModelSlot, ModelState, Registry};
pub use server::{ServeConfig, Server, ServerHandle};
