//! The labeling server: worker pool, routing, load shedding, metrics.
//!
//! Architecture (all `std`, no `unsafe`):
//!
//! ```text
//! acceptor thread ──► bounded VecDeque<TcpStream> ──► N worker threads
//!      │                    (Mutex + Condvar)              │
//!      └── queue full: inline 503 + Retry-After            └── parse →
//!                                                              route →
//!                                                              respond
//! ```
//!
//! The acceptor polls a non-blocking [`TcpListener`] so it can observe
//! the stop flag between accepts. When the queue is at capacity it
//! writes `503 Service Unavailable` with `Retry-After` directly on the
//! accepted socket and closes it — back-pressure is explicit, never an
//! unbounded backlog. Each `/label` request runs under a
//! [`Guard`] with a wall-clock [`RunBudget`]; a request that
//! exceeds the deadline mid-batch is answered `503` and counted as
//! shed. Shutdown (`ServerHandle::shutdown`) stops the acceptor, lets
//! the workers drain every queued connection, then renders the final
//! `rock-serve-metrics/v1` document.
//!
//! The workspace forbids `unsafe`, so no `SIGTERM` handler can be
//! installed; the `rock-serve` binary instead treats **stdin close** as
//! the shutdown signal (`kill` the pipe's writer, or press ctrl-D), the
//! conventional dependency-free stand-in.

use std::collections::VecDeque;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rock_core::cast::usize_to_u64;
use rock_core::error::{Result, RockError};
use rock_core::guard::{Guard, RunBudget};
use rock_core::prelude::Transaction;
use rock_core::similarity::Similarity;
use rock_core::snapshot::ModelSnapshot;
use rock_core::telemetry::json::{Json, JsonObj};
use rock_core::telemetry::trace::{LatencyHistogram, Payload};
use rock_core::telemetry::{Metrics, Observer, Phase, PipelineCounters, RunInfo};

use crate::http::{read_request, HttpError, Request, Response};

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads handling connections (`0` = one per available
    /// CPU, capped at 16 — the same auto convention as the clustering
    /// pipeline's `--threads`). A keep-alive connection occupies its
    /// worker until the peer closes (or the idle read times out), so
    /// size this to the expected number of concurrent keep-alive
    /// clients; excess connections wait in the queue.
    pub threads: usize,
    /// Bounded accept-queue capacity; beyond it, connections are shed.
    pub queue_capacity: usize,
    /// Per-request wall-clock deadline (enforced between batch lines).
    pub deadline: Duration,
    /// Largest accepted request body, in bytes (beyond it: 413).
    pub max_body: usize,
    /// Write a `rock-trace/v1` NDJSON event stream to this path while
    /// the server runs (`None` = tracing disabled, the near-zero-cost
    /// default). Each handled request becomes a `serve.request` span;
    /// the request-latency histogram is flushed at shutdown.
    pub trace: Option<PathBuf>,
    /// Requests slower than this are flagged `"slow":1` in their trace
    /// span payload, making outliers trivially grep-able.
    pub slow_request: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            threads: 4,
            queue_capacity: 64,
            deadline: Duration::from_secs(1),
            max_body: 1 << 20,
            trace: None,
            slow_request: Duration::from_millis(100),
        }
    }
}

/// Monotonic request counters, exposed under `"requests"` in the
/// metrics document.
#[derive(Debug, Default)]
struct ServeCounters {
    /// Connections accepted (including ones later shed or rejected).
    accepted: AtomicU64,
    /// Points labeled into a cluster.
    labeled: AtomicU64,
    /// Points answered `{"cluster":null}` under the mark policy.
    outlier: AtomicU64,
    /// Requests refused as client errors (4xx/405/404/501).
    rejected: AtomicU64,
    /// Connections or batches dropped by load shedding (queue full or
    /// deadline exceeded → 503).
    shed: AtomicU64,
}

/// A point-in-time copy of the server counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Connections accepted.
    pub accepted: u64,
    /// Points labeled into a cluster.
    pub labeled: u64,
    /// Points marked outliers.
    pub outlier: u64,
    /// Client errors.
    pub rejected: u64,
    /// 503 responses from queue or deadline shedding.
    pub shed: u64,
}

impl ServeCounters {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            labeled: self.labeled.load(Ordering::Relaxed),
            outlier: self.outlier.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
        }
    }
}

/// Accept queue guarded by [`Shared::queue`].
#[derive(Default)]
struct Queue {
    conns: VecDeque<TcpStream>,
    /// Set at shutdown: workers drain remaining connections, then exit.
    stopping: bool,
}

/// State shared by the acceptor, the workers and the handle.
struct Shared {
    model: ModelSnapshot,
    config: ServeConfig,
    counters: ServeCounters,
    observer: Observer,
    queue: Mutex<Queue>,
    available: Condvar,
    stop: AtomicBool,
    started: Instant,
    /// Request-latency histogram (always on — it powers the `latency`
    /// percentiles in `/metrics` whether or not tracing is enabled).
    latency: Mutex<LatencyHistogram>,
    /// Monotonic request ids for trace spans.
    request_seq: AtomicU64,
}

/// Locks a mutex, recovering the guard if a worker panicked while
/// holding it (counters stay usable; a poisoned queue must not wedge
/// shutdown).
fn lock_queue(shared: &Shared) -> MutexGuard<'_, Queue> {
    match shared.queue.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Same poison recovery for the latency histogram (a record is a pure
/// bucket increment; a panicked holder cannot leave it inconsistent).
fn lock_latency(shared: &Shared) -> MutexGuard<'_, LatencyHistogram> {
    match shared.latency.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The running server (namespace for [`Server::start`]).
pub struct Server;

impl Server {
    /// Binds `config.addr`, spawns the acceptor and worker threads, and
    /// returns a handle for inspection and shutdown. A thread count of
    /// 0 resolves to one worker per available CPU (capped at 16);
    /// explicit counts and the queue capacity are clamped to at least 1
    /// (a server with no workers or no queue slots could never answer).
    ///
    /// # Errors
    /// [`RockError::Io`] when the address cannot be bound or a thread
    /// cannot be spawned.
    pub fn start(model: ModelSnapshot, config: ServeConfig) -> Result<ServerHandle> {
        let mut config = config;
        config.threads = match config.threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get().min(16))
                .unwrap_or(1),
            t => t,
        };
        config.queue_capacity = config.queue_capacity.max(1);
        let listener = TcpListener::bind(&config.addr).map_err(|e| RockError::Io {
            path: config.addr.clone(),
            message: e.to_string(),
        })?;
        let addr = listener.local_addr().map_err(|e| RockError::Io {
            path: config.addr.clone(),
            message: e.to_string(),
        })?;
        listener.set_nonblocking(true).map_err(|e| RockError::Io {
            path: config.addr.clone(),
            message: e.to_string(),
        })?;

        let shared = Arc::new(Shared {
            model,
            config,
            counters: ServeCounters::default(),
            observer: Observer::new(),
            queue: Mutex::new(Queue::default()),
            available: Condvar::new(),
            stop: AtomicBool::new(false),
            started: Instant::now(),
            latency: Mutex::new(LatencyHistogram::new()),
            request_seq: AtomicU64::new(0),
        });
        if let Some(path) = &shared.config.trace {
            shared.observer.tracer().start_to_path(path, "rock-serve")?;
        }

        let mut workers = Vec::with_capacity(shared.config.threads);
        for i in 0..shared.config.threads {
            let shared = Arc::clone(&shared);
            let worker = std::thread::Builder::new()
                .name(format!("rock-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared, usize_to_u64(i)))
                .map_err(|e| RockError::Io {
                    path: "rock-serve worker".into(),
                    message: e.to_string(),
                })?;
            workers.push(worker);
        }
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("rock-serve-acceptor".into())
                .spawn(move || accept_loop(&listener, &shared))
                .map_err(|e| RockError::Io {
                    path: "rock-serve acceptor".into(),
                    message: e.to_string(),
                })?
        };

        Ok(ServerHandle {
            shared,
            addr,
            acceptor: Some(acceptor),
            workers,
        })
    }
}

/// A running server: address, live counters, graceful shutdown.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time copy of the request counters.
    pub fn counters(&self) -> CounterSnapshot {
        self.shared.counters.snapshot()
    }

    /// The current `rock-serve-metrics/v1` document.
    pub fn metrics_json(&self) -> String {
        render_metrics(&self.shared)
    }

    /// Stops accepting, drains every queued connection, joins all
    /// threads and returns the final metrics document.
    pub fn shutdown(mut self) -> String {
        self.stop_and_join();
        render_metrics(&self.shared)
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        if let Some(acceptor) = self.acceptor.take() {
            // The acceptor observes the flag within one poll interval;
            // joining it first guarantees no connection is enqueued
            // after `stopping` is set.
            acceptor.join().ok();
        }
        {
            let mut queue = lock_queue(&self.shared);
            queue.stopping = true;
            self.shared.available.notify_all();
        }
        for worker in self.workers.drain(..) {
            worker.join().ok();
        }
        let tracer = self.shared.observer.tracer();
        if tracer.is_enabled() {
            let hist = lock_latency(&self.shared).clone();
            if hist.count() > 0 {
                tracer.record_hist("serve.request_ns", None, &hist);
            }
            // Best effort: a flush failure at shutdown must not panic a
            // drop path; the trace written so far stays parseable.
            tracer.finish().ok();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // Shutdown-by-drop keeps tests leak-free; `shutdown()` is the
        // intended path and has already emptied the thread handles.
        if self.acceptor.is_some() || !self.workers.is_empty() {
            self.stop_and_join();
        }
    }
}

/// Accepts connections until the stop flag is raised, shedding when the
/// queue is full.
fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                ServeCounters::bump(&shared.counters.accepted);
                let mut queue = lock_queue(shared);
                if queue.conns.len() >= shared.config.queue_capacity {
                    drop(queue);
                    ServeCounters::bump(&shared.counters.shed);
                    shed_connection(stream);
                } else {
                    queue.conns.push_back(stream);
                    drop(queue);
                    shared.available.notify_one();
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            // Transient accept errors (e.g. ECONNABORTED) are not fatal.
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Answers a shed connection inline on the acceptor thread. Best
/// effort: the client may already be gone.
fn shed_connection(stream: TcpStream) {
    let mut stream = stream;
    stream.set_nonblocking(false).ok();
    stream
        .set_write_timeout(Some(Duration::from_millis(200)))
        .ok();
    Response::text(503, "Service Unavailable", "queue full\n")
        .header("Retry-After", "1")
        .write_to(&mut stream, false)
        .ok();
}

/// Pops connections until shutdown drains the queue.
fn worker_loop(shared: &Shared, worker: u64) {
    loop {
        let stream = {
            let mut queue = lock_queue(shared);
            loop {
                if let Some(stream) = queue.conns.pop_front() {
                    break stream;
                }
                if queue.stopping {
                    return;
                }
                queue = match shared.available.wait(queue) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        handle_connection(shared, worker, stream);
    }
}

/// Serves one connection: keep-alive request loop, typed error → 4xx/5xx.
fn handle_connection(shared: &Shared, worker: u64, stream: TcpStream) {
    let io_timeout = shared.config.deadline.max(Duration::from_secs(1)) * 2;
    stream.set_read_timeout(Some(io_timeout)).ok();
    stream.set_write_timeout(Some(io_timeout)).ok();
    // Request/response traffic is latency-bound; Nagle + delayed ACK
    // would add ~40ms to every small round-trip.
    stream.set_nodelay(true).ok();
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut out = stream;
    loop {
        match read_request(&mut reader, shared.config.max_body) {
            Ok(None) => return,
            Ok(Some(request)) => {
                // Stop keep-alive once shutdown begins so draining
                // terminates after the in-flight request.
                let keep = request.keep_alive && !shared.stop.load(Ordering::Relaxed);
                let span = shared.observer.tracer().begin();
                let clock = Instant::now();
                let response = route(shared, &request);
                let elapsed = clock.elapsed();
                lock_latency(shared).record(duration_ns(elapsed));
                if let Some(s) = span {
                    let id = shared.request_seq.fetch_add(1, Ordering::Relaxed) + 1;
                    let mut payload = Payload::new()
                        .count("request", id)
                        .str("method", &request.method)
                        .str("path", &request.path)
                        .count("status", u64::from(response.status()));
                    if elapsed > shared.config.slow_request {
                        payload = payload.count("slow", 1);
                    }
                    shared
                        .observer
                        .tracer()
                        .end(s, "serve.request", None, worker, payload);
                }
                if response.write_to(&mut out, keep).is_err() || !keep {
                    return;
                }
            }
            Err(error) => {
                respond_to_error(&shared.counters, &mut out, &error);
                return;
            }
        }
    }
}

/// Saturating `Duration` → whole nanoseconds (a request would need to
/// run for ~584 years to clip).
fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Maps a parse failure to its status line; write is best effort.
fn respond_to_error(counters: &ServeCounters, out: &mut TcpStream, error: &HttpError) {
    let response = match error {
        HttpError::Io(_) => return, // peer gone; nothing to say
        HttpError::Malformed(msg) => {
            ServeCounters::bump(&counters.rejected);
            Response::text(400, "Bad Request", format!("{msg}\n"))
        }
        HttpError::BodyTooLarge { declared, limit } => {
            ServeCounters::bump(&counters.rejected);
            Response::text(
                413,
                "Content Too Large",
                format!("body of {declared} bytes exceeds limit of {limit}\n"),
            )
        }
        HttpError::Unsupported(what) => {
            ServeCounters::bump(&counters.rejected);
            Response::text(501, "Not Implemented", format!("{what}\n"))
        }
    };
    response.write_to(out, false).ok();
}

/// Dispatches a parsed request to its endpoint.
fn route(shared: &Shared, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/label") => handle_label(shared, &request.body),
        ("GET", "/healthz") => Response::json(200, "OK", "{\"status\":\"ok\"}\n"),
        ("GET", "/metrics") => Response::json(200, "OK", render_metrics(shared)),
        ("GET" | "HEAD", "/label") | ("POST" | "PUT" | "DELETE", "/healthz" | "/metrics") => {
            ServeCounters::bump(&shared.counters.rejected);
            let allow = if request.path == "/label" {
                "POST"
            } else {
                "GET"
            };
            Response::text(405, "Method Not Allowed", "method not allowed\n").header("Allow", allow)
        }
        _ => {
            ServeCounters::bump(&shared.counters.rejected);
            Response::text(404, "Not Found", "not found\n")
        }
    }
}

/// `POST /label`: one JSON object per line (a single object is a batch
/// of one); each line answers `{"cluster":<id>}` or `{"cluster":null}`.
fn handle_label(shared: &Shared, body: &[u8]) -> Response {
    let Ok(text) = std::str::from_utf8(body) else {
        ServeCounters::bump(&shared.counters.rejected);
        return Response::text(400, "Bad Request", "body is not utf-8\n");
    };
    let guard = Guard::new(RunBudget::unlimited().wall(shared.config.deadline));
    let mut answers = String::new();
    let mut lines = 0usize;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if guard
            .checkpoint(Phase::Labeling, &shared.observer)
            .is_some()
        {
            // Deadline exceeded mid-batch: shed the rest rather than
            // hold a worker hostage. 503 invites a retry with a
            // smaller batch.
            ServeCounters::bump(&shared.counters.shed);
            return Response::text(503, "Service Unavailable", "deadline exceeded\n")
                .header("Retry-After", "1");
        }
        lines += 1;
        match parse_query(&shared.model, line) {
            Ok(point) => {
                match shared.model.label(&point) {
                    Some(cluster) => {
                        ServeCounters::bump(&shared.counters.labeled);
                        PipelineCounters::add(&shared.observer.counters().points_labeled, 1);
                        answers.push_str(&format!("{{\"cluster\":{cluster}}}\n"));
                    }
                    None => {
                        ServeCounters::bump(&shared.counters.outlier);
                        answers.push_str("{\"cluster\":null}\n");
                    }
                }
                PipelineCounters::add(
                    &shared.observer.counters().labeling_evaluations,
                    usize_to_u64(shared.model.representatives().total()),
                );
            }
            Err(message) => {
                ServeCounters::bump(&shared.counters.rejected);
                return Response::text(400, "Bad Request", format!("line {lines}: {message}\n"));
            }
        }
    }
    if lines == 0 {
        ServeCounters::bump(&shared.counters.rejected);
        return Response::text(400, "Bad Request", "empty body\n");
    }
    Response::json(200, "OK", answers)
}

/// Parses one query line into a [`Transaction`] against the snapshot.
///
/// Accepted shapes: `{"items":[0,3,7]}` (raw interned ids),
/// `{"record":["a","b",…]}` (textual cells through the snapshot
/// vocabulary, `"?"` treated as missing) and `{"basket":["milk",…]}`
/// (market-basket item names). Unknown record/basket values contribute
/// no item — exactly as the offline `rock-cluster label` path behaves.
fn parse_query(model: &ModelSnapshot, line: &str) -> std::result::Result<Transaction, String> {
    let value = Json::parse(line).map_err(|e| format!("bad json: {e}"))?;
    if value.fields().is_none() {
        return Err("expected a json object".into());
    }
    if let Some(items) = value.get("items") {
        let Json::Arr(items) = items else {
            return Err("\"items\" must be an array of integers".into());
        };
        let mut ids = Vec::with_capacity(items.len());
        for item in items {
            let id = item
                .as_u64()
                .and_then(|v| u32::try_from(v).ok())
                .ok_or_else(|| "\"items\" must be an array of integers".to_string())?;
            if (id as usize) >= model.universe() {
                return Err(format!(
                    "item id {id} out of range (universe {})",
                    model.universe()
                ));
            }
            ids.push(id);
        }
        return Ok(Transaction::new(ids));
    }
    if let Some(record) = value.get("record") {
        let cells = string_array(record, "record")?;
        return model
            .transaction_from_cells(&cells.iter().map(String::as_str).collect::<Vec<_>>(), "?")
            .map_err(|e| e.to_string());
    }
    if let Some(basket) = value.get("basket") {
        let names = string_array(basket, "basket")?;
        return model
            .transaction_from_basket(names.iter().map(String::as_str))
            .map_err(|e| e.to_string());
    }
    Err("object needs one of \"items\", \"record\" or \"basket\"".into())
}

/// Extracts an all-strings array field or explains why it isn't one.
fn string_array(value: &Json, field: &str) -> std::result::Result<Vec<String>, String> {
    let Json::Arr(entries) = value else {
        return Err(format!("\"{field}\" must be an array of strings"));
    };
    entries
        .iter()
        .map(|e| {
            e.as_str()
                .map(str::to_owned)
                .ok_or_else(|| format!("\"{field}\" must be an array of strings"))
        })
        .collect()
}

/// Renders the `rock-serve-metrics/v1` document: server counters and
/// model facts wrapped around the core `rock-metrics/v1` schema.
fn render_metrics(shared: &Shared) -> String {
    let counters = shared.counters.snapshot();
    let uptime = shared.started.elapsed();
    let outliers = usize::try_from(counters.outlier).unwrap_or(usize::MAX);
    let core = Metrics::collect(
        &shared.observer,
        RunInfo {
            experiment: "rock-serve".into(),
            n: usize::try_from(counters.labeled).unwrap_or(usize::MAX),
            k: shared.model.num_clusters(),
            theta: shared.model.theta(),
            seed: 0,
            sample_size: shared.model.representatives().total(),
            clusters: shared.model.num_clusters(),
            outliers,
        },
        uptime,
    );

    let mut requests = JsonObj::new(true, 2);
    requests
        .num_u64("accepted", counters.accepted)
        .num_u64("labeled", counters.labeled)
        .num_u64("outlier", counters.outlier)
        .num_u64("rejected", counters.rejected)
        .num_u64("shed", counters.shed);

    let hist = lock_latency(shared).clone();
    let ms = |ns: u64| rock_core::cast::u64_to_f64(ns) / 1.0e6;
    let mut latency = JsonObj::new(true, 2);
    latency
        .num_u64("count", hist.count())
        .num_f64("p50_ms", ms(hist.percentile(0.50)))
        .num_f64("p90_ms", ms(hist.percentile(0.90)))
        .num_f64("p99_ms", ms(hist.percentile(0.99)))
        .num_f64("max_ms", ms(hist.max()));

    let mut model = JsonObj::new(true, 2);
    model
        .num_u64("clusters", usize_to_u64(shared.model.num_clusters()))
        .num_u64(
            "representatives",
            usize_to_u64(shared.model.representatives().total()),
        )
        .num_u64("universe", usize_to_u64(shared.model.universe()))
        .num_f64("theta", shared.model.theta())
        .num_f64("exponent", shared.model.exponent())
        .str("similarity", shared.model.similarity().name())
        .str("policy", shared.model.policy().name());

    let mut doc = JsonObj::new(true, 1);
    doc.str("schema", "rock-serve-metrics/v1")
        .num_f64("uptime_secs", uptime.as_secs_f64())
        .raw("requests", &requests.end())
        .raw("latency", &latency.end())
        .raw("model", &model.end())
        .raw("core", &indent_block(&core.to_json()));
    let mut text = doc.end();
    text.push('\n');
    text
}

/// Re-indents an embedded pretty JSON document one level deeper so the
/// composed `rock-serve-metrics/v1` output stays readable.
fn indent_block(json: &str) -> String {
    let mut out = String::with_capacity(json.len());
    for (i, line) in json.trim_end().lines().enumerate() {
        if i > 0 {
            out.push('\n');
            out.push_str("  ");
        }
        out.push_str(line);
    }
    out
}

/// Writes `metrics` to `path`, or to stderr when `path` is `None`.
///
/// # Errors
/// [`RockError::Io`] when the file cannot be written.
pub fn flush_metrics(metrics: &str, path: Option<&std::path::Path>) -> Result<()> {
    match path {
        Some(path) => std::fs::write(path, metrics).map_err(|e| RockError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        }),
        None => {
            let mut err = std::io::stderr().lock();
            err.write_all(metrics.as_bytes()).ok();
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_core::labeling::Representatives;
    use rock_core::snapshot::{OutlierPolicy, SimilarityKind};

    /// Two clusters over a 6-item universe: {0,1,2} and {3,4,5}.
    fn toy_snapshot() -> ModelSnapshot {
        let reps = Representatives::from_sets(vec![
            vec![Transaction::new([0, 1, 2]), Transaction::new([0, 1, 2])],
            vec![Transaction::new([3, 4, 5])],
        ]);
        ModelSnapshot::new(
            0.5,
            1.0,
            SimilarityKind::Jaccard,
            OutlierPolicy::Mark,
            6,
            None,
            reps,
        )
        .unwrap()
    }

    fn shared() -> Shared {
        Shared {
            model: toy_snapshot(),
            config: ServeConfig::default(),
            counters: ServeCounters::default(),
            observer: Observer::new(),
            queue: Mutex::new(Queue::default()),
            available: Condvar::new(),
            stop: AtomicBool::new(false),
            started: Instant::now(),
            latency: Mutex::new(LatencyHistogram::new()),
            request_seq: AtomicU64::new(0),
        }
    }

    #[test]
    fn label_batch_answers_one_line_per_query() {
        let s = shared();
        let body = b"{\"items\":[0,1,2]}\n{\"items\":[3,4]}\n\n{\"items\":[0]}\n";
        let resp = handle_label(&s, body);
        assert_eq!(resp.status(), 200);
        let counters = s.counters.snapshot();
        assert_eq!(counters.labeled + counters.outlier, 3);
    }

    #[test]
    fn label_rejects_bad_lines_with_400() {
        let s = shared();
        for body in [
            &b"not json"[..],
            b"[1,2,3]",
            b"{\"wrong\":[]}",
            b"{\"items\":[\"a\"]}",
            b"{\"items\":[99]}",
            b"{\"record\":[1]}",
            b"",
            b"\xff\xfe",
        ] {
            let resp = handle_label(&s, body);
            assert_eq!(resp.status(), 400, "body {body:?}");
        }
        assert_eq!(s.counters.snapshot().rejected, 8);
    }

    #[test]
    fn deadline_mid_batch_sheds_with_503() {
        let mut s = shared();
        s.config.deadline = Duration::from_secs(0);
        let resp = handle_label(&s, b"{\"items\":[0]}\n");
        assert_eq!(resp.status(), 503);
        assert_eq!(s.counters.snapshot().shed, 1);
    }

    #[test]
    fn routes_404_405_and_health() {
        let s = shared();
        let req = |method: &str, path: &str| Request {
            method: method.into(),
            path: path.into(),
            body: Vec::new(),
            keep_alive: true,
        };
        assert_eq!(route(&s, &req("GET", "/healthz")).status(), 200);
        assert_eq!(route(&s, &req("GET", "/metrics")).status(), 200);
        assert_eq!(route(&s, &req("GET", "/label")).status(), 405);
        assert_eq!(route(&s, &req("POST", "/metrics")).status(), 405);
        assert_eq!(route(&s, &req("GET", "/nope")).status(), 404);
        assert_eq!(s.counters.snapshot().rejected, 3);
    }

    #[test]
    fn metrics_document_embeds_core_schema() {
        let s = shared();
        handle_label(&s, b"{\"items\":[0,1,2]}\n");
        let doc = render_metrics(&s);
        let parsed = Json::parse(&doc).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("rock-serve-metrics/v1")
        );
        let requests = parsed.get("requests").unwrap();
        assert_eq!(requests.get("labeled").and_then(Json::as_u64), Some(1));
        let core = parsed.get("core").unwrap();
        assert_eq!(
            core.get("schema").and_then(Json::as_str),
            Some("rock-metrics/v1")
        );
        let model = parsed.get("model").unwrap();
        assert_eq!(model.get("clusters").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn metrics_latency_percentiles_track_recorded_requests() {
        let s = shared();
        // One exact-power bucket (1024ns) dominates, so every quantile
        // reports that bucket's upper bound.
        for _ in 0..10 {
            lock_latency(&s).record(1024);
        }
        let doc = render_metrics(&s);
        let parsed = Json::parse(&doc).unwrap();
        let latency = parsed.get("latency").unwrap();
        assert_eq!(latency.get("count").and_then(Json::as_u64), Some(10));
        for key in ["p50_ms", "p90_ms", "p99_ms", "max_ms"] {
            let v = latency.get(key).and_then(Json::as_f64).unwrap();
            assert!(v > 0.0, "{key} should be positive, got {v}");
        }
    }

    #[test]
    fn record_and_basket_queries_work_when_vocabulary_present() {
        use rock_core::prelude::Vocabulary;
        let mut vocab = Vocabulary::new();
        vocab.intern_basket("milk");
        vocab.intern_basket("eggs");
        let model = ModelSnapshot::new(
            0.5,
            1.0,
            SimilarityKind::Jaccard,
            OutlierPolicy::Mark,
            2,
            Some(vocab),
            Representatives::from_sets(vec![vec![Transaction::new([0, 1])]]),
        )
        .unwrap();
        let point = parse_query(&model, "{\"basket\":[\"milk\",\"eggs\",\"unknown\"]}").unwrap();
        assert_eq!(model.label(&point), Some(0));
        // Record queries need an attribute vocabulary; basket-interned
        // snapshots simply find no matching (attr, value) keys.
        let empty = parse_query(&model, "{\"record\":[\"milk\"]}").unwrap();
        assert_eq!(model.label(&empty), None);
    }

    #[test]
    fn zero_sized_pools_resolve_to_a_working_server() {
        // threads: 0 is the auto convention (one per CPU, capped);
        // queue_capacity: 0 is clamped to 1. Neither may be fatal.
        let config = ServeConfig {
            threads: 0,
            queue_capacity: 0,
            ..ServeConfig::default()
        };
        let handle = Server::start(toy_snapshot(), config).unwrap();
        let addr = handle.addr();
        assert_ne!(addr.port(), 0);
        let metrics = handle.shutdown();
        assert!(metrics.contains("rock-serve-metrics/v1"));
    }
}
