//! The labeling server: registry, worker pool, routing, load shedding,
//! batching, metrics.
//!
//! Architecture (all `std`, no `unsafe`):
//!
//! ```text
//! acceptor shards ──► bounded VecDeque<TcpStream> ──► N worker threads
//!   (S listeners)          (Mutex + Condvar)               │
//!      │                                     parse → route ┤
//!      └── queue full: inline 503 + Retry-After            │
//!                                                          ▼
//!               Registry ──► ModelSlot ──► Batcher ──► label_chunk
//!            (epoch Arc-swap    (per-model group commit)
//!             per model name)
//! ```
//!
//! Each acceptor shard polls a non-blocking clone of the same
//! [`TcpListener`] so accepting never serializes behind one thread, and
//! every shard observes the stop flag between accepts. When the queue
//! is at capacity a shard writes `503 Service Unavailable` with
//! `Retry-After` directly on the accepted socket and closes it —
//! back-pressure is explicit, never an unbounded backlog. Each labeling
//! request runs under a [`Guard`] with a wall-clock [`RunBudget`]; a
//! request that exceeds the deadline mid-batch is answered `503` and
//! counted as shed.
//!
//! Models come from the [`Registry`](crate::registry): `POST /label`
//! pins the `default` model's current entry at dispatch time and
//! `POST /models/{name}/label` pins a named one, so an admin hot swap
//! (`POST /admin/models/{name}`) mid-request is invisible — the request
//! finishes on the model it pinned, and the response's `X-Rock-Model`
//! header names exactly which version answered. Concurrent labeling
//! requests against the same model coalesce through the slot's
//! group-commit [`Batcher`](crate::batch::Batcher) into single labeling
//! kernel calls.
//!
//! Shutdown (`ServerHandle::shutdown`) stops the acceptors, lets the
//! workers drain every queued connection, then renders the final
//! `rock-serve-metrics/v1` document.
//!
//! The workspace forbids `unsafe`, so no `SIGTERM` handler can be
//! installed; the `rock-serve` binary instead treats **stdin close** as
//! the shutdown signal (`kill` the pipe's writer, or press ctrl-D), the
//! conventional dependency-free stand-in.

use std::collections::VecDeque;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rock_core::cast::usize_to_u64;
use rock_core::error::{Result, RockError};
use rock_core::guard::{Guard, RunBudget};
use rock_core::prelude::Transaction;
use rock_core::similarity::Similarity;
use rock_core::snapshot::ModelSnapshot;
use rock_core::telemetry::json::{Json, JsonObj};
use rock_core::telemetry::trace::{LatencyHistogram, Payload};
use rock_core::telemetry::{Metrics, Observer, Phase, PipelineCounters, RunInfo};

use crate::batch::BatchOptions;
use crate::http::{read_request, BodyLimits, HttpError, Request, Response};
use crate::registry::{ModelCounters, Registry, DEFAULT_MODEL};

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads handling connections (`0` = one per available
    /// CPU, capped at 16 — the same auto convention as the clustering
    /// pipeline's `--threads`). A keep-alive connection occupies its
    /// worker until the peer closes (or the idle read times out), so
    /// size this to the expected number of concurrent keep-alive
    /// clients; excess connections wait in the queue.
    pub threads: usize,
    /// Bounded accept-queue capacity; beyond it, connections are shed.
    pub queue_capacity: usize,
    /// Acceptor threads polling the listener (clamped to 1–8). More
    /// shards keep accept latency flat when many clients connect at
    /// once; they all feed the same bounded queue.
    pub accept_shards: usize,
    /// Per-request wall-clock deadline (enforced between batch lines).
    pub deadline: Duration,
    /// Largest accepted request body on non-admin paths, in bytes
    /// (beyond it: 413).
    pub max_body: usize,
    /// Largest accepted `/admin/…` body, in bytes — snapshot uploads
    /// are whole `rock-model/v1` renderings, far bigger than label
    /// queries.
    pub admin_max_body: usize,
    /// Micro-batching: stop waiting for more concurrent labeling
    /// requests once this many points are pending for one model.
    pub batch_max: usize,
    /// Micro-batching: upper bound on how long the first request of a
    /// batch waits for followers. Zero disables the wait (requests
    /// still coalesce when they arrive together). A lone request never
    /// waits regardless.
    pub batch_wait: Duration,
    /// Write a `rock-trace/v1` NDJSON event stream to this path while
    /// the server runs (`None` = tracing disabled, the near-zero-cost
    /// default). Each handled request becomes a `serve.request` span,
    /// each executed batch a `serve.batch` span and each admin swap a
    /// `serve.swap` span; the request- and batch-latency histograms are
    /// flushed at shutdown.
    pub trace: Option<PathBuf>,
    /// Requests slower than this are flagged `"slow":1` in their trace
    /// span payload, making outliers trivially grep-able.
    pub slow_request: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            threads: 4,
            queue_capacity: 64,
            accept_shards: 2,
            deadline: Duration::from_secs(1),
            max_body: 1 << 20,
            admin_max_body: 64 << 20,
            batch_max: 256,
            batch_wait: Duration::from_micros(200),
            trace: None,
            slow_request: Duration::from_millis(100),
        }
    }
}

/// Monotonic request counters, exposed under `"requests"` in the
/// metrics document.
#[derive(Debug, Default)]
struct ServeCounters {
    /// Connections accepted (including ones later shed or rejected).
    accepted: AtomicU64,
    /// Points labeled into a cluster (all models).
    labeled: AtomicU64,
    /// Points answered `{"cluster":null}` under the mark policy.
    outlier: AtomicU64,
    /// Requests refused as client errors (4xx/405/404/501).
    rejected: AtomicU64,
    /// Connections or batches dropped by load shedding (queue full,
    /// deadline exceeded, or no model mounted → 503).
    shed: AtomicU64,
}

/// A point-in-time copy of the server counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Connections accepted.
    pub accepted: u64,
    /// Points labeled into a cluster.
    pub labeled: u64,
    /// Points marked outliers.
    pub outlier: u64,
    /// Client errors.
    pub rejected: u64,
    /// 503 responses from queue or deadline shedding.
    pub shed: u64,
}

impl ServeCounters {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            labeled: self.labeled.load(Ordering::Relaxed),
            outlier: self.outlier.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
        }
    }
}

/// Accept queue guarded by [`Shared::queue`].
#[derive(Default)]
struct Queue {
    conns: VecDeque<TcpStream>,
    /// Set at shutdown: workers drain remaining connections, then exit.
    stopping: bool,
}

/// State shared by the acceptors, the workers and the handle.
struct Shared {
    registry: Arc<Registry>,
    config: ServeConfig,
    counters: ServeCounters,
    observer: Observer,
    queue: Mutex<Queue>,
    available: Condvar,
    stop: AtomicBool,
    started: Instant,
    /// Request-latency histogram (always on — it powers the `latency`
    /// percentiles in `/metrics` whether or not tracing is enabled).
    latency: Mutex<LatencyHistogram>,
    /// Monotonic request ids for trace spans.
    request_seq: AtomicU64,
    /// Labeling requests currently in flight — the batcher's hint that
    /// a leader is alone and should skip the follower wait.
    in_flight: AtomicU64,
}

/// Locks a mutex, recovering the guard if a worker panicked while
/// holding it (counters stay usable; a poisoned queue must not wedge
/// shutdown).
fn lock_queue(shared: &Shared) -> MutexGuard<'_, Queue> {
    match shared.queue.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Same poison recovery for the latency histogram (a record is a pure
/// bucket increment; a panicked holder cannot leave it inconsistent).
fn lock_latency(shared: &Shared) -> MutexGuard<'_, LatencyHistogram> {
    match shared.latency.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// RAII in-flight tally for labeling requests.
struct Flight<'a> {
    counter: &'a AtomicU64,
}

impl<'a> Flight<'a> {
    /// Enters flight; returns the guard and the in-flight count
    /// including this request.
    fn enter(counter: &'a AtomicU64) -> (Self, u64) {
        let now = counter.fetch_add(1, Ordering::Relaxed) + 1;
        (Flight { counter }, now)
    }
}

impl Drop for Flight<'_> {
    fn drop(&mut self) {
        self.counter.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The running server (namespace for [`Server::start`]).
pub struct Server;

impl Server {
    /// Binds `config.addr` and serves `model` as the `default` registry
    /// entry — the single-model convenience over
    /// [`Server::start_with_registry`].
    ///
    /// # Errors
    /// [`RockError::Io`] when the address cannot be bound or a thread
    /// cannot be spawned.
    pub fn start(model: ModelSnapshot, config: ServeConfig) -> Result<ServerHandle> {
        let registry = Arc::new(Registry::new());
        registry.install(DEFAULT_MODEL, model)?;
        Self::start_with_registry(registry, config)
    }

    /// Binds `config.addr`, spawns the acceptor shards and worker
    /// threads over `registry`, and returns a handle for inspection and
    /// shutdown. A thread count of 0 resolves to one worker per
    /// available CPU (capped at 16); explicit counts and the queue
    /// capacity are clamped to at least 1 (a server with no workers or
    /// no queue slots could never answer), and acceptor shards to 1–8.
    /// The registry may start empty: `/healthz` answers `503` until an
    /// admin upload mounts a model.
    ///
    /// # Errors
    /// [`RockError::Io`] when the address cannot be bound or a thread
    /// cannot be spawned.
    pub fn start_with_registry(
        registry: Arc<Registry>,
        config: ServeConfig,
    ) -> Result<ServerHandle> {
        let mut config = config;
        config.threads = match config.threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get().min(16))
                .unwrap_or(1),
            t => t,
        };
        config.queue_capacity = config.queue_capacity.max(1);
        config.accept_shards = config.accept_shards.clamp(1, 8);
        config.batch_max = config.batch_max.max(1);
        let io = |message: String| RockError::Io {
            path: config.addr.clone(),
            message,
        };
        let listener = TcpListener::bind(&config.addr).map_err(|e| io(e.to_string()))?;
        let addr = listener.local_addr().map_err(|e| io(e.to_string()))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| io(e.to_string()))?;

        let shared = Arc::new(Shared {
            registry,
            config,
            counters: ServeCounters::default(),
            observer: Observer::new(),
            queue: Mutex::new(Queue::default()),
            available: Condvar::new(),
            stop: AtomicBool::new(false),
            started: Instant::now(),
            latency: Mutex::new(LatencyHistogram::new()),
            request_seq: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
        });
        if let Some(path) = &shared.config.trace {
            shared.observer.tracer().start_to_path(path, "rock-serve")?;
        }

        let mut workers = Vec::with_capacity(shared.config.threads);
        for i in 0..shared.config.threads {
            let shared = Arc::clone(&shared);
            let worker = std::thread::Builder::new()
                .name(format!("rock-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared, usize_to_u64(i)))
                .map_err(|e| RockError::Io {
                    path: "rock-serve worker".into(),
                    message: e.to_string(),
                })?;
            workers.push(worker);
        }
        let mut acceptors = Vec::with_capacity(shared.config.accept_shards);
        for i in 0..shared.config.accept_shards {
            // Every shard polls its own clone of the same socket; the
            // non-blocking flag set above is shared by all clones.
            let shard_listener = if i + 1 == shared.config.accept_shards {
                None
            } else {
                Some(listener.try_clone().map_err(|e| RockError::Io {
                    path: "rock-serve acceptor".into(),
                    message: e.to_string(),
                })?)
            };
            let shared = Arc::clone(&shared);
            let own = shard_listener;
            let original = if own.is_none() {
                Some(listener.try_clone().map_err(|e| RockError::Io {
                    path: "rock-serve acceptor".into(),
                    message: e.to_string(),
                })?)
            } else {
                None
            };
            let acceptor = std::thread::Builder::new()
                .name(format!("rock-serve-acceptor-{i}"))
                .spawn(move || {
                    if let Some(l) = own.or(original) {
                        accept_loop(&l, &shared);
                    }
                })
                .map_err(|e| RockError::Io {
                    path: "rock-serve acceptor".into(),
                    message: e.to_string(),
                })?;
            acceptors.push(acceptor);
        }

        Ok(ServerHandle {
            shared,
            addr,
            acceptors,
            workers,
        })
    }
}

/// A running server: address, live counters, graceful shutdown.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptors: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time copy of the request counters.
    pub fn counters(&self) -> CounterSnapshot {
        self.shared.counters.snapshot()
    }

    /// The model registry this server serves from.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.shared.registry
    }

    /// The current `rock-serve-metrics/v1` document.
    pub fn metrics_json(&self) -> String {
        render_metrics(&self.shared)
    }

    /// Stops accepting, drains every queued connection, joins all
    /// threads and returns the final metrics document.
    pub fn shutdown(mut self) -> String {
        self.stop_and_join();
        render_metrics(&self.shared)
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        for acceptor in self.acceptors.drain(..) {
            // Each shard observes the flag within one poll interval;
            // joining them first guarantees no connection is enqueued
            // after `stopping` is set.
            acceptor.join().ok();
        }
        // Unblock any worker parked in a batcher wait.
        for slot in self.shared.registry.slots() {
            slot.batcher().shutdown();
        }
        {
            let mut queue = lock_queue(&self.shared);
            queue.stopping = true;
            self.shared.available.notify_all();
        }
        for worker in self.workers.drain(..) {
            worker.join().ok();
        }
        let tracer = self.shared.observer.tracer();
        if tracer.is_enabled() {
            let hist = lock_latency(&self.shared).clone();
            if hist.count() > 0 {
                tracer.record_hist("serve.request_ns", None, &hist);
            }
            let mut batches = LatencyHistogram::new();
            for slot in self.shared.registry.slots() {
                batches.merge(&slot.batch_hist());
            }
            if batches.count() > 0 {
                tracer.record_hist("serve.batch_ns", None, &batches);
            }
            // Best effort: a flush failure at shutdown must not panic a
            // drop path; the trace written so far stays parseable.
            tracer.finish().ok();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // Shutdown-by-drop keeps tests leak-free; `shutdown()` is the
        // intended path and has already emptied the thread handles.
        if !self.acceptors.is_empty() || !self.workers.is_empty() {
            self.stop_and_join();
        }
    }
}

/// Accepts connections until the stop flag is raised, shedding when the
/// queue is full.
fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                ServeCounters::bump(&shared.counters.accepted);
                let mut queue = lock_queue(shared);
                if queue.conns.len() >= shared.config.queue_capacity {
                    drop(queue);
                    ServeCounters::bump(&shared.counters.shed);
                    shed_connection(stream);
                } else {
                    queue.conns.push_back(stream);
                    drop(queue);
                    shared.available.notify_one();
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            // Transient accept errors (e.g. ECONNABORTED) are not fatal.
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Answers a shed connection inline on the acceptor thread. Best
/// effort: the client may already be gone.
fn shed_connection(stream: TcpStream) {
    let mut stream = stream;
    stream.set_nonblocking(false).ok();
    stream
        .set_write_timeout(Some(Duration::from_millis(200)))
        .ok();
    Response::text(503, "Service Unavailable", "queue full\n")
        .header("Retry-After", "1")
        .write_to(&mut stream, false)
        .ok();
}

/// Pops connections until shutdown drains the queue.
fn worker_loop(shared: &Shared, worker: u64) {
    loop {
        let stream = {
            let mut queue = lock_queue(shared);
            loop {
                if let Some(stream) = queue.conns.pop_front() {
                    break stream;
                }
                if queue.stopping {
                    return;
                }
                queue = match shared.available.wait(queue) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        handle_connection(shared, worker, stream);
    }
}

/// Serves one connection: keep-alive request loop, typed error → 4xx/5xx.
fn handle_connection(shared: &Shared, worker: u64, stream: TcpStream) {
    let io_timeout = shared.config.deadline.max(Duration::from_secs(1)) * 2;
    stream.set_read_timeout(Some(io_timeout)).ok();
    stream.set_write_timeout(Some(io_timeout)).ok();
    // Request/response traffic is latency-bound; Nagle + delayed ACK
    // would add ~40ms to every small round-trip.
    stream.set_nodelay(true).ok();
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let limits = BodyLimits {
        default: shared.config.max_body,
        admin: shared.config.admin_max_body,
    };
    let mut reader = BufReader::new(read_half);
    let mut out = stream;
    loop {
        match read_request(&mut reader, &limits) {
            Ok(None) => return,
            Ok(Some(request)) => {
                // Stop keep-alive once shutdown begins so draining
                // terminates after the in-flight request.
                let keep = request.keep_alive && !shared.stop.load(Ordering::Relaxed);
                let span = shared.observer.tracer().begin();
                let clock = Instant::now();
                let response = route(shared, worker, &request);
                let elapsed = clock.elapsed();
                lock_latency(shared).record(duration_ns(elapsed));
                if let Some(s) = span {
                    let id = shared.request_seq.fetch_add(1, Ordering::Relaxed) + 1;
                    let mut payload = Payload::new()
                        .count("request", id)
                        .str("method", &request.method)
                        .str("path", &request.path)
                        .count("status", u64::from(response.status()));
                    if elapsed > shared.config.slow_request {
                        payload = payload.count("slow", 1);
                    }
                    shared
                        .observer
                        .tracer()
                        .end(s, "serve.request", None, worker, payload);
                }
                if response.write_to(&mut out, keep).is_err() || !keep {
                    return;
                }
            }
            Err(error) => {
                respond_to_error(&shared.counters, &mut out, &error);
                return;
            }
        }
    }
}

/// Saturating `Duration` → whole nanoseconds (a request would need to
/// run for ~584 years to clip).
fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Maps a parse failure to its status line; write is best effort.
fn respond_to_error(counters: &ServeCounters, out: &mut TcpStream, error: &HttpError) {
    let response = match error {
        HttpError::Io(_) => return, // peer gone; nothing to say
        HttpError::Malformed(msg) => {
            ServeCounters::bump(&counters.rejected);
            Response::text(400, "Bad Request", format!("{msg}\n"))
        }
        HttpError::BodyTooLarge { declared, limit } => {
            ServeCounters::bump(&counters.rejected);
            Response::text(
                413,
                "Content Too Large",
                format!("body of {declared} bytes exceeds limit of {limit}\n"),
            )
        }
        HttpError::Unsupported(what) => {
            ServeCounters::bump(&counters.rejected);
            Response::text(501, "Not Implemented", format!("{what}\n"))
        }
    };
    response.write_to(out, false).ok();
}

/// Dispatches a parsed request to its endpoint.
fn route(shared: &Shared, worker: u64, request: &Request) -> Response {
    let method = request.method.as_str();
    let path = request.path.as_str();
    match (method, path) {
        ("POST", "/label") => return handle_label(shared, worker, DEFAULT_MODEL, &request.body),
        ("GET", "/healthz") => return handle_healthz(shared),
        ("GET", "/metrics") => return Response::json(200, "OK", render_metrics(shared)),
        ("GET", "/admin/models") => return handle_admin_list(shared),
        _ => {}
    }
    // `/models/{name}/label`: the named-model labeling contract.
    if let Some(name) = path
        .strip_prefix("/models/")
        .and_then(|rest| rest.strip_suffix("/label"))
    {
        if !name.is_empty() && !name.contains('/') {
            return if method == "POST" {
                handle_label(shared, worker, name, &request.body)
            } else {
                method_not_allowed(shared, "POST")
            };
        }
    }
    // `/admin/models/{name}`: upload/activate and unmount.
    if let Some(name) = path.strip_prefix("/admin/models/") {
        if !name.is_empty() && !name.contains('/') {
            return match method {
                "POST" | "PUT" => handle_admin_install(shared, worker, name, &request.body),
                "DELETE" => handle_admin_delete(shared, worker, name),
                _ => method_not_allowed(shared, "POST, PUT, DELETE"),
            };
        }
    }
    match (method, path) {
        ("GET" | "HEAD", "/label")
        | ("POST" | "PUT" | "DELETE", "/healthz" | "/metrics" | "/admin/models") => {
            let allow = if path == "/label" { "POST" } else { "GET" };
            method_not_allowed(shared, allow)
        }
        _ => {
            ServeCounters::bump(&shared.counters.rejected);
            Response::text(404, "Not Found", "not found\n")
        }
    }
}

/// A 405 with its `Allow` header, counted as rejected.
fn method_not_allowed(shared: &Shared, allow: &str) -> Response {
    ServeCounters::bump(&shared.counters.rejected);
    Response::text(405, "Method Not Allowed", "method not allowed\n").header("Allow", allow)
}

/// `GET /healthz`: per-model registry state. `200` while at least one
/// model serves (`"degraded"` when any slot's last swap was rejected),
/// `503` + `Retry-After` when nothing is mounted — e.g. mid swap-drain
/// after a `DELETE`, inviting the probe to retry rather than recording
/// a hard failure.
fn handle_healthz(shared: &Shared) -> Response {
    let rows = shared.registry.status();
    let loaded = rows.iter().filter(|r| r.version > 0).count();
    let degraded = rows
        .iter()
        .any(|r| r.state == crate::registry::ModelState::Degraded);
    let mut models = JsonObj::new(true, 2);
    for row in &rows {
        let mut m = JsonObj::new(true, 3);
        m.str("state", row.state.name())
            .num_u64("version", row.version);
        models.raw(&row.name, &m.end());
    }
    let status = if loaded == 0 {
        "unavailable"
    } else if degraded {
        "degraded"
    } else {
        "ok"
    };
    let mut doc = JsonObj::new(true, 1);
    doc.str("status", status)
        .num_u64("models_loaded", usize_to_u64(loaded))
        .raw("models", &models.end());
    let mut body = doc.end();
    body.push('\n');
    if loaded == 0 {
        Response::json(503, "Service Unavailable", body).header("Retry-After", "1")
    } else {
        Response::json(200, "OK", body)
    }
}

/// `GET /admin/models`: the registry listing with per-model state,
/// versions and counters.
fn handle_admin_list(shared: &Shared) -> Response {
    let rows = shared.registry.status();
    let mut models = JsonObj::new(true, 2);
    for row in &rows {
        let (labeled, outlier, batches, batch_points) = row.counters;
        let mut m = JsonObj::new(true, 3);
        m.str("state", row.state.name())
            .num_u64("version", row.version)
            .str("fingerprint", &row.fingerprint)
            .num_u64("clusters", usize_to_u64(row.clusters))
            .num_u64("representatives", usize_to_u64(row.representatives))
            .num_u64("labeled", labeled)
            .num_u64("outlier", outlier)
            .num_u64("batches", batches)
            .num_u64("batch_points", batch_points)
            .num_u64("swaps", row.swaps)
            .num_u64("rejected_swaps", row.rejected_swaps);
        models.raw(&row.name, &m.end());
    }
    let mut doc = JsonObj::new(true, 1);
    doc.str("schema", "rock-serve-registry/v1")
        .num_u64("models_loaded", shared.registry.models_loaded())
        .num_u64("swaps", shared.registry.swaps())
        .num_u64("rejected_swaps", shared.registry.rejected_swaps())
        .raw("models", &models.end());
    let mut body = doc.end();
    body.push('\n');
    Response::json(200, "OK", body)
}

/// `POST/PUT /admin/models/{name}`: parse, validate and atomically
/// activate an uploaded `rock-model/v1` snapshot. A corrupt, truncated
/// or version-mismatched body is rejected with the prior model still
/// serving; the attempt is visible as `rejected_swaps` and a degraded
/// `/healthz` state.
fn handle_admin_install(shared: &Shared, worker: u64, name: &str, body: &[u8]) -> Response {
    if !Registry::valid_name(name) {
        ServeCounters::bump(&shared.counters.rejected);
        return Response::text(
            400,
            "Bad Request",
            format!("invalid model name {name:?} (1-64 chars of [A-Za-z0-9._-])\n"),
        );
    }
    let Ok(text) = std::str::from_utf8(body) else {
        ServeCounters::bump(&shared.counters.rejected);
        // A non-utf-8 upload can never be a valid snapshot; count it as
        // a rejected swap attempt too so the gauge reflects every
        // failed activation.
        shared.registry.reject_foreign(name);
        return Response::text(400, "Bad Request", "snapshot body is not utf-8\n");
    };
    let span = shared.observer.tracer().begin();
    match shared.registry.install_text(name, text) {
        Ok(report) => {
            if let Some(s) = span {
                let payload = Payload::new()
                    .str("model", name)
                    .count("version", report.entry.version())
                    .count("rejected", 0);
                shared
                    .observer
                    .tracer()
                    .end(s, "serve.swap", None, worker, payload);
            }
            let mut doc = JsonObj::new(true, 1);
            doc.str("model", name)
                .num_u64("version", report.entry.version())
                .str("fingerprint", &report.entry.fingerprint_hex())
                .num_u64("replaced", u64::from(report.replaced));
            let mut body = doc.end();
            body.push('\n');
            Response::json(200, "OK", body)
        }
        Err(error) => {
            ServeCounters::bump(&shared.counters.rejected);
            if let Some(s) = span {
                let payload = Payload::new().str("model", name).count("rejected", 1);
                shared
                    .observer
                    .tracer()
                    .end(s, "serve.swap", None, worker, payload);
            }
            Response::text(400, "Bad Request", format!("snapshot rejected: {error}\n"))
        }
    }
}

/// `DELETE /admin/models/{name}`: unmount. In-flight requests finish on
/// the entry they pinned; new requests see the slot empty.
fn handle_admin_delete(shared: &Shared, worker: u64, name: &str) -> Response {
    match shared.registry.remove(name) {
        Some(version) => {
            let span = shared.observer.tracer().begin();
            if let Some(s) = span {
                let payload = Payload::new()
                    .str("model", name)
                    .count("removed", version)
                    .count("rejected", 0);
                shared
                    .observer
                    .tracer()
                    .end(s, "serve.swap", None, worker, payload);
            }
            let mut doc = JsonObj::new(true, 1);
            doc.str("model", name).num_u64("removed_version", version);
            let mut body = doc.end();
            body.push('\n');
            Response::json(200, "OK", body)
        }
        None => {
            ServeCounters::bump(&shared.counters.rejected);
            Response::text(404, "Not Found", format!("no model {name:?}\n"))
        }
    }
}

/// `POST /label` and `POST /models/{name}/label`: one JSON object per
/// line (a single object is a batch of one); each line answers
/// `{"cluster":<id>}` or `{"cluster":null}`, labeled by the model entry
/// pinned at dispatch time (named by the `X-Rock-Model` response
/// header). Points flow through the model's group-commit batcher so
/// concurrent requests share labeling kernel calls.
fn handle_label(shared: &Shared, worker: u64, model_name: &str, body: &[u8]) -> Response {
    let (_flight, in_flight) = Flight::enter(&shared.in_flight);
    // Pin the active entry now: a hot swap from here on is invisible to
    // this request.
    let Some((slot, entry)) = shared.registry.resolve(model_name) else {
        return if model_name == DEFAULT_MODEL {
            // Nothing mounted (or a swap drain removed it): shed with a
            // retry hint rather than failing hard.
            ServeCounters::bump(&shared.counters.shed);
            Response::text(503, "Service Unavailable", "no model loaded\n")
                .header("Retry-After", "1")
        } else {
            ServeCounters::bump(&shared.counters.rejected);
            Response::text(404, "Not Found", format!("no model {model_name:?}\n"))
        };
    };
    let model = entry.snapshot();
    let Ok(text) = std::str::from_utf8(body) else {
        ServeCounters::bump(&shared.counters.rejected);
        return Response::text(400, "Bad Request", "body is not utf-8\n");
    };
    let guard = Guard::new(RunBudget::unlimited().wall(shared.config.deadline));
    let mut points: Vec<Transaction> = Vec::new();
    let mut lines = 0usize;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if guard
            .checkpoint(Phase::Labeling, &shared.observer)
            .is_some()
        {
            // Deadline exceeded mid-batch: shed the rest rather than
            // hold a worker hostage. 503 invites a retry with a
            // smaller batch.
            ServeCounters::bump(&shared.counters.shed);
            return Response::text(503, "Service Unavailable", "deadline exceeded\n")
                .header("Retry-After", "1");
        }
        lines += 1;
        match parse_query(model, line) {
            Ok(point) => points.push(point),
            Err(message) => {
                ServeCounters::bump(&shared.counters.rejected);
                return Response::text(400, "Bad Request", format!("line {lines}: {message}\n"));
            }
        }
    }
    if lines == 0 {
        ServeCounters::bump(&shared.counters.rejected);
        return Response::text(400, "Bad Request", "empty body\n");
    }
    let opts = BatchOptions {
        max_points: shared.config.batch_max,
        max_wait: shared.config.batch_wait,
        threads: 1,
    };
    let span = shared.observer.tracer().begin();
    let (labels, report) = slot.batcher().submit(&entry, points, &opts, in_flight <= 1);
    if let Some(report) = report {
        slot.record_batch_ns(report.elapsed_ns);
        ModelCounters::add(&slot.counters().batches, 1);
        ModelCounters::add(&slot.counters().batch_points, report.points);
        if let Some(s) = span {
            let payload = Payload::new()
                .str("model", slot.name())
                .count("jobs", report.jobs)
                .count("points", report.points);
            shared
                .observer
                .tracer()
                .end(s, "serve.batch", Some(Phase::Labeling), worker, payload);
        }
    }
    let mut answers = String::new();
    let mut labeled = 0u64;
    let mut outliers = 0u64;
    for label in &labels {
        match label {
            Some(cluster) => {
                labeled += 1;
                answers.push_str(&format!("{{\"cluster\":{cluster}}}\n"));
            }
            None => {
                outliers += 1;
                answers.push_str("{\"cluster\":null}\n");
            }
        }
    }
    ServeCounters::add(&shared.counters.labeled, labeled);
    ServeCounters::add(&shared.counters.outlier, outliers);
    ModelCounters::add(&slot.counters().labeled, labeled);
    ModelCounters::add(&slot.counters().outlier, outliers);
    PipelineCounters::add(&shared.observer.counters().points_labeled, labeled);
    PipelineCounters::add(
        &shared.observer.counters().labeling_evaluations,
        usize_to_u64(lines) * usize_to_u64(model.representatives().total()),
    );
    Response::json(200, "OK", answers)
        .header(
            "X-Rock-Model",
            &format!("{}@v{}", slot.name(), entry.version()),
        )
        .header("X-Rock-Model-Fingerprint", &entry.fingerprint_hex())
}

/// Parses one query line into a [`Transaction`] against the snapshot.
///
/// Accepted shapes: `{"items":[0,3,7]}` (raw interned ids),
/// `{"record":["a","b",…]}` (textual cells through the snapshot
/// vocabulary, `"?"` treated as missing) and `{"basket":["milk",…]}`
/// (market-basket item names). Unknown record/basket values contribute
/// no item — exactly as the offline `rock-cluster label` path behaves.
fn parse_query(model: &ModelSnapshot, line: &str) -> std::result::Result<Transaction, String> {
    let value = Json::parse(line).map_err(|e| format!("bad json: {e}"))?;
    if value.fields().is_none() {
        return Err("expected a json object".into());
    }
    if let Some(items) = value.get("items") {
        let Json::Arr(items) = items else {
            return Err("\"items\" must be an array of integers".into());
        };
        let mut ids = Vec::with_capacity(items.len());
        for item in items {
            let id = item
                .as_u64()
                .and_then(|v| u32::try_from(v).ok())
                .ok_or_else(|| "\"items\" must be an array of integers".to_string())?;
            if (id as usize) >= model.universe() {
                return Err(format!(
                    "item id {id} out of range (universe {})",
                    model.universe()
                ));
            }
            ids.push(id);
        }
        return Ok(Transaction::new(ids));
    }
    if let Some(record) = value.get("record") {
        let cells = string_array(record, "record")?;
        return model
            .transaction_from_cells(&cells.iter().map(String::as_str).collect::<Vec<_>>(), "?")
            .map_err(|e| e.to_string());
    }
    if let Some(basket) = value.get("basket") {
        let names = string_array(basket, "basket")?;
        return model
            .transaction_from_basket(names.iter().map(String::as_str))
            .map_err(|e| e.to_string());
    }
    Err("object needs one of \"items\", \"record\" or \"basket\"".into())
}

/// Extracts an all-strings array field or explains why it isn't one.
fn string_array(value: &Json, field: &str) -> std::result::Result<Vec<String>, String> {
    let Json::Arr(entries) = value else {
        return Err(format!("\"{field}\" must be an array of strings"));
    };
    entries
        .iter()
        .map(|e| {
            e.as_str()
                .map(str::to_owned)
                .ok_or_else(|| format!("\"{field}\" must be an array of strings"))
        })
        .collect()
}

/// Renders the `rock-serve-metrics/v1` document: server counters,
/// registry gauges, per-model blocks and model facts wrapped around the
/// core `rock-metrics/v1` schema. The `model` block reports the
/// `default` registry entry (zeros when nothing is mounted there) so
/// single-model deployments keep their familiar shape.
fn render_metrics(shared: &Shared) -> String {
    let counters = shared.counters.snapshot();
    let uptime = shared.started.elapsed();
    let outliers = usize::try_from(counters.outlier).unwrap_or(usize::MAX);
    let default_entry = shared
        .registry
        .resolve(DEFAULT_MODEL)
        .map(|(_, entry)| entry);
    let default_model = default_entry.as_ref().map(|e| e.snapshot());
    let core = Metrics::collect(
        &shared.observer,
        RunInfo {
            experiment: "rock-serve".into(),
            n: usize::try_from(counters.labeled).unwrap_or(usize::MAX),
            k: default_model.map_or(0, |m| m.num_clusters()),
            theta: default_model.map_or(0.0, |m| m.theta()),
            seed: 0,
            sample_size: default_model.map_or(0, |m| m.representatives().total()),
            clusters: default_model.map_or(0, |m| m.num_clusters()),
            outliers,
        },
        uptime,
    );

    let mut requests = JsonObj::new(true, 2);
    requests
        .num_u64("accepted", counters.accepted)
        .num_u64("labeled", counters.labeled)
        .num_u64("outlier", counters.outlier)
        .num_u64("rejected", counters.rejected)
        .num_u64("shed", counters.shed);

    let hist = lock_latency(shared).clone();
    let ms = |ns: u64| rock_core::cast::u64_to_f64(ns) / 1.0e6;
    let mut latency = JsonObj::new(true, 2);
    latency
        .num_u64("count", hist.count())
        .num_f64("p50_ms", ms(hist.percentile(0.50)))
        .num_f64("p90_ms", ms(hist.percentile(0.90)))
        .num_f64("p99_ms", ms(hist.percentile(0.99)))
        .num_f64("max_ms", ms(hist.max()));

    let mut model = JsonObj::new(true, 2);
    model
        .num_u64(
            "clusters",
            usize_to_u64(default_model.map_or(0, |m| m.num_clusters())),
        )
        .num_u64(
            "representatives",
            usize_to_u64(default_model.map_or(0, |m| m.representatives().total())),
        )
        .num_u64(
            "universe",
            usize_to_u64(default_model.map_or(0, |m| m.universe())),
        )
        .num_f64("theta", default_model.map_or(0.0, |m| m.theta()))
        .num_f64("exponent", default_model.map_or(0.0, |m| m.exponent()))
        .str(
            "similarity",
            default_model.map_or("none", |m| m.similarity().name()),
        )
        .str(
            "policy",
            default_model.map_or("none", |m| m.policy().name()),
        );

    let mut registry = JsonObj::new(true, 2);
    registry
        .num_u64("models_loaded", shared.registry.models_loaded())
        .num_u64("swaps", shared.registry.swaps())
        .num_u64("rejected_swaps", shared.registry.rejected_swaps());

    let mut models = JsonObj::new(true, 2);
    for slot in shared.registry.slots() {
        let entry = slot.current();
        let (labeled, outlier, batches, batch_points) = slot.counters().snapshot();
        let batch_hist = slot.batch_hist();
        let mut m = JsonObj::new(true, 3);
        m.str("state", slot.state().name())
            .num_u64("version", entry.as_ref().map_or(0, |e| e.version()))
            .str(
                "fingerprint",
                &entry
                    .as_ref()
                    .map_or_else(String::new, |e| e.fingerprint_hex()),
            )
            .num_u64("labeled", labeled)
            .num_u64("outlier", outlier)
            .num_u64("batches", batches)
            .num_u64("batch_points", batch_points)
            .num_u64("swaps", slot.swaps())
            .num_u64("rejected_swaps", slot.rejected_swaps())
            .num_u64("batch_count", batch_hist.count())
            .num_f64("batch_p50_ms", ms(batch_hist.percentile(0.50)))
            .num_f64("batch_p99_ms", ms(batch_hist.percentile(0.99)))
            .num_f64("batch_max_ms", ms(batch_hist.max()));
        models.raw(slot.name(), &m.end());
    }

    let mut doc = JsonObj::new(true, 1);
    doc.str("schema", "rock-serve-metrics/v1")
        .num_f64("uptime_secs", uptime.as_secs_f64())
        .raw("requests", &requests.end())
        .raw("latency", &latency.end())
        .raw("model", &model.end())
        .raw("registry", &registry.end())
        .raw("models", &models.end())
        .raw("core", &indent_block(&core.to_json()));
    let mut text = doc.end();
    text.push('\n');
    text
}

/// Re-indents an embedded pretty JSON document one level deeper so the
/// composed `rock-serve-metrics/v1` output stays readable.
fn indent_block(json: &str) -> String {
    let mut out = String::with_capacity(json.len());
    for (i, line) in json.trim_end().lines().enumerate() {
        if i > 0 {
            out.push('\n');
            out.push_str("  ");
        }
        out.push_str(line);
    }
    out
}

/// Writes `metrics` to `path`, or to stderr when `path` is `None`.
///
/// # Errors
/// [`RockError::Io`] when the file cannot be written.
pub fn flush_metrics(metrics: &str, path: Option<&std::path::Path>) -> Result<()> {
    match path {
        Some(path) => std::fs::write(path, metrics).map_err(|e| RockError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        }),
        None => {
            let mut err = std::io::stderr().lock();
            err.write_all(metrics.as_bytes()).ok();
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ModelState;
    use rock_core::labeling::Representatives;
    use rock_core::snapshot::{OutlierPolicy, SimilarityKind};

    /// Two clusters over a 6-item universe: {0,1,2} and {3,4,5}.
    fn toy_snapshot() -> ModelSnapshot {
        let reps = Representatives::from_sets(vec![
            vec![Transaction::new([0, 1, 2]), Transaction::new([0, 1, 2])],
            vec![Transaction::new([3, 4, 5])],
        ]);
        ModelSnapshot::new(
            0.5,
            1.0,
            SimilarityKind::Jaccard,
            OutlierPolicy::Mark,
            6,
            None,
            reps,
        )
        .unwrap()
    }

    /// The same universe with the cluster order flipped, so the same
    /// probe labels differently — a distinguishable second model.
    fn flipped_snapshot() -> ModelSnapshot {
        let reps = Representatives::from_sets(vec![
            vec![Transaction::new([3, 4, 5])],
            vec![Transaction::new([0, 1, 2])],
        ]);
        ModelSnapshot::new(
            0.5,
            1.0,
            SimilarityKind::Jaccard,
            OutlierPolicy::Mark,
            6,
            None,
            reps,
        )
        .unwrap()
    }

    fn shared() -> Shared {
        shared_with_registry({
            let registry = Arc::new(Registry::new());
            registry.install(DEFAULT_MODEL, toy_snapshot()).unwrap();
            registry
        })
    }

    fn shared_with_registry(registry: Arc<Registry>) -> Shared {
        Shared {
            registry,
            config: ServeConfig::default(),
            counters: ServeCounters::default(),
            observer: Observer::new(),
            queue: Mutex::new(Queue::default()),
            available: Condvar::new(),
            stop: AtomicBool::new(false),
            started: Instant::now(),
            latency: Mutex::new(LatencyHistogram::new()),
            request_seq: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
        }
    }

    fn req(method: &str, path: &str, body: &[u8]) -> Request {
        Request {
            method: method.into(),
            path: path.into(),
            body: body.to_vec(),
            keep_alive: true,
        }
    }

    #[test]
    fn label_batch_answers_one_line_per_query() {
        let s = shared();
        let body = b"{\"items\":[0,1,2]}\n{\"items\":[3,4]}\n\n{\"items\":[0]}\n";
        let resp = handle_label(&s, 0, DEFAULT_MODEL, body);
        assert_eq!(resp.status(), 200);
        let counters = s.counters.snapshot();
        assert_eq!(counters.labeled + counters.outlier, 3);
        // Per-model counters track the same points.
        let (labeled, outlier, batches, batch_points) = s
            .registry
            .slot(DEFAULT_MODEL)
            .unwrap()
            .counters()
            .snapshot();
        assert_eq!(labeled + outlier, 3);
        assert_eq!(batches, 1);
        assert_eq!(batch_points, 3);
    }

    #[test]
    fn label_rejects_bad_lines_with_400() {
        let s = shared();
        for body in [
            &b"not json"[..],
            b"[1,2,3]",
            b"{\"wrong\":[]}",
            b"{\"items\":[\"a\"]}",
            b"{\"items\":[99]}",
            b"{\"record\":[1]}",
            b"",
            b"\xff\xfe",
        ] {
            let resp = handle_label(&s, 0, DEFAULT_MODEL, body);
            assert_eq!(resp.status(), 400, "body {body:?}");
        }
        assert_eq!(s.counters.snapshot().rejected, 8);
    }

    #[test]
    fn deadline_mid_batch_sheds_with_503() {
        let mut s = shared();
        s.config.deadline = Duration::from_secs(0);
        let resp = handle_label(&s, 0, DEFAULT_MODEL, b"{\"items\":[0]}\n");
        assert_eq!(resp.status(), 503);
        assert_eq!(s.counters.snapshot().shed, 1);
    }

    #[test]
    fn label_without_a_default_model_sheds_with_503() {
        let s = shared_with_registry(Arc::new(Registry::new()));
        let resp = handle_label(&s, 0, DEFAULT_MODEL, b"{\"items\":[0]}\n");
        assert_eq!(resp.status(), 503);
        assert_eq!(s.counters.snapshot().shed, 1);
    }

    #[test]
    fn named_label_routes_to_that_model_and_unknown_is_404() {
        let s = shared();
        s.registry.install("flipped", flipped_snapshot()).unwrap();
        let body = b"{\"items\":[0,1,2]}\n";
        let default = route(&s, 0, &req("POST", "/label", body));
        assert_eq!(default.status(), 200);
        let named = route(&s, 0, &req("POST", "/models/flipped/label", body));
        assert_eq!(named.status(), 200);
        // Same probe, opposite clusters: the two models are distinct.
        let (dl, _, _, _) = s
            .registry
            .slot(DEFAULT_MODEL)
            .unwrap()
            .counters()
            .snapshot();
        let (fl, _, _, _) = s.registry.slot("flipped").unwrap().counters().snapshot();
        assert_eq!((dl, fl), (1, 1));
        let missing = route(&s, 0, &req("POST", "/models/nope/label", body));
        assert_eq!(missing.status(), 404);
        let wrong_method = route(&s, 0, &req("GET", "/models/flipped/label", b""));
        assert_eq!(wrong_method.status(), 405);
    }

    #[test]
    fn admin_install_swap_delete_lifecycle() {
        let s = shared();
        // Install a second model.
        let upload = flipped_snapshot().render();
        let resp = route(
            &s,
            0,
            &req("POST", "/admin/models/flipped", upload.as_bytes()),
        );
        assert_eq!(resp.status(), 200);
        // Hot-swap the default.
        let resp = route(
            &s,
            0,
            &req("POST", "/admin/models/default", upload.as_bytes()),
        );
        assert_eq!(resp.status(), 200);
        let (_, entry) = s.registry.resolve(DEFAULT_MODEL).unwrap();
        assert_eq!(entry.version(), 2);
        assert_eq!(
            entry.snapshot().label(&Transaction::new([0, 1, 2])),
            Some(1)
        );
        // Delete and verify 404 on re-delete.
        assert_eq!(
            route(&s, 0, &req("DELETE", "/admin/models/flipped", b"")).status(),
            200
        );
        assert_eq!(
            route(&s, 0, &req("DELETE", "/admin/models/flipped", b"")).status(),
            404
        );
        // Listing reflects the registry.
        let listing = route(&s, 0, &req("GET", "/admin/models", b""));
        assert_eq!(listing.status(), 200);
    }

    #[test]
    fn corrupt_admin_upload_keeps_old_model_serving() {
        let s = shared();
        let corrupt = flipped_snapshot()
            .render()
            .replace("similarity jaccard", "similarity jaccarD");
        let resp = route(
            &s,
            0,
            &req("POST", "/admin/models/default", corrupt.as_bytes()),
        );
        assert_eq!(resp.status(), 400);
        // Old model intact and serving.
        let (slot, entry) = s.registry.resolve(DEFAULT_MODEL).unwrap();
        assert_eq!(entry.version(), 1);
        assert_eq!(slot.state(), ModelState::Degraded);
        assert_eq!(s.registry.rejected_swaps(), 1);
        let labeled = handle_label(&s, 0, DEFAULT_MODEL, b"{\"items\":[0,1,2]}\n");
        assert_eq!(labeled.status(), 200);
        // Bad names and non-utf-8 bodies are rejected too.
        assert_eq!(
            route(&s, 0, &req("POST", "/admin/models/bad%20name", b"x")).status(),
            400
        );
        assert_eq!(
            route(&s, 0, &req("POST", "/admin/models/ok", b"\xff\xfe")).status(),
            400
        );
    }

    #[test]
    fn healthz_reports_per_model_state() {
        // Empty registry: 503 with a retry hint.
        let empty = shared_with_registry(Arc::new(Registry::new()));
        let resp = handle_healthz(&empty);
        assert_eq!(resp.status(), 503);
        // Ready: 200 with per-model rows.
        let s = shared();
        let resp = handle_healthz(&s);
        assert_eq!(resp.status(), 200);
        // Degraded after a rejected swap, recovered by a good one.
        s.registry
            .install_text(DEFAULT_MODEL, "garbage")
            .unwrap_err();
        let resp = route(&s, 0, &req("GET", "/healthz", b""));
        assert_eq!(resp.status(), 200);
        s.registry
            .install_text(DEFAULT_MODEL, &toy_snapshot().render())
            .unwrap();
        assert_eq!(
            s.registry.slot(DEFAULT_MODEL).unwrap().state(),
            ModelState::Ready
        );
    }

    #[test]
    fn routes_404_405_and_health() {
        let s = shared();
        let get = |method: &str, path: &str| req(method, path, b"");
        assert_eq!(route(&s, 0, &get("GET", "/healthz")).status(), 200);
        assert_eq!(route(&s, 0, &get("GET", "/metrics")).status(), 200);
        assert_eq!(route(&s, 0, &get("GET", "/label")).status(), 405);
        assert_eq!(route(&s, 0, &get("POST", "/metrics")).status(), 405);
        assert_eq!(route(&s, 0, &get("PUT", "/admin/models")).status(), 405);
        assert_eq!(route(&s, 0, &get("GET", "/nope")).status(), 404);
        assert_eq!(s.counters.snapshot().rejected, 4);
    }

    #[test]
    fn metrics_document_embeds_core_schema() {
        let s = shared();
        handle_label(&s, 0, DEFAULT_MODEL, b"{\"items\":[0,1,2]}\n");
        let doc = render_metrics(&s);
        let parsed = Json::parse(&doc).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("rock-serve-metrics/v1")
        );
        let requests = parsed.get("requests").unwrap();
        assert_eq!(requests.get("labeled").and_then(Json::as_u64), Some(1));
        let core = parsed.get("core").unwrap();
        assert_eq!(
            core.get("schema").and_then(Json::as_str),
            Some("rock-metrics/v1")
        );
        let model = parsed.get("model").unwrap();
        assert_eq!(model.get("clusters").and_then(Json::as_u64), Some(2));
        // Registry gauges and the per-model block.
        let registry = parsed.get("registry").unwrap();
        assert_eq!(
            registry.get("models_loaded").and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(registry.get("swaps").and_then(Json::as_u64), Some(1));
        let models = parsed.get("models").unwrap();
        let default = models.get("default").unwrap();
        assert_eq!(default.get("state").and_then(Json::as_str), Some("ready"));
        assert_eq!(default.get("labeled").and_then(Json::as_u64), Some(1));
        assert_eq!(default.get("batches").and_then(Json::as_u64), Some(1));
        assert!(default.get("batch_p50_ms").and_then(Json::as_f64).is_some());
    }

    #[test]
    fn metrics_latency_percentiles_track_recorded_requests() {
        let s = shared();
        // One exact-power bucket (1024ns) dominates, so every quantile
        // reports that bucket's upper bound.
        for _ in 0..10 {
            lock_latency(&s).record(1024);
        }
        let doc = render_metrics(&s);
        let parsed = Json::parse(&doc).unwrap();
        let latency = parsed.get("latency").unwrap();
        assert_eq!(latency.get("count").and_then(Json::as_u64), Some(10));
        for key in ["p50_ms", "p90_ms", "p99_ms", "max_ms"] {
            let v = latency.get(key).and_then(Json::as_f64).unwrap();
            assert!(v > 0.0, "{key} should be positive, got {v}");
        }
    }

    #[test]
    fn record_and_basket_queries_work_when_vocabulary_present() {
        use rock_core::prelude::Vocabulary;
        let mut vocab = Vocabulary::new();
        vocab.intern_basket("milk");
        vocab.intern_basket("eggs");
        let model = ModelSnapshot::new(
            0.5,
            1.0,
            SimilarityKind::Jaccard,
            OutlierPolicy::Mark,
            2,
            Some(vocab),
            Representatives::from_sets(vec![vec![Transaction::new([0, 1])]]),
        )
        .unwrap();
        let point = parse_query(&model, "{\"basket\":[\"milk\",\"eggs\",\"unknown\"]}").unwrap();
        assert_eq!(model.label(&point), Some(0));
        // Record queries need an attribute vocabulary; basket-interned
        // snapshots simply find no matching (attr, value) keys.
        let empty = parse_query(&model, "{\"record\":[\"milk\"]}").unwrap();
        assert_eq!(model.label(&empty), None);
    }

    #[test]
    fn zero_sized_pools_resolve_to_a_working_server() {
        // threads: 0 is the auto convention (one per CPU, capped);
        // queue_capacity: 0 is clamped to 1; accept_shards: 0 to 1.
        // None may be fatal.
        let config = ServeConfig {
            threads: 0,
            queue_capacity: 0,
            accept_shards: 0,
            ..ServeConfig::default()
        };
        let handle = Server::start(toy_snapshot(), config).unwrap();
        let addr = handle.addr();
        assert_ne!(addr.port(), 0);
        let metrics = handle.shutdown();
        assert!(metrics.contains("rock-serve-metrics/v1"));
    }
}
