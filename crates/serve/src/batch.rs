//! Per-model micro-batching: group-commit for the labeling kernel.
//!
//! Labeling one point is cheap; the per-request overhead around it
//! (parsing, queueing, syscalls) is not. When several requests arrive
//! together, labeling them as one kernel call amortizes that overhead —
//! the same leader/follower group-commit idea write-ahead logs use:
//!
//! * The first submitter becomes the **leader**: it waits a bounded
//!   interval (`max_wait`) for followers to pile on — or not at all
//!   when it is alone (`solo`), so an idle server keeps its
//!   single-request latency — then drains *every* pending job and runs
//!   the labeling kernel once per pinned model entry.
//! * Later submitters are **followers**: they enqueue their points,
//!   wake the leader, and sleep until their job's results are filled.
//!
//! Each job carries the [`ModelEntry`] it pinned at dispatch time, so a
//! hot swap mid-batch is harmless: the drained batch is grouped by
//! entry and every job is labeled by exactly the model that was active
//! when its request resolved — the zero-downtime invariant the reload
//! soak in `exp_serve` asserts.
//!
//! The batcher is deadlock-free by construction: a leader always exists
//! while jobs are queued (the drain clears the queue and the leader
//! flag together under one lock), and [`Batcher::shutdown`] lets a
//! follower whose job was never drained reclaim it and label inline.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use rock_core::cast::usize_to_u64;
use rock_core::prelude::Transaction;

use crate::registry::ModelEntry;

/// Knobs for one submission (the server threads its config through).
#[derive(Debug, Clone, Copy)]
pub struct BatchOptions {
    /// Stop waiting for followers once this many points are pending.
    /// The drain still takes *all* pending jobs — the cap bounds the
    /// wait, never strands work.
    pub max_points: usize,
    /// Upper bound on how long a leader waits for followers.
    pub max_wait: Duration,
    /// Worker threads for the labeling kernel (`label_chunk`) per
    /// batch; 1 keeps labeling on the submitting thread.
    pub threads: usize,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            max_points: 256,
            max_wait: Duration::from_micros(200),
            threads: 1,
        }
    }
}

/// What a leader reports after executing a batch (followers report
/// nothing — their work is counted by their leader).
#[derive(Debug, Clone, Copy)]
pub struct BatchReport {
    /// Jobs coalesced into the batch (≥ 1).
    pub jobs: u64,
    /// Points labeled across those jobs.
    pub points: u64,
    /// Wall time from submission to batch completion, nanoseconds.
    pub elapsed_ns: u64,
}

/// One submission: the points, the model entry pinned at dispatch, and
/// the completion flag + results the leader fills.
struct Job {
    entry: Arc<ModelEntry>,
    points: Vec<Transaction>,
    results: Mutex<Vec<Option<usize>>>,
    done: AtomicBool,
}

/// Pending jobs plus the leader election flag, under one mutex.
struct BatchState {
    jobs: Vec<Arc<Job>>,
    points: usize,
    leader: bool,
}

/// A per-model group-commit queue. See the module docs for protocol.
pub struct Batcher {
    state: Mutex<BatchState>,
    /// Wakes a waiting leader when a follower enqueues work.
    work: Condvar,
    /// Wakes followers when a leader finishes their jobs.
    ready: Condvar,
    stop: AtomicBool,
}

fn lock<'a, T>(mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Default for Batcher {
    fn default() -> Self {
        Batcher::new()
    }
}

impl Batcher {
    /// An empty batcher.
    pub fn new() -> Self {
        Batcher {
            state: Mutex::new(BatchState {
                jobs: Vec::new(),
                points: 0,
                leader: false,
            }),
            work: Condvar::new(),
            ready: Condvar::new(),
            stop: AtomicBool::new(false),
        }
    }

    /// Tells waiting leaders/followers to drain and exit promptly
    /// (server shutdown). Idempotent.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        let state = lock(&self.state);
        self.work.notify_all();
        self.ready.notify_all();
        drop(state);
    }

    /// Labels `points` against `entry`, coalescing with concurrent
    /// submissions. Blocks until this submission's results are ready;
    /// output order matches input order. `solo` is the caller's hint
    /// that no other labeling request is in flight, which skips the
    /// follower wait so an idle server pays no batching latency.
    pub fn submit(
        &self,
        entry: &Arc<ModelEntry>,
        points: Vec<Transaction>,
        opts: &BatchOptions,
        solo: bool,
    ) -> (Vec<Option<usize>>, Option<BatchReport>) {
        let n = points.len();
        if n == 0 {
            return (Vec::new(), None);
        }
        let started = Instant::now();
        let job = Arc::new(Job {
            entry: Arc::clone(entry),
            points,
            results: Mutex::new(Vec::new()),
            done: AtomicBool::new(false),
        });
        let lead = {
            let mut state = lock(&self.state);
            state.jobs.push(Arc::clone(&job));
            state.points += n;
            if state.leader {
                // A leader is collecting: ride its batch and wake it in
                // case it is waiting on the point threshold.
                self.work.notify_one();
                false
            } else {
                state.leader = true;
                true
            }
        };
        if lead {
            self.lead(&job, opts, solo, started)
        } else {
            (self.follow(&job, opts), None)
        }
    }

    /// Leader path: bounded wait for followers, drain everything,
    /// execute, publish.
    fn lead(
        &self,
        job: &Arc<Job>,
        opts: &BatchOptions,
        solo: bool,
        started: Instant,
    ) -> (Vec<Option<usize>>, Option<BatchReport>) {
        let deadline = started + opts.max_wait;
        let (batch, points) = {
            let mut state = lock(&self.state);
            while !solo && state.points < opts.max_points && !self.stop.load(Ordering::Acquire) {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let wait = deadline.saturating_duration_since(now);
                let (next, timed_out) = match self.work.wait_timeout(state, wait) {
                    Ok((guard, result)) => (guard, result.timed_out()),
                    Err(poisoned) => {
                        let (guard, result) = poisoned.into_inner();
                        (guard, result.timed_out())
                    }
                };
                state = next;
                if timed_out {
                    break;
                }
            }
            // Drain ALL pending jobs (not just max_points worth) and
            // release leadership in the same critical section, so the
            // next submitter elects itself leader of the next batch.
            let batch = std::mem::take(&mut state.jobs);
            let points = state.points;
            state.points = 0;
            state.leader = false;
            (batch, points)
        };
        let jobs = usize_to_u64(batch.len());
        Self::execute(batch, opts.threads);
        // Lock-then-notify so a follower between its done-check and its
        // wait cannot miss the wakeup.
        let state = lock(&self.state);
        self.ready.notify_all();
        drop(state);
        let results = std::mem::take(&mut *lock(&job.results));
        let elapsed_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let report = BatchReport {
            jobs,
            points: usize_to_u64(points),
            elapsed_ns,
        };
        (results, Some(report))
    }

    /// Follower path: sleep until the leader fills our results. If
    /// shutdown fires while our job is still queued (leader already
    /// drained without us and exited), reclaim it and label inline.
    fn follow(&self, job: &Arc<Job>, opts: &BatchOptions) -> Vec<Option<usize>> {
        let mut state = lock(&self.state);
        while !job.done.load(Ordering::Acquire) {
            if self.stop.load(Ordering::Acquire) {
                if let Some(pos) = state.jobs.iter().position(|j| Arc::ptr_eq(j, job)) {
                    let mine = state.jobs.remove(pos);
                    state.points = state.points.saturating_sub(mine.points.len());
                    drop(state);
                    let refs: Vec<&Transaction> = mine.points.iter().collect();
                    return mine.entry.snapshot().label_chunk(&refs, opts.threads);
                }
                // Already drained: a leader is executing it; keep
                // waiting for the done flag.
            }
            let (next, _) = match self.ready.wait_timeout(state, Duration::from_millis(10)) {
                Ok((guard, result)) => (guard, result),
                Err(poisoned) => poisoned.into_inner(),
            };
            state = next;
        }
        drop(state);
        std::mem::take(&mut *lock(&job.results))
    }

    /// Runs the labeling kernel once per pinned entry: consecutive jobs
    /// sharing an entry label as one kernel call; a batch straddling a
    /// hot swap splits into one call per model version, so every job is
    /// answered by exactly the entry it pinned at dispatch.
    fn execute(batch: Vec<Arc<Job>>, threads: usize) {
        let mut groups: Vec<Vec<Arc<Job>>> = Vec::new();
        for job in batch {
            match groups.last_mut() {
                Some(group)
                    if group
                        .last()
                        .is_some_and(|prev| Arc::ptr_eq(&prev.entry, &job.entry)) =>
                {
                    group.push(job);
                }
                _ => groups.push(vec![job]),
            }
        }
        for group in &groups {
            let Some(first) = group.first() else {
                continue;
            };
            let refs: Vec<&Transaction> = group.iter().flat_map(|j| j.points.iter()).collect();
            let labels = first.entry.snapshot().label_chunk(&refs, threads);
            let mut it = labels.into_iter();
            for j in group {
                *lock(&j.results) = it.by_ref().take(j.points.len()).collect();
                j.done.store(true, Ordering::Release);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ModelEntry;
    use rock_core::labeling::Representatives;
    use rock_core::snapshot::{ModelSnapshot, OutlierPolicy, SimilarityKind};

    fn entry(first: [u32; 3], second: [u32; 3], version: u64) -> Arc<ModelEntry> {
        let reps = Representatives::from_sets(vec![
            vec![Transaction::new(first)],
            vec![Transaction::new(second)],
        ]);
        let snapshot = ModelSnapshot::new(
            0.5,
            1.0,
            SimilarityKind::Jaccard,
            OutlierPolicy::Mark,
            6,
            None,
            reps,
        )
        .unwrap();
        Arc::new(ModelEntry::new(snapshot, version))
    }

    fn points(reps: &[[u32; 3]]) -> Vec<Transaction> {
        reps.iter().map(|r| Transaction::new(*r)).collect()
    }

    #[test]
    fn solo_submit_labels_inline_with_a_report() {
        let b = Batcher::new();
        let e = entry([0, 1, 2], [3, 4, 5], 1);
        let (out, report) = b.submit(
            &e,
            points(&[[0, 1, 2], [3, 4, 5]]),
            &BatchOptions::default(),
            true,
        );
        assert_eq!(out, vec![Some(0), Some(1)]);
        let report = report.expect("leader reports");
        assert_eq!(report.jobs, 1);
        assert_eq!(report.points, 2);
    }

    #[test]
    fn empty_submission_is_a_no_op() {
        let b = Batcher::new();
        let e = entry([0, 1, 2], [3, 4, 5], 1);
        let (out, report) = b.submit(&e, Vec::new(), &BatchOptions::default(), true);
        assert!(out.is_empty());
        assert!(report.is_none());
    }

    #[test]
    fn concurrent_submissions_all_answer_correctly_and_every_point_is_counted() {
        let b = Arc::new(Batcher::new());
        let e = entry([0, 1, 2], [3, 4, 5], 1);
        let opts = BatchOptions {
            max_wait: Duration::from_millis(5),
            ..BatchOptions::default()
        };
        let total: u64 = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..8 {
                let b = Arc::clone(&b);
                let e = Arc::clone(&e);
                handles.push(scope.spawn(move || {
                    let mut batched = 0u64;
                    for _ in 0..50 {
                        let (out, report) =
                            b.submit(&e, points(&[[0, 1, 2], [3, 4, 5]]), &opts, false);
                        assert_eq!(out, vec![Some(0), Some(1)]);
                        if let Some(r) = report {
                            batched += r.points;
                        }
                    }
                    batched
                }));
            }
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        // Leaders collectively accounted for every submitted point.
        assert_eq!(total, 8 * 50 * 2);
    }

    #[test]
    fn mixed_entry_batch_labels_each_job_with_its_pinned_model() {
        // Two entries with opposite cluster order: same probe, opposite
        // labels. Execute them as one drained batch.
        let a = entry([0, 1, 2], [3, 4, 5], 1);
        let b = entry([3, 4, 5], [0, 1, 2], 2);
        let probe = points(&[[0, 1, 2]]);
        let job = |e: &Arc<ModelEntry>| {
            Arc::new(Job {
                entry: Arc::clone(e),
                points: probe.clone(),
                results: Mutex::new(Vec::new()),
                done: AtomicBool::new(false),
            })
        };
        let jobs = vec![job(&a), job(&b), job(&a)];
        Batcher::execute(jobs.clone(), 1);
        let got: Vec<Vec<Option<usize>>> = jobs.iter().map(|j| lock(&j.results).clone()).collect();
        assert_eq!(got, vec![vec![Some(0)], vec![Some(1)], vec![Some(0)]]);
        assert!(jobs.iter().all(|j| j.done.load(Ordering::Acquire)));
    }

    #[test]
    fn shutdown_keeps_submissions_answering() {
        let b = Batcher::new();
        b.shutdown();
        let e = entry([0, 1, 2], [3, 4, 5], 1);
        let (out, _) = b.submit(&e, points(&[[3, 4, 5]]), &BatchOptions::default(), false);
        assert_eq!(out, vec![Some(1)]);
    }
}
