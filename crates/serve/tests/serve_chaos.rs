//! Chaos coverage for the labeling server: malformed HTTP, truncated
//! bodies, oversized payloads, poisoned snapshots and load shedding.
//! The invariant throughout: clean 4xx/5xx responses, zero panics, and
//! a metrics document that still renders afterwards.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use rock_core::labeling::Representatives;
use rock_core::prelude::Transaction;
use rock_core::snapshot::{ModelSnapshot, OutlierPolicy, SimilarityKind};
use rock_core::RockError;
use rock_datasets::fault::FaultInjector;
use rock_serve::server::{ServeConfig, Server, ServerHandle};

/// Two clusters over a 6-item universe: {0,1,2} and {3,4,5}.
fn toy_snapshot() -> ModelSnapshot {
    let reps = Representatives::from_sets(vec![
        vec![Transaction::new([0, 1, 2]), Transaction::new([0, 1, 2])],
        vec![Transaction::new([3, 4, 5])],
    ]);
    ModelSnapshot::new(
        0.5,
        1.0,
        SimilarityKind::Jaccard,
        OutlierPolicy::Mark,
        6,
        None,
        reps,
    )
    .unwrap()
}

fn start_server(config: ServeConfig) -> ServerHandle {
    Server::start(toy_snapshot(), config).unwrap()
}

/// Writes `raw` to the server and returns the full response text.
fn raw_roundtrip(handle: &ServerHandle, raw: &[u8]) -> String {
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(raw).unwrap();
    // Half-close so a parser waiting for more bytes sees EOF.
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap_or(0);
    out
}

fn post_label(handle: &ServerHandle, body: &str) -> String {
    let raw = format!(
        "POST /label HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    raw_roundtrip(handle, raw.as_bytes())
}

#[test]
fn malformed_http_gets_400_not_a_panic() {
    let handle = start_server(ServeConfig::default());
    for raw in [
        &b"\x00\x01\x02\x03 garbage\r\n\r\n"[..],
        b"GET\r\n\r\n",
        b"GET / HTTP/9.9\r\n\r\n",
        b"GET / HTTP/1.1\r\nbroken header line\r\n\r\n",
        b"POST /label HTTP/1.1\r\nContent-Length: abc\r\n\r\n",
    ] {
        let resp = raw_roundtrip(&handle, raw);
        assert!(resp.starts_with("HTTP/1.1 400"), "raw {raw:?} -> {resp:?}");
    }
    // The server is still healthy afterwards.
    let resp = raw_roundtrip(&handle, b"GET /healthz HTTP/1.1\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp:?}");
    assert!(handle.counters().rejected >= 5);
}

#[test]
fn truncated_body_is_a_clean_400() {
    let handle = start_server(ServeConfig::default());
    let resp = raw_roundtrip(
        &handle,
        b"POST /label HTTP/1.1\r\nContent-Length: 100\r\n\r\n{\"items\":[0]}",
    );
    assert!(resp.starts_with("HTTP/1.1 400"), "{resp:?}");
    assert!(resp.contains("truncated"), "{resp:?}");
}

#[test]
fn oversized_payload_is_413_without_reading_it() {
    let config = ServeConfig {
        max_body: 64,
        ..ServeConfig::default()
    };
    let handle = start_server(config);
    let resp = raw_roundtrip(
        &handle,
        b"POST /label HTTP/1.1\r\nContent-Length: 1000000\r\n\r\n",
    );
    assert!(resp.starts_with("HTTP/1.1 413"), "{resp:?}");
}

#[test]
fn chunked_encoding_is_501() {
    let handle = start_server(ServeConfig::default());
    let resp = raw_roundtrip(
        &handle,
        b"POST /label HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n",
    );
    assert!(resp.starts_with("HTTP/1.1 501"), "{resp:?}");
}

#[test]
fn bad_json_and_unknown_routes_are_4xx() {
    let handle = start_server(ServeConfig::default());
    for body in ["not json", "[]", "{\"wrong\":1}", "{\"items\":[9999]}"] {
        let resp = post_label(&handle, body);
        assert!(
            resp.starts_with("HTTP/1.1 400"),
            "body {body:?} -> {resp:?}"
        );
    }
    let resp = raw_roundtrip(&handle, b"GET /nope HTTP/1.1\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 404"), "{resp:?}");
    let resp = raw_roundtrip(&handle, b"GET /label HTTP/1.1\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 405"), "{resp:?}");
    assert!(resp.contains("Allow: POST"), "{resp:?}");
}

#[test]
fn poisoned_snapshot_fails_closed_at_load_time() {
    let snapshot = toy_snapshot();
    let text = snapshot.render();
    let mut injector = FaultInjector::new(0xC0FFEE);
    let mut seen_errors = 0;
    for fraction in [0.05, 0.25, 0.75] {
        let poisoned = injector.poison_rows(&text, fraction);
        if poisoned == text {
            continue;
        }
        match ModelSnapshot::parse(&poisoned) {
            Ok(_) => {}
            Err(
                RockError::SnapshotVersion { .. }
                | RockError::SnapshotChecksum { .. }
                | RockError::SnapshotFormat { .. }
                | RockError::SnapshotInvalid { .. },
            ) => seen_errors += 1,
            Err(other) => panic!("unexpected error class: {other}"),
        }
    }
    for keep in [0.1, 0.5, 0.9] {
        let truncated = injector.truncate(&text, keep);
        if truncated == text {
            continue;
        }
        match ModelSnapshot::parse(&truncated) {
            Ok(_) => panic!("truncated snapshot must not parse"),
            Err(
                RockError::SnapshotVersion { .. }
                | RockError::SnapshotChecksum { .. }
                | RockError::SnapshotFormat { .. }
                | RockError::SnapshotInvalid { .. },
            ) => seen_errors += 1,
            Err(other) => panic!("unexpected error class: {other}"),
        }
    }
    assert!(seen_errors >= 3, "expected several typed failures");
}

#[test]
fn queue_overflow_sheds_with_503_retry_after() {
    // One worker, one queue slot: occupy the worker with a half-open
    // request, fill the slot, then every further connection is shed.
    let config = ServeConfig {
        threads: 1,
        queue_capacity: 1,
        ..ServeConfig::default()
    };
    let handle = start_server(config);

    // Occupy the single worker: connect and send only a partial request
    // line; the worker blocks reading until we finish or time out.
    let mut hog = TcpStream::connect(handle.addr()).unwrap();
    hog.write_all(b"POST /label HT").unwrap();
    std::thread::sleep(Duration::from_millis(150));

    // Fill the single queue slot (never picked up while the hog lives).
    let _queued = TcpStream::connect(handle.addr()).unwrap();
    std::thread::sleep(Duration::from_millis(150));

    // Everything beyond the queue is answered 503 inline.
    let mut shed_seen = 0;
    for _ in 0..3 {
        let resp = raw_roundtrip(&handle, b"GET /healthz HTTP/1.1\r\n\r\n");
        if resp.starts_with("HTTP/1.1 503") {
            assert!(resp.contains("Retry-After: 1"), "{resp:?}");
            shed_seen += 1;
        }
    }
    assert!(shed_seen >= 1, "expected at least one shed connection");
    assert!(handle.counters().shed >= 1);

    // Release the hog; the server drains and still reports metrics.
    hog.write_all(b"TP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    drop(hog);
    let metrics = handle.shutdown();
    assert!(metrics.contains("rock-serve-metrics/v1"));
    assert!(metrics.contains("\"shed\""));
}

#[test]
fn metrics_flush_after_chaos() {
    let handle = start_server(ServeConfig::default());
    // A mix of garbage and good traffic.
    raw_roundtrip(&handle, b"total garbage\r\n\r\n");
    let good = post_label(&handle, "{\"items\":[0,1,2]}\n{\"items\":[3,4,5]}\n");
    assert!(good.starts_with("HTTP/1.1 200"), "{good:?}");
    assert!(good.contains("{\"cluster\":0}"), "{good:?}");
    assert!(good.contains("{\"cluster\":1}"), "{good:?}");

    let resp = raw_roundtrip(&handle, b"GET /metrics HTTP/1.1\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp:?}");
    let body = resp.split("\r\n\r\n").nth(1).unwrap();
    let doc = rock_core::telemetry::json::Json::parse(body).unwrap();
    let requests = doc.get("requests").unwrap();
    assert_eq!(
        requests
            .get("labeled")
            .and_then(rock_core::telemetry::json::Json::as_u64),
        Some(2)
    );
    assert!(requests.get("rejected").is_some());

    // Shutdown flushes a parseable final document with the same shape.
    let final_metrics = handle.shutdown();
    let doc = rock_core::telemetry::json::Json::parse(&final_metrics).unwrap();
    assert_eq!(
        doc.get("schema")
            .and_then(rock_core::telemetry::json::Json::as_str),
        Some("rock-serve-metrics/v1")
    );
    assert_eq!(
        doc.get("core")
            .and_then(|c| c.get("schema"))
            .and_then(rock_core::telemetry::json::Json::as_str),
        Some("rock-metrics/v1")
    );
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let handle = start_server(ServeConfig::default());
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    for i in 0..50 {
        let body = format!("{{\"items\":[{}]}}", i % 6);
        let raw = format!(
            "POST /label HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        stream.write_all(raw.as_bytes()).unwrap();
        let resp = read_one_response(&mut stream);
        assert!(resp.starts_with("HTTP/1.1 200"), "request {i}: {resp:?}");
    }
    drop(stream);
    let counters = handle.counters();
    assert_eq!(counters.labeled + counters.outlier, 50);
    assert_eq!(counters.accepted, 1);
}

/// Reads exactly one HTTP response (headers + Content-Length body).
fn read_one_response(stream: &mut TcpStream) -> String {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    // Headers end at the first CRLFCRLF.
    while !buf.ends_with(b"\r\n\r\n") {
        assert_eq!(stream.read(&mut byte).unwrap(), 1, "eof in headers");
        buf.push(byte[0]);
    }
    let head = String::from_utf8(buf.clone()).unwrap();
    let len: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .unwrap()
        .trim()
        .parse()
        .unwrap();
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body).unwrap();
    buf.extend_from_slice(&body);
    String::from_utf8(buf).unwrap()
}
