//! Chaos coverage for the labeling server: malformed HTTP, truncated
//! bodies, oversized payloads, poisoned snapshots, load shedding and —
//! for the registry — corrupt uploads mid-swap and concurrent
//! swap/label races. The invariant throughout: clean 4xx/5xx
//! responses, zero panics, the previously serving model untouched by
//! any failed activation, and a metrics document that still renders
//! afterwards.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use rock_core::labeling::Representatives;
use rock_core::prelude::Transaction;
use rock_core::snapshot::{ModelSnapshot, OutlierPolicy, SimilarityKind};
use rock_core::RockError;
use rock_datasets::fault::FaultInjector;
use rock_serve::server::{ServeConfig, Server, ServerHandle};

/// Two clusters over a 6-item universe: {0,1,2} and {3,4,5}.
fn toy_snapshot() -> ModelSnapshot {
    let reps = Representatives::from_sets(vec![
        vec![Transaction::new([0, 1, 2]), Transaction::new([0, 1, 2])],
        vec![Transaction::new([3, 4, 5])],
    ]);
    ModelSnapshot::new(
        0.5,
        1.0,
        SimilarityKind::Jaccard,
        OutlierPolicy::Mark,
        6,
        None,
        reps,
    )
    .unwrap()
}

fn start_server(config: ServeConfig) -> ServerHandle {
    Server::start(toy_snapshot(), config).unwrap()
}

/// The same universe with the cluster order flipped: the probe
/// `{0,1,2}` labels `0` under [`toy_snapshot`] and `1` under this one,
/// so responses reveal exactly which model answered.
fn flipped_snapshot() -> ModelSnapshot {
    let reps = Representatives::from_sets(vec![
        vec![Transaction::new([3, 4, 5])],
        vec![Transaction::new([0, 1, 2]), Transaction::new([0, 1, 2])],
    ]);
    ModelSnapshot::new(
        0.5,
        1.0,
        SimilarityKind::Jaccard,
        OutlierPolicy::Mark,
        6,
        None,
        reps,
    )
    .unwrap()
}

/// Writes `raw` to the server and returns the full response text.
fn raw_roundtrip(handle: &ServerHandle, raw: &[u8]) -> String {
    raw_roundtrip_addr(handle.addr(), raw)
}

/// [`raw_roundtrip`] against a bare address (usable from spawned
/// threads that must not borrow the handle).
fn raw_roundtrip_addr(addr: SocketAddr, raw: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(raw).unwrap();
    // Half-close so a parser waiting for more bytes sees EOF. A shed
    // connection may already be reset by the server (its close carries
    // an RST when our bytes sit unread), so a failed shutdown is fine —
    // the read below still returns whatever arrived first.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap_or(0);
    out
}

fn post_label(handle: &ServerHandle, body: &str) -> String {
    let raw = format!(
        "POST /label HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    raw_roundtrip(handle, raw.as_bytes())
}

#[test]
fn malformed_http_gets_400_not_a_panic() {
    let handle = start_server(ServeConfig::default());
    for raw in [
        &b"\x00\x01\x02\x03 garbage\r\n\r\n"[..],
        b"GET\r\n\r\n",
        b"GET / HTTP/9.9\r\n\r\n",
        b"GET / HTTP/1.1\r\nbroken header line\r\n\r\n",
        b"POST /label HTTP/1.1\r\nContent-Length: abc\r\n\r\n",
    ] {
        let resp = raw_roundtrip(&handle, raw);
        assert!(resp.starts_with("HTTP/1.1 400"), "raw {raw:?} -> {resp:?}");
    }
    // The server is still healthy afterwards.
    let resp = raw_roundtrip(&handle, b"GET /healthz HTTP/1.1\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp:?}");
    assert!(handle.counters().rejected >= 5);
}

#[test]
fn truncated_body_is_a_clean_400() {
    let handle = start_server(ServeConfig::default());
    let resp = raw_roundtrip(
        &handle,
        b"POST /label HTTP/1.1\r\nContent-Length: 100\r\n\r\n{\"items\":[0]}",
    );
    assert!(resp.starts_with("HTTP/1.1 400"), "{resp:?}");
    assert!(resp.contains("truncated"), "{resp:?}");
}

#[test]
fn oversized_payload_is_413_without_reading_it() {
    let config = ServeConfig {
        max_body: 64,
        ..ServeConfig::default()
    };
    let handle = start_server(config);
    let resp = raw_roundtrip(
        &handle,
        b"POST /label HTTP/1.1\r\nContent-Length: 1000000\r\n\r\n",
    );
    assert!(resp.starts_with("HTTP/1.1 413"), "{resp:?}");
}

#[test]
fn chunked_encoding_is_501() {
    let handle = start_server(ServeConfig::default());
    let resp = raw_roundtrip(
        &handle,
        b"POST /label HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n",
    );
    assert!(resp.starts_with("HTTP/1.1 501"), "{resp:?}");
}

#[test]
fn bad_json_and_unknown_routes_are_4xx() {
    let handle = start_server(ServeConfig::default());
    for body in ["not json", "[]", "{\"wrong\":1}", "{\"items\":[9999]}"] {
        let resp = post_label(&handle, body);
        assert!(
            resp.starts_with("HTTP/1.1 400"),
            "body {body:?} -> {resp:?}"
        );
    }
    let resp = raw_roundtrip(&handle, b"GET /nope HTTP/1.1\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 404"), "{resp:?}");
    let resp = raw_roundtrip(&handle, b"GET /label HTTP/1.1\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 405"), "{resp:?}");
    assert!(resp.contains("Allow: POST"), "{resp:?}");
}

#[test]
fn poisoned_snapshot_fails_closed_at_load_time() {
    let snapshot = toy_snapshot();
    let text = snapshot.render();
    let mut injector = FaultInjector::new(0xC0FFEE);
    let mut seen_errors = 0;
    for fraction in [0.05, 0.25, 0.75] {
        let poisoned = injector.poison_rows(&text, fraction);
        if poisoned == text {
            continue;
        }
        match ModelSnapshot::parse(&poisoned) {
            Ok(_) => {}
            Err(
                RockError::SnapshotVersion { .. }
                | RockError::SnapshotChecksum { .. }
                | RockError::SnapshotFormat { .. }
                | RockError::SnapshotInvalid { .. },
            ) => seen_errors += 1,
            Err(other) => panic!("unexpected error class: {other}"),
        }
    }
    for keep in [0.1, 0.5, 0.9] {
        let truncated = injector.truncate(&text, keep);
        if truncated == text {
            continue;
        }
        match ModelSnapshot::parse(&truncated) {
            Ok(_) => panic!("truncated snapshot must not parse"),
            Err(
                RockError::SnapshotVersion { .. }
                | RockError::SnapshotChecksum { .. }
                | RockError::SnapshotFormat { .. }
                | RockError::SnapshotInvalid { .. },
            ) => seen_errors += 1,
            Err(other) => panic!("unexpected error class: {other}"),
        }
    }
    assert!(seen_errors >= 3, "expected several typed failures");
}

#[test]
fn queue_overflow_sheds_with_503_retry_after() {
    // One worker, one queue slot: occupy the worker with a half-open
    // request, fill the slot, then every further connection is shed.
    let config = ServeConfig {
        threads: 1,
        queue_capacity: 1,
        ..ServeConfig::default()
    };
    let handle = start_server(config);

    // Occupy the single worker: connect and send only a partial request
    // line; the worker blocks reading until we finish or time out.
    let mut hog = TcpStream::connect(handle.addr()).unwrap();
    hog.write_all(b"POST /label HT").unwrap();
    std::thread::sleep(Duration::from_millis(150));

    // Fill the single queue slot (never picked up while the hog lives).
    let _queued = TcpStream::connect(handle.addr()).unwrap();
    std::thread::sleep(Duration::from_millis(150));

    // Everything beyond the queue is answered 503 inline. A reset can
    // eat an individual 503 body, so probe several times.
    let mut shed_seen = 0;
    for _ in 0..6 {
        let resp = raw_roundtrip(&handle, b"GET /healthz HTTP/1.1\r\n\r\n");
        if resp.starts_with("HTTP/1.1 503") {
            assert!(resp.contains("Retry-After: 1"), "{resp:?}");
            shed_seen += 1;
        }
    }
    assert!(shed_seen >= 1, "expected at least one shed connection");
    assert!(handle.counters().shed >= 1);

    // Release the hog; the server drains and still reports metrics.
    hog.write_all(b"TP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    drop(hog);
    let metrics = handle.shutdown();
    assert!(metrics.contains("rock-serve-metrics/v1"));
    assert!(metrics.contains("\"shed\""));
}

#[test]
fn metrics_flush_after_chaos() {
    let handle = start_server(ServeConfig::default());
    // A mix of garbage and good traffic.
    raw_roundtrip(&handle, b"total garbage\r\n\r\n");
    let good = post_label(&handle, "{\"items\":[0,1,2]}\n{\"items\":[3,4,5]}\n");
    assert!(good.starts_with("HTTP/1.1 200"), "{good:?}");
    assert!(good.contains("{\"cluster\":0}"), "{good:?}");
    assert!(good.contains("{\"cluster\":1}"), "{good:?}");

    let resp = raw_roundtrip(&handle, b"GET /metrics HTTP/1.1\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp:?}");
    let body = resp.split("\r\n\r\n").nth(1).unwrap();
    let doc = rock_core::telemetry::json::Json::parse(body).unwrap();
    let requests = doc.get("requests").unwrap();
    assert_eq!(
        requests
            .get("labeled")
            .and_then(rock_core::telemetry::json::Json::as_u64),
        Some(2)
    );
    assert!(requests.get("rejected").is_some());

    // Shutdown flushes a parseable final document with the same shape.
    let final_metrics = handle.shutdown();
    let doc = rock_core::telemetry::json::Json::parse(&final_metrics).unwrap();
    assert_eq!(
        doc.get("schema")
            .and_then(rock_core::telemetry::json::Json::as_str),
        Some("rock-serve-metrics/v1")
    );
    assert_eq!(
        doc.get("core")
            .and_then(|c| c.get("schema"))
            .and_then(rock_core::telemetry::json::Json::as_str),
        Some("rock-metrics/v1")
    );
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let handle = start_server(ServeConfig::default());
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    for i in 0..50 {
        let body = format!("{{\"items\":[{}]}}", i % 6);
        let raw = format!(
            "POST /label HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        stream.write_all(raw.as_bytes()).unwrap();
        let resp = read_one_response(&mut stream);
        assert!(resp.starts_with("HTTP/1.1 200"), "request {i}: {resp:?}");
    }
    drop(stream);
    let counters = handle.counters();
    assert_eq!(counters.labeled + counters.outlier, 50);
    assert_eq!(counters.accepted, 1);
}

/// Reads exactly one HTTP response (headers + Content-Length body).
fn read_one_response(stream: &mut TcpStream) -> String {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    // Headers end at the first CRLFCRLF.
    while !buf.ends_with(b"\r\n\r\n") {
        assert_eq!(stream.read(&mut byte).unwrap(), 1, "eof in headers");
        buf.push(byte[0]);
    }
    let head = String::from_utf8(buf.clone()).unwrap();
    let len: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .unwrap()
        .trim()
        .parse()
        .unwrap();
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body).unwrap();
    buf.extend_from_slice(&body);
    String::from_utf8(buf).unwrap()
}

/// Uploads `body` to `POST /admin/models/{name}` and returns the
/// response text.
fn admin_upload(addr: SocketAddr, name: &str, body: &str) -> String {
    let raw = format!(
        "POST /admin/models/{name} HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    raw_roundtrip_addr(addr, raw.as_bytes())
}

/// The value of header `name` in a raw response, if present.
fn header_value(resp: &str, name: &str) -> Option<String> {
    let prefix = format!("{name}: ");
    resp.lines()
        .take_while(|l| !l.trim_end().is_empty())
        .find_map(|l| l.strip_prefix(&prefix).map(|v| v.trim_end().to_owned()))
}

#[test]
fn corrupt_truncated_and_mismatched_uploads_mid_swap_keep_old_model_serving() {
    let handle = start_server(ServeConfig::default());
    let addr = handle.addr();
    let good = flipped_snapshot().render();

    // Three distinct failure classes: checksum corruption, truncation,
    // and a snapshot-format version the parser does not speak.
    let corrupt = good.replace("similarity jaccard", "similarity jaccarD");
    let truncated = good[..good.len() / 2].to_owned();
    let mismatched = good.replacen("rock-model/v1", "rock-model/v9", 1);
    for (what, upload) in [
        ("corrupt", &corrupt),
        ("truncated", &truncated),
        ("version-mismatched", &mismatched),
    ] {
        let resp = admin_upload(addr, "default", upload);
        assert!(
            resp.starts_with("HTTP/1.1 400"),
            "{what} upload -> {resp:?}"
        );
        assert!(resp.contains("snapshot rejected"), "{what}: {resp:?}");
        // The original model keeps serving, byte-for-byte the same
        // labels as before the failed swap.
        let labeled = post_label(&handle, "{\"items\":[0,1,2]}\n");
        assert!(labeled.starts_with("HTTP/1.1 200"), "{what}: {labeled:?}");
        assert!(labeled.contains("{\"cluster\":0}"), "{what}: {labeled:?}");
        assert_eq!(
            header_value(&labeled, "X-Rock-Model").as_deref(),
            Some("default@v1"),
            "{what}: a failed swap must not advance the version"
        );
    }

    // The failures are visible: degraded health, counted rejections.
    let health = raw_roundtrip(&handle, b"GET /healthz HTTP/1.1\r\n\r\n");
    assert!(health.starts_with("HTTP/1.1 200"), "{health:?}");
    assert!(health.contains("\"degraded\""), "{health:?}");
    let listing = raw_roundtrip(&handle, b"GET /admin/models HTTP/1.1\r\n\r\n");
    assert!(listing.contains("\"rejected_swaps\": 3"), "{listing:?}");

    // A good upload then activates atomically and recovers health.
    let resp = admin_upload(addr, "default", &good);
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp:?}");
    let labeled = post_label(&handle, "{\"items\":[0,1,2]}\n");
    assert!(labeled.contains("{\"cluster\":1}"), "{labeled:?}");
    assert_eq!(
        header_value(&labeled, "X-Rock-Model").as_deref(),
        Some("default@v2")
    );
    let health = raw_roundtrip(&handle, b"GET /healthz HTTP/1.1\r\n\r\n");
    assert!(health.contains("\"ready\""), "{health:?}");
}

#[test]
fn deleting_the_default_model_sheds_labels_until_reupload() {
    let handle = start_server(ServeConfig::default());
    let addr = handle.addr();
    let resp = raw_roundtrip(&handle, b"DELETE /admin/models/default HTTP/1.1\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp:?}");

    // No model mounted: labeling sheds softly, health says unavailable.
    let labeled = post_label(&handle, "{\"items\":[0,1,2]}\n");
    assert!(labeled.starts_with("HTTP/1.1 503"), "{labeled:?}");
    assert!(labeled.contains("Retry-After: 1"), "{labeled:?}");
    let health = raw_roundtrip(&handle, b"GET /healthz HTTP/1.1\r\n\r\n");
    assert!(health.starts_with("HTTP/1.1 503"), "{health:?}");
    assert!(health.contains("Retry-After: 1"), "{health:?}");
    assert!(health.contains("\"unavailable\""), "{health:?}");

    // Re-upload restores service; the version sequence restarts with a
    // fresh slot.
    let resp = admin_upload(addr, "default", &toy_snapshot().render());
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp:?}");
    let labeled = post_label(&handle, "{\"items\":[0,1,2]}\n");
    assert!(labeled.starts_with("HTTP/1.1 200"), "{labeled:?}");
    assert!(handle.counters().shed >= 1);
}

#[test]
fn concurrent_hot_swaps_and_labels_never_mix_models() {
    // 4 labeling clients hammer a probe whose cluster differs between
    // the two models while a fifth thread hot-swaps back and forth.
    // Every response must be 200 and must carry the fingerprint of the
    // model that produced its label — never a torn combination.
    let config = ServeConfig {
        threads: 6,
        queue_capacity: 256,
        ..ServeConfig::default()
    };
    let handle = start_server(config);
    let addr = handle.addr();
    let fp_a = toy_snapshot().fingerprint_hex();
    let fp_b = flipped_snapshot().fingerprint_hex();
    let upload_a = toy_snapshot().render();
    let upload_b = flipped_snapshot().render();
    let stop = AtomicBool::new(false);
    let total: u64 = std::thread::scope(|scope| {
        let swapper = scope.spawn(|| {
            for i in 0..40 {
                let body = if i % 2 == 0 { &upload_b } else { &upload_a };
                let resp = admin_upload(addr, "default", body);
                assert!(resp.starts_with("HTTP/1.1 200"), "swap {i}: {resp:?}");
            }
            stop.store(true, Ordering::Release);
        });
        let mut checkers = Vec::new();
        for worker in 0..4 {
            let stop = &stop;
            let (fp_a, fp_b) = (&fp_a, &fp_b);
            checkers.push(scope.spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                stream
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .unwrap();
                let body = "{\"items\":[0,1,2]}";
                let raw = format!(
                    "POST /label HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
                    body.len(),
                    body
                );
                let mut answered = 0u64;
                while !stop.load(Ordering::Acquire) {
                    stream.write_all(raw.as_bytes()).unwrap();
                    let resp = read_one_response(&mut stream);
                    assert!(
                        resp.starts_with("HTTP/1.1 200"),
                        "worker {worker}: {resp:?}"
                    );
                    let fp = header_value(&resp, "X-Rock-Model-Fingerprint").unwrap();
                    let expected = if fp == *fp_a {
                        "{\"cluster\":0}"
                    } else {
                        assert_eq!(fp, *fp_b, "worker {worker}: unknown model");
                        "{\"cluster\":1}"
                    };
                    assert!(
                        resp.contains(expected),
                        "worker {worker}: label from a different model than \
                         the fingerprint header claims: {resp:?}"
                    );
                    answered += 1;
                }
                answered
            }));
        }
        swapper.join().unwrap();
        checkers.into_iter().map(|c| c.join().unwrap()).sum()
    });
    assert!(total > 0, "checkers never got a response in");
    // Zero dropped: every labeled point is accounted for.
    let counters = handle.counters();
    assert_eq!(counters.labeled, total);
    assert_eq!(counters.shed, 0, "no request may be shed mid-swap");
    let metrics = handle.shutdown();
    assert!(metrics.contains("\"swaps\": 41"), "{metrics}");
}
