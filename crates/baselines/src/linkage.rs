//! Generic agglomerative hierarchical clustering via Lance–Williams
//! updates — the "traditional hierarchical algorithm" the ROCK paper
//! compares against.
//!
//! The engine takes an arbitrary pre-computed pairwise distance matrix and
//! a linkage rule, and repeatedly merges the closest pair, updating
//! distances with the Lance–Williams recurrence. For the *centroid*
//! (UPGMC) and *Ward* rules the matrix must contain **squared** Euclidean
//! distances; single/complete/average work on any dissimilarity (the
//! similarity-only strawman of the paper runs average-link on
//! `1 − Jaccard`).
//!
//! The closest pair is found with a lazy binary heap: entries are tagged
//! with the merge *generation* of both clusters and discarded if stale —
//! `O(n² log n)` overall.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rock_core::agglomerate::GoodnessOrd;
use rock_core::error::{Result, RockError};

use crate::common::FlatClustering;

/// Linkage rule for the Lance–Williams update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linkage {
    /// Nearest neighbor: `min(d_ki, d_kj)`.
    Single,
    /// Furthest neighbor: `max(d_ki, d_kj)`.
    Complete,
    /// Unweighted average (UPGMA).
    Average,
    /// Centroid method (UPGMC) — requires squared Euclidean distances.
    Centroid,
    /// Ward's minimum variance — requires squared Euclidean distances.
    Ward,
}

impl Linkage {
    /// Whether this rule expects squared Euclidean input distances.
    pub fn wants_squared(&self) -> bool {
        matches!(self, Linkage::Centroid | Linkage::Ward)
    }

    /// Lance–Williams update: distance from cluster `k` to the merge of
    /// `i` and `j`, given sizes and the three pairwise distances.
    #[inline]
    pub fn update(&self, d_ki: f64, d_kj: f64, d_ij: f64, n_i: f64, n_j: f64, n_k: f64) -> f64 {
        match self {
            Linkage::Single => d_ki.min(d_kj),
            Linkage::Complete => d_ki.max(d_kj),
            Linkage::Average => (n_i * d_ki + n_j * d_kj) / (n_i + n_j),
            Linkage::Centroid => {
                let s = n_i + n_j;
                (n_i * d_ki + n_j * d_kj) / s - (n_i * n_j * d_ij) / (s * s)
            }
            Linkage::Ward => {
                let s = n_i + n_j + n_k;
                ((n_i + n_k) * d_ki + (n_j + n_k) * d_kj - n_k * d_ij) / s
            }
        }
    }
}

/// Lazy-heap entry: `(distance, i, j, generation_i, generation_j)`.
/// Distances ride in rock-core's [`GoodnessOrd`] — the workspace's one
/// audited total order over `f64`.
type PairEntry = Reverse<(GoodnessOrd, usize, usize, u32, u32)>;

/// Agglomerates `n` points down to `k` clusters.
///
/// `dist` is a full symmetric `n × n` distance matrix in row-major order
/// (the diagonal is ignored). The reported `cost` is the distance of the
/// final merge performed.
///
/// # Errors
/// * [`RockError::EmptyDataset`] for `n == 0`.
/// * [`RockError::InvalidK`] for `k` of 0 or `> n`.
/// * [`RockError::LengthMismatch`] if `dist` is not `n × n`.
#[allow(clippy::needless_range_loop)] // d/size/active are index-aligned
pub fn agglomerative(dist: &[f64], n: usize, k: usize, linkage: Linkage) -> Result<FlatClustering> {
    if n == 0 {
        return Err(RockError::EmptyDataset);
    }
    if k == 0 || k > n {
        return Err(RockError::InvalidK { k, n });
    }
    if dist.len() != n * n {
        return Err(RockError::LengthMismatch {
            left_name: "dist",
            left: dist.len(),
            right_name: "n*n",
            right: n * n,
        });
    }

    let mut d = dist.to_vec();
    let mut size: Vec<f64> = vec![1.0; n];
    let mut members: Vec<Vec<u32>> = (0..n as u32).map(|i| vec![i]).collect();
    let mut active: Vec<bool> = vec![true; n];
    let mut generation: Vec<u32> = vec![0; n];
    // Min-heap of (distance, i, j, gen_i, gen_j), lazily invalidated.
    let mut heap: BinaryHeap<PairEntry> = BinaryHeap::with_capacity(n * n / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            heap.push(Reverse((GoodnessOrd::new(d[i * n + j]), i, j, 0, 0)));
        }
    }

    let mut remaining = n;
    let mut merges = 0usize;
    let mut last_dist = 0.0f64;
    while remaining > k {
        let Some(Reverse((dd, i, j, gi, gj))) = heap.pop() else {
            break; // cannot happen for a complete matrix, defensive
        };
        if !active[i] || !active[j] || generation[i] != gi || generation[j] != gj {
            continue; // stale entry
        }
        // Merge j into i.
        let (ni, nj) = (size[i], size[j]);
        let dij = d[i * n + j];
        for x in 0..n {
            if x != i && x != j && active[x] {
                let nd = linkage.update(d[x * n + i], d[x * n + j], dij, ni, nj, size[x]);
                d[x * n + i] = nd;
                d[i * n + x] = nd;
            }
        }
        active[j] = false;
        size[i] += size[j];
        let moved = std::mem::take(&mut members[j]);
        members[i].extend(moved);
        generation[i] += 1;
        remaining -= 1;
        merges += 1;
        last_dist = dd.get();
        for x in 0..n {
            if x != i && active[x] {
                let (a, b) = if x < i { (x, i) } else { (i, x) };
                heap.push(Reverse((
                    GoodnessOrd::new(d[a * n + b]),
                    a,
                    b,
                    generation[a],
                    generation[b],
                )));
            }
        }
    }

    // Dense re-numbering: biggest cluster first for stable output.
    let mut clusters: Vec<Vec<u32>> = members
        .into_iter()
        .zip(&active)
        .filter(|(_, &a)| a)
        .map(|(mut m, _)| {
            m.sort_unstable();
            m
        })
        .collect();
    clusters.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a[0].cmp(&b[0])));
    let mut assignments = vec![0u32; n];
    for (c, m) in clusters.iter().enumerate() {
        for &p in m {
            assignments[p as usize] = c as u32;
        }
    }
    Ok(FlatClustering {
        assignments,
        k: clusters.len(),
        cost: last_dist,
        iterations: merges,
    })
}

/// Builds the full squared-Euclidean distance matrix of a dense matrix's
/// rows (row-major `n × n` output).
pub fn sq_euclidean_matrix(m: &crate::onehot::DenseMatrix) -> Vec<f64> {
    let n = m.rows();
    let mut d = vec![0.0; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let v = m.sq_dist(i, j);
            d[i * n + j] = v;
            d[j * n + i] = v;
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::onehot::DenseMatrix;

    /// 1-D points embedded for easy reasoning.
    fn points_1d(xs: &[f64]) -> Vec<f64> {
        let n = xs.len();
        let mut d = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let v = (xs[i] - xs[j]) * (xs[i] - xs[j]);
                d[i * n + j] = v;
            }
        }
        d
    }

    #[test]
    fn two_obvious_groups_all_linkages() {
        let xs = [0.0, 0.1, 0.2, 10.0, 10.1, 10.2];
        let d = points_1d(&xs);
        for linkage in [
            Linkage::Single,
            Linkage::Complete,
            Linkage::Average,
            Linkage::Centroid,
            Linkage::Ward,
        ] {
            let c = agglomerative(&d, 6, 2, linkage).unwrap();
            let groups = c.clusters();
            assert_eq!(groups.len(), 2, "{linkage:?}");
            assert_eq!(groups[0], vec![0, 1, 2], "{linkage:?}");
            assert_eq!(groups[1], vec![3, 4, 5], "{linkage:?}");
            assert_eq!(c.iterations, 4);
        }
    }

    #[test]
    fn single_link_chains_complete_does_not() {
        // A chain 0-1-2-...-5 with gaps 1.0 and an isolated pair far away:
        // single-link happily chains; complete-link splits the chain.
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0, 100.0, 101.0];
        let d = points_1d(&xs);
        let single = agglomerative(&d, 7, 2, Linkage::Single).unwrap();
        assert_eq!(single.clusters()[0], vec![0, 1, 2, 3, 4]);
        let complete = agglomerative(&d, 7, 3, Linkage::Complete).unwrap();
        // Complete-link at k=3 splits the chain into two halves.
        assert_eq!(complete.clusters().len(), 3);
    }

    #[test]
    fn k_equals_n_is_identity() {
        let d = points_1d(&[0.0, 5.0, 9.0]);
        let c = agglomerative(&d, 3, 3, Linkage::Average).unwrap();
        assert_eq!(c.clusters().len(), 3);
        assert_eq!(c.iterations, 0);
    }

    #[test]
    fn k_one_merges_everything() {
        let d = points_1d(&[0.0, 1.0, 2.0, 3.0]);
        let c = agglomerative(&d, 4, 1, Linkage::Ward).unwrap();
        assert_eq!(c.clusters().len(), 1);
        assert_eq!(c.clusters()[0].len(), 4);
    }

    #[test]
    fn validates_inputs() {
        let d = points_1d(&[0.0, 1.0]);
        assert!(agglomerative(&d, 0, 1, Linkage::Single).is_err());
        assert!(agglomerative(&d, 2, 0, Linkage::Single).is_err());
        assert!(agglomerative(&d, 2, 3, Linkage::Single).is_err());
        assert!(agglomerative(&d[..3], 2, 1, Linkage::Single).is_err());
    }

    #[test]
    fn centroid_update_matches_direct_centroid_distance() {
        // Verify the Lance–Williams centroid formula against explicitly
        // computed centroids on 2-D points.
        let pts = [[0.0, 0.0], [2.0, 0.0], [10.0, 4.0]];
        let n = 3;
        let mut d = [0.0; 9];
        for i in 0..n {
            for j in 0..n {
                let dx = pts[i][0] - pts[j][0];
                let dy = pts[i][1] - pts[j][1];
                d[i * n + j] = dx * dx + dy * dy;
            }
        }
        // Merge {0,1}: centroid (1,0). Distance² to point 2 = 81+16 = 97.
        let lw = Linkage::Centroid.update(d[2 * n], d[2 * n + 1], d[1], 1.0, 1.0, 1.0);
        assert!((lw - 97.0).abs() < 1e-9, "lw = {lw}");
    }

    #[test]
    fn ward_prefers_balanced_merges() {
        // Ward's rule resists merging a far point into a big cluster.
        let xs = [0.0, 0.2, 0.4, 0.6, 4.0];
        let d = points_1d(&xs);
        let c = agglomerative(&d, 5, 2, Linkage::Ward).unwrap();
        assert_eq!(c.clusters()[0], vec![0, 1, 2, 3]);
        assert_eq!(c.clusters()[1], vec![4]);
    }

    #[test]
    fn sq_euclidean_matrix_from_onehot() {
        let mut m = DenseMatrix::zeros(2, 3);
        m.row_mut(0)[0] = 1.0;
        m.row_mut(1)[2] = 1.0;
        let d = sq_euclidean_matrix(&m);
        assert_eq!(d[1], 2.0);
        assert_eq!(d[2], 2.0);
        assert_eq!(d[0], 0.0);
    }
}
