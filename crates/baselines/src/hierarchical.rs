//! The paper's "traditional" comparator and the similarity-only strawman.
//!
//! * [`traditional`] — centroid-based hierarchical clustering of one-hot
//!   boolean vectors under Euclidean distance, exactly the algorithm the
//!   ROCK paper runs on Congressional Votes and Mushroom (with optional
//!   outlier-ish behavior delegated to the caller choosing `k`).
//! * [`similarity_only`] — agglomerative merging driven purely by pairwise
//!   Jaccard similarity (no links), the *local* strategy §1–2 of the paper
//!   argues is fooled by bridge points between clusters.

use rock_core::data::{CategoricalTable, TransactionSet};
use rock_core::error::Result;
use rock_core::similarity::Similarity;

use crate::common::FlatClustering;
use crate::linkage::{agglomerative, sq_euclidean_matrix, Linkage};
use crate::onehot::{encode_table, encode_transactions};

/// Centroid-based hierarchical clustering of one-hot vectors (the paper's
/// traditional comparator) on a transaction set.
pub fn traditional(data: &TransactionSet, k: usize, linkage: Linkage) -> Result<FlatClustering> {
    let m = encode_transactions(data);
    let d = sq_euclidean_matrix(&m);
    run(&d, data.len(), k, linkage)
}

/// Centroid-based hierarchical clustering of a categorical table.
pub fn traditional_table(
    table: &CategoricalTable,
    k: usize,
    linkage: Linkage,
) -> Result<FlatClustering> {
    let m = encode_table(table);
    let d = sq_euclidean_matrix(&m);
    run(&d, table.len(), k, linkage)
}

fn run(sq: &[f64], n: usize, k: usize, linkage: Linkage) -> Result<FlatClustering> {
    if linkage.wants_squared() {
        agglomerative(sq, n, k, linkage)
    } else {
        // Single/complete/average conventionally operate on the metric
        // itself rather than its square.
        let d: Vec<f64> = sq.iter().map(|&v| v.sqrt()).collect();
        agglomerative(&d, n, k, linkage)
    }
}

/// Similarity-only agglomeration: hierarchical clustering where the
/// dissimilarity is `1 − sim` (Jaccard by default in the callers) and
/// clusters merge by the given linkage, with **no link information**.
pub fn similarity_only<S: Similarity>(
    data: &TransactionSet,
    k: usize,
    sim: &S,
    linkage: Linkage,
) -> Result<FlatClustering> {
    let n = data.len();
    let mut d = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let v = 1.0 - sim.sim(data.transaction(i).unwrap(), data.transaction(j).unwrap());
            d[i * n + j] = v;
            d[j * n + i] = v;
        }
    }
    agglomerative(&d, n, k, linkage)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_core::data::{Schema, Transaction};
    use rock_core::similarity::Jaccard;

    fn two_blocks() -> TransactionSet {
        vec![
            Transaction::new([0, 1, 2]),
            Transaction::new([0, 1, 3]),
            Transaction::new([0, 2, 3]),
            Transaction::new([10, 11, 12]),
            Transaction::new([10, 11, 13]),
            Transaction::new([10, 12, 13]),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn traditional_separates_clean_blocks() {
        let data = two_blocks();
        for linkage in [Linkage::Centroid, Linkage::Ward, Linkage::Average] {
            let c = traditional(&data, 2, linkage).unwrap();
            assert_eq!(c.clusters()[0], vec![0, 1, 2], "{linkage:?}");
            assert_eq!(c.clusters()[1], vec![3, 4, 5], "{linkage:?}");
        }
    }

    #[test]
    fn traditional_on_table() {
        let mut t = CategoricalTable::new(Schema::with_unnamed(2));
        t.push_textual(&["a", "x"], "?").unwrap();
        t.push_textual(&["a", "x"], "?").unwrap();
        t.push_textual(&["b", "y"], "?").unwrap();
        t.push_textual(&["b", "y"], "?").unwrap();
        let c = traditional_table(&t, 2, Linkage::Centroid).unwrap();
        assert_eq!(c.clusters()[0], vec![0, 1]);
        assert_eq!(c.clusters()[1], vec![2, 3]);
    }

    #[test]
    fn similarity_only_separates_clean_blocks() {
        let data = two_blocks();
        let c = similarity_only(&data, 2, &Jaccard, Linkage::Average).unwrap();
        assert_eq!(c.clusters()[0], vec![0, 1, 2]);
        assert_eq!(c.clusters()[1], vec![3, 4, 5]);
    }

    #[test]
    fn similarity_only_single_link_is_fooled_by_bridges() {
        // Two clean blocks plus bridge baskets straddling them: single-link
        // on Jaccard chains across the bridge, mixing the blocks before
        // separating them — the failure mode the paper motivates links with.
        let (data, _labels) = rock_datasets_stub();
        let c = similarity_only(&data, 2, &Jaccard, Linkage::Single).unwrap();
        let groups = c.clusters();
        // The two largest *true* blocks are 0..10 and 10..20; with bridges,
        // single-link must NOT produce that exact split.
        let block0: Vec<u32> = (0..10).collect();
        assert_ne!(groups[0], block0, "bridges should fool single-link");
    }

    /// Local copy of the intro-example structure to avoid a dev-dependency
    /// cycle on rock-datasets: two 3-subset families plus bridges.
    fn rock_datasets_stub() -> (TransactionSet, Vec<usize>) {
        let mut v = Vec::new();
        let mut labels = Vec::new();
        for (cluster, base) in [(0usize, 0u32), (1, 5)] {
            for a in 0..5u32 {
                for b in (a + 1)..5 {
                    for c in (b + 1)..5 {
                        v.push(Transaction::new([base + a, base + b, base + c]));
                        labels.push(cluster);
                    }
                }
            }
        }
        for s in 0..3u32 {
            v.push(Transaction::new([s, s + 1, 5 + s, 6 + s]));
            labels.push(0);
        }
        (v.into_iter().collect(), labels)
    }

    #[test]
    fn k_bounds_respected() {
        let data = two_blocks();
        assert!(traditional(&data, 0, Linkage::Centroid).is_err());
        assert!(traditional(&data, 7, Linkage::Centroid).is_err());
    }
}
