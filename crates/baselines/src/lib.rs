//! # rock-baselines
//!
//! The comparison algorithms from the ROCK evaluation and its follow-on
//! literature, implemented on the same data model as `rock-core`:
//!
//! * [`hierarchical::traditional`] — centroid-based hierarchical
//!   clustering of one-hot vectors under Euclidean distance (the paper's
//!   "traditional algorithm"), with single/complete/average/Ward variants
//!   via [`linkage::Linkage`];
//! * [`hierarchical::similarity_only`] — agglomeration driven purely by
//!   pairwise similarity (no links), the strawman §1–2 of the paper argues
//!   against;
//! * [`kmodes::KModes`] — Huang's k-modes;
//! * [`kmeans::KMeans`] — Lloyd's k-means with k-means++ seeding.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod common;
pub mod hierarchical;
pub mod kmeans;
pub mod kmodes;
pub mod linkage;
pub mod onehot;

pub use common::FlatClustering;
pub use hierarchical::{similarity_only, traditional, traditional_table};
pub use kmeans::KMeans;
pub use kmodes::{KModes, KModesInit};
pub use linkage::Linkage;
