//! Shared result types for baseline algorithms.

use rock_core::error::{Result, RockError};

/// A flat clustering: every point is assigned to exactly one of `k`
/// clusters (baselines have no outlier concept).
#[derive(Debug, Clone, PartialEq)]
pub struct FlatClustering {
    /// Per-point cluster index.
    pub assignments: Vec<u32>,
    /// Number of clusters.
    pub k: usize,
    /// Objective value of the solution (algorithm-specific: SSE for
    /// k-means, mismatch cost for k-modes, `f64::NAN` where undefined).
    pub cost: f64,
    /// Iterations (or merges) performed.
    pub iterations: usize,
}

impl FlatClustering {
    /// Member lists per cluster, ordered by decreasing size.
    pub fn clusters(&self) -> Vec<Vec<u32>> {
        let mut out = vec![Vec::new(); self.k];
        for (i, &c) in self.assignments.iter().enumerate() {
            out[c as usize].push(i as u32);
        }
        out.sort_by(|a, b| {
            b.len()
                .cmp(&a.len())
                .then_with(|| a.first().cmp(&b.first()))
        });
        out.retain(|c| !c.is_empty());
        out
    }

    /// Assignments as the `Option<u32>` shape the metrics module expects.
    pub fn as_predictions(&self) -> Vec<Option<u32>> {
        self.assignments.iter().map(|&c| Some(c)).collect()
    }

    /// Post-hoc outlier removal for baselines — the "traditional algorithm
    /// plus discard small clusters" variant the ROCK paper also evaluates.
    /// Members of clusters with at most `max_size` points become `None`.
    pub fn prune_small(&self, max_size: usize) -> Vec<Option<u32>> {
        let mut sizes = vec![0usize; self.k];
        for &c in &self.assignments {
            sizes[c as usize] += 1;
        }
        self.assignments
            .iter()
            .map(|&c| (sizes[c as usize] > max_size).then_some(c))
            .collect()
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<()> {
        if self.assignments.is_empty() {
            return Err(RockError::EmptyDataset);
        }
        if let Some(&max) = self.assignments.iter().max() {
            if (max as usize) >= self.k {
                return Err(RockError::InvalidK {
                    k: self.k,
                    n: self.assignments.len(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clusters_grouped_and_sorted() {
        let c = FlatClustering {
            assignments: vec![1, 0, 1, 1, 0],
            k: 2,
            cost: 0.0,
            iterations: 1,
        };
        let groups = c.clusters();
        assert_eq!(groups[0], vec![0, 2, 3]);
        assert_eq!(groups[1], vec![1, 4]);
        assert_eq!(
            c.as_predictions(),
            vec![Some(1), Some(0), Some(1), Some(1), Some(0)]
        );
        c.validate().unwrap();
    }

    #[test]
    fn prune_small_marks_tiny_clusters_as_outliers() {
        let c = FlatClustering {
            assignments: vec![0, 0, 0, 1, 2, 2],
            k: 3,
            cost: 0.0,
            iterations: 1,
        };
        assert_eq!(
            c.prune_small(1),
            vec![Some(0), Some(0), Some(0), None, Some(2), Some(2)]
        );
        assert_eq!(
            c.prune_small(2),
            vec![Some(0), Some(0), Some(0), None, None, None]
        );
        assert_eq!(c.prune_small(0), c.as_predictions());
    }

    #[test]
    fn empty_clusters_dropped() {
        let c = FlatClustering {
            assignments: vec![2, 2],
            k: 3,
            cost: 0.0,
            iterations: 0,
        };
        assert_eq!(c.clusters().len(), 1);
    }

    #[test]
    fn validation_catches_bad_ids() {
        let c = FlatClustering {
            assignments: vec![5],
            k: 2,
            cost: 0.0,
            iterations: 0,
        };
        assert!(c.validate().is_err());
        let e = FlatClustering {
            assignments: vec![],
            k: 0,
            cost: 0.0,
            iterations: 0,
        };
        assert!(e.validate().is_err());
    }
}
