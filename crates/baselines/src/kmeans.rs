//! Lloyd's k-means with k-means++ seeding, run on one-hot encodings.
//!
//! Included because the Euclidean-geometry baseline on indicator vectors
//! is the natural foil for ROCK (the paper's traditional comparator is
//! hierarchical, but the same one-hot geometry underlies it), and because
//! the follow-on literature uses k-means on one-hot categorical data
//! routinely.

use rock_core::error::{Result, RockError};
use rock_core::rng::Rng;
use rock_core::sampling::seeded_rng;

use crate::common::FlatClustering;
use crate::onehot::{sq_dist, DenseMatrix};

/// k-means configuration.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations per restart.
    pub max_iter: usize,
    /// Independent restarts; lowest-inertia run wins.
    pub n_init: usize,
    /// RNG seed.
    pub seed: u64,
}

impl KMeans {
    /// Defaults: 50 iterations, 5 restarts.
    pub fn new(k: usize) -> Self {
        KMeans {
            k,
            max_iter: 50,
            n_init: 5,
            seed: 0,
        }
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets restarts.
    pub fn n_init(mut self, n_init: usize) -> Self {
        self.n_init = n_init.max(1);
        self
    }

    /// Clusters the rows of `m`.
    ///
    /// # Errors
    /// * [`RockError::EmptyDataset`] / [`RockError::InvalidK`] on bad input.
    pub fn fit(&self, m: &DenseMatrix) -> Result<FlatClustering> {
        let n = m.rows();
        if n == 0 {
            return Err(RockError::EmptyDataset);
        }
        if self.k == 0 || self.k > n {
            return Err(RockError::InvalidK { k: self.k, n });
        }
        let mut rng = seeded_rng(self.seed);
        let mut best: Option<FlatClustering> = None;
        for _ in 0..self.n_init.max(1) {
            let run = self.run_once(m, &mut rng);
            if best.as_ref().is_none_or(|b| run.cost < b.cost) {
                best = Some(run);
            }
        }
        Ok(best.expect("at least one restart"))
    }

    #[allow(clippy::needless_range_loop)] // dist/assignments are row-index aligned
    fn run_once(&self, m: &DenseMatrix, rng: &mut Rng) -> FlatClustering {
        let (n, d) = (m.rows(), m.cols());
        // k-means++ seeding.
        let mut centers: Vec<Vec<f64>> = Vec::with_capacity(self.k);
        centers.push(m.row(rng.gen_range(0..n)).to_vec());
        let mut dist: Vec<f64> = (0..n).map(|i| sq_dist(m.row(i), &centers[0])).collect();
        while centers.len() < self.k {
            let total: f64 = dist.iter().sum();
            let pick = if total <= 0.0 {
                rng.gen_range(0..n)
            } else {
                let mut target = rng.gen::<f64>() * total;
                let mut idx = n - 1;
                for (i, &w) in dist.iter().enumerate() {
                    if target < w {
                        idx = i;
                        break;
                    }
                    target -= w;
                }
                idx
            };
            centers.push(m.row(pick).to_vec());
            for i in 0..n {
                let nd = sq_dist(m.row(i), centers.last().unwrap());
                if nd < dist[i] {
                    dist[i] = nd;
                }
            }
        }

        // Lloyd iterations.
        let mut assignments = vec![0u32; n];
        let mut iterations = 0usize;
        for _ in 0..self.max_iter.max(1) {
            iterations += 1;
            let mut changed = false;
            for i in 0..n {
                let row = m.row(i);
                let mut best_c = 0u32;
                let mut best_d = f64::INFINITY;
                for (c, center) in centers.iter().enumerate() {
                    let dd = sq_dist(row, center);
                    if dd < best_d {
                        best_d = dd;
                        best_c = c as u32;
                    }
                }
                if assignments[i] != best_c {
                    assignments[i] = best_c;
                    changed = true;
                }
            }
            if !changed && iterations > 1 {
                break;
            }
            // Update centers.
            let mut counts = vec![0usize; self.k];
            for center in centers.iter_mut() {
                center.iter_mut().for_each(|v| *v = 0.0);
            }
            for i in 0..n {
                let c = assignments[i] as usize;
                counts[c] += 1;
                for (acc, &v) in centers[c].iter_mut().zip(m.row(i)) {
                    *acc += v;
                }
            }
            for (c, center) in centers.iter_mut().enumerate() {
                if counts[c] == 0 {
                    // Re-seed empty cluster at the farthest point.
                    let far = (0..n)
                        .max_by(|&a, &b| {
                            let da = sq_dist(m.row(a), &vec![0.0; d]);
                            let db = sq_dist(m.row(b), &vec![0.0; d]);
                            da.total_cmp(&db)
                        })
                        .unwrap_or(0);
                    *center = m.row(far).to_vec();
                } else {
                    center.iter_mut().for_each(|v| *v /= counts[c] as f64);
                }
            }
        }

        let cost: f64 = (0..n)
            .map(|i| sq_dist(m.row(i), &centers[assignments[i] as usize]))
            .sum();
        FlatClustering {
            assignments,
            k: self.k,
            cost,
            iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_core::data::{Transaction, TransactionSet};

    fn onehot_blocks() -> (DenseMatrix, Vec<usize>) {
        let ts: TransactionSet = vec![
            Transaction::new([0, 1, 2]),
            Transaction::new([0, 1, 3]),
            Transaction::new([0, 2, 3]),
            Transaction::new([10, 11, 12]),
            Transaction::new([10, 11, 13]),
            Transaction::new([10, 12, 13]),
        ]
        .into_iter()
        .collect();
        (
            crate::onehot::encode_transactions(&ts),
            vec![0, 0, 0, 1, 1, 1],
        )
    }

    #[test]
    fn separates_two_blocks() {
        let (m, labels) = onehot_blocks();
        let c = KMeans::new(2).seed(1).fit(&m).unwrap();
        c.validate().unwrap();
        let acc = rock_core::metrics::matched_accuracy(&c.as_predictions(), &labels).unwrap();
        assert_eq!(acc, 1.0);
    }

    #[test]
    fn inertia_decreases_with_k() {
        let (m, _) = onehot_blocks();
        let c1 = KMeans::new(1).seed(2).fit(&m).unwrap();
        let c2 = KMeans::new(2).seed(2).fit(&m).unwrap();
        let c3 = KMeans::new(3).seed(2).fit(&m).unwrap();
        assert!(c2.cost <= c1.cost);
        assert!(c3.cost <= c2.cost);
    }

    #[test]
    fn validates_inputs() {
        let (m, _) = onehot_blocks();
        assert!(KMeans::new(0).fit(&m).is_err());
        assert!(KMeans::new(99).fit(&m).is_err());
        let empty = DenseMatrix::zeros(0, 3);
        assert!(KMeans::new(1).fit(&empty).is_err());
    }

    #[test]
    fn deterministic_by_seed() {
        let (m, _) = onehot_blocks();
        let a = KMeans::new(2).seed(9).fit(&m).unwrap();
        let b = KMeans::new(2).seed(9).fit(&m).unwrap();
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn k_equals_n_zero_cost() {
        let (m, _) = onehot_blocks();
        let c = KMeans::new(6).seed(4).n_init(3).fit(&m).unwrap();
        assert!(c.cost < 1e-9, "cost {}", c.cost);
    }
}
