//! One-hot (indicator) encoding of categorical data.
//!
//! The ROCK paper's "traditional" comparator runs Euclidean centroid-based
//! hierarchical clustering over boolean indicator vectors: one dimension
//! per `(attribute, value)` pair (or per item for baskets), 1 when
//! present. This module produces those dense vectors.

use rock_core::data::{CategoricalTable, TransactionSet};

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl DenseMatrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable row view.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row view.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Squared Euclidean distance between rows `i` and `j`.
    pub fn sq_dist(&self, i: usize, j: usize) -> f64 {
        sq_dist(self.row(i), self.row(j))
    }
}

/// Squared Euclidean distance between two equal-length slices.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// One-hot encodes a transaction set: column = item id.
pub fn encode_transactions(data: &TransactionSet) -> DenseMatrix {
    let mut m = DenseMatrix::zeros(data.len(), data.universe());
    for (i, t) in data.iter().enumerate() {
        let row = m.row_mut(i);
        for &item in t.items() {
            row[item as usize] = 1.0;
        }
    }
    m
}

/// One-hot encodes a categorical table: one column per `(attribute,
/// value)`; missing cells contribute nothing.
pub fn encode_table(table: &CategoricalTable) -> DenseMatrix {
    // Column offsets per attribute.
    let mut offsets = Vec::with_capacity(table.num_attributes());
    let mut width = 0usize;
    for (_, a) in table.schema().iter() {
        offsets.push(width);
        width += a.cardinality();
    }
    let mut m = DenseMatrix::zeros(table.len(), width);
    for (i, row) in table.rows().enumerate() {
        let out = m.row_mut(i);
        for (a, cell) in row.iter().enumerate() {
            if let Some(code) = cell {
                out[offsets[a] + *code as usize] = 1.0;
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_core::data::{Schema, Transaction};

    #[test]
    fn encode_transactions_basic() {
        let ts: TransactionSet = vec![Transaction::new([0, 2]), Transaction::new([1])]
            .into_iter()
            .collect();
        let m = encode_transactions(&ts);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.row(0), &[1.0, 0.0, 1.0]);
        assert_eq!(m.row(1), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn sq_dist_counts_disagreements() {
        let ts: TransactionSet = vec![Transaction::new([0, 1]), Transaction::new([1, 2])]
            .into_iter()
            .collect();
        let m = encode_transactions(&ts);
        // Disagree on items 0 and 2 → squared distance 2.
        assert_eq!(m.sq_dist(0, 1), 2.0);
        assert_eq!(m.sq_dist(0, 0), 0.0);
    }

    #[test]
    fn encode_table_with_missing() {
        let mut t = CategoricalTable::new(Schema::with_unnamed(2));
        t.push_textual(&["y", "a"], "?").unwrap();
        t.push_textual(&["n", "?"], "?").unwrap();
        let m = encode_table(&t);
        // attr0 domain {y,n} → cols 0..2; attr1 domain {a} → col 2.
        assert_eq!(m.cols(), 3);
        assert_eq!(m.row(0), &[1.0, 0.0, 1.0]);
        assert_eq!(m.row(1), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn zeros_and_views() {
        let mut m = DenseMatrix::zeros(2, 2);
        m.row_mut(1)[0] = 5.0;
        assert_eq!(m.row(1), &[5.0, 0.0]);
        assert_eq!(m.row(0), &[0.0, 0.0]);
    }
}
