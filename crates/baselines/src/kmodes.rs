//! k-modes (Huang, 1997/1998): the k-means analogue for categorical data.
//!
//! Centers are *modes* — per-attribute most frequent values among the
//! cluster's members — and the distance is the simple matching (Hamming)
//! dissimilarity. Included as a popular categorical baseline; ROCK's
//! follow-on literature routinely compares against it.

use rock_core::data::CategoricalTable;
use rock_core::error::{Result, RockError};
use rock_core::rng::Rng;
use rock_core::sampling::seeded_rng;

use crate::common::FlatClustering;

/// Seeding strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KModesInit {
    /// k distinct random records.
    Random,
    /// Distance-proportional seeding (the Hamming analogue of k-means++ /
    /// D¹ sampling).
    PlusPlus,
}

/// k-modes configuration.
#[derive(Debug, Clone)]
pub struct KModes {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations per restart.
    pub max_iter: usize,
    /// Independent restarts; the lowest-cost run wins.
    pub n_init: usize,
    /// Seeding strategy.
    pub init: KModesInit,
    /// RNG seed.
    pub seed: u64,
}

impl KModes {
    /// Sensible defaults: 20 iterations, 5 restarts, ++ seeding.
    pub fn new(k: usize) -> Self {
        KModes {
            k,
            max_iter: 20,
            n_init: 5,
            init: KModesInit::PlusPlus,
            seed: 0,
        }
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets restarts.
    pub fn n_init(mut self, n_init: usize) -> Self {
        self.n_init = n_init.max(1);
        self
    }

    /// Sets the seeding strategy.
    pub fn init(mut self, init: KModesInit) -> Self {
        self.init = init;
        self
    }

    /// Clusters the table.
    ///
    /// # Errors
    /// * [`RockError::EmptyDataset`] / [`RockError::InvalidK`] on bad input.
    pub fn fit(&self, table: &CategoricalTable) -> Result<FlatClustering> {
        let n = table.len();
        if n == 0 {
            return Err(RockError::EmptyDataset);
        }
        if self.k == 0 || self.k > n {
            return Err(RockError::InvalidK { k: self.k, n });
        }
        let rows: Vec<&[Option<u16>]> = (0..n).map(|i| table.row(i).unwrap()).collect();
        let d = table.num_attributes();
        // Domain sizes: the schema's interned cardinality, widened by the
        // codes actually present (rows pushed pre-coded may bypass the
        // schema's interning).
        let mut cards: Vec<usize> = table
            .schema()
            .iter()
            .map(|(_, a)| a.cardinality())
            .collect();
        for row in &rows {
            for (a, cell) in row.iter().enumerate() {
                if let Some(v) = cell {
                    cards[a] = cards[a].max(*v as usize + 1);
                }
            }
        }

        let mut rng = seeded_rng(self.seed);
        let mut best: Option<FlatClustering> = None;
        for _ in 0..self.n_init.max(1) {
            let run = self.run_once(&rows, d, &cards, &mut rng);
            if best.as_ref().is_none_or(|b| run.cost < b.cost) {
                best = Some(run);
            }
        }
        Ok(best.expect("at least one restart"))
    }

    fn run_once(
        &self,
        rows: &[&[Option<u16>]],
        d: usize,
        cards: &[usize],
        rng: &mut Rng,
    ) -> FlatClustering {
        let n = rows.len();
        // ── Seed modes ────────────────────────────────────────────────
        let mut modes: Vec<Vec<Option<u16>>> = match self.init {
            KModesInit::Random => {
                let mut picked = std::collections::HashSet::new();
                let mut modes = Vec::with_capacity(self.k);
                while modes.len() < self.k {
                    let i = rng.gen_range(0..n);
                    if picked.insert(i) {
                        modes.push(rows[i].to_vec());
                    }
                    if picked.len() == n {
                        // Fewer distinct rows than k: duplicate arbitrary.
                        while modes.len() < self.k {
                            modes.push(rows[rng.gen_range(0..n)].to_vec());
                        }
                    }
                }
                modes
            }
            KModesInit::PlusPlus => {
                let mut modes: Vec<Vec<Option<u16>>> = Vec::with_capacity(self.k);
                modes.push(rows[rng.gen_range(0..n)].to_vec());
                let mut dist: Vec<f64> =
                    rows.iter().map(|r| mismatch(r, &modes[0]) as f64).collect();
                while modes.len() < self.k {
                    let total: f64 = dist.iter().sum();
                    let pick = if total <= 0.0 {
                        rng.gen_range(0..n)
                    } else {
                        let mut target = rng.gen::<f64>() * total;
                        let mut idx = n - 1;
                        for (i, &w) in dist.iter().enumerate() {
                            if target < w {
                                idx = i;
                                break;
                            }
                            target -= w;
                        }
                        idx
                    };
                    modes.push(rows[pick].to_vec());
                    for (i, r) in rows.iter().enumerate() {
                        let nd = mismatch(r, modes.last().unwrap()) as f64;
                        if nd < dist[i] {
                            dist[i] = nd;
                        }
                    }
                }
                modes
            }
        };

        // ── Lloyd iterations ──────────────────────────────────────────
        let mut assignments = vec![0u32; n];
        let mut iterations = 0usize;
        for _ in 0..self.max_iter.max(1) {
            iterations += 1;
            // Assign.
            let mut changed = false;
            for (i, r) in rows.iter().enumerate() {
                let mut best_c = 0u32;
                let mut best_d = usize::MAX;
                for (c, m) in modes.iter().enumerate() {
                    let dd = mismatch(r, m);
                    if dd < best_d {
                        best_d = dd;
                        best_c = c as u32;
                    }
                }
                if assignments[i] != best_c {
                    assignments[i] = best_c;
                    changed = true;
                }
            }
            if !changed && iterations > 1 {
                break;
            }
            // Update modes: per attribute, the most frequent non-missing
            // value; empty clusters are re-seeded from a random record.
            for (c, mode) in modes.iter_mut().enumerate() {
                let members: Vec<usize> = (0..n).filter(|&i| assignments[i] == c as u32).collect();
                if members.is_empty() {
                    *mode = rows[rng.gen_range(0..n)].to_vec();
                    continue;
                }
                for a in 0..d {
                    let mut freq = vec![0usize; cards[a].max(1)];
                    for &i in &members {
                        if let Some(v) = rows[i][a] {
                            freq[v as usize] += 1;
                        }
                    }
                    let best_v = freq
                        .iter()
                        .enumerate()
                        .max_by_key(|&(_, c)| *c)
                        .map(|(v, _)| v as u16);
                    mode[a] = match best_v {
                        Some(v) if freq[v as usize] > 0 => Some(v),
                        _ => None,
                    };
                }
            }
        }

        let cost: usize = rows
            .iter()
            .enumerate()
            .map(|(i, r)| mismatch(r, &modes[assignments[i] as usize]))
            .sum();
        FlatClustering {
            assignments,
            k: self.k,
            cost: cost as f64,
            iterations,
        }
    }
}

/// Simple-matching dissimilarity; a missing value mismatches everything
/// (including another missing value).
#[inline]
fn mismatch(a: &[Option<u16>], b: &[Option<u16>]) -> usize {
    a.iter()
        .zip(b)
        .filter(|(x, y)| match (x, y) {
            (Some(u), Some(v)) => u != v,
            _ => true,
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_core::data::Schema;

    fn table_two_groups(per: usize) -> (CategoricalTable, Vec<usize>) {
        let mut t = CategoricalTable::new(Schema::with_unnamed(4));
        let mut labels = Vec::new();
        for i in 0..per {
            let odd = ["a", "b", "a", "b"][i % 2];
            t.push_textual(&["x", "x", "x", odd], "?").unwrap();
            labels.push(0);
        }
        for i in 0..per {
            let odd = ["c", "d", "c", "d"][i % 2];
            t.push_textual(&["y", "y", "y", odd], "?").unwrap();
            labels.push(1);
        }
        (t, labels)
    }

    #[test]
    fn separates_two_groups() {
        let (t, labels) = table_two_groups(10);
        let c = KModes::new(2).seed(1).fit(&t).unwrap();
        c.validate().unwrap();
        let acc = rock_core::metrics::matched_accuracy(&c.as_predictions(), &labels).unwrap();
        assert_eq!(acc, 1.0);
        assert!(c.cost <= 10.0, "cost {}", c.cost);
    }

    #[test]
    fn mismatch_counts_missing_as_difference() {
        let a = [Some(1u16), None, Some(2)];
        let b = [Some(1u16), None, Some(3)];
        assert_eq!(mismatch(&a, &b), 2);
        assert_eq!(mismatch(&a, &a), 1); // None vs None mismatches
    }

    #[test]
    fn random_init_also_works() {
        let (t, labels) = table_two_groups(8);
        let c = KModes::new(2)
            .init(KModesInit::Random)
            .n_init(5)
            .seed(3)
            .fit(&t)
            .unwrap();
        let acc = rock_core::metrics::matched_accuracy(&c.as_predictions(), &labels).unwrap();
        assert!(acc >= 0.9, "accuracy {acc}");
    }

    #[test]
    fn k_one_puts_everything_together() {
        let (t, _) = table_two_groups(5);
        let c = KModes::new(1).seed(0).fit(&t).unwrap();
        assert!(c.assignments.iter().all(|&a| a == 0));
    }

    #[test]
    fn validates_inputs() {
        let (t, _) = table_two_groups(3);
        assert!(KModes::new(0).fit(&t).is_err());
        assert!(KModes::new(100).fit(&t).is_err());
        let empty = CategoricalTable::new(Schema::with_unnamed(2));
        assert!(KModes::new(1).fit(&empty).is_err());
    }

    #[test]
    fn deterministic_by_seed() {
        let (t, _) = table_two_groups(10);
        let a = KModes::new(2).seed(5).fit(&t).unwrap();
        let b = KModes::new(2).seed(5).fit(&t).unwrap();
        assert_eq!(a.assignments, b.assignments);
    }
}
