//! Regression battery for lexer edge cases: raw strings, byte strings,
//! nested block comments, char-literal escapes, tuple-index chains, and
//! float exponents. The tuple-index and exponent cases were written
//! failing-first against the v1 lexer (which fused `x.0.1` into one
//! numeric token and split `1e-5` at the sign).

use rock_analyze::lexer::{lex, TokKind};

fn idents(src: &str) -> Vec<String> {
    lex(src)
        .tokens
        .into_iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text)
        .collect()
}

#[test]
fn probe_raw_string_hash_mismatch() {
    // body contains "# (fewer hashes than delimiter) — must not close early
    let src = r###"let s = r##"inner "# quote"##; tail();"###;
    let ids = idents(src);
    assert!(ids.iter().any(|t| t == "tail"), "ids: {ids:?}");
    assert!(!ids.iter().any(|t| t == "inner"), "ids: {ids:?}");
    assert!(!ids.iter().any(|t| t == "quote"), "ids: {ids:?}");
}

#[test]
fn probe_raw_byte_string_multi_hash() {
    let src = r###"let s = br##"bytes "# here"##; tail();"###;
    let ids = idents(src);
    assert!(ids.iter().any(|t| t == "tail"), "ids: {ids:?}");
    assert!(!ids.iter().any(|t| t == "bytes"), "ids: {ids:?}");
}

#[test]
fn probe_byte_string_escaped_quote() {
    let src = r#"let s = b"a\"b unwrap() c"; tail();"#;
    let ids = idents(src);
    assert!(ids.iter().any(|t| t == "tail"), "ids: {ids:?}");
    assert!(!ids.iter().any(|t| t == "unwrap"), "ids: {ids:?}");
}

#[test]
fn probe_nested_block_comment_deep() {
    let src = "/* a /* b /* c */ d */ e */ tail();";
    let ids = idents(src);
    assert_eq!(ids, vec!["tail"], "ids: {ids:?}");
}

#[test]
fn probe_block_comment_star_runs() {
    // `**/` and `/**` runs — classic off-by-one fodder
    let src = "/*** x ***/ tail(); /**/ after();";
    let ids = idents(src);
    assert_eq!(ids, vec!["tail", "after"], "ids: {ids:?}");
}

#[test]
fn probe_char_escaped_quote_and_backslash() {
    let src = r#"let a = '\''; let b = '\\'; tail();"#;
    let toks = lex(src).tokens;
    let chars = toks.iter().filter(|t| t.kind == TokKind::Char).count();
    assert_eq!(chars, 2, "toks: {toks:?}");
    assert!(toks.iter().any(|t| t.is_ident("tail")));
}

#[test]
fn probe_byte_char_escapes() {
    let src = r#"let a = b'\''; let b = b'\\'; let c = b'\xFF'; tail();"#;
    let toks = lex(src).tokens;
    let chars = toks.iter().filter(|t| t.kind == TokKind::Char).count();
    assert_eq!(chars, 3, "toks: {toks:?}");
    assert!(toks.iter().any(|t| t.is_ident("tail")));
}

#[test]
fn probe_char_unicode_escape() {
    let src = r#"let a = '\u{1F600}'; tail();"#;
    let toks = lex(src).tokens;
    assert_eq!(
        toks.iter().filter(|t| t.kind == TokKind::Char).count(),
        1,
        "toks: {toks:?}"
    );
    assert!(toks.iter().any(|t| t.is_ident("tail")));
}

#[test]
fn probe_raw_string_immediately_followed_by_method() {
    let src = r###"let n = r#"x"#.len(); tail();"###;
    let ids = idents(src);
    assert!(ids.iter().any(|t| t == "len"), "ids: {ids:?}");
    assert!(ids.iter().any(|t| t == "tail"), "ids: {ids:?}");
}

#[test]
fn probe_tuple_index_chain() {
    // x.0.1 — the `0.1` must not lex as a float (two tuple indexes)
    let toks = lex("let y = x.0.1; tail();").tokens;
    let nums: Vec<u32> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Num)
        .map(|t| t.line)
        .collect();
    assert_eq!(nums.len(), 2, "toks: {toks:?}");
}

#[test]
fn probe_float_exponents() {
    // 1e-5 / 2.5E+10 are single numeric tokens in rustc
    let toks = lex("let a = 1e-5; let b = 2.5E+10; tail();").tokens;
    let nums = toks.iter().filter(|t| t.kind == TokKind::Num).count();
    assert_eq!(nums, 2, "toks: {toks:?}");
}

#[test]
fn probe_hex_trailing_e_is_not_an_exponent() {
    // 0x1E-5 is subtraction (hex literal, minus, int) — the `-5` must
    // not be swallowed into the number by exponent handling.
    let toks = lex("let a = 0x1E-5; tail();").tokens;
    let nums = toks.iter().filter(|t| t.kind == TokKind::Num).count();
    assert_eq!(nums, 2, "toks: {toks:?}");
    assert!(toks.iter().any(|t| t.is_punct('-')), "toks: {toks:?}");
}

#[test]
fn probe_exponent_with_suffix_and_underscores() {
    let toks = lex("let a = 1_000.5e-3f64; tail();").tokens;
    let nums = toks.iter().filter(|t| t.kind == TokKind::Num).count();
    assert_eq!(nums, 1, "toks: {toks:?}");
}

#[test]
fn probe_range_from_zero_to_float() {
    // 0..0.5 — the leading 0 is an int, the bound 0.5 is one float.
    let toks = lex("for _ in 0..0.5 as usize {} tail();").tokens;
    let nums = toks.iter().filter(|t| t.kind == TokKind::Num).count();
    assert_eq!(nums, 2, "toks: {toks:?}");
    let dots = toks.iter().filter(|t| t.is_punct('.')).count();
    assert_eq!(dots, 2, "toks: {toks:?}");
}

#[test]
fn probe_raw_string_line_tracking() {
    let src = "let s = r#\"line one\nline two\"#;\ntail();";
    let toks = lex(src).tokens;
    let tail = toks.iter().find(|t| t.is_ident("tail")).unwrap();
    assert_eq!(tail.line, 3, "toks: {toks:?}");
}

#[test]
fn probe_lifetime_before_char() {
    let src = "fn f<'a>(x: &'a u8) { let c = 'x'; let d = '\\n'; }";
    let toks = lex(src).tokens;
    assert_eq!(
        toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
        2,
        "toks: {toks:?}"
    );
    assert_eq!(
        toks.iter().filter(|t| t.kind == TokKind::Char).count(),
        2,
        "toks: {toks:?}"
    );
}

#[test]
fn probe_raw_ident_keyword() {
    let ids = idents("let r#loop = 1; let r#match = r#loop;");
    assert_eq!(
        ids.iter().filter(|t| t.as_str() == "loop").count(),
        2,
        "ids: {ids:?}"
    );
}

#[test]
fn probe_empty_and_unterminated() {
    // must not hang or panic
    let _ = lex("let s = \"unterminated");
    let _ = lex("let s = r#\"unterminated");
    let _ = lex("/* unterminated");
    let _ = lex("let c = '");
    let _ = lex("r#");
    let _ = lex("b");
    let _ = lex("br##");
}
