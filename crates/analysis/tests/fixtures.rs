//! Fixture-driven integration tests for `rock-analyze`.
//!
//! Each fixture under `tests/fixtures/` is a small Rust source exercising
//! one lint (or the directive machinery). Fixtures are *data*, not code:
//! they are read with `include_str!` and analyzed under a virtual
//! `crates/core/src/` path, because the real `fixtures/` directory is
//! deliberately exempt from linting (and from the tree walk) so the CI
//! gate never trips over its own test corpus.

use rock_analyze::{analyze_source, applicable_lints, collect_rust_files, Finding};

/// Analyzes `source` as if it lived at `crates/core/src/<name>` — the
/// strictest lint scope — and returns `(line, lint)` pairs in report order.
fn run_core(name: &str, source: &str) -> Vec<(u32, &'static str)> {
    analyze_source(&format!("crates/core/src/{name}"), source)
        .into_iter()
        .map(|f| (f.line, f.lint))
        .collect()
}

#[test]
fn l1_unwrap_fixture_exact_lines() {
    let src = include_str!("fixtures/l1_unwrap.rs");
    let findings = analyze_source("crates/core/src/l1_unwrap.rs", src);
    let lines: Vec<(u32, &str)> = findings.iter().map(|f| (f.line, f.lint)).collect();
    // `.unwrap()` at line 4, `.expect()` at line 8; the `.unwrap()` inside
    // the `#[cfg(test)]` module (line 19) is exempt.
    assert_eq!(lines, vec![(4, "core-unwrap"), (8, "core-unwrap")]);
    // Reports are machine-readable `path:line: lint: message`.
    assert!(findings[0]
        .to_string()
        .starts_with("crates/core/src/l1_unwrap.rs:4: core-unwrap:"));
    assert!(findings[1]
        .to_string()
        .starts_with("crates/core/src/l1_unwrap.rs:8: core-unwrap:"));
}

#[test]
fn l2_cast_fixture_exact_lines() {
    let src = include_str!("fixtures/l2_cast.rs");
    // Bare numeric casts at lines 4 and 12; `u64::from` (line 8) and the
    // non-numeric `as Branded` (line 16) are out of scope.
    assert_eq!(
        run_core("l2_cast.rs", src),
        vec![(4, "core-bare-cast"), (12, "core-bare-cast")]
    );
}

#[test]
fn l3_float_ord_fixture_exact_lines() {
    let src = include_str!("fixtures/l3_float_ord.rs");
    assert_eq!(run_core("l3_float_ord.rs", src), vec![(7, "float-ord")]);
}

#[test]
fn l4_counter_fixture_exact_lines() {
    let src = include_str!("fixtures/l4_counter.rs");
    // `pushes` (line 4) never reaches a flush; `pops` is flushed through
    // `.add(..)` and `total` is not a telemetry counter name.
    assert_eq!(run_core("l4_counter.rs", src), vec![(4, "counter-flush")]);
}

#[test]
fn l5_wall_clock_fixture_exact_lines() {
    let src = include_str!("fixtures/l5_wall_clock.rs");
    // `Instant::now()` at line 6, `SystemTime::now()` at line 10; the
    // import (line 3) and the pass-through annotation (line 13) are
    // fine, and the justified allow(wall-clock) directive inside the
    // audited monotonic-clock helper (line 18) suppresses the guarded
    // `Instant::now()` on line 19 without any `bare-allow` finding.
    assert_eq!(
        run_core("l5_wall_clock.rs", src),
        vec![(6, "wall-clock"), (10, "wall-clock")]
    );
}

#[test]
fn allowlist_fixture_directive_semantics() {
    let src = include_str!("fixtures/allowlist.rs");
    // Justified allows suppress their own and the next line (lines 5 and
    // 10 stay silent). A directive for the *wrong* lint suppresses nothing
    // (cast at line 15 fires), and a justification-free directive is
    // itself reported (line 19) while still suppressing its target.
    assert_eq!(
        run_core("allowlist.rs", src),
        vec![(15, "core-bare-cast"), (19, "bare-allow")]
    );
}

#[test]
fn false_positive_fixture_is_silent() {
    let src = include_str!("fixtures/false_positives.rs");
    let findings: Vec<Finding> = analyze_source("crates/core/src/false_positives.rs", src);
    assert!(
        findings.is_empty(),
        "strings/comments fired lints: {findings:?}"
    );
}

#[test]
fn fixtures_are_exempt_by_location() {
    // By path: nothing applies to the fixture corpus itself.
    assert!(applicable_lints("crates/analysis/tests/fixtures/l1_unwrap.rs").is_empty());
    // By walk: the tree collector never descends into `fixtures/`.
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let files = collect_rust_files(manifest).expect("walk analysis crate");
    assert!(files.iter().any(|p| p.ends_with("src/lints.rs")));
    assert!(
        !files
            .iter()
            .any(|p| p.components().any(|c| c.as_os_str() == "fixtures")),
        "fixture corpus leaked into the tree walk"
    );
}
