//! Fixture-driven integration tests for `rock-analyze`.
//!
//! Each fixture under `tests/fixtures/` is a small Rust source exercising
//! one lint (or the directive machinery). Fixtures are *data*, not code:
//! they are read with `include_str!` and analyzed under a virtual
//! `crates/core/src/` path, because the real `fixtures/` directory is
//! deliberately exempt from linting (and from the tree walk) so the CI
//! gate never trips over its own test corpus.

use rock_analyze::{analyze_source, applicable_lints, collect_rust_files, Finding};

/// Analyzes `source` as if it lived at `crates/core/src/<name>` — the
/// strictest lint scope — and returns `(line, lint)` pairs in report order.
fn run_core(name: &str, source: &str) -> Vec<(u32, &'static str)> {
    analyze_source(&format!("crates/core/src/{name}"), source)
        .into_iter()
        .map(|f| (f.line, f.lint))
        .collect()
}

#[test]
fn l1_unwrap_fixture_exact_lines() {
    let src = include_str!("fixtures/l1_unwrap.rs");
    let findings = analyze_source("crates/core/src/l1_unwrap.rs", src);
    let lines: Vec<(u32, &str)> = findings.iter().map(|f| (f.line, f.lint)).collect();
    // `.unwrap()` at line 4, `.expect()` at line 8; the `.unwrap()` inside
    // the `#[cfg(test)]` module (line 19) is exempt.
    assert_eq!(lines, vec![(4, "core-unwrap"), (8, "core-unwrap")]);
    // Reports are machine-readable `path:line: lint: message`.
    assert!(findings[0]
        .to_string()
        .starts_with("crates/core/src/l1_unwrap.rs:4: core-unwrap:"));
    assert!(findings[1]
        .to_string()
        .starts_with("crates/core/src/l1_unwrap.rs:8: core-unwrap:"));
}

#[test]
fn l2_cast_fixture_exact_lines() {
    let src = include_str!("fixtures/l2_cast.rs");
    // Bare numeric casts at lines 4 and 12; `u64::from` (line 8) and the
    // non-numeric `as Branded` (line 16) are out of scope.
    assert_eq!(
        run_core("l2_cast.rs", src),
        vec![(4, "core-bare-cast"), (12, "core-bare-cast")]
    );
}

#[test]
fn l3_float_ord_fixture_exact_lines() {
    let src = include_str!("fixtures/l3_float_ord.rs");
    assert_eq!(run_core("l3_float_ord.rs", src), vec![(7, "float-ord")]);
}

#[test]
fn l4_counter_fixture_exact_lines() {
    let src = include_str!("fixtures/l4_counter.rs");
    // `pushes` (line 4) never reaches a flush; `pops` is flushed through
    // `.add(..)` and `total` is not a telemetry counter name.
    assert_eq!(run_core("l4_counter.rs", src), vec![(4, "counter-flush")]);
}

#[test]
fn l5_wall_clock_fixture_exact_lines() {
    let src = include_str!("fixtures/l5_wall_clock.rs");
    // `Instant::now()` at line 6, `SystemTime::now()` at line 10; the
    // import (line 3) and the pass-through annotation (line 13) are
    // fine, and the justified allow(wall-clock) directive inside the
    // audited monotonic-clock helper (line 18) suppresses the guarded
    // `Instant::now()` on line 19 without any `bare-allow` finding.
    assert_eq!(
        run_core("l5_wall_clock.rs", src),
        vec![(6, "wall-clock"), (10, "wall-clock")]
    );
}

#[test]
fn l6_nondet_iter_fixture_exact_lines() {
    let src = include_str!("fixtures/l6_nondet_iter.rs");
    // The `for` over a map (line 5), an `.iter()` chain with no sort in
    // reach (line 13), and the indexed element of a `Vec<HashMap>`
    // (line 31) fire; the sorted collect (line 18), the iteration over
    // the containing `Vec` itself (line 27), and the justified
    // commutative reduction (line 39) stay silent.
    assert_eq!(
        run_core("l6_nondet_iter.rs", src),
        vec![(5, "nondet-iter"), (13, "nondet-iter"), (31, "nondet-iter"),]
    );
}

#[test]
fn l7_atomic_ordering_fixture_exact_lines() {
    let src = include_str!("fixtures/l7_atomic_ordering.rs");
    // `store(…, SeqCst)` (line 4) and a tally `fetch_add` with `Acquire`
    // (line 5) violate the class table; the compliant class-table fn, the
    // `Ordering`-free `store.load(path)` call, and the justified SeqCst
    // fence (line 22) stay silent.
    assert_eq!(
        run_core("l7_atomic_ordering.rs", src),
        vec![(4, "atomic-ordering"), (5, "atomic-ordering")]
    );
}

#[test]
fn l8_spawn_merge_fixture_exact_lines() {
    let src = include_str!("fixtures/l8_spawn_merge.rs");
    // In the spawning fn, both the `channel()` (line 4) and the `recv()`
    // merge (line 10) are arrival-order; the indexed join loop and the
    // spawn-free receiver helper stay silent.
    assert_eq!(
        run_core("l8_spawn_merge.rs", src),
        vec![(4, "spawn-merge-order"), (10, "spawn-merge-order")]
    );
}

#[test]
fn l9_panic_path_fixture_exact_lines() {
    let src = include_str!("fixtures/l9_panic_path.rs");
    // Under a `crates/serve` path: `panic!` (line 5), `.unwrap()`
    // (line 7) and indexing (line 8) fire; the fail-closed rewrite, the
    // justified in-bounds slice (line 20), and the `#[cfg(test)]`
    // harness (asserts + indexing + unwrap) stay silent.
    let findings = analyze_source("crates/serve/src/l9_panic_path.rs", src);
    let lines: Vec<(u32, &str)> = findings.iter().map(|f| (f.line, f.lint)).collect();
    assert_eq!(
        lines,
        vec![(5, "panic-path"), (7, "panic-path"), (8, "panic-path")]
    );
}

#[test]
fn l10_guard_loop_fixture_exact_lines() {
    let src = include_str!("fixtures/l10_guard_loop.rs");
    // Analyzed under a core phase path (the lint's exact file scope):
    // the poll-free `while` (line 4) fires; the `checkpoint`-polling
    // loop, the justified bounded loop (line 21), and the `for` loop
    // stay silent.
    let findings = analyze_source("crates/core/src/sampling.rs", src);
    let lines: Vec<(u32, &str)> = findings.iter().map(|f| (f.line, f.lint)).collect();
    assert_eq!(lines, vec![(4, "guard-loop")]);
    // Outside the phase files the lint is out of scope — and its allow
    // directive, now suppressing nothing, is itself reported stale.
    let elsewhere = analyze_source("crates/core/src/heap.rs", src);
    let lines: Vec<(u32, &str)> = elsewhere.iter().map(|f| (f.line, f.lint)).collect();
    assert_eq!(lines, vec![(20, "unused-allow")]);
}

#[test]
fn unused_allow_fixture_exact_lines() {
    let src = include_str!("fixtures/unused_allow.rs");
    // A directive whose target was refactored away (line 4) and one
    // naming a lint that does not exist (line 9) are both stale; the
    // live justified directive (line 14) suppresses its unwrap and is
    // not reported.
    let findings = analyze_source("crates/core/src/unused_allow.rs", src);
    let lines: Vec<(u32, &str)> = findings.iter().map(|f| (f.line, f.lint)).collect();
    assert_eq!(lines, vec![(4, "unused-allow"), (9, "unused-allow")]);
    // The unknown-name case says so explicitly.
    assert!(findings[1].message.contains("no such lint: no-such-lint"));
}

#[test]
fn pack_lints_apply_to_test_code() {
    // Satellite scope: tests/, benches and examples carry the
    // determinism pack (a flaky harness hides real regressions), but not
    // the shipped-code lints.
    let src = include_str!("fixtures/l6_nondet_iter.rs");
    let findings = analyze_source("tests/l6_nondet_iter.rs", src);
    let lines: Vec<(u32, &str)> = findings.iter().map(|f| (f.line, f.lint)).collect();
    assert_eq!(
        lines,
        vec![(5, "nondet-iter"), (13, "nondet-iter"), (31, "nondet-iter"),]
    );
}

#[test]
fn allowlist_fixture_directive_semantics() {
    let src = include_str!("fixtures/allowlist.rs");
    // Justified allows suppress their own and the next line (lines 5 and
    // 10 stay silent). A directive for the *wrong* lint suppresses nothing
    // — the cast at line 15 fires AND the stale directive itself is
    // reported (line 14, `unused-allow`) — and a justification-free
    // directive is reported (line 19) while still suppressing its target.
    assert_eq!(
        run_core("allowlist.rs", src),
        vec![
            (14, "unused-allow"),
            (15, "core-bare-cast"),
            (19, "bare-allow"),
        ]
    );
}

#[test]
fn false_positive_fixture_is_silent() {
    let src = include_str!("fixtures/false_positives.rs");
    let findings: Vec<Finding> = analyze_source("crates/core/src/false_positives.rs", src);
    assert!(
        findings.is_empty(),
        "strings/comments fired lints: {findings:?}"
    );
}

#[test]
fn fixtures_are_exempt_by_location() {
    // By path: nothing applies to the fixture corpus itself.
    assert!(applicable_lints("crates/analysis/tests/fixtures/l1_unwrap.rs").is_empty());
    // By walk: the tree collector never descends into `fixtures/`.
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let files = collect_rust_files(manifest).expect("walk analysis crate");
    assert!(files.iter().any(|p| p.ends_with("src/lints.rs")));
    assert!(
        !files
            .iter()
            .any(|p| p.components().any(|c| c.as_os_str() == "fixtures")),
        "fixture corpus leaked into the tree walk"
    );
}
