//! Fixture: L4 `counter-flush` — telemetry tallies dropped on the floor.

fn dropped() -> u64 {
    let mut pushes = 0u64;
    pushes += 1;
    pushes
}

fn flushed(sink: &Sink) {
    let mut pops = 0u64;
    pops += 1;
    sink.add(pops);
}

fn benign() -> u64 {
    let mut total = 0u64;
    total += 1;
    total
}
