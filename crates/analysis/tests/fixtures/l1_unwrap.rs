//! Fixture: L1 `core-unwrap` — panicking extractors in library code.

fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

fn last(xs: &[u32]) -> u32 {
    *xs.last().expect("nonempty")
}

fn checked(xs: &[u32]) -> Option<u32> {
    xs.first().copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn in_tests_unwrap_is_fine() {
        assert_eq!(super::checked(&[1]).unwrap(), 1);
    }
}
