//! Fixture: L5 `wall-clock` — nondeterministic clocks outside telemetry.

use std::time::{Instant, SystemTime};

fn stamp() -> Instant {
    Instant::now()
}

fn epoch() -> SystemTime {
    SystemTime::now()
}

fn carry(t: Instant) -> Instant {
    t
}

fn monotonic_now() -> Instant {
    // rock-analyze: allow(wall-clock) — audited monotonic clock: trace timestamps only, never in clustering decisions.
    Instant::now()
}
