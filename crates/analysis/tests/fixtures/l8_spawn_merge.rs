//! Fixture: `spawn-merge-order` — merge worker results in spawn order.

fn flagged(parts: Vec<Work>) -> Vec<u64> {
    let (tx, rx) = channel();
    for part in parts {
        let tx = tx.clone();
        thread::spawn(move || tx.send(part.run()));
    }
    let mut merged = Vec::new();
    while let Ok(result) = rx.recv() {
        merged.push(result);
    }
    merged
}

fn spawn_order_ok(parts: Vec<Work>) -> Vec<u64> {
    let handles: Vec<_> = parts
        .into_iter()
        .map(|part| thread::spawn(move || part.run()))
        .collect();
    let mut merged = Vec::new();
    for handle in handles {
        if let Ok(result) = handle.join() {
            merged.push(result);
        }
    }
    merged
}

fn recv_without_spawn_ok(rx: &Receiver<u64>) -> Option<u64> {
    // Arrival order is fine when this function spawned nothing.
    rx.recv().ok()
}
