//! Fixture: L3 `float-ord` — raw float orderings outside `GoodnessOrd`.

struct Shim(f64);

impl Shim {
    fn le(&self, other: &Self) -> bool {
        self.0.partial_cmp(&other.0).is_some()
    }
}
