//! Fixture: `unused-allow` — a directive that suppresses nothing is stale.

fn stale_directive(xs: &[u32]) -> Option<u32> {
    // rock-analyze: allow(core-unwrap) — stale: the unwrap below was refactored away.
    xs.first().copied()
}

fn unknown_lint(xs: &[u32]) -> u32 {
    // rock-analyze: allow(no-such-lint) — the lint name has a typo.
    xs.iter().sum()
}

fn live_directive(xs: &[u32]) -> u32 {
    // rock-analyze: allow(core-unwrap) — infallible: caller checks is_empty first.
    *xs.first().unwrap()
}
