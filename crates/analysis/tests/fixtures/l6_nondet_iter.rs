//! Fixture: `nondet-iter` — hash-order iteration feeding output.

fn flagged(counts: &HashMap<String, u32>) -> Vec<String> {
    let mut out = Vec::new();
    for (k, v) in counts {
        out.push(format!("{k}={v}"));
    }
    out
}

fn flagged_method(seen: &HashSet<u32>) -> u64 {
    let mut acc = 0u64;
    seen.iter().for_each(|&x| acc = acc.wrapping_mul(31).wrapping_add(u64::from(x)));
    acc
}

fn sorted_escape(counts: &HashMap<String, u32>) -> Vec<(String, u32)> {
    let mut pairs: Vec<(String, u32)> = counts.iter().map(|(k, &v)| (k.clone(), v)).collect();
    pairs.sort();
    pairs
}

fn container_rows(rows: &Vec<HashMap<u32, u64>>) -> (usize, u64) {
    let mut n = 0;
    // Iterating the Vec itself is deterministic…
    for row in rows {
        n += row.len();
    }
    // …but an indexed element is a hash iteration again.
    let mut acc = 0u64;
    for (_, &c) in &rows[0] {
        acc += c;
    }
    (n, acc)
}

fn justified(tallies: &HashMap<u32, u64>) -> u64 {
    // rock-analyze: allow(nondet-iter) — order-insensitive: u64 addition is commutative.
    tallies.values().sum()
}
