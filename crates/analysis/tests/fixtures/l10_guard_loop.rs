//! Fixture: `guard-loop` — unbounded phase loops must poll the Guard.

fn flagged(frontier: &mut Frontier) {
    while let Some(node) = frontier.pop() {
        frontier.expand(node);
    }
}

fn polled(frontier: &mut Frontier, guard: &Guard) -> Result<(), RockError> {
    let mut visited = 0u64;
    while let Some(node) = frontier.pop() {
        visited += 1;
        guard.checkpoint(Phase::Neighbors, visited)?;
        frontier.expand(node);
    }
    Ok(())
}

fn bounded_justified(bounds: &mut Vec<usize>, shards: usize, n: usize) {
    // rock-analyze: allow(guard-loop) — bounded: every iteration grows bounds.len() toward shards.
    while bounds.len() < shards {
        bounds.push(n);
    }
}

fn for_loops_are_bounded(rows: &[Row]) -> usize {
    let mut links = 0;
    for row in rows {
        links += row.len();
    }
    links
}
