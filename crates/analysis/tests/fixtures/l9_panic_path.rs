//! Fixture: `panic-path` — rock-serve must fail closed, never crash.

fn flagged(request: &Request, parts: &[Part]) -> Response {
    if request.body.is_empty() {
        panic!("empty body");
    }
    let first = parts.first().unwrap();
    let verb = request.head[0];
    respond(first, verb)
}

fn fail_closed(request: &Request, parts: &[Part]) -> Result<Response, Status> {
    let first = parts.first().ok_or(Status::BadRequest)?;
    let verb = request.head.first().copied().ok_or(Status::BadRequest)?;
    Ok(respond(first, verb))
}

fn justified(body: &mut [u8], filled: usize) -> &mut [u8] {
    // rock-analyze: allow(panic-path) — in-bounds: `filled` is clamped to `body.len()` by the caller.
    &mut body[filled..]
}

#[cfg(test)]
mod tests {
    #[test]
    fn harness_may_assert() {
        let parts = vec![1, 2];
        assert_eq!(parts[0], 1);
        parts.get(9).unwrap();
    }
}
