//! Fixture: trigger tokens inside strings and comments must not fire.
//! Mentions of x.unwrap(), n as u32, partial_cmp, and Instant::now() in
//! doc comments are inert.

fn render() -> String {
    // Inline comment: y.expect("msg"), SystemTime::now(), 3 as f64.
    let plain = "calls .unwrap() and Instant::now() and 1 as u64";
    let raw = r#"partial_cmp and SystemTime::now() and n as usize"#;
    /* block comment: let mut merges = 0; never flushed */
    format!("{plain}{raw}")
}
