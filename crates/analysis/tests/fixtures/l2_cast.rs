//! Fixture: L2 `core-bare-cast` — unaudited numeric `as` casts.

fn shrink(n: usize) -> u32 {
    n as u32
}

fn widen(n: u32) -> u64 {
    u64::from(n)
}

fn to_float(n: usize) -> f64 {
    n as f64
}

fn rebrand(x: Raw) -> Branded {
    x as Branded
}
