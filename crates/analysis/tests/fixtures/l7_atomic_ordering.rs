//! Fixture: `atomic-ordering` — atomic ops must use their class ordering.

fn flagged(stop: &AtomicBool, tally: &AtomicU64) {
    stop.store(true, Ordering::SeqCst);
    tally.fetch_add(1, Ordering::Acquire);
}

fn class_table_ok(stop: &AtomicBool, tally: &AtomicU64, seq: &AtomicU64) -> u64 {
    stop.store(true, Ordering::Relaxed);
    tally.fetch_add(1, Ordering::Relaxed);
    let published = seq.load(Ordering::Acquire);
    seq.swap(published, Ordering::AcqRel)
}

fn not_an_atomic(store: &Store, path: &str) -> Model {
    // `load`/`store` without an `Ordering` argument are ordinary calls.
    store.load(path)
}

fn justified(gate: &AtomicU64) -> u64 {
    // rock-analyze: allow(atomic-ordering) — audited: cross-crate fence documented in DESIGN.md §13.
    gate.load(Ordering::SeqCst)
}
