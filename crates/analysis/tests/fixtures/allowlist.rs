//! Fixture: `rock-analyze: allow(...)` directive semantics.

fn audited(n: usize) -> u32 {
    // rock-analyze: allow(core-bare-cast) — audited: bounded by the caller.
    n as u32
}

fn next_line_covered(xs: &[u32]) -> u32 {
    // rock-analyze: allow(core-unwrap) — infallible: caller checks is_empty.
    *xs.first().unwrap()
}

fn wrong_lint(n: usize) -> u32 {
    // rock-analyze: allow(core-unwrap) — mismatched directive for the cast below.
    n as u32
}

fn unjustified(xs: &[u32]) -> u32 {
    // rock-analyze: allow(core-unwrap)
    *xs.first().unwrap()
}
