//! A lightweight item-tree parser over the token stream.
//!
//! The v1 analyzer pattern-matched a flat token stream, which is enough
//! for "never call `.unwrap()`" but not for structural questions like
//! *which function does this call site live in*, *does this `while` body
//! contain a `Guard` checkpoint*, or *is this identifier bound to a
//! `HashMap` in the current function*. This module builds just enough
//! structure to answer those — still dependency-free, still best-effort
//! (the compiler is the arbiter of what parses):
//!
//! * **items** — `fn` / `impl` / `mod` / `trait` / `struct` / `enum`
//!   with names, nesting (parent links), and token spans for bodies;
//! * **loops** — `for` / `while` / `loop` sites with header and body
//!   token ranges, linked to their enclosing function;
//! * **call sites** — `callee(…)`, `.method(…)` and `macro!(…)`
//!   invocations with argument spans, linked to their enclosing function.
//!
//! The determinism lint pack ([`crate::determinism`]) is built on these
//! three tables; future dataflow lints can reuse the same scaffold.

use std::ops::Range;

use crate::lexer::{Tok, TokKind};

/// What kind of item a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// A function or method (`fn`).
    Fn,
    /// An `impl` block.
    Impl,
    /// An inline module (`mod name { … }`) or declaration (`mod name;`).
    Mod,
    /// A `trait` definition.
    Trait,
    /// A `struct` definition.
    Struct,
    /// An `enum` definition.
    Enum,
}

/// One parsed item.
#[derive(Debug, Clone)]
pub struct Item {
    /// The item kind.
    pub kind: ItemKind,
    /// Item name. For `impl` blocks this is the last path segment of the
    /// implemented-for type (`impl fmt::Display for Finding` → `Finding`).
    pub name: String,
    /// 1-based line of the introducing keyword.
    pub line: u32,
    /// Token range of the whole item, keyword through closing brace/`;`.
    pub span: Range<usize>,
    /// Token range strictly inside the body braces (`None` for bodyless
    /// items such as `mod x;` or trait method declarations).
    pub body: Option<Range<usize>>,
    /// Index of the enclosing item in [`ItemTree::items`], if nested.
    pub parent: Option<usize>,
}

/// The looping construct of a [`LoopSite`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopKind {
    /// A `for … in … { }` loop (bounded by its iterator).
    For,
    /// A `while cond { }` loop.
    While,
    /// A bare `loop { }`.
    Loop,
}

/// One `for`/`while`/`loop` site.
#[derive(Debug, Clone)]
pub struct LoopSite {
    /// Which looping construct.
    pub kind: LoopKind,
    /// 1-based line of the loop keyword.
    pub line: u32,
    /// Tokens between the keyword and the body's `{` (empty for `loop`).
    pub header: Range<usize>,
    /// Tokens strictly inside the body braces.
    pub body: Range<usize>,
    /// Enclosing `fn` item index, when inside one.
    pub enclosing_fn: Option<usize>,
}

/// One call site: a plain call, a method call, or a macro invocation.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The called identifier (`spawn`, `unwrap`, `panic`, …).
    pub callee: String,
    /// Token index of the callee identifier.
    pub token: usize,
    /// 1-based line of the callee.
    pub line: u32,
    /// `true` when invoked as `.callee(…)`.
    pub is_method: bool,
    /// `true` when invoked as `callee!(…)` / `callee![…]` / `callee!{…}`.
    pub is_macro: bool,
    /// Tokens strictly inside the argument delimiters.
    pub args: Range<usize>,
    /// Enclosing `fn` item index, when inside one.
    pub enclosing_fn: Option<usize>,
}

/// The parse result: flat tables with parent links.
#[derive(Debug, Default)]
pub struct ItemTree {
    /// Every parsed item, in source order.
    pub items: Vec<Item>,
    /// Every loop site, in source order.
    pub loops: Vec<LoopSite>,
    /// Every call site, in source order.
    pub calls: Vec<CallSite>,
}

impl ItemTree {
    /// Parses the token stream into an item tree.
    pub fn build(tokens: &[Tok]) -> ItemTree {
        let mut tree = ItemTree::default();
        Parser {
            toks: tokens,
            tree: &mut tree,
        }
        .region(0, tokens.len(), None, None);
        tree
    }

    /// Iterator over `fn` items (index + item).
    pub fn fns(&self) -> impl Iterator<Item = (usize, &Item)> {
        self.items
            .iter()
            .enumerate()
            .filter(|(_, it)| it.kind == ItemKind::Fn)
    }

    /// The chain of item names from the root to `item`, dot-joined —
    /// `Engine.merge` for a method, `tests.check` for a test fn.
    pub fn qualified_name(&self, item: usize) -> String {
        let mut parts = vec![self.items[item].name.clone()];
        let mut cur = self.items[item].parent;
        while let Some(p) = cur {
            parts.push(self.items[p].name.clone());
            cur = self.items[p].parent;
        }
        parts.reverse();
        parts.join(".")
    }
}

/// Index of the token matching the opening delimiter at `open` (`{`/`[`/
/// `(`), or `len` when unbalanced at end-of-file.
pub fn matching_close(toks: &[Tok], open: usize) -> usize {
    let (o, c) = match toks[open].kind {
        TokKind::Punct('{') => ('{', '}'),
        TokKind::Punct('[') => ('[', ']'),
        TokKind::Punct('(') => ('(', ')'),
        _ => return open,
    };
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    toks.len()
}

struct Parser<'a> {
    toks: &'a [Tok],
    tree: &'a mut ItemTree,
}

impl Parser<'_> {
    /// Parses tokens in `[start, end)` as item-or-statement context.
    /// `parent` is the enclosing item; `encl_fn` the innermost `fn`.
    fn region(&mut self, start: usize, end: usize, parent: Option<usize>, encl_fn: Option<usize>) {
        let mut i = start;
        while i < end {
            let t = &self.toks[i];
            match t.kind {
                // Skip attributes wholesale: `#[derive(Clone)]` must not
                // register `derive` as a call site.
                TokKind::Punct('#') if self.peek_punct(i + 1, '[') => {
                    i = matching_close(self.toks, i + 1) + 1;
                }
                TokKind::Ident => match t.text.as_str() {
                    "fn" => i = self.item_fn(i, end, parent),
                    "impl" | "mod" | "trait" => i = self.item_braced(i, end, parent, encl_fn),
                    "struct" | "enum" | "union" => i = self.item_type(i, end, parent),
                    "use" | "extern" => i = self.skip_to_semi(i, end),
                    "for" | "while" | "loop" => i = self.loop_site(i, end, encl_fn),
                    _ => {
                        self.maybe_call(i, encl_fn);
                        i += 1;
                    }
                },
                _ => i += 1,
            }
        }
    }

    fn peek_punct(&self, i: usize, c: char) -> bool {
        self.toks.get(i).is_some_and(|t| t.is_punct(c))
    }

    fn peek_ident(&self, i: usize) -> Option<&str> {
        self.toks
            .get(i)
            .and_then(|t| (t.kind == TokKind::Ident).then_some(t.text.as_str()))
    }

    /// First `{` at bracket depth 0 in `[from, end)`, or the first `;`
    /// at depth 0 when `or_semi` (bodyless items). Returns (index, is_brace).
    fn find_body_open(&self, from: usize, end: usize, or_semi: bool) -> Option<(usize, bool)> {
        let mut depth = 0usize;
        let mut i = from;
        while i < end {
            let t = &self.toks[i];
            match t.kind {
                TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') => depth = depth.saturating_sub(1),
                TokKind::Punct('{') if depth == 0 => return Some((i, true)),
                TokKind::Punct(';') if depth == 0 && or_semi => return Some((i, false)),
                _ => {}
            }
            i += 1;
        }
        None
    }

    /// Parses `fn name …(…) … { body }` (or a bodyless trait decl ending
    /// in `;`). Returns the index just past the item.
    fn item_fn(&mut self, kw: usize, end: usize, parent: Option<usize>) -> usize {
        let name = self.peek_ident(kw + 1).unwrap_or("").to_string();
        let Some((open, is_brace)) = self.find_body_open(kw + 1, end, true) else {
            return end;
        };
        if !is_brace {
            // Trait method declaration: `fn f(…) -> T;`
            self.tree.items.push(Item {
                kind: ItemKind::Fn,
                name,
                line: self.toks[kw].line,
                span: kw..open + 1,
                body: None,
                parent,
            });
            return open + 1;
        }
        let close = matching_close(self.toks, open);
        let idx = self.tree.items.len();
        self.tree.items.push(Item {
            kind: ItemKind::Fn,
            name,
            line: self.toks[kw].line,
            span: kw..close + 1,
            body: Some(open + 1..close),
            parent,
        });
        // Scan the signature for call sites (default-arg exprs are rare,
        // but closures in `where` bounds are not lintable anyway) — skip.
        self.region(open + 1, close.min(end), Some(idx), Some(idx));
        close + 1
    }

    /// Parses `impl … { }`, `mod name { }` / `mod name;`, `trait … { }`.
    fn item_braced(
        &mut self,
        kw: usize,
        end: usize,
        parent: Option<usize>,
        encl_fn: Option<usize>,
    ) -> usize {
        let kind = match self.toks[kw].text.as_str() {
            "impl" => ItemKind::Impl,
            "mod" => ItemKind::Mod,
            _ => ItemKind::Trait,
        };
        let Some((open, is_brace)) = self.find_body_open(kw + 1, end, true) else {
            return end;
        };
        // Name: the last identifier in the header (for `impl A for B`,
        // that is B; for `mod tests`, `tests`), skipping keywords.
        let name = self.toks[kw + 1..open]
            .iter()
            .rfind(|t| t.kind == TokKind::Ident && t.text != "for" && t.text != "where")
            .map(|t| t.text.clone())
            .unwrap_or_default();
        if !is_brace {
            self.tree.items.push(Item {
                kind,
                name,
                line: self.toks[kw].line,
                span: kw..open + 1,
                body: None,
                parent,
            });
            return open + 1;
        }
        let close = matching_close(self.toks, open);
        let idx = self.tree.items.len();
        self.tree.items.push(Item {
            kind,
            name,
            line: self.toks[kw].line,
            span: kw..close + 1,
            body: Some(open + 1..close),
            parent,
        });
        self.region(open + 1, close.min(end), Some(idx), encl_fn);
        close + 1
    }

    /// Parses `struct`/`enum`/`union` definitions. Bodies are recorded
    /// (field scans need them) but not recursed into — no code inside.
    fn item_type(&mut self, kw: usize, end: usize, parent: Option<usize>) -> usize {
        let kind = match self.toks[kw].text.as_str() {
            "struct" => ItemKind::Struct,
            "enum" => ItemKind::Enum,
            _ => ItemKind::Struct, // `union` — close enough for field scans
        };
        let name = self.peek_ident(kw + 1).unwrap_or("").to_string();
        let Some((open, is_brace)) = self.find_body_open(kw + 1, end, true) else {
            return end;
        };
        if !is_brace {
            // Tuple struct `struct S(T);` or unit struct `struct S;` —
            // `find_body_open` stopped at the `;` (parens are depth).
            self.tree.items.push(Item {
                kind,
                name,
                line: self.toks[kw].line,
                span: kw..open + 1,
                body: None,
                parent,
            });
            return open + 1;
        }
        let close = matching_close(self.toks, open);
        self.tree.items.push(Item {
            kind,
            name,
            line: self.toks[kw].line,
            span: kw..close + 1,
            body: Some(open + 1..close),
            parent,
        });
        close + 1
    }

    fn skip_to_semi(&self, from: usize, end: usize) -> usize {
        let mut i = from;
        while i < end {
            if self.toks[i].is_punct(';') {
                return i + 1;
            }
            // `extern "C" fn` and `use x::{..}` braces: step over groups.
            if self.toks[i].is_punct('{') {
                return matching_close(self.toks, i) + 1;
            }
            i += 1;
        }
        end
    }

    /// Records a `for`/`while`/`loop` site and continues the scan *inside*
    /// the header and body (nested loops, calls, and items are picked up
    /// by the enclosing linear scan). Returns the index just past the
    /// keyword — not past the body — so inner constructs are visited.
    fn loop_site(&mut self, kw: usize, end: usize, encl_fn: Option<usize>) -> usize {
        let kind = match self.toks[kw].text.as_str() {
            "for" => LoopKind::For,
            "while" => LoopKind::While,
            _ => LoopKind::Loop,
        };
        // `for` in `impl Trait for Type` never reaches here: impl headers
        // are consumed by `item_braced` before the region scan sees them.
        let Some((open, _)) = self.find_body_open(kw + 1, end, false) else {
            return kw + 1;
        };
        let close = matching_close(self.toks, open);
        self.tree.loops.push(LoopSite {
            kind,
            line: self.toks[kw].line,
            header: kw + 1..open,
            body: open + 1..close,
            enclosing_fn: encl_fn,
        });
        kw + 1
    }

    /// Records `callee(…)`, `.callee(…)`, and `callee!(…)` call sites.
    fn maybe_call(&mut self, i: usize, encl_fn: Option<usize>) {
        let t = &self.toks[i];
        let is_method = i > 0 && self.toks[i - 1].is_punct('.');
        let (args_open, is_macro) = if self.peek_punct(i + 1, '(') {
            (i + 1, false)
        } else if self.peek_punct(i + 1, '!')
            && (self.peek_punct(i + 2, '(')
                || self.peek_punct(i + 2, '[')
                || self.peek_punct(i + 2, '{'))
        {
            (i + 2, true)
        } else {
            return;
        };
        // Keywords that precede a parenthesis are not calls.
        if matches!(
            t.text.as_str(),
            "if" | "match" | "return" | "in" | "as" | "let" | "else" | "move" | "mut" | "ref"
        ) {
            return;
        }
        let close = matching_close(self.toks, args_open);
        self.tree.calls.push(CallSite {
            callee: t.text.clone(),
            token: i,
            line: t.line,
            is_method,
            is_macro,
            args: args_open + 1..close,
            enclosing_fn: encl_fn,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree(src: &str) -> (Vec<Tok>, ItemTree) {
        let toks = lex(src).tokens;
        let tree = ItemTree::build(&toks);
        (toks, tree)
    }

    #[test]
    fn nesting_and_names() {
        let src = "mod m {\n  struct S { x: u32 }\n  impl fmt::Display for S {\n    fn fmt(&self) -> u32 { self.x }\n  }\n}\n";
        let (_, t) = tree(src);
        let kinds: Vec<(ItemKind, &str)> =
            t.items.iter().map(|i| (i.kind, i.name.as_str())).collect();
        assert_eq!(
            kinds,
            vec![
                (ItemKind::Mod, "m"),
                (ItemKind::Struct, "S"),
                (ItemKind::Impl, "S"),
                (ItemKind::Fn, "fmt"),
            ]
        );
        let f = t.items.iter().position(|i| i.kind == ItemKind::Fn).unwrap();
        assert_eq!(t.qualified_name(f), "m.S.fmt");
    }

    #[test]
    fn loops_are_linked_to_their_fn() {
        let src = "fn a() { for x in v { while x { loop { tick(); } } } }\nfn b() { }";
        let (_, t) = tree(src);
        assert_eq!(t.loops.len(), 3);
        let a = t.items.iter().position(|i| i.name == "a").unwrap();
        for l in &t.loops {
            assert_eq!(l.enclosing_fn, Some(a));
        }
        assert_eq!(t.loops[0].kind, LoopKind::For);
        assert_eq!(t.loops[1].kind, LoopKind::While);
        assert_eq!(t.loops[2].kind, LoopKind::Loop);
        // The innermost `loop` body contains the tick() call.
        let lp = &t.loops[2];
        assert!(t
            .calls
            .iter()
            .any(|c| c.callee == "tick" && lp.body.contains(&c.token)));
    }

    #[test]
    fn calls_methods_and_macros() {
        let src = "fn f() { g(); x.h(1); panic!(\"boom\"); let v = vec![1]; }";
        let (_, t) = tree(src);
        let names: Vec<(&str, bool, bool)> = t
            .calls
            .iter()
            .map(|c| (c.callee.as_str(), c.is_method, c.is_macro))
            .collect();
        assert_eq!(
            names,
            vec![
                ("g", false, false),
                ("h", true, false),
                ("panic", false, true),
                ("vec", false, true),
            ]
        );
    }

    #[test]
    fn attributes_are_not_calls() {
        let src = "#[derive(Clone, Debug)]\nstruct S;\nfn f() { real(); }";
        let (_, t) = tree(src);
        assert!(t.calls.iter().all(|c| c.callee != "derive"));
        assert!(t.calls.iter().any(|c| c.callee == "real"));
    }

    #[test]
    fn impl_trait_for_is_not_a_loop() {
        let src = "impl Iterator for Rows { fn next(&mut self) -> Option<u32> { None } }";
        let (_, t) = tree(src);
        assert!(t.loops.is_empty());
        assert_eq!(t.items[0].kind, ItemKind::Impl);
        assert_eq!(t.items[0].name, "Rows");
    }

    #[test]
    fn while_let_and_labeled_loops() {
        let src = "fn f() { 'outer: while let Some(x) = it.next() { break 'outer; } }";
        let (_, t) = tree(src);
        assert_eq!(t.loops.len(), 1);
        assert_eq!(t.loops[0].kind, LoopKind::While);
        // The header covers `let Some(x) = it.next()`.
        assert!(t
            .calls
            .iter()
            .any(|c| c.callee == "next" && t.loops[0].header.contains(&c.token)));
    }

    #[test]
    fn bodyless_items() {
        let src = "mod other;\ntrait T { fn decl(&self); fn given(&self) { body(); } }";
        let (_, t) = tree(src);
        let m = &t.items[0];
        assert_eq!((m.kind, m.body.is_some()), (ItemKind::Mod, false));
        let decl = t.items.iter().find(|i| i.name == "decl").unwrap();
        assert!(decl.body.is_none());
        let given = t.items.iter().find(|i| i.name == "given").unwrap();
        assert!(given.body.is_some());
    }

    #[test]
    fn struct_fields_span_is_recorded() {
        let src = "struct S { pos: HashMap<u32, usize>, n: usize }";
        let (toks, t) = tree(src);
        let body = t.items[0].body.clone().unwrap();
        assert!(toks[body.clone()].iter().any(|x| x.is_ident("HashMap")));
        assert!(toks[body].iter().any(|x| x.is_ident("pos")));
    }
}
