//! The determinism & concurrency lint pack.
//!
//! ROCK's headline guarantee is *byte-identical* partitions, counters,
//! and traces for any thread count (DESIGN.md §13). These lints
//! machine-check the coding rules that guarantee rests on, using the
//! structural tables of [`crate::itemtree`]:
//!
//! | lint | what it catches |
//! |------|-----------------|
//! | `nondet-iter` | iterating a `HashMap`/`HashSet` (order varies run to run) without a `BTreeMap`/`BTreeSet`, an explicit sort, or a justified allow |
//! | `atomic-ordering` | an atomic op whose `Ordering` does not match its documented class (tallies/flags: `Relaxed`; publication: `Acquire`/`Release`/`AcqRel`); bare `SeqCst` anywhere |
//! | `spawn-merge-order` | merging per-worker results by channel-arrival order (`recv`) instead of an indexed loop over the join handles in spawn order |
//! | `panic-path` | `panic!`/`unwrap`/`expect`/indexing in `crates/serve` — the server must fail closed, never crash |
//! | `guard-loop` | an unbounded `while`/`loop` without its cancellation poll: core phase code must poll the `Guard` (`checkpoint`/`merge_tick`), serve registry/admin loops must poll the shutdown flag (`stop`/`stopping`) |
//!
//! Each lint is best-effort and conservative in the direction of *more*
//! findings: an order-insensitive `HashMap` reduction, for instance, is
//! legitimate — but the author must say so with a justified
//! `// rock-analyze: allow(nondet-iter)` so the audit is in the tree.

use crate::itemtree::{ItemKind, ItemTree, LoopKind};
use crate::lexer::{Tok, TokKind};
use crate::lints::Finding;

/// Everything a pack lint needs to know about one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path.
    pub path: &'a str,
    /// The token stream.
    pub toks: &'a [Tok],
    /// Per-token test mask (see [`crate::lexer::test_mask`]).
    pub mask: &'a [bool],
    /// The parsed item tree.
    pub tree: &'a ItemTree,
    /// Lints applicable to this file.
    pub lints: &'a [&'static str],
}

impl FileCtx<'_> {
    fn on(&self, lint: &str) -> bool {
        self.lints.contains(&lint)
    }

    fn emit(&self, out: &mut Vec<Finding>, line: u32, lint: &'static str, message: String) {
        out.push(Finding {
            path: self.path.to_string(),
            line,
            lint,
            message,
        });
    }
}

/// Runs every applicable pack lint over one file.
pub fn run(ctx: &FileCtx<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    if ctx.on("nondet-iter") {
        nondet_iter(ctx, &mut out);
    }
    if ctx.on("atomic-ordering") {
        atomic_ordering(ctx, &mut out);
    }
    if ctx.on("spawn-merge-order") {
        spawn_merge_order(ctx, &mut out);
    }
    if ctx.on("panic-path") {
        panic_path(ctx, &mut out);
    }
    if ctx.on("guard-loop") {
        guard_loop(ctx, &mut out);
    }
    out
}

// ---------------------------------------------------------------- nondet-iter

/// Methods that yield elements of a hash collection in bucket order.
const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Type idents whose presence *between* the binding and the hash type
/// means the binding is a container *of* hash maps (`Vec<HashMap<…>>`):
/// iterating the binding itself is then deterministic, only an indexed
/// element (`rows[i]`) is a hash iteration.
fn is_container_ident(name: &str) -> bool {
    matches!(
        name,
        "Vec" | "VecDeque" | "Box" | "Arc" | "Rc" | "Option" | "Slab"
    )
}

/// Idents skipped when walking a type path backwards.
fn is_path_filler(name: &str) -> bool {
    matches!(name, "std" | "collections" | "mut" | "dyn")
}

/// One name known to be (or to contain) a hash collection.
struct HashBinding {
    name: String,
    /// `false` when the binding is a container of hash collections —
    /// then only indexed access is a hash receiver.
    direct: bool,
}

/// Scans a token range for names bound to `HashMap`/`HashSet`: type
/// annotations (`x: &mut HashMap<…>`, fn params, struct fields) and
/// constructor bindings (`let x = HashMap::new()`).
fn collect_hash_bindings(toks: &[Tok], range: std::ops::Range<usize>, out: &mut Vec<HashBinding>) {
    for i in range.clone() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        // Walk backwards (bounded) looking for the annotation colon or a
        // `let` on the same statement, classifying what we cross.
        let mut j = i;
        let mut container = false;
        let mut steps = 0;
        while j > range.start && steps < 24 {
            j -= 1;
            steps += 1;
            let b = &toks[j];
            match b.kind {
                TokKind::Punct(':') => {
                    if j > range.start && toks[j - 1].is_punct(':') {
                        // `::` path separator — skip the pair.
                        j -= 1;
                        continue;
                    }
                    // The annotation colon: the ident before it is the name.
                    if j > range.start && toks[j - 1].kind == TokKind::Ident {
                        out.push(HashBinding {
                            name: toks[j - 1].text.clone(),
                            direct: !container,
                        });
                    }
                    break;
                }
                TokKind::Punct('=') => {
                    // Constructor form: scan back for `let [mut] name`.
                    let mut k = j;
                    while k > range.start {
                        k -= 1;
                        let lb = &toks[k];
                        if lb.is_punct(';') || lb.is_punct('{') || lb.is_punct('}') {
                            break;
                        }
                        if lb.is_ident("let") {
                            let name_at = if toks.get(k + 1).is_some_and(|t| t.is_ident("mut")) {
                                k + 2
                            } else {
                                k + 1
                            };
                            if let Some(nt) = toks.get(name_at) {
                                if nt.kind == TokKind::Ident {
                                    out.push(HashBinding {
                                        name: nt.text.clone(),
                                        direct: !container,
                                    });
                                }
                            }
                            break;
                        }
                    }
                    break;
                }
                TokKind::Punct(';')
                | TokKind::Punct('{')
                | TokKind::Punct('}')
                | TokKind::Punct(',')
                | TokKind::Punct('(') => break,
                TokKind::Ident if is_container_ident(&b.text) => container = true,
                TokKind::Ident if is_path_filler(&b.text) => {}
                TokKind::Ident => break,
                _ => {}
            }
        }
    }
}

/// Does the token window `[from, …]` up to the end of the *next*
/// statement contain an explicit reorder (a `sort*` call or a collect
/// into an ordered `BTree*` structure)? That is the lint's sanctioned
/// in-code remedy besides switching the container itself.
fn sorted_downstream(toks: &[Tok], from: usize, end: usize) -> bool {
    let mut semis = 0;
    for t in &toks[from..end] {
        if t.is_punct(';') {
            semis += 1;
            if semis > 2 {
                return false;
            }
        }
        if t.kind == TokKind::Ident
            && (t.text.starts_with("sort")
                || t.text == "BTreeMap"
                || t.text == "BTreeSet"
                || t.text == "BinaryHeap")
        {
            return true;
        }
    }
    false
}

fn nondet_iter_message(recv: &str) -> String {
    format!(
        "iterating hash collection `{recv}` yields a nondeterministic order; use a \
         `BTreeMap`/`BTreeSet`, sort the result in the same or next statement, or \
         justify order-insensitivity with `// rock-analyze: allow(nondet-iter)`"
    )
}

fn nondet_iter(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = ctx.toks;
    // File-level: hash-typed struct fields (receiver `self.field` or
    // `x.field` anywhere in the file).
    let mut fields: Vec<HashBinding> = Vec::new();
    for it in &ctx.tree.items {
        if matches!(it.kind, ItemKind::Struct | ItemKind::Enum) {
            if let Some(body) = it.body.clone() {
                collect_hash_bindings(toks, body, &mut fields);
            }
        }
    }

    for (fi, f) in ctx.tree.fns() {
        if f.body.is_none() {
            continue;
        }
        let mut bindings: Vec<HashBinding> = Vec::new();
        // Params + locals: one scan over the whole item span (the
        // signature sits between `span.start` and `body.start`).
        collect_hash_bindings(toks, f.span.clone(), &mut bindings);

        let direct = |name: &str, dotted: bool| -> bool {
            bindings.iter().any(|b| b.direct && b.name == name)
                || (dotted && fields.iter().any(|b| b.direct && b.name == name))
        };
        let any = |name: &str, dotted: bool| -> bool {
            bindings.iter().any(|b| b.name == name)
                || (dotted && fields.iter().any(|b| b.name == name))
        };

        let flag = |site: usize, line: u32, recv: &str, out: &mut Vec<Finding>| {
            if !sorted_downstream(toks, site, f.span.end) {
                ctx.emit(out, line, "nondet-iter", nondet_iter_message(recv));
            }
        };

        // `.iter()`-family method calls on a hash receiver.
        for c in &ctx.tree.calls {
            if c.enclosing_fn != Some(fi)
                || !c.is_method
                || !ITER_METHODS.contains(&c.callee.as_str())
            {
                continue;
            }
            // Receiver is the token before the `.`: `name.iter()`,
            // `name[i].iter()`, `self.field.iter()`.
            let dot = c.token.wrapping_sub(1);
            let Some(prev) = dot.checked_sub(1).and_then(|p| toks.get(p)) else {
                continue;
            };
            match prev.kind {
                TokKind::Ident => {
                    let dotted = dot >= 2 && toks[dot - 2].is_punct('.');
                    if direct(&prev.text, dotted) {
                        flag(c.token, c.line, &prev.text, out);
                    }
                }
                TokKind::Punct(']') => {
                    // Indexed element: `rows[i].iter()` — hash whenever
                    // `rows` is a hash binding, direct or container.
                    let mut open = dot - 1;
                    let mut depth = 0usize;
                    loop {
                        match toks[open].kind {
                            TokKind::Punct(']') => depth += 1,
                            TokKind::Punct('[') => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        if open == 0 {
                            break;
                        }
                        open -= 1;
                    }
                    if open > 0 && toks[open - 1].kind == TokKind::Ident {
                        let name = &toks[open - 1].text;
                        let dotted = open >= 2 && toks[open - 2].is_punct('.');
                        if any(name, dotted) {
                            flag(c.token, c.line, name, out);
                        }
                    }
                }
                _ => {}
            }
        }

        // `for x in [&[mut]] name { … }` — iterating the collection
        // directly, without a method call.
        for l in &ctx.tree.loops {
            if l.enclosing_fn != Some(fi) || l.kind != LoopKind::For {
                continue;
            }
            // Header tail after `in`: `&name`, `&mut name`, `name`,
            // `&name[i]`, `self.field`.
            let Some(in_pos) = (l.header.start..l.header.end).find(|&i| toks[i].is_ident("in"))
            else {
                continue;
            };
            let mut rest: Vec<usize> = (in_pos + 1..l.header.end)
                .filter(|&i| !(toks[i].is_punct('&') || toks[i].is_ident("mut")))
                .collect();
            // `name [ idx ]` → treat as indexed access to `name`.
            let indexed = rest.len() >= 3
                && toks[rest[1]].is_punct('[')
                && toks[*rest.last().expect("nonempty")].is_punct(']');
            if indexed {
                rest.truncate(1);
            }
            match rest.as_slice() {
                [one] if toks[*one].kind == TokKind::Ident => {
                    let name = &toks[*one].text;
                    let hit = if indexed {
                        any(name, false)
                    } else {
                        direct(name, false)
                    };
                    if hit {
                        flag(*one, l.line, name, out);
                    }
                }
                [a, b, c]
                    if toks[*a].is_ident("self")
                        && toks[*b].is_punct('.')
                        && toks[*c].kind == TokKind::Ident =>
                {
                    let name = &toks[*c].text;
                    if fields.iter().any(|bd| bd.direct && bd.name == *name) {
                        flag(*c, l.line, name, out);
                    }
                }
                _ => {}
            }
        }
    }
}

// ------------------------------------------------------------ atomic-ordering

/// The memory-ordering names of `std::sync::atomic::Ordering`.
const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Orderings each atomic-op class may use (the documented counter-class
/// table, DESIGN.md §10): tallies and flags are `Relaxed` (merged
/// deterministically elsewhere, or advisory), loads may additionally
/// `Acquire` a publication, stores may `Release` one, and RMW swaps may
/// use any non-`SeqCst` ordering.
fn allowed_orderings(method: &str) -> Option<&'static [&'static str]> {
    match method {
        "fetch_add" | "fetch_sub" | "fetch_max" | "fetch_min" | "fetch_and" | "fetch_or"
        | "fetch_xor" => Some(&["Relaxed"]),
        "load" => Some(&["Relaxed", "Acquire"]),
        "store" => Some(&["Relaxed", "Release"]),
        "swap" | "compare_exchange" | "compare_exchange_weak" | "fetch_update" => {
            Some(&["Relaxed", "Acquire", "Release", "AcqRel"])
        }
        _ => None,
    }
}

fn atomic_ordering(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = ctx.toks;
    for c in &ctx.tree.calls {
        let Some(allowed) = allowed_orderings(c.callee.as_str()) else {
            continue;
        };
        // Orderings named in the argument list; a call without one is not
        // an atomic op (`HashMap::get`-style `load`s have no `Ordering`).
        let named: Vec<&str> = c
            .args
            .clone()
            .filter_map(|i| {
                let t = toks.get(i)?;
                (t.kind == TokKind::Ident && ORDERINGS.contains(&t.text.as_str()))
                    .then_some(t.text.as_str())
            })
            .collect();
        if named.is_empty() {
            continue;
        }
        for o in named {
            if o == "SeqCst" {
                ctx.emit(
                    out,
                    c.line,
                    "atomic-ordering",
                    format!(
                        "`{}` with `Ordering::SeqCst`: no counter class in this workspace \
                         needs sequential consistency — use the documented class ordering \
                         (tallies/flags: Relaxed; publication: Acquire/Release)",
                        c.callee
                    ),
                );
            } else if !allowed.contains(&o) {
                ctx.emit(
                    out,
                    c.line,
                    "atomic-ordering",
                    format!(
                        "`{}` with `Ordering::{}` does not match its class \
                         (allowed here: {})",
                        c.callee,
                        o,
                        allowed.join("/")
                    ),
                );
            }
        }
    }
}

// --------------------------------------------------------- spawn-merge-order

fn spawn_merge_order(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    for (fi, _f) in ctx.tree.fns() {
        let spawns = ctx
            .tree
            .calls
            .iter()
            .any(|c| c.enclosing_fn == Some(fi) && c.callee == "spawn");
        if !spawns {
            continue;
        }
        for c in &ctx.tree.calls {
            if c.enclosing_fn != Some(fi) {
                continue;
            }
            let arrival = matches!(
                c.callee.as_str(),
                "recv" | "try_recv" | "recv_timeout" | "recv_deadline"
            ) || (!c.is_method
                && matches!(c.callee.as_str(), "channel" | "sync_channel"));
            if arrival {
                ctx.emit(
                    out,
                    c.line,
                    "spawn-merge-order",
                    format!(
                        "`{}` in a spawning function merges worker results in arrival \
                         order, which varies run to run; join and merge by indexed loop \
                         over the handles in spawn order (see links::compute_observed)",
                        c.callee
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------- panic-path

/// Macros that abort the request thread.
const PANIC_MACROS: [&str; 7] = [
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Keywords after which a `[` opens an array literal or pattern, not an
/// index expression.
fn is_expr_keyword(name: &str) -> bool {
    matches!(
        name,
        "return"
            | "break"
            | "in"
            | "if"
            | "else"
            | "match"
            | "mut"
            | "ref"
            | "move"
            | "as"
            | "let"
            | "const"
            | "static"
            | "where"
    )
}

fn panic_path(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = ctx.toks;
    // Macro + unwrap/expect sites, via the call table.
    for c in &ctx.tree.calls {
        if ctx.mask.get(c.token).copied().unwrap_or(false) {
            continue;
        }
        let hit = if c.is_macro {
            PANIC_MACROS.contains(&c.callee.as_str())
        } else {
            c.is_method && matches!(c.callee.as_str(), "unwrap" | "expect")
        };
        if hit {
            ctx.emit(
                out,
                c.line,
                "panic-path",
                format!(
                    "`{}{}` in rock-serve: the server must fail closed, never crash — \
                     map the failure to an error `Response` (or justify with \
                     `// rock-analyze: allow(panic-path)`)",
                    c.callee,
                    if c.is_macro { "!" } else { "()" }
                ),
            );
        }
    }
    // Index expressions: `expr[…]` can panic out of bounds. A `[` is an
    // index when it directly follows an identifier, `)`, or `]`.
    for (i, t) in toks.iter().enumerate() {
        if !t.is_punct('[') || i == 0 || ctx.mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        let prev = &toks[i - 1];
        let indexes = match prev.kind {
            TokKind::Ident => !is_expr_keyword(&prev.text),
            TokKind::Punct(')') | TokKind::Punct(']') => true,
            _ => false,
        };
        if indexes {
            ctx.emit(
                out,
                t.line,
                "panic-path",
                "indexing (`…[…]`) in rock-serve can panic out of bounds; use `.get(…)` \
                 / pattern matching and map `None` to an error response"
                    .to_string(),
            );
        }
    }
}

// ---------------------------------------------------------------- guard-loop

/// Core phase files whose unbounded loops must poll the `Guard`. The
/// out-of-core files (`stream.rs`, `retry.rs`) are in scope because
/// their retry and resume loops run unattended for hours at 1M+ rows —
/// a loop that cannot be tripped there is a hang, not a slowdown.
const GUARD_FILES: [&str; 10] = [
    "crates/core/src/sampling.rs",
    "crates/core/src/neighbors.rs",
    "crates/core/src/neighbors/index.rs",
    "crates/core/src/shard.rs",
    "crates/core/src/outliers.rs",
    "crates/core/src/links.rs",
    "crates/core/src/agglomerate.rs",
    "crates/core/src/labeling.rs",
    "crates/core/src/stream.rs",
    "crates/core/src/retry.rs",
];

/// Serve registry/admin files whose unbounded loops must poll the
/// shutdown flag instead of the `Guard`: the accept loop, the worker
/// pool, the batcher's leader/follower waits, and the registry swap
/// path all run for the lifetime of the server — a loop there that
/// cannot observe `stop`/`stopping` turns graceful shutdown into a
/// hang with connections still pinned to a retired model.
const SERVE_GUARD_FILES: [&str; 3] = [
    "crates/serve/src/server.rs",
    "crates/serve/src/batch.rs",
    "crates/serve/src/registry.rs",
];

/// Returns `true` when `path` is core phase or serve registry/admin
/// code in scope for `guard-loop`.
pub fn is_guard_scope(path: &str) -> bool {
    GUARD_FILES.contains(&path) || SERVE_GUARD_FILES.contains(&path)
}

/// The idents that count as "this loop polls its cancellation signal"
/// for `path`, plus the remedy named in the finding. Core phase code
/// polls the budget `Guard`; serve loops poll the shutdown flag.
fn guard_poll_rule(path: &str) -> (&'static [&'static str], &'static str) {
    if SERVE_GUARD_FILES.contains(&path) {
        (
            &["stop", "stopping"],
            "unbounded loop in serve registry/admin code without a shutdown poll; \
             check the `stop`/`stopping` flag in the body so graceful shutdown \
             drains instead of hanging (or justify a bounded loop with an allow)",
        )
    } else {
        (
            &["checkpoint", "merge_tick"],
            "unbounded loop in core phase code without a Guard poll; call \
             `guard.checkpoint(..)`/`merge_tick(..)` in the body so budget trips \
             degrade instead of hanging (or justify a bounded loop with an allow)",
        )
    }
}

fn guard_loop(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = ctx.toks;
    let (polls, message) = guard_poll_rule(ctx.path);
    for l in &ctx.tree.loops {
        if l.kind == LoopKind::For {
            continue; // bounded by its iterator
        }
        let kw = l.header.start.saturating_sub(1);
        if ctx.mask.get(kw).copied().unwrap_or(false) {
            continue;
        }
        // A `while` condition is re-evaluated every iteration, so a
        // poll in the header counts the same as one in the body.
        let polled = toks[l.header.clone()]
            .iter()
            .chain(&toks[l.body.clone()])
            .any(|t| t.kind == TokKind::Ident && polls.contains(&t.text.as_str()));
        if !polled {
            ctx.emit(out, l.line, "guard-loop", message.to_string());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::itemtree::ItemTree;
    use crate::lexer::{lex, test_mask};

    fn run_with(path: &str, lints: &[&'static str], src: &str) -> Vec<(u32, String)> {
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        let tree = ItemTree::build(&lexed.tokens);
        let ctx = FileCtx {
            path,
            toks: &lexed.tokens,
            mask: &mask,
            tree: &tree,
            lints,
        };
        let mut out: Vec<_> = run(&ctx)
            .into_iter()
            .map(|f| (f.line, f.lint.to_string()))
            .collect();
        out.sort();
        out
    }

    #[test]
    fn nondet_iter_fires_on_map_iteration() {
        let src = "fn f() {\n  let mut m: HashMap<u32, u32> = HashMap::new();\n  for (k, v) in &m { use_it(k, v); }\n}";
        let hits = run_with("crates/core/src/x.rs", &["nondet-iter"], src);
        assert_eq!(hits, vec![(3, "nondet-iter".to_string())]);
    }

    #[test]
    fn nondet_iter_respects_sort_escape() {
        let src = "fn f(m: &HashMap<u32, u32>) -> Vec<u32> {\n  let mut v: Vec<u32> = m.keys().copied().collect();\n  v.sort();\n  v\n}";
        assert!(run_with("crates/core/src/x.rs", &["nondet-iter"], src).is_empty());
    }

    #[test]
    fn nondet_iter_vec_of_maps() {
        let src = "fn f() {\n  let mut rows: Vec<HashMap<u32, u64>> = vec![];\n  for r in &rows { touch(r); }\n  for (k, v) in &rows[0] { touch2(k, v); }\n}";
        let hits = run_with("crates/core/src/x.rs", &["nondet-iter"], src);
        // Iterating the Vec is fine (line 3); the indexed element is a map.
        assert_eq!(hits, vec![(4, "nondet-iter".to_string())]);
    }

    #[test]
    fn nondet_iter_struct_field() {
        let src = "struct S { pos: HashMap<u32, usize> }\nimpl S {\n  fn f(&self) { for k in self.pos.keys() { touch(k); } }\n}";
        let hits = run_with("crates/core/src/x.rs", &["nondet-iter"], src);
        assert_eq!(hits, vec![(3, "nondet-iter".to_string())]);
    }

    #[test]
    fn nondet_iter_ignores_vec_receivers() {
        let src = "fn f(v: &Vec<u32>, s: &[u32]) -> u32 { v.iter().sum::<u32>() + s.iter().sum::<u32>() }";
        assert!(run_with("crates/core/src/x.rs", &["nondet-iter"], src).is_empty());
    }

    #[test]
    fn atomic_ordering_flags_seqcst_and_mismatch() {
        let src = "fn f(a: &AtomicU64) {\n  a.store(1, Ordering::SeqCst);\n  a.fetch_add(1, Ordering::Acquire);\n  a.load(Ordering::Relaxed);\n}";
        let hits = run_with("crates/core/src/x.rs", &["atomic-ordering"], src);
        assert_eq!(
            hits,
            vec![
                (2, "atomic-ordering".to_string()),
                (3, "atomic-ordering".to_string())
            ]
        );
    }

    #[test]
    fn atomic_ordering_ignores_non_atomic_load() {
        let src = "fn f(s: &Store) { s.load(path); s.store(path, value); }";
        assert!(run_with("crates/core/src/x.rs", &["atomic-ordering"], src).is_empty());
    }

    #[test]
    fn spawn_merge_order_flags_recv() {
        let src = "fn f() {\n  let (tx, rx) = channel();\n  scope.spawn(move || tx.send(1));\n  let got = rx.recv();\n}";
        let hits = run_with("crates/core/src/x.rs", &["spawn-merge-order"], src);
        assert_eq!(hits.len(), 2, "{hits:?}"); // channel() + recv()
    }

    #[test]
    fn spawn_merge_order_silent_without_spawn() {
        let src = "fn f(rx: &Receiver<u32>) { let _ = rx.recv(); }";
        assert!(run_with("crates/core/src/x.rs", &["spawn-merge-order"], src).is_empty());
    }

    #[test]
    fn panic_path_flags_macros_calls_and_indexing() {
        let src = "fn f(v: &[u8]) -> u8 {\n  let a = v[0];\n  let b = v.first().unwrap();\n  panic!(\"boom\");\n}";
        let hits = run_with("crates/serve/src/x.rs", &["panic-path"], src);
        assert_eq!(
            hits,
            vec![
                (2, "panic-path".to_string()),
                (3, "panic-path".to_string()),
                (4, "panic-path".to_string())
            ]
        );
    }

    #[test]
    fn panic_path_ignores_types_literals_and_tests() {
        let src = "fn f(v: &[u8; 4]) -> [u8; 2] { let _x: &[u8] = v; [v.len() as u8, 0] }\n#[cfg(test)]\nmod tests {\n  fn t(v: &[u8]) { let _ = v[0]; assert_eq!(v.len(), 1); }\n}";
        assert!(run_with("crates/serve/src/x.rs", &["panic-path"], src).is_empty());
    }

    #[test]
    fn guard_loop_needs_a_poll() {
        let src = "fn f(g: &Guard) {\n  while work() { step(); }\n  while work() { g.checkpoint(Phase::Links); }\n  for x in v { touch(x); }\n}";
        let hits = run_with("crates/core/src/links.rs", &["guard-loop"], src);
        assert_eq!(hits, vec![(2, "guard-loop".to_string())]);
    }

    #[test]
    fn guard_loop_serve_scope_wants_shutdown_flag() {
        // In serve registry/admin files the sanctioned poll is the
        // shutdown flag, not the Guard — a checkpoint call does not
        // satisfy it there, and vice versa.
        let src = "fn f(s: &Shared) {\n  loop { step(); }\n  loop { if s.stop.load(Ordering::Relaxed) { return; } step(); }\n  loop { g.checkpoint(Phase::Links); }\n  while !queue.stopping { drain(); }\n}";
        let hits = run_with("crates/serve/src/server.rs", &["guard-loop"], src);
        assert_eq!(
            hits,
            vec![(2, "guard-loop".to_string()), (4, "guard-loop".to_string())]
        );
    }

    #[test]
    fn guard_loop_counts_header_polls() {
        // `while !stop { … }` re-checks the flag every iteration; the
        // poll living in the header must count.
        let src = "fn f(s: &Shared) {\n  while !s.stop.load(Ordering::Acquire) { wait(); }\n}";
        assert!(run_with("crates/serve/src/batch.rs", &["guard-loop"], src).is_empty());
    }

    #[test]
    fn guard_scope_covers_core_and_serve() {
        assert!(is_guard_scope("crates/core/src/links.rs"));
        assert!(is_guard_scope("crates/core/src/neighbors/index.rs"));
        assert!(is_guard_scope("crates/core/src/shard.rs"));
        assert!(is_guard_scope("crates/serve/src/registry.rs"));
        assert!(is_guard_scope("crates/serve/src/batch.rs"));
        assert!(!is_guard_scope("crates/serve/src/http.rs"));
        assert!(!is_guard_scope("crates/core/src/data.rs"));
    }
}
