//! A hand-rolled, dependency-free Rust lexer.
//!
//! The lints in this crate need just enough lexical structure to avoid
//! false positives: they must never fire on text inside string literals,
//! comments, or char literals, and they need accurate line numbers for
//! `file:line` reports. A full parse (via `syn` or rustc internals) would
//! drag in external dependencies, which the workspace forbids — so this
//! module tokenizes the handful of shapes that matter:
//!
//! * line and (nested) block comments — skipped, except that line comments
//!   are scanned for `rock-analyze: allow(...)` suppression directives;
//! * string literals in all flavors (`"…"`, `b"…"`, `r"…"`, `r#"…"#`,
//!   `br#"…"#`), char and byte-char literals, raw identifiers (`r#fn`);
//! * lifetimes vs. char literals (`'a` vs `'a'`);
//! * identifiers, numbers, and single-character punctuation.
//!
//! The output is a flat token stream with line numbers plus the list of
//! suppression directives found in comments.

/// The kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (text is stored on the token).
    Ident,
    /// A single punctuation character.
    Punct(char),
    /// Any string literal (regular, raw, byte, raw byte).
    Str,
    /// A char or byte-char literal.
    Char,
    /// A numeric literal (integer or float, any base, with suffixes).
    Num,
    /// A lifetime such as `'a` (including `'static` and `'_`).
    Lifetime,
}

/// One lexed token: its kind, the line it starts on (1-based), and — for
/// identifiers only — its text.
#[derive(Debug, Clone)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// Identifier text (empty for non-identifier tokens).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

impl Tok {
    /// Returns `true` if this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// Returns `true` if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// A `// rock-analyze: allow(lint-a, lint-b) — reason` suppression
/// directive found in a line comment.
#[derive(Debug, Clone)]
pub struct Directive {
    /// 1-based line the directive comment appears on.
    pub line: u32,
    /// Lint names listed inside `allow(...)`.
    pub lints: Vec<String>,
    /// `true` when non-empty justification text follows the `allow(...)`.
    pub has_reason: bool,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, in source order.
    pub tokens: Vec<Tok>,
    /// Suppression directives found in comments, in source order.
    pub directives: Vec<Directive>,
}

/// Lexes `source` into tokens and suppression directives.
///
/// The lexer is infallible: malformed input (an unterminated string, say)
/// simply ends the current token at end-of-file. Lints are best-effort by
/// design; the compiler is the arbiter of what parses.
pub fn lex(source: &str) -> Lexed {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.tokens.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => {
                    self.string(false);
                    self.push(TokKind::Str, String::new(), line);
                }
                '\'' => self.lifetime_or_char(),
                _ if c.is_ascii_digit() => self.number(),
                'r' | 'b' if self.string_prefix() => {}
                _ if is_ident_start(c) => self.ident(),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct(c), String::new(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        // Only plain `//` comments carry directives: `///` and `//!` doc
        // text may *mention* the syntax without being a directive.
        let doc = text.starts_with("///") || text.starts_with("//!");
        if !doc {
            if let Some(directive) = parse_directive(&text, line) {
                self.out.directives.push(directive);
            }
        }
    }

    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    /// Consumes a `"`-delimited string. When `raw` is true, backslash is
    /// not an escape character.
    fn string(&mut self, raw: bool) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '"' => break,
                '\\' if !raw => {
                    self.bump(); // the escaped character
                }
                _ => {}
            }
        }
    }

    /// Consumes a raw string body after its opening `"`, terminated by a
    /// `"` followed by `hashes` `#` characters.
    fn raw_string(&mut self, hashes: usize) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            if c == '"' && (0..hashes).all(|i| self.peek(i) == Some('#')) {
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
    }

    /// Handles tokens starting with `r` or `b`: raw strings, byte strings,
    /// byte chars, and raw identifiers. Returns `true` if it consumed a
    /// literal (the caller's `ident` path is skipped); plain identifiers
    /// that merely start with these letters return `false` untouched.
    fn string_prefix(&mut self) -> bool {
        let line = self.line;
        let c0 = self.peek(0);
        let c1 = self.peek(1);
        let c2 = self.peek(2);
        match (c0, c1) {
            // b'x' — byte char literal.
            (Some('b'), Some('\'')) => {
                self.bump();
                self.char_literal();
                true
            }
            // b"…" — byte string with escapes.
            (Some('b'), Some('"')) => {
                self.bump();
                self.string(false);
                self.push(TokKind::Str, String::new(), line);
                true
            }
            // br"…" / br#"…"# — raw byte string.
            (Some('b'), Some('r')) if matches!(c2, Some('"') | Some('#')) => {
                self.bump();
                self.bump();
                self.raw_prefix_body("br", line)
            }
            // r"…" / r#"…"# — raw string; r#ident — raw identifier.
            (Some('r'), Some('"') | Some('#')) => {
                self.bump();
                self.raw_prefix_body("r", line)
            }
            _ => false,
        }
    }

    /// After the `r` of a raw-string or raw-identifier prefix: counts `#`s
    /// and dispatches. `prefix` is the already-consumed `r`/`br`, re-used
    /// verbatim when the lookahead turns out not to be a literal at all.
    /// Returns `true` if a token was consumed.
    fn raw_prefix_body(&mut self, prefix: &str, line: u32) -> bool {
        let mut hashes = 0usize;
        while self.peek(hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(hashes) == Some('"') {
            for _ in 0..hashes {
                self.bump();
            }
            self.raw_string(hashes);
            self.push(TokKind::Str, String::new(), line);
            true
        } else if hashes == 1 && self.peek(1).is_some_and(is_ident_start) {
            // r#ident — raw identifier: emit the identifier itself.
            self.bump(); // '#'
            self.ident();
            true
        } else {
            // Not a literal after all (e.g. `r#2`, `br##`): the caller
            // already consumed the prefix, so emit it as an identifier —
            // including the consumed letters, which the v1 lexer dropped.
            let mut text = String::from(prefix);
            while let Some(c) = self.peek(0) {
                if !is_ident_continue(c) {
                    break;
                }
                text.push(c);
                self.bump();
            }
            self.push(TokKind::Ident, text, line);
            true
        }
    }

    fn lifetime_or_char(&mut self) {
        let line = self.line;
        // `'` + ident-start + … + `'` is a char literal like 'a'; without
        // the closing quote it is a lifetime like 'a or 'static.
        if self.peek(1).is_some_and(is_ident_start) {
            let mut end = 2;
            while self.peek(end).is_some_and(is_ident_continue) {
                end += 1;
            }
            if self.peek(end) != Some('\'') {
                self.bump(); // '
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.bump();
                }
                self.push(TokKind::Lifetime, String::new(), line);
                return;
            }
        }
        self.char_literal();
    }

    fn char_literal(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\'' => break,
                '\\' => {
                    self.bump();
                }
                _ => {}
            }
        }
        self.push(TokKind::Char, String::new(), line);
    }

    fn number(&mut self) {
        let line = self.line;
        // A literal directly after a single `.` is a tuple index (`x.0`,
        // and the chain `x.0.1`): always a plain integer, never a float.
        // After `..` (a range bound) a float is still allowed.
        let after_dot = {
            let toks = &self.out.tokens;
            toks.last().is_some_and(|t| t.is_punct('.'))
                && !toks[..toks.len() - 1]
                    .last()
                    .is_some_and(|t| t.is_punct('.'))
        };
        let first = self.bump();
        // `0x…`/`0b…`/`0o…` literals never carry an exponent; without
        // this guard `0x1E-5` (hex, minus, int) would fuse into one token.
        let radix_prefix =
            first == Some('0') && matches!(self.peek(0), Some('x' | 'X' | 'b' | 'B' | 'o' | 'O'));
        let mut prev = first;
        loop {
            match self.peek(0) {
                Some(c) if is_ident_continue(c) => {
                    prev = self.bump();
                }
                // A float's decimal point — but not the `..` of a range,
                // and not inside a tuple-index chain.
                Some('.') if !after_dot && self.peek(1).is_some_and(|c| c.is_ascii_digit()) => {
                    prev = self.bump();
                }
                // An exponent's sign: `1e-5`, `2.5E+10`.
                Some('+' | '-')
                    if !radix_prefix
                        && matches!(prev, Some('e' | 'E'))
                        && self.peek(1).is_some_and(|c| c.is_ascii_digit()) =>
                {
                    prev = self.bump();
                }
                _ => break,
            }
        }
        self.push(TokKind::Num, String::new(), line);
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::Ident, text, line);
    }
}

/// Parses a `rock-analyze: allow(a, b) — reason` directive out of a line
/// comment's text, if present.
fn parse_directive(comment: &str, line: u32) -> Option<Directive> {
    let after = comment.split("rock-analyze:").nth(1)?;
    let open = after.find("allow(")?;
    let rest = &after[open + "allow(".len()..];
    let close = rest.find(')')?;
    let lints: Vec<String> = rest[..close]
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if lints.is_empty() {
        return None;
    }
    let reason = rest[close + 1..]
        .trim_start_matches(|c: char| c.is_whitespace() || c == '—' || c == '-' || c == ':')
        .trim();
    Some(Directive {
        line,
        lints,
        has_reason: !reason.is_empty(),
    })
}

/// Computes, for each token, whether it lies inside test-only code: an
/// item annotated `#[test]` or `#[cfg(test)]` (the annotated item runs to
/// the matching close brace of its body, or to the terminating `;` for
/// bodyless items). Attributes like `#[cfg(any(test, …))]` are *not*
/// treated as test-only — such code is compiled into debug builds.
pub fn test_mask(tokens: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let close = matching_bracket(tokens, i + 1);
            if is_test_attr(&tokens[i + 2..close]) {
                let end = item_end(tokens, close + 1);
                for m in mask.iter_mut().take(end + 1).skip(i) {
                    *m = true;
                }
                i = end + 1;
                continue;
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Returns `true` for the attribute bodies `test` and `cfg(test)`.
fn is_test_attr(body: &[Tok]) -> bool {
    match body {
        [t] => t.is_ident("test"),
        [cfg, open, test, close] => {
            cfg.is_ident("cfg")
                && open.is_punct('(')
                && test.is_ident("test")
                && close.is_punct(')')
        }
        _ => false,
    }
}

/// Index of the `]` matching the `[` at `open` (or the last token).
fn matching_bracket(tokens: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// Index of the last token of the item starting at `start`: skips any
/// further attributes, then scans to the first `;` (bodyless item) or the
/// `}` matching the first `{` (item with a body).
fn item_end(tokens: &[Tok], start: usize) -> usize {
    let mut i = start;
    // Skip stacked attributes.
    while i < tokens.len()
        && tokens[i].is_punct('#')
        && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
    {
        i = matching_bracket(tokens, i + 1) + 1;
    }
    while i < tokens.len() {
        if tokens[i].is_punct(';') {
            return i;
        }
        if tokens[i].is_punct('{') {
            let mut depth = 0usize;
            for (j, t) in tokens.iter().enumerate().skip(i) {
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
            }
            return tokens.len().saturating_sub(1);
        }
        i += 1;
    }
    tokens.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            // calls unwrap() here, in a comment
            /* and unwrap() in /* a nested */ block */
            let s = "unwrap() in a string";
            let r = r#"unwrap() in a raw "quoted" string"#;
            let b = b"unwrap() bytes";
            real_ident();
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|t| t == "unwrap"));
        assert!(ids.iter().any(|t| t == "real_ident"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }").tokens;
        let lifetimes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let chars = toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn line_numbers_are_accurate() {
        let src = "line_one();\n\nline_three();\n";
        let toks = lex(src).tokens;
        assert_eq!(toks[0].line, 1);
        let three = toks.iter().find(|t| t.is_ident("line_three")).unwrap();
        assert_eq!(three.line, 3);
    }

    #[test]
    fn multiline_strings_advance_lines() {
        let src = "let s = \"first\nsecond\";\nafter();";
        let toks = lex(src).tokens;
        let after = toks.iter().find(|t| t.is_ident("after")).unwrap();
        assert_eq!(after.line, 3);
    }

    #[test]
    fn directives_are_parsed() {
        let src = "// rock-analyze: allow(core-unwrap, float-ord) — audited\nx();\n// rock-analyze: allow(wall-clock)\n";
        let lexed = lex(src);
        assert_eq!(lexed.directives.len(), 2);
        assert_eq!(lexed.directives[0].line, 1);
        assert_eq!(lexed.directives[0].lints, vec!["core-unwrap", "float-ord"]);
        assert!(lexed.directives[0].has_reason);
        assert!(!lexed.directives[1].has_reason);
    }

    #[test]
    fn test_mask_covers_cfg_test_modules() {
        let src = "fn shipped() {}\n#[cfg(test)]\nmod tests {\n    fn inner() {}\n}\nfn also_shipped() {}";
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        for (tok, masked) in lexed.tokens.iter().zip(&mask) {
            match tok.text.as_str() {
                "shipped" | "also_shipped" => assert!(!masked, "{} wrongly masked", tok.text),
                "inner" => assert!(*masked, "test fn not masked"),
                _ => {}
            }
        }
    }

    #[test]
    fn test_mask_covers_test_functions_with_stacked_attrs() {
        let src = "#[test]\n#[ignore]\nfn check() { body(); }\nfn shipped() {}";
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        for (tok, masked) in lexed.tokens.iter().zip(&mask) {
            match tok.text.as_str() {
                "body" => assert!(*masked),
                "shipped" => assert!(!masked),
                _ => {}
            }
        }
    }

    #[test]
    fn cfg_any_test_is_not_masked() {
        let src = "#[cfg(any(test, debug_assertions))]\nfn debug_helper() { kept(); }";
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        let kept = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("kept"))
            .unwrap();
        assert!(!mask[kept]);
    }

    #[test]
    fn raw_identifiers_lex_as_identifiers() {
        let ids = idents("let r#fn = 1; let r = 2;");
        assert!(ids.iter().any(|t| t == "fn"));
        assert!(ids.iter().any(|t| t == "r"));
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let toks = lex("for i in 0..10 { let x = 1.5; }").tokens;
        let nums = toks.iter().filter(|t| t.kind == TokKind::Num).count();
        assert_eq!(nums, 3); // 0, 10, 1.5
        assert!(toks.iter().any(|t| t.is_punct('.')));
    }
}
