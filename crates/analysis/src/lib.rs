//! # rock-analyze
//!
//! A dependency-free static-analysis pass for the ROCK workspace.
//!
//! ROCK's correctness hinges on numeric invariants the Rust compiler
//! cannot see: goodness denominators must stay finite and positive, link
//! counts must be symmetric, heap orderings must never hit a NaN, and
//! every run must be bit-for-bit reproducible. This crate walks all
//! workspace `.rs` files with a hand-rolled lexer (no `syn` — the
//! workspace builds offline with zero external dependencies) and enforces
//! project-specific lints over the shipped sources; see [`lints`] for the
//! lint table and [`lexer`] for the tokenizer.
//!
//! The `rock-analyze` binary wires this into CI:
//!
//! ```text
//! rock-analyze --deny            # exit 1 on any finding (the CI gate)
//! rock-analyze --root <dir>      # analyze a different tree
//! rock-analyze --list            # describe every lint
//! ```
//!
//! Findings are machine-readable, one per line:
//!
//! ```text
//! crates/core/src/heap.rs:114: core-unwrap: `.expect()` in rock-core library code; …
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod determinism;
pub mod itemtree;
pub mod lexer;
pub mod lints;

pub use lints::{analyze_source, applicable_lints, Finding, LintInfo, LINTS};

use std::path::{Path, PathBuf};

/// Directory names never descended into when walking a tree. (`data`
/// and `results` hold no Rust sources but are cheap to walk; they are
/// not listed so that source directories like `crates/core/src/data`
/// are never shadowed by name.)
const SKIP_DIRS: [&str; 3] = ["target", ".git", "fixtures"];

/// Recursively collects the `.rs` files under `root`, skipping build
/// output, VCS metadata, committed results, and lint fixtures. Paths are
/// returned sorted for deterministic reports.
pub fn collect_rust_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Analyzes every `.rs` file under `root`, returning all findings sorted
/// by `(path, line, lint)`. Files that cannot be read as UTF-8 are
/// skipped (generated or binary artifacts are not lintable source).
pub fn analyze_tree(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for path in collect_rust_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(source) = std::fs::read_to_string(&path) else {
            continue;
        };
        findings.extend(analyze_source(&rel, &source));
    }
    findings.sort_by(|a, b| (&a.path, a.line, a.lint).cmp(&(&b.path, b.line, b.lint)));
    Ok(findings)
}
