//! The ROCK-specific lints and the engine that runs them.
//!
//! Each lint guards a numeric or determinism invariant the compiler cannot
//! see (see DESIGN.md §Static analysis). Lints are scoped by workspace
//! path: the strictest set applies to `rock-core` library code, where a
//! silent panic or lossy cast corrupts clustering results. The
//! determinism/concurrency pack ([`crate::determinism`]) additionally
//! covers test suites and benches — a nondeterministic assertion flakes
//! just as badly as a nondeterministic export.
//!
//! | lint            | scope                          | enforces |
//! |-----------------|--------------------------------|----------|
//! | `core-unwrap`   | `crates/core/src`              | no `.unwrap()` / `.expect()` — return [`RockError`] |
//! | `core-bare-cast`| `crates/core/src`              | no bare `as` numeric casts — use `From`/`try_from`/`cast` helpers |
//! | `float-ord`     | all shipped `src/`             | no `partial_cmp` / raw float `Ord` shims outside the audited `GoodnessOrd` site |
//! | `counter-flush` | `crates/core/src`              | hot-loop local telemetry counters must be flushed before scope exit |
//! | `wall-clock`    | core (sans telemetry), datasets, baselines | no `SystemTime::now` / `Instant::now` — keeps runs reproducible |
//! | `nondet-iter`   | everywhere linted              | no `HashMap`/`HashSet` iteration without sort/`BTree*`/justified allow |
//! | `atomic-ordering` | everywhere linted            | atomic ops use their documented class ordering; no bare `SeqCst` |
//! | `spawn-merge-order` | everywhere linted          | worker results merged in spawn order, never channel-arrival order |
//! | `panic-path`    | `crates/serve/src`             | serve fails closed: no `panic!`/`unwrap`/`expect`/indexing |
//! | `guard-loop`    | core phase + serve registry/admin files | unbounded loops poll their cancellation signal: the `Guard` (`checkpoint`/`merge_tick`) in core, the shutdown flag (`stop`/`stopping`) in serve |
//!
//! Any finding can be suppressed with a justified directive on the same
//! or previous line:
//!
//! ```text
//! // rock-analyze: allow(core-bare-cast) — audited: debug-asserted in range above.
//! ```
//!
//! [`RockError`]: https://docs.rs/rock-core
//!
//! Suppressions *without* a justification are themselves reported (as
//! `bare-allow`), and suppressions that no longer suppress anything are
//! reported as `unused-allow` — every exception in the tree documents its
//! reason, and no stale exception outlives the code it audited.

use std::fmt;

use crate::determinism::{self, FileCtx};
use crate::itemtree::ItemTree;
use crate::lexer::{lex, test_mask, Tok, TokKind};

/// Static description of one lint.
#[derive(Debug, Clone, Copy)]
pub struct LintInfo {
    /// Machine-readable lint name (used in reports and `allow(...)`).
    pub name: &'static str,
    /// One-line summary of what the lint enforces.
    pub summary: &'static str,
}

/// Every lint this analyzer knows, in report order.
pub const LINTS: [LintInfo; 12] = [
    LintInfo {
        name: "core-unwrap",
        summary: "no .unwrap()/.expect() in rock-core library code; return a typed RockError",
    },
    LintInfo {
        name: "core-bare-cast",
        summary: "no bare `as` numeric casts in rock-core; use From/try_from or rock_core::cast",
    },
    LintInfo {
        name: "float-ord",
        summary: "no partial_cmp/raw float Ord shims outside the audited agglomerate::GoodnessOrd",
    },
    LintInfo {
        name: "counter-flush",
        summary: "local telemetry counters must reach add/observe/flush before leaving scope",
    },
    LintInfo {
        name: "wall-clock",
        summary: "no SystemTime::now/Instant::now outside telemetry; runs must be reproducible",
    },
    LintInfo {
        name: "nondet-iter",
        summary: "no HashMap/HashSet iteration without BTree*/explicit sort/justified allow",
    },
    LintInfo {
        name: "atomic-ordering",
        summary: "atomic ops use their documented class ordering (no bare SeqCst/mismatches)",
    },
    LintInfo {
        name: "spawn-merge-order",
        summary: "per-worker results merge by indexed loop in spawn order, never arrival order",
    },
    LintInfo {
        name: "panic-path",
        summary: "no panic!/unwrap/expect/indexing in rock-serve; the server fails closed",
    },
    LintInfo {
        name: "guard-loop",
        summary: "unbounded loops poll their cancellation signal (core: Guard; serve: stop flag)",
    },
    LintInfo {
        name: "bare-allow",
        summary: "every rock-analyze: allow(...) directive must carry a justification",
    },
    LintInfo {
        name: "unused-allow",
        summary: "an allow(...) directive that suppresses nothing is itself an error",
    },
];

/// One lint violation at a specific source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line of the violation.
    pub line: u32,
    /// Name of the violated lint.
    pub lint: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.lint, self.message
        )
    }
}

impl Finding {
    /// Renders the finding as one JSON object (stable key order).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"path\":{},\"line\":{},\"lint\":{},\"message\":{}}}",
            json_str(&self.path),
            self.line,
            json_str(self.lint),
            json_str(&self.message)
        )
    }
}

/// Minimal JSON string escaping (the workspace is dependency-free).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Integer and float primitive type names — the targets L2 refuses to see
/// on the right of a bare `as`.
const NUMERIC_PRIMITIVES: [&str; 14] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// Local-binding names that denote telemetry tallies (L4). Deliberately a
/// narrow list: these are the pipeline-counter field names and their
/// conventional locals, not every integer accumulator in the codebase.
const COUNTER_NAMES: [&str; 9] = [
    "pushes",
    "pops",
    "merges",
    "sampled",
    "labeled",
    "pruned",
    "filtered",
    "comparisons",
    "evaluations",
];

/// Idents that count as "the tally reached the telemetry layer" (L4).
fn is_flush_ident(name: &str) -> bool {
    matches!(name, "add" | "observe" | "fetch_add") || name.starts_with("flush")
}

/// Which lints apply to a file, given its workspace-relative path.
///
/// Shipped library/binary sources get the full set for their crate. Test
/// suites, benches, and examples get the determinism pack plus the
/// directive lints — a nondeterministic assertion flakes just as badly as
/// a nondeterministic export, so `tests/` and `crates/bench` are scanned
/// too. Only the analyzer's own fixture corpus is exempt by location
/// (test *modules* inside shipped files are exempted per-lint by the
/// lexer's test mask).
pub fn applicable_lints(rel_path: &str) -> Vec<&'static str> {
    let p = rel_path.replace('\\', "/");
    if !p.ends_with(".rs") || p.contains("/fixtures/") || p.starts_with("target/") {
        return Vec::new();
    }
    let shipped = p.starts_with("src/") || (p.starts_with("crates/") && p.contains("/src/"));
    let test_code = p.starts_with("tests/")
        || p.contains("/tests/")
        || p.contains("/benches/")
        || p.starts_with("examples/");
    if !shipped && !test_code {
        return Vec::new();
    }
    // The determinism pack and the directive lints apply everywhere.
    let mut lints = vec![
        "nondet-iter",
        "atomic-ordering",
        "spawn-merge-order",
        "bare-allow",
        "unused-allow",
    ];
    if shipped {
        lints.push("float-ord");
        if p.starts_with("crates/core/src/") {
            lints.extend(["core-unwrap", "core-bare-cast", "counter-flush"]);
            if !p.starts_with("crates/core/src/telemetry/") {
                lints.push("wall-clock");
            }
            if determinism::is_guard_scope(&p) {
                lints.push("guard-loop");
            }
        } else if p.starts_with("crates/datasets/src/") || p.starts_with("crates/baselines/src/") {
            lints.push("wall-clock");
        } else if p.starts_with("crates/serve/src/") {
            lints.push("panic-path");
            if determinism::is_guard_scope(&p) {
                lints.push("guard-loop");
            }
        }
    }
    lints
}

/// Runs every applicable lint over one file's source, returning findings
/// sorted by line. `rel_path` must be workspace-relative (it selects the
/// lint set and is echoed verbatim into findings).
pub fn analyze_source(rel_path: &str, source: &str) -> Vec<Finding> {
    let lints = applicable_lints(rel_path);
    if lints.is_empty() {
        return Vec::new();
    }
    let lexed = lex(source);
    let mask = test_mask(&lexed.tokens);
    let toks = &lexed.tokens;
    let tree = ItemTree::build(toks);

    let mut findings: Vec<Finding> = Vec::new();
    let mut emit = |line: u32, lint: &'static str, message: String| {
        findings.push(Finding {
            path: rel_path.to_string(),
            line,
            lint,
            message,
        });
    };

    for (i, tok) in toks.iter().enumerate() {
        if mask[i] || tok.kind != TokKind::Ident {
            continue;
        }
        match tok.text.as_str() {
            "unwrap" | "expect" if lints.contains(&"core-unwrap") => {
                let dotted = i > 0 && toks[i - 1].is_punct('.');
                let called = toks.get(i + 1).is_some_and(|t| t.is_punct('('));
                if dotted && called {
                    emit(
                        tok.line,
                        "core-unwrap",
                        format!(
                            "`.{}()` in rock-core library code; return a typed `RockError` \
                             (or justify with `// rock-analyze: allow(core-unwrap)`)",
                            tok.text
                        ),
                    );
                }
            }
            "as" if lints.contains(&"core-bare-cast") => {
                if let Some(next) = toks.get(i + 1) {
                    if next.kind == TokKind::Ident
                        && NUMERIC_PRIMITIVES.contains(&next.text.as_str())
                    {
                        emit(
                            next.line,
                            "core-bare-cast",
                            format!(
                                "bare `as {}` numeric cast in rock-core; use `From`/`try_from` \
                                 or a `rock_core::cast` helper",
                                next.text
                            ),
                        );
                    }
                }
            }
            "partial_cmp" if lints.contains(&"float-ord") => {
                emit(
                    tok.line,
                    "float-ord",
                    "`partial_cmp` outside the audited `agglomerate::GoodnessOrd` site; \
                     route float orderings through `GoodnessOrd`"
                        .to_string(),
                );
            }
            "SystemTime" | "Instant" if lints.contains(&"wall-clock") => {
                let is_now_call = toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                    && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                    && toks.get(i + 3).is_some_and(|t| t.is_ident("now"));
                if is_now_call {
                    emit(
                        tok.line,
                        "wall-clock",
                        format!(
                            "`{}::now()` outside the telemetry module makes runs \
                             nondeterministic; route timing through the Observer",
                            tok.text
                        ),
                    );
                }
            }
            "mut" if lints.contains(&"counter-flush") => {
                if let Some(f) = counter_flush_finding(toks, i) {
                    emit(f.0, "counter-flush", f.1);
                }
            }
            _ => {}
        }
    }

    if lints.contains(&"bare-allow") {
        for d in &lexed.directives {
            if !d.has_reason {
                emit(
                    d.line,
                    "bare-allow",
                    format!(
                        "allow({}) directive without a justification; append the reason \
                         after the closing parenthesis",
                        d.lints.join(", ")
                    ),
                );
            }
        }
    }

    // The determinism/concurrency pack runs off the item tree.
    findings.extend(determinism::run(&FileCtx {
        path: rel_path,
        toks,
        mask: &mask,
        tree: &tree,
        lints: &lints,
    }));

    // Apply suppression directives — an allow on line L silences that
    // lint on lines L and L+1 (a standalone comment covers the next
    // line) — while tracking which directives actually suppress
    // something. The directive lints themselves are never suppressible.
    let mut used = vec![false; lexed.directives.len()];
    findings.retain(|f| {
        if f.lint == "bare-allow" || f.lint == "unused-allow" {
            return true;
        }
        let mut keep = true;
        for (d, u) in lexed.directives.iter().zip(used.iter_mut()) {
            if (d.line == f.line || d.line + 1 == f.line) && d.lints.iter().any(|l| l == f.lint) {
                *u = true;
                keep = false;
            }
        }
        keep
    });

    // A directive that suppressed nothing is stale: either the code it
    // audited is gone, or it names a lint that cannot fire here.
    if lints.contains(&"unused-allow") {
        for (d, u) in lexed.directives.iter().zip(&used) {
            if *u {
                continue;
            }
            let unknown: Vec<&str> = d
                .lints
                .iter()
                .map(String::as_str)
                .filter(|l| !LINTS.iter().any(|li| li.name == *l))
                .collect();
            let detail = if unknown.is_empty() {
                "nothing on this or the next line fires it — delete the stale directive".to_string()
            } else {
                format!("no such lint: {}", unknown.join(", "))
            };
            findings.push(Finding {
                path: rel_path.to_string(),
                line: d.line,
                lint: "unused-allow",
                message: format!(
                    "allow({}) directive suppresses nothing ({detail})",
                    d.lints.join(", ")
                ),
            });
        }
    }

    findings.sort_by(|a, b| (a.line, a.lint).cmp(&(b.line, b.lint)));
    findings
}

/// L4 helper. `i` points at a `mut` token; fires when it declares a local
/// telemetry counter (a `let mut <counter>` within the preceding few
/// tokens) whose enclosing block ends without any flush-like call.
/// Returns `(line, message)` for a violation.
fn counter_flush_finding(toks: &[Tok], i: usize) -> Option<(u32, String)> {
    let name_tok = toks.get(i + 1)?;
    if name_tok.kind != TokKind::Ident || !COUNTER_NAMES.contains(&name_tok.text.as_str()) {
        return None;
    }
    // Require a `let` shortly before, in the same statement.
    let mut saw_let = false;
    for back in toks[..i].iter().rev().take(8) {
        if back.is_punct(';') || back.is_punct('{') || back.is_punct('}') {
            break;
        }
        if back.is_ident("let") {
            saw_let = true;
            break;
        }
    }
    if !saw_let {
        return None;
    }
    // Scan to the end of the enclosing block, looking for a flush.
    let mut depth = 0usize;
    for t in &toks[i + 2..] {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            if depth == 0 {
                break;
            }
            depth -= 1;
        } else if t.kind == TokKind::Ident && is_flush_ident(&t.text) {
            return None;
        }
    }
    Some((
        name_tok.line,
        format!(
            "local telemetry counter `{}` never reaches the telemetry layer; call \
             `PipelineCounters::add`/`observe`/a `flush*` method before leaving scope",
            name_tok.text
        ),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    const CORE: &str = "crates/core/src/sample.rs";

    fn lint_lines(findings: &[Finding], lint: &str) -> Vec<u32> {
        findings
            .iter()
            .filter(|f| f.lint == lint)
            .map(|f| f.line)
            .collect()
    }

    #[test]
    fn scoping_follows_workspace_layout() {
        assert!(applicable_lints("crates/core/src/heap.rs").contains(&"core-unwrap"));
        assert!(!applicable_lints("crates/baselines/src/kmodes.rs").contains(&"core-unwrap"));
        assert!(applicable_lints("crates/baselines/src/kmodes.rs").contains(&"wall-clock"));
        assert!(!applicable_lints("crates/core/src/telemetry/mod.rs").contains(&"wall-clock"));
        assert!(applicable_lints("src/lib.rs").contains(&"float-ord"));
        // Test and example code carries the determinism pack (a flaky
        // harness hides real regressions) but not the shipped-code lints.
        assert!(applicable_lints("tests/pipeline.rs").contains(&"nondet-iter"));
        assert!(!applicable_lints("tests/pipeline.rs").contains(&"core-unwrap"));
        assert!(!applicable_lints("tests/pipeline.rs").contains(&"panic-path"));
        // Serve registry/admin files carry guard-loop (shutdown-flag
        // variant); the parser/CLI files do not.
        assert!(applicable_lints("crates/serve/src/registry.rs").contains(&"guard-loop"));
        assert!(applicable_lints("crates/serve/src/server.rs").contains(&"guard-loop"));
        assert!(!applicable_lints("crates/serve/src/http.rs").contains(&"guard-loop"));
        assert!(applicable_lints("examples/quickstart.rs").contains(&"spawn-merge-order"));
        assert!(applicable_lints("crates/bench/src/main.rs").contains(&"atomic-ordering"));
        assert!(applicable_lints("crates/analysis/tests/fixtures/l1.rs").is_empty());
        assert!(applicable_lints("crates/core/src/notes.md").is_empty());
    }

    #[test]
    fn unwrap_in_test_module_is_exempt() {
        let src = "fn lib() -> u32 { x.unwrap() }\n#[cfg(test)]\nmod tests {\n  fn t() { y.unwrap(); }\n}\n";
        let lines = lint_lines(&analyze_source(CORE, src), "core-unwrap");
        assert_eq!(lines, vec![1]);
    }

    #[test]
    fn suppression_requires_matching_lint_and_line() {
        let src = "\
// rock-analyze: allow(core-unwrap) — infallible: guarded by is_empty above.
let a = x.unwrap();
let b = y.unwrap();
";
        let lines = lint_lines(&analyze_source(CORE, src), "core-unwrap");
        assert_eq!(lines, vec![3]);
    }

    #[test]
    fn bare_allow_is_reported() {
        let src = "// rock-analyze: allow(core-unwrap)\nlet a = x.unwrap();\n";
        let f = analyze_source(CORE, src);
        assert_eq!(lint_lines(&f, "bare-allow"), vec![1]);
        assert!(lint_lines(&f, "core-unwrap").is_empty());
    }

    #[test]
    fn counter_flush_pass_and_fail() {
        let flushed = "fn f(c: &C) { let (mut pushes, mut pops) = t();\n  pushes += 1;\n  PipelineCounters::add(&c.x, pushes); }";
        assert!(lint_lines(&analyze_source(CORE, flushed), "counter-flush").is_empty());
        let dropped = "fn f() -> u64 { let mut merges = 0;\n  merges += 1;\n  merges }";
        assert_eq!(
            lint_lines(&analyze_source(CORE, dropped), "counter-flush"),
            vec![1]
        );
        // An ordinary accumulator name is not a telemetry counter.
        let benign = "fn f() -> u64 { let mut total = 0; total += 1; total }";
        assert!(lint_lines(&analyze_source(CORE, benign), "counter-flush").is_empty());
    }

    #[test]
    fn wall_clock_flags_both_clocks() {
        let src = "fn f() { let a = Instant::now(); let b = std::time::SystemTime::now(); }";
        assert_eq!(
            lint_lines(&analyze_source(CORE, src), "wall-clock").len(),
            2
        );
        // `Instant` mentioned without `::now` (e.g. a type annotation) is fine.
        let benign = "fn f(t: Instant) -> Instant { t }";
        assert!(lint_lines(&analyze_source(CORE, benign), "wall-clock").is_empty());
    }

    #[test]
    fn cast_lint_names_the_target_type() {
        let src = "fn f(n: usize) -> u32 { n as u32 }";
        let f = analyze_source(CORE, src);
        assert_eq!(lint_lines(&f, "core-bare-cast"), vec![1]);
        assert!(f[0].message.contains("as u32"));
        // Casts to non-numeric types are out of scope.
        let benign = "fn f(x: X) -> Y { x as Y }";
        assert!(lint_lines(&analyze_source(CORE, benign), "core-bare-cast").is_empty());
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = r##"
fn f() {
    // a comment mentioning x.unwrap() and partial_cmp and 1 as u32
    let s = "calls .unwrap() and Instant::now() in a string";
    let r = r#"n as u64 partial_cmp"#;
}
"##;
        assert!(analyze_source(CORE, src).is_empty());
    }
}
