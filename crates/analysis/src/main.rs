//! Command-line entry point for the `rock-analyze` workspace lint pass.
//!
//! See the crate docs ([`rock_analyze`]) for the lint table. This binary
//! is wired into `ci.sh` and the GitHub Actions workflow as a gate:
//! `rock-analyze --deny` exits nonzero when any finding survives.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

use rock_analyze::{analyze_tree, LINTS};

fn main() -> ExitCode {
    let mut deny = false;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("rock-analyze: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--list" => {
                for lint in LINTS {
                    println!("{:<16} {}", lint.name, lint.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "rock-analyze: ROCK workspace lint pass\n\n\
                     USAGE: rock-analyze [--root <dir>] [--deny] [--list]\n\n\
                     --root <dir>  tree to analyze (default: current directory)\n\
                     --deny        exit 1 when any finding is reported (CI gate)\n\
                     --list        print the lint table and exit\n\n\
                     Suppress a finding with a justified directive on the same or\n\
                     previous line:\n  // rock-analyze: allow(<lint>) — <reason>"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("rock-analyze: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let findings = match analyze_tree(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("rock-analyze: failed to walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    for finding in &findings {
        println!("{finding}");
    }
    let n = findings.len();
    eprintln!(
        "rock-analyze: {n} finding{} ",
        if n == 1 { "" } else { "s" }
    );
    if deny && n > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
