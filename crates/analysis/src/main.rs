//! Command-line entry point for the `rock-analyze` workspace lint pass.
//!
//! See the crate docs ([`rock_analyze`]) for the lint table. This binary
//! is wired into `ci.sh` and the GitHub Actions workflow as a gate:
//! `rock-analyze --deny` exits nonzero when any finding survives, and
//! `--format=json` emits the findings as a machine-readable report that
//! CI uploads as a failure artifact.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

use rock_analyze::{analyze_tree, Finding, LINTS};

/// Report format selected by `--format`.
#[derive(PartialEq)]
enum Format {
    /// One `path:line: lint: message` line per finding (default).
    Text,
    /// A single JSON document: `{"findings": [...], "count": n}`.
    Json,
}

fn main() -> ExitCode {
    let mut deny = false;
    let mut format = Format::Text;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--format=json" => format = Format::Json,
            "--format=text" => format = Format::Text,
            "--format" => match args.next().as_deref() {
                Some("json") => format = Format::Json,
                Some("text") => format = Format::Text,
                other => {
                    eprintln!(
                        "rock-analyze: --format takes `text` or `json`, got {}",
                        other.unwrap_or("nothing")
                    );
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("rock-analyze: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--list" => {
                for lint in LINTS {
                    println!("{:<18} {}", lint.name, lint.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "rock-analyze: ROCK workspace lint pass\n\n\
                     USAGE: rock-analyze [--root <dir>] [--deny] [--format <text|json>] [--list]\n\n\
                     --root <dir>     tree to analyze (default: current directory)\n\
                     --deny           exit 1 when any finding is reported (CI gate)\n\
                     --format <fmt>   report format: text (default) or json\n\
                     --list           print the lint table and exit\n\n\
                     Suppress a finding with a justified directive on the same or\n\
                     previous line:\n  // rock-analyze: allow(<lint>) — <reason>"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("rock-analyze: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let findings = match analyze_tree(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("rock-analyze: failed to walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let n = findings.len();
    match format {
        Format::Text => {
            for finding in &findings {
                println!("{finding}");
            }
        }
        Format::Json => println!("{}", json_report(&findings)),
    }
    eprintln!(
        "rock-analyze: {n} finding{} ",
        if n == 1 { "" } else { "s" }
    );
    if deny && n > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Renders the full report as one stable JSON document. Findings arrive
/// pre-sorted by `(path, line, lint)`, so identical trees always produce
/// byte-identical reports — the analyzer holds itself to the same
/// determinism bar it enforces.
fn json_report(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        out.push_str(&f.to_json());
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!("],\n  \"count\": {}\n}}", findings.len()));
    out
}
