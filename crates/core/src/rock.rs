//! The end-to-end ROCK pipeline (paper §2, figure "Overview of ROCK"):
//! **draw random sample → cluster with links → label data on disk**, with
//! outlier handling at both ends.
//!
//! [`RockBuilder`] is the main public entry point:
//!
//! ```
//! use rock_core::prelude::*;
//!
//! // Two obvious groups of baskets.
//! let data: TransactionSet = vec![
//!     Transaction::new([0, 1, 2]),
//!     Transaction::new([0, 1, 2, 3]),
//!     Transaction::new([0, 1, 2, 4]),
//!     Transaction::new([10, 11, 12]),
//!     Transaction::new([10, 11, 12, 13]),
//!     Transaction::new([10, 11, 12, 14]),
//! ]
//! .into_iter()
//! .collect();
//!
//! let model = RockBuilder::new(2, 0.5).seed(7).build().fit(&data).unwrap();
//! assert_eq!(model.num_clusters(), 2);
//! assert_eq!(model.assignments()[0], model.assignments()[1]);
//! assert_ne!(model.assignments()[0], model.assignments()[3]);
//! ```

use std::path::PathBuf;
use std::time::{Duration, Instant};

use crate::agglomerate::{agglomerate_guarded, AgglomerateConfig, MergeStep, PruneConfig};
use crate::cast;
use crate::contracts;
use crate::data::{ClusterId, TransactionSet};
use crate::error::{Result, RockError};
use crate::goodness::{Goodness, LinkExponent, MarketBasket};
use crate::guard::{Degradation, Guard, Trip};
use crate::labeling::{LabelingConfig, Representatives};
use crate::links::LinkTable;
use crate::neighbors::NeighborGraph;
use crate::outliers::NeighborFilter;
use crate::sampling::{chernoff_sample_size, sample_indices, seeded_rng};
use crate::similarity::{Jaccard, Similarity};
use crate::telemetry::trace::Payload;
use crate::telemetry::{Level, MemoryGauges, Observer, Phase, PipelineCounters};

/// How the clustering sample is chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SampleStrategy {
    /// Cluster every point (no labeling phase).
    All,
    /// Cluster a uniform sample of exactly this many points, then label the
    /// rest.
    Fixed(usize),
    /// Size the sample by the Chernoff bound (paper §4.2): capture at least
    /// fraction `xi` of every cluster of at least `u_min` points with
    /// per-cluster failure probability `delta`.
    Chernoff {
        /// Smallest cluster size that must be represented.
        u_min: usize,
        /// Fraction of each cluster the sample should capture.
        xi: f64,
        /// Per-cluster failure probability.
        delta: f64,
    },
}

/// Full pipeline configuration (see [`RockBuilder`] for construction).
#[derive(Debug, Clone)]
pub struct RockConfig {
    /// Target number of clusters.
    pub k: usize,
    /// Similarity threshold θ ∈ (0, 1).
    pub theta: f64,
    /// Sampling strategy.
    pub sample: SampleStrategy,
    /// Up-front outlier filter on the sample's neighbor graph.
    pub neighbor_filter: NeighborFilter,
    /// Mid-merge small-cluster pruning.
    pub prune: Option<PruneConfig>,
    /// Labeling configuration (representatives per cluster).
    pub labeling: LabelingConfig,
    /// Worker threads for the row-sharded phases — neighbor graph, link
    /// kernel and labeling (`0` = auto: one per available CPU, capped).
    pub threads: usize,
    /// RNG seed (sampling + representative selection).
    pub seed: u64,
    /// Record per-merge history in the model.
    pub record_history: bool,
    /// Stop merging once the best available goodness falls below this
    /// value (`None` = merge down to `k` or link exhaustion).
    pub min_goodness: Option<f64>,
    /// Write a rock-trace/v1 NDJSON event stream to this path during
    /// `fit` (`None` = tracing disabled, the near-zero-cost default).
    pub trace: Option<PathBuf>,
}

/// Builder for a [`Rock`] clusterer.
///
/// Defaults: Jaccard similarity, the market-basket exponent
/// `f(θ) = (1−θ)/(1+θ)`, cluster all points, drop isolated points, no
/// mid-merge pruning, seed 0.
#[derive(Debug, Clone)]
pub struct RockBuilder<S: Similarity = Jaccard, F: LinkExponent = MarketBasket> {
    config: RockConfig,
    sim: S,
    f: F,
}

impl RockBuilder {
    /// Starts a builder for `k` clusters at threshold `theta` with the
    /// paper's default similarity and exponent.
    pub fn new(k: usize, theta: f64) -> Self {
        RockBuilder {
            config: RockConfig {
                k,
                theta,
                sample: SampleStrategy::All,
                neighbor_filter: NeighborFilter::default(),
                prune: None,
                labeling: LabelingConfig::default(),
                threads: 0,
                seed: 0,
                record_history: false,
                min_goodness: None,
                trace: None,
            },
            sim: Jaccard,
            f: MarketBasket,
        }
    }
}

impl<S: Similarity, F: LinkExponent> RockBuilder<S, F> {
    /// Replaces the similarity measure.
    pub fn similarity<S2: Similarity>(self, sim: S2) -> RockBuilder<S2, F> {
        RockBuilder {
            config: self.config,
            sim,
            f: self.f,
        }
    }

    /// Replaces the link exponent function `f(θ)`.
    pub fn link_exponent<F2: LinkExponent>(self, f: F2) -> RockBuilder<S, F2> {
        RockBuilder {
            config: self.config,
            sim: self.sim,
            f,
        }
    }

    /// Sets the sampling strategy.
    pub fn sample(mut self, sample: SampleStrategy) -> Self {
        self.config.sample = sample;
        self
    }

    /// Sets the up-front neighbor-count outlier filter.
    pub fn neighbor_filter(mut self, filter: NeighborFilter) -> Self {
        self.config.neighbor_filter = filter;
        self
    }

    /// Enables mid-merge small-cluster pruning (paper §4.3).
    pub fn prune(mut self, prune: PruneConfig) -> Self {
        self.config.prune = Some(prune);
        self
    }

    /// Sets the labeling configuration.
    pub fn labeling(mut self, labeling: LabelingConfig) -> Self {
        self.config.labeling = labeling;
        self
    }

    /// Sets the worker-thread count for the neighbor, link and labeling
    /// phases (`0` = auto). Results are identical for every value.
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Record per-merge history in the model.
    pub fn record_history(mut self, record: bool) -> Self {
        self.config.record_history = record;
        self
    }

    /// Stop merging early when the best available goodness drops below
    /// `threshold` (the paper's alternative termination condition).
    pub fn min_goodness(mut self, threshold: f64) -> Self {
        self.config.min_goodness = Some(threshold);
        self
    }

    /// Write a rock-trace/v1 event stream to `path` during `fit`: phase
    /// scopes, per-worker shard spans, merge batches and latency
    /// histograms. See `DESIGN.md` §14 for the format.
    pub fn trace(mut self, path: impl Into<PathBuf>) -> Self {
        self.config.trace = Some(path.into());
        self
    }

    /// Finalizes the builder.
    pub fn build(self) -> Rock<S, F> {
        Rock {
            config: self.config,
            sim: self.sim,
            f: self.f,
        }
    }
}

/// A configured ROCK clusterer. Create with [`RockBuilder`].
#[derive(Debug, Clone)]
pub struct Rock<S: Similarity = Jaccard, F: LinkExponent = MarketBasket> {
    config: RockConfig,
    sim: S,
    f: F,
}

/// Wall-clock timings of the pipeline phases.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Neighbor-graph computation on the sample.
    pub neighbors: Duration,
    /// Link-table computation.
    pub links: Duration,
    /// Agglomerative merging.
    pub merge: Duration,
    /// Labeling of outside-sample points.
    pub labeling: Duration,
    /// End-to-end `fit` time.
    pub total: Duration,
}

/// Run statistics reported alongside the clustering.
#[derive(Debug, Clone, Default)]
pub struct RockStats {
    /// Points in the clustered sample (after outlier filtering).
    pub sample_size: usize,
    /// Average neighbor-list length `m_a` in the sample.
    pub avg_degree: f64,
    /// Maximum neighbor-list length `m_m` in the sample.
    pub max_degree: usize,
    /// Nonzero entries in the link table.
    pub link_entries: usize,
    /// Merges performed.
    pub merges: usize,
    /// Final criterion function value E_l on the sample.
    pub criterion: f64,
    /// Whether the merge phase reached exactly `k` clusters.
    pub reached_k: bool,
    /// Phase timings.
    pub timings: PhaseTimings,
}

/// Result of [`Rock::fit`].
#[derive(Debug, Clone)]
pub struct RockModel {
    assignments: Vec<Option<ClusterId>>,
    clusters: Vec<Vec<u32>>,
    sample_indices: Vec<usize>,
    outliers: Vec<u32>,
    history: Vec<MergeStep>,
    stats: RockStats,
}

impl RockModel {
    /// Per-point cluster assignments (`None` = outlier), aligned with the
    /// input data.
    pub fn assignments(&self) -> &[Option<ClusterId>] {
        &self.assignments
    }

    /// Member point indices per cluster, ordered by decreasing size.
    pub fn clusters(&self) -> &[Vec<u32>] {
        &self.clusters
    }

    /// Number of clusters found (may be more than `k` when link supply ran
    /// out, or fewer after pruning).
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Indices of the points that formed the clustered sample.
    pub fn sample_indices(&self) -> &[usize] {
        &self.sample_indices
    }

    /// Points declared outliers (filtered, pruned, or unlabelable).
    pub fn outliers(&self) -> &[u32] {
        &self.outliers
    }

    /// Merge history (empty unless `record_history` was set).
    pub fn history(&self) -> &[MergeStep] {
        &self.history
    }

    /// Run statistics.
    pub fn stats(&self) -> &RockStats {
        &self.stats
    }

    /// Cluster sizes in decreasing order.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        self.clusters.iter().map(Vec::len).collect()
    }

    /// Builds a [`Dendrogram`](crate::dendrogram::Dendrogram) over the
    /// clustered sample from the recorded merge history.
    ///
    /// Returns `None` unless history was recorded (`record_history(true)`)
    /// — and note the replay is only meaningful when no mid-merge pruning
    /// ran. The tree is over *sample-local* indices; map them through
    /// [`sample_indices`](Self::sample_indices) to reach original points.
    pub fn dendrogram(&self) -> Option<crate::dendrogram::Dendrogram> {
        if self.history.is_empty() {
            return None;
        }
        Some(crate::dendrogram::Dendrogram::new(
            self.stats.sample_size,
            self.history.clone(),
        ))
    }
}

/// Result of a guarded fit ([`Rock::fit_guarded`]).
///
/// ROCK is an *anytime* algorithm: every prefix of the merge sequence is a
/// valid partition, so running out of budget does not mean running out of
/// answers. A guarded fit therefore never panics and never discards work —
/// it either completes or hands back the best partition built so far,
/// together with a machine-readable [`Degradation`] report.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// The pipeline ran to completion under budget.
    Complete(RockModel),
    /// A budget tripped (or the run was cancelled) before the pipeline
    /// finished.
    Degraded {
        /// The partial — but internally consistent — clustering. Points
        /// the pipeline never reached are reported as outliers.
        model: RockModel,
        /// What tripped, at which phase, and how far the run got.
        degradation: Degradation,
    },
}

impl Outcome {
    /// The model, complete or partial.
    pub fn model(&self) -> &RockModel {
        match self {
            Outcome::Complete(m) | Outcome::Degraded { model: m, .. } => m,
        }
    }

    /// Consumes the outcome, returning the model.
    pub fn into_model(self) -> RockModel {
        match self {
            Outcome::Complete(m) | Outcome::Degraded { model: m, .. } => m,
        }
    }

    /// The degradation report, when the run was cut short.
    pub fn degradation(&self) -> Option<&Degradation> {
        match self {
            Outcome::Complete(_) => None,
            Outcome::Degraded { degradation, .. } => Some(degradation),
        }
    }

    /// Whether the run was cut short by a budget trip or cancellation.
    pub fn is_degraded(&self) -> bool {
        matches!(self, Outcome::Degraded { .. })
    }
}

/// The fallback partition when a guard trips before any clustering
/// structure exists: every point is an outlier. Still a valid partition —
/// [`contracts::check_partition`] holds — so downstream consumers need no
/// special casing.
fn degraded_all_outliers(
    n: usize,
    start: Instant,
    observer: &Observer,
    guard: &Guard,
    trip: Trip,
) -> Outcome {
    let assignments: Vec<Option<ClusterId>> = vec![None; n];
    let outliers: Vec<u32> = (0..n).map(cast::usize_to_u32).collect();
    contracts::check_partition(&assignments, &outliers);
    let stats = RockStats {
        timings: PhaseTimings {
            neighbors: observer.phase_wall(Phase::Neighbors),
            links: observer.phase_wall(Phase::Links),
            merge: observer.phase_wall(Phase::Agglomerate),
            labeling: observer.phase_wall(Phase::Labeling),
            total: start.elapsed(),
        },
        ..RockStats::default()
    };
    Outcome::Degraded {
        model: RockModel {
            assignments,
            clusters: Vec::new(),
            sample_indices: Vec::new(),
            outliers,
            history: Vec::new(),
            stats,
        },
        degradation: guard.degradation(trip),
    }
}

impl<S: Similarity, F: LinkExponent> Rock<S, F> {
    /// The configuration in use.
    pub fn config(&self) -> &RockConfig {
        &self.config
    }

    /// Clusters `data`.
    ///
    /// # Errors
    /// Propagates configuration and data validation errors
    /// ([`RockError::InvalidTheta`], [`RockError::InvalidK`],
    /// [`RockError::EmptyDataset`], [`RockError::EmptySample`], …).
    pub fn fit(&self, data: &TransactionSet) -> Result<RockModel> {
        self.fit_observed(data, &Observer::new())
    }

    /// [`fit`](Self::fit) with telemetry: every pipeline phase runs under
    /// an [`Observer`] span, hot-path counters and memory gauges fill in,
    /// and phase/progress events stream to the observer's sink. Collect a
    /// [`Metrics`](crate::telemetry::Metrics) document from the observer
    /// afterwards for machine-readable export.
    ///
    /// # Errors
    /// Same as [`fit`](Self::fit).
    pub fn fit_observed(&self, data: &TransactionSet, observer: &Observer) -> Result<RockModel> {
        Ok(self
            .fit_guarded(data, observer, &Guard::unlimited())?
            .into_model())
    }

    /// [`fit_observed`](Self::fit_observed) under an execution [`Guard`]:
    /// budgets and cancellation are checked at every contract-instrumented
    /// phase boundary and inside the agglomeration merge loop. When the
    /// guard trips, the pipeline stops early and returns
    /// [`Outcome::Degraded`] carrying the best valid partition built so
    /// far plus a [`Degradation`] report — never a panic, and never a bare
    /// error. Points the pipeline never assigned are swept into the
    /// outlier set so the partition invariants still hold.
    ///
    /// # Errors
    /// Same validation errors as [`fit`](Self::fit). Budget exhaustion and
    /// cancellation are *not* errors; they degrade — and when `trace` is
    /// configured, the stream is flushed on *every* exit path (complete,
    /// degraded or error), so even a tripped run leaves a well-formed,
    /// truncated-but-parseable trace behind.
    pub fn fit_guarded(
        &self,
        data: &TransactionSet,
        observer: &Observer,
        guard: &Guard,
    ) -> Result<Outcome> {
        let started_trace = match &self.config.trace {
            // An already-enabled tracer (e.g. attached by the caller) is
            // left untouched: the caller owns its lifecycle.
            Some(path) if !observer.tracer().is_enabled() => {
                observer.tracer().start_to_path(path, "rock-core")?;
                true
            }
            _ => false,
        };
        let result = self.fit_guarded_inner(data, observer, guard);
        if started_trace {
            let finished = observer.tracer().finish();
            if result.is_ok() {
                finished?;
            }
        }
        result
    }

    #[allow(clippy::needless_range_loop)] // assignments/outliers are index-aligned
    fn fit_guarded_inner(
        &self,
        data: &TransactionSet,
        observer: &Observer,
        guard: &Guard,
    ) -> Result<Outcome> {
        // rock-analyze: allow(wall-clock) — the audited timing site: total wall time for PhaseTimings only, never in clustering decisions.
        let start = Instant::now();
        let n = data.len();
        if n == 0 {
            return Err(RockError::EmptyDataset);
        }
        if self.config.k == 0 || self.config.k > n {
            return Err(RockError::InvalidK {
                k: self.config.k,
                n,
            });
        }
        self.config.labeling.validate()?;
        let mut rng = seeded_rng(self.config.seed);

        // ── Phase 1: sample ────────────────────────────────────────────
        let span = observer.phase(Phase::Sample);
        let tspan = observer.tracer().begin_scope();
        let sample_indices: Vec<usize> = match self.config.sample {
            SampleStrategy::All => (0..n).collect(),
            SampleStrategy::Fixed(s) => sample_indices(n, s.min(n).max(1), &mut rng)?,
            SampleStrategy::Chernoff { u_min, xi, delta } => {
                let s = chernoff_sample_size(n, u_min, xi, delta)?.max(self.config.k);
                sample_indices(n, s.min(n), &mut rng)?
            }
        };
        let sample = data.subset(&sample_indices);
        contracts::check_sample(&sample_indices, n);
        PipelineCounters::add(
            &observer.counters().points_sampled,
            cast::usize_to_u64(sample_indices.len()),
        );
        observer.log(Level::Info, || {
            format!("sampled {} of {n} points", sample_indices.len())
        });
        if let Some(ts) = tspan {
            observer.tracer().end_scope(
                ts,
                "phase",
                Some(Phase::Sample),
                Payload::new().count("points", cast::usize_to_u64(sample_indices.len())),
            );
        }
        span.finish();
        if let Some(trip) = guard.checkpoint(Phase::Sample, observer) {
            return Ok(degraded_all_outliers(n, start, observer, guard, trip));
        }

        // ── Phase 2: neighbors on the sample ──────────────────────────
        let span = observer.phase(Phase::Neighbors);
        let tspan = observer.tracer().begin_scope();
        // The index-join kernel polls the guard from inside its build and
        // probe loops, so a trip stops the phase mid-flight; the partial
        // graph is discarded below and the run degrades.
        let (graph, neighbors_trip) = NeighborGraph::compute_guarded(
            &sample,
            &self.sim,
            self.config.theta,
            self.config.threads,
            observer,
            guard,
        )?;
        if let Some(ts) = tspan {
            observer.tracer().end_scope(
                ts,
                "phase",
                Some(Phase::Neighbors),
                Payload::new().count("edges", cast::usize_to_u64(graph.num_edges())),
            );
        }
        span.finish();
        if let Some(trip) = neighbors_trip.or_else(|| guard.checkpoint(Phase::Neighbors, observer))
        {
            return Ok(degraded_all_outliers(n, start, observer, guard, trip));
        }
        // Only a completed graph satisfies the symmetry contract; a
        // tripped partial graph was discarded above.
        contracts::check_neighbor_graph(&graph);

        // Up-front outlier filter.
        let span = observer.phase(Phase::Outliers);
        let tspan = observer.tracer().begin_scope();
        let (kept, filtered): (Vec<usize>, Vec<usize>) =
            self.config.neighbor_filter.split_observed(&graph, observer);
        contracts::check_outlier_split(&kept, &filtered, sample.len());
        if kept.is_empty() {
            return Err(RockError::EmptySample);
        }
        if kept.len() < self.config.k {
            return Err(RockError::InvalidK {
                k: self.config.k,
                n: kept.len(),
            });
        }
        let graph = if filtered.is_empty() {
            graph
        } else {
            graph.restricted(&kept)
        };
        let clustered = if filtered.is_empty() {
            sample.clone()
        } else {
            sample.subset(&kept)
        };
        let (avg_degree, max_degree) = graph.degree_stats();
        observer.log(Level::Info, || {
            format!(
                "filtered {} isolated points; m_a = {avg_degree:.2}, m_m = {max_degree}",
                filtered.len()
            )
        });
        if let Some(ts) = tspan {
            observer.tracer().end_scope(
                ts,
                "phase",
                Some(Phase::Outliers),
                Payload::new()
                    .count("kept", cast::usize_to_u64(kept.len()))
                    .count("filtered", cast::usize_to_u64(filtered.len())),
            );
        }
        span.finish();
        if let Some(trip) = guard.checkpoint(Phase::Outliers, observer) {
            return Ok(degraded_all_outliers(n, start, observer, guard, trip));
        }

        // ── Phase 3: links + merge ─────────────────────────────────────
        let span = observer.phase(Phase::Links);
        let tspan = observer.tracer().begin_scope();
        // The sharded kernel polls the guard from inside its worker
        // loops, so a trip stops the phase mid-flight; the partial table
        // is discarded and the run degrades like any other Links trip.
        let (links, links_trip) =
            LinkTable::compute_guarded(&graph, self.config.threads, observer, guard);
        if let Some(ts) = tspan {
            observer.tracer().end_scope(
                ts,
                "phase",
                Some(Phase::Links),
                Payload::new().count("entries", cast::usize_to_u64(links.num_entries())),
            );
        }
        span.finish();
        if let Some(trip) = links_trip.or_else(|| guard.checkpoint(Phase::Links, observer)) {
            return Ok(degraded_all_outliers(n, start, observer, guard, trip));
        }
        contracts::check_link_table(&links);
        let link_entries = links.num_entries();

        let goodness = Goodness::new(self.config.theta, &self.f)?;
        let span = observer.phase(Phase::Agglomerate);
        let tspan = observer.tracer().begin_scope();
        let (agg, agg_trip) = agglomerate_guarded(
            clustered.len(),
            &links,
            &goodness,
            &AgglomerateConfig {
                k: self.config.k,
                prune: self.config.prune,
                record_history: self.config.record_history,
                min_goodness: self.config.min_goodness,
            },
            observer,
            guard,
        )?;
        let mut trip = agg_trip;
        MemoryGauges::observe(
            &observer.memory().dendrogram,
            cast::usize_to_u64(
                std::mem::size_of::<crate::dendrogram::Dendrogram>()
                    + agg.history.capacity() * std::mem::size_of::<MergeStep>(),
            ),
        );
        observer.log(Level::Info, || {
            format!(
                "merged to {} clusters in {} steps (reached_k = {})",
                agg.clusters.len(),
                agg.merges,
                agg.reached_k
            )
        });
        if let Some(ts) = tspan {
            observer.tracer().end_scope(
                ts,
                "phase",
                Some(Phase::Agglomerate),
                Payload::new()
                    .count("merges", cast::usize_to_u64(agg.merges))
                    .count("clusters", cast::usize_to_u64(agg.clusters.len())),
            );
        }
        span.finish();

        // Map sample-local indices back to original dataset indices.
        // kept[i] = index into `sample`; sample_indices[kept[i]] = original.
        let to_original = |local: u32| -> u32 {
            cast::usize_to_u32(sample_indices[kept[cast::u32_to_usize(local)]])
        };

        let mut assignments: Vec<Option<ClusterId>> = vec![None; n];
        let mut clusters: Vec<Vec<u32>> = agg
            .clusters
            .iter()
            .map(|members| {
                let mut m: Vec<u32> = members.iter().map(|&p| to_original(p)).collect();
                m.sort_unstable();
                m
            })
            .collect();
        for (c, members) in clusters.iter().enumerate() {
            for &p in members {
                assignments[cast::u32_to_usize(p)] = Some(ClusterId(cast::usize_to_u32(c)));
            }
        }
        let mut outliers: Vec<u32> = filtered
            .iter()
            .map(|&i| cast::usize_to_u32(sample_indices[i]))
            .chain(agg.outliers.iter().map(|&p| to_original(p)))
            .collect();

        // ── Phase 4: label points outside the clustered sample ────────
        let span = observer.phase(Phase::Labeling);
        let tspan = observer.tracer().begin_scope();
        if trip.is_none() {
            trip = guard.checkpoint(Phase::Labeling, observer);
        }
        if trip.is_none() && clustered.len() < n {
            let in_sample: std::collections::HashSet<usize> =
                kept.iter().map(|&i| sample_indices[i]).collect();
            let reps =
                Representatives::draw(&clustered, &agg.clusters, &self.config.labeling, &mut rng)?;
            // Filtered sample points stay outliers per the paper; only
            // points never seen by the clustering phase get labeled.
            let fixed_outliers: std::collections::HashSet<u32> = outliers.iter().copied().collect();
            let unlabeled: Vec<usize> = (0..n)
                .filter(|&i| {
                    !in_sample.contains(&i)
                        && assignments[i].is_none()
                        && !fixed_outliers.contains(&cast::usize_to_u32(i))
                })
                .collect();
            // Indices come from `0..n`, so the lookup cannot fail; pairing
            // each index with its transaction keeps the label zip aligned
            // even if it ever did.
            let labeled_points: Vec<(usize, &crate::data::Transaction)> = unlabeled
                .iter()
                .filter_map(|&i| data.transaction(i).map(|t| (i, t)))
                .collect();
            let points: Vec<&crate::data::Transaction> =
                labeled_points.iter().map(|&(_, t)| t).collect();
            let labels = crate::labeling::label_many_observed(
                &points,
                &reps,
                &self.sim,
                &self.f,
                self.config.theta,
                self.config.threads,
                observer,
            );
            for (&(i, _), label) in labeled_points.iter().zip(labels) {
                match label {
                    Some(c) => {
                        assignments[i] = Some(ClusterId(cast::usize_to_u32(c)));
                        clusters[c].push(cast::usize_to_u32(i));
                    }
                    None => outliers.push(cast::usize_to_u32(i)),
                }
            }
            for members in &mut clusters {
                members.sort_unstable();
            }
        }
        if trip.is_some() {
            // The run was cut short: every point the pipeline never
            // assigned (skipped labeling, interrupted merges) becomes an
            // outlier so the partition invariants below still hold.
            for i in 0..n {
                if assignments[i].is_none() {
                    outliers.push(cast::usize_to_u32(i));
                }
            }
        }
        if let Some(ts) = tspan {
            observer.tracer().end_scope(
                ts,
                "phase",
                Some(Phase::Labeling),
                Payload::new().count("outliers", cast::usize_to_u64(outliers.len())),
            );
        }
        span.finish();

        // Re-order clusters by decreasing final size and re-number.
        let mut order: Vec<usize> = (0..clusters.len()).collect();
        order.sort_by(|&a, &b| {
            clusters[b]
                .len()
                .cmp(&clusters[a].len())
                .then_with(|| clusters[a].first().cmp(&clusters[b].first()))
        });
        let clusters: Vec<Vec<u32>> = order.into_iter().map(|i| clusters[i].clone()).collect();
        let mut assignments: Vec<Option<ClusterId>> = vec![None; n];
        for (c, members) in clusters.iter().enumerate() {
            for &p in members {
                assignments[cast::u32_to_usize(p)] = Some(ClusterId(cast::usize_to_u32(c)));
            }
        }
        outliers.sort_unstable();
        outliers.dedup();
        contracts::check_partition(&assignments, &outliers);

        let stats = RockStats {
            sample_size: clustered.len(),
            avg_degree,
            max_degree,
            link_entries,
            merges: agg.merges,
            criterion: agg.criterion,
            reached_k: agg.reached_k,
            timings: PhaseTimings {
                neighbors: observer.phase_wall(Phase::Neighbors),
                links: observer.phase_wall(Phase::Links),
                merge: observer.phase_wall(Phase::Agglomerate),
                labeling: observer.phase_wall(Phase::Labeling),
                total: start.elapsed(),
            },
        };
        let model = RockModel {
            assignments,
            clusters,
            sample_indices: kept.iter().map(|&i| sample_indices[i]).collect(),
            outliers,
            history: agg.history,
            stats,
        };
        Ok(match trip {
            None => Outcome::Complete(model),
            Some(t) => Outcome::Degraded {
                model,
                degradation: guard.degradation(t),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Transaction;

    fn blocks(sizes: &[usize], shared: usize) -> (TransactionSet, Vec<usize>) {
        let mut v = Vec::new();
        let mut truth = Vec::new();
        for (b, &size) in sizes.iter().enumerate() {
            let base = (b as u32) * 1000;
            for i in 0..size as u32 {
                let mut items: Vec<u32> = (base..base + shared as u32).collect();
                items.push(base + 500 + i);
                v.push(Transaction::new(items));
                truth.push(b);
            }
        }
        (v.into_iter().collect(), truth)
    }

    #[test]
    fn fit_recovers_two_blocks() {
        let (data, truth) = blocks(&[10, 10], 5);
        let model = RockBuilder::new(2, 0.5).build().fit(&data).unwrap();
        assert_eq!(model.num_clusters(), 2);
        assert_eq!(model.cluster_sizes(), vec![10, 10]);
        let preds: Vec<Option<u32>> = model.assignments().iter().map(|a| a.map(|c| c.0)).collect();
        let acc = crate::metrics::matched_accuracy(&preds, &truth).unwrap();
        assert_eq!(acc, 1.0);
        assert!(model.stats().reached_k);
        assert!(model.stats().criterion > 0.0);
    }

    #[test]
    fn fit_with_sampling_and_labeling() {
        let (data, truth) = blocks(&[40, 40], 6);
        let model = RockBuilder::new(2, 0.5)
            .sample(SampleStrategy::Fixed(30))
            .seed(3)
            .build()
            .fit(&data)
            .unwrap();
        assert_eq!(model.num_clusters(), 2);
        assert_eq!(model.sample_indices().len(), 30);
        // Every point gets labeled into its own block.
        let preds: Vec<Option<u32>> = model.assignments().iter().map(|a| a.map(|c| c.0)).collect();
        let acc = crate::metrics::matched_accuracy(&preds, &truth).unwrap();
        assert_eq!(acc, 1.0, "labeling should be perfect on clean blocks");
        assert!(model.outliers().is_empty());
    }

    #[test]
    fn chernoff_strategy_runs() {
        let (data, _) = blocks(&[50, 50], 6);
        let model = RockBuilder::new(2, 0.5)
            .sample(SampleStrategy::Chernoff {
                u_min: 40,
                xi: 0.2,
                delta: 0.05,
            })
            .seed(11)
            .build()
            .fit(&data)
            .unwrap();
        assert_eq!(model.num_clusters(), 2);
        assert!(model.stats().sample_size <= 100);
        assert!(model.stats().sample_size >= 20);
    }

    #[test]
    fn isolated_points_become_outliers() {
        let (mut data, _) = blocks(&[8, 8], 5);
        let mut v: Vec<Transaction> = data.iter().cloned().collect();
        v.push(Transaction::new([90_000, 90_001]));
        data = v.into_iter().collect();
        let model = RockBuilder::new(2, 0.5).build().fit(&data).unwrap();
        assert_eq!(model.outliers(), &[16]);
        assert!(model.assignments()[16].is_none());
        assert_eq!(model.num_clusters(), 2);
    }

    #[test]
    fn validates_inputs() {
        let (data, _) = blocks(&[5, 5], 4);
        assert!(RockBuilder::new(0, 0.5).build().fit(&data).is_err());
        assert!(RockBuilder::new(99, 0.5).build().fit(&data).is_err());
        assert!(RockBuilder::new(2, 1.5).build().fit(&data).is_err());
        let empty: TransactionSet = Vec::new().into_iter().collect();
        assert!(RockBuilder::new(1, 0.5).build().fit(&empty).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let (data, _) = blocks(&[20, 20], 5);
        let run = |seed| {
            RockBuilder::new(2, 0.5)
                .sample(SampleStrategy::Fixed(24))
                .seed(seed)
                .build()
                .fit(&data)
                .unwrap()
                .clusters()
                .to_vec()
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn history_recorded_on_request() {
        let (data, _) = blocks(&[6, 6], 5);
        let with = RockBuilder::new(2, 0.5)
            .record_history(true)
            .build()
            .fit(&data)
            .unwrap();
        assert_eq!(with.history().len(), 10);
        let without = RockBuilder::new(2, 0.5).build().fit(&data).unwrap();
        assert!(without.history().is_empty());
    }

    #[test]
    fn builder_accepts_custom_measure_and_exponent() {
        use crate::goodness::ConstantExponent;
        use crate::similarity::Dice;
        let (data, _) = blocks(&[8, 8], 5);
        let model = RockBuilder::new(2, 0.5)
            .similarity(Dice)
            .link_exponent(ConstantExponent(0.5))
            .build()
            .fit(&data)
            .unwrap();
        assert_eq!(model.num_clusters(), 2);
    }

    #[test]
    fn multithreaded_fit_is_deterministic() {
        let (data, _) = blocks(&[150, 150], 6);
        let run = |threads| {
            RockBuilder::new(2, 0.5)
                .threads(threads)
                .sample(SampleStrategy::Fixed(200))
                .seed(4)
                .build()
                .fit(&data)
                .unwrap()
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(a.clusters(), b.clusters());
        assert_eq!(a.assignments(), b.assignments());
        assert_eq!(a.outliers(), b.outliers());
    }

    #[test]
    fn all_options_compose() {
        use crate::agglomerate::PruneConfig;
        use crate::goodness::ConstantExponent;
        use crate::labeling::LabelingConfig;
        use crate::outliers::NeighborFilter;
        use crate::similarity::Dice;
        let (data, _) = blocks(&[40, 40, 40], 6);
        let model = RockBuilder::new(3, 0.5)
            .similarity(Dice)
            .link_exponent(ConstantExponent(0.4))
            .sample(SampleStrategy::Fixed(60))
            .neighbor_filter(NeighborFilter::new(2))
            .prune(PruneConfig {
                checkpoint_fraction: 0.1,
                max_prune_size: 1,
            })
            .labeling(LabelingConfig {
                representative_fraction: 0.5,
                max_representatives: 16,
            })
            .min_goodness(0.0)
            .threads(2)
            .seed(6)
            .record_history(true)
            .build()
            .fit(&data)
            .unwrap();
        assert!(model.num_clusters() >= 3);
        assert!(!model.history().is_empty());
        assert_eq!(model.assignments().len(), 120);
    }

    #[test]
    fn invalid_labeling_config_rejected_up_front() {
        let (data, _) = blocks(&[5, 5], 4);
        let err = RockBuilder::new(2, 0.5)
            .labeling(crate::labeling::LabelingConfig {
                representative_fraction: 2.0,
                max_representatives: 0,
            })
            .build()
            .fit(&data)
            .unwrap_err();
        assert!(matches!(err, RockError::InvalidFraction { .. }));
    }

    fn assert_valid_partition(model: &RockModel, n: usize) {
        assert_eq!(model.assignments().len(), n);
        let clustered: usize = model.clusters().iter().map(Vec::len).sum();
        assert_eq!(clustered + model.outliers().len(), n);
        for &o in model.outliers() {
            assert!(model.assignments()[o as usize].is_none());
        }
        for (c, members) in model.clusters().iter().enumerate() {
            for &p in members {
                assert_eq!(model.assignments()[p as usize], Some(ClusterId(c as u32)));
            }
        }
    }

    #[test]
    fn unlimited_guard_completes_and_matches_fit() {
        use crate::telemetry::Observer;
        let (data, _) = blocks(&[10, 10], 5);
        let rock = RockBuilder::new(2, 0.5).build();
        let plain = rock.fit(&data).unwrap();
        let outcome = rock
            .fit_guarded(&data, &Observer::new(), &Guard::unlimited())
            .unwrap();
        assert!(!outcome.is_degraded());
        assert!(outcome.degradation().is_none());
        assert_eq!(outcome.model().clusters(), plain.clusters());
        assert_eq!(outcome.into_model().assignments(), plain.assignments());
    }

    #[test]
    fn step_budget_degrades_to_valid_partition() {
        use crate::guard::{RunBudget, TripReason};
        use crate::telemetry::Observer;
        let (data, _) = blocks(&[10, 10], 5);
        let guard = Guard::new(RunBudget::unlimited().steps(4));
        let outcome = RockBuilder::new(2, 0.5)
            .build()
            .fit_guarded(&data, &Observer::new(), &guard)
            .unwrap();
        assert!(outcome.is_degraded());
        let d = outcome.degradation().unwrap();
        assert_eq!(d.reason, TripReason::StepBudget { limit: 4 });
        assert_eq!(d.merges_completed, 4);
        assert_eq!(d.phase, Phase::Agglomerate);
        let model = outcome.model();
        assert_eq!(model.stats().merges, 4);
        assert!(!model.stats().reached_k);
        assert_valid_partition(model, 20);
    }

    #[test]
    fn early_phase_trip_yields_all_outlier_partition() {
        use crate::telemetry::Observer;
        let (data, _) = blocks(&[8, 8], 5);
        for phase in [
            Phase::Sample,
            Phase::Neighbors,
            Phase::Outliers,
            Phase::Links,
        ] {
            let guard = Guard::unlimited().inject_trip_at(phase);
            let outcome = RockBuilder::new(2, 0.5)
                .build()
                .fit_guarded(&data, &Observer::new(), &guard)
                .unwrap();
            assert!(outcome.is_degraded(), "injection at {phase:?} must degrade");
            assert_eq!(outcome.degradation().unwrap().phase, phase);
            let model = outcome.model();
            assert_eq!(model.num_clusters(), 0);
            assert_eq!(model.outliers().len(), 16);
            assert_valid_partition(model, 16);
        }
    }

    #[test]
    fn labeling_trip_keeps_sample_clusters_and_sweeps_rest() {
        use crate::telemetry::Observer;
        let (data, _) = blocks(&[40, 40], 6);
        let guard = Guard::unlimited().inject_trip_at(Phase::Labeling);
        let outcome = RockBuilder::new(2, 0.5)
            .sample(SampleStrategy::Fixed(30))
            .seed(3)
            .build()
            .fit_guarded(&data, &Observer::new(), &guard)
            .unwrap();
        assert!(outcome.is_degraded());
        assert_eq!(outcome.degradation().unwrap().phase, Phase::Labeling);
        let model = outcome.model();
        // The sample was clustered, the other 50 points were never labeled
        // and must have been swept into the outlier set.
        assert_eq!(model.num_clusters(), 2);
        assert_eq!(model.outliers().len(), 50);
        assert_valid_partition(model, 80);
    }

    #[test]
    fn cancellation_before_fit_degrades_immediately() {
        use crate::telemetry::Observer;
        let (data, _) = blocks(&[8, 8], 5);
        let guard = Guard::unlimited();
        guard.cancel_token().cancel();
        let outcome = RockBuilder::new(2, 0.5)
            .build()
            .fit_guarded(&data, &Observer::new(), &guard)
            .unwrap();
        assert!(outcome.is_degraded());
        assert_eq!(
            outcome.degradation().unwrap().reason,
            crate::guard::TripReason::Cancelled
        );
        assert_valid_partition(outcome.model(), 16);
    }

    #[test]
    fn validation_errors_still_error_under_guard() {
        use crate::telemetry::Observer;
        let (data, _) = blocks(&[5, 5], 4);
        let guard = Guard::unlimited();
        let err = RockBuilder::new(0, 0.5)
            .build()
            .fit_guarded(&data, &Observer::new(), &guard)
            .unwrap_err();
        assert!(matches!(err, RockError::InvalidK { .. }));
    }

    #[test]
    fn stats_are_populated() {
        let (data, _) = blocks(&[10, 10], 5);
        let model = RockBuilder::new(2, 0.5).build().fit(&data).unwrap();
        let s = model.stats();
        assert_eq!(s.sample_size, 20);
        assert!(s.avg_degree > 0.0);
        assert!(s.max_degree >= 9);
        assert!(s.link_entries > 0);
        assert!(s.timings.total >= s.timings.neighbors);
    }
}
