//! An indexed binary max-heap supporting update and removal by key.
//!
//! The ROCK merge loop (paper §4, figure "cluster") keeps one *local heap*
//! `q[i]` per cluster — the clusters linked to `i`, ordered by goodness —
//! and a *global heap* `Q` of clusters ordered by the goodness of their
//! best local merge. Every merge must update or delete arbitrary entries of
//! many heaps, an operation `std::collections::BinaryHeap` does not offer.
//!
//! [`IndexedHeap`] stores a classic array-backed binary heap plus an
//! id → position map, giving `O(log n)` insert / update / remove and `O(1)`
//! peek, matching the complexity the paper assumes. The position index is
//! a hash map so that a run with one local heap per cluster costs memory
//! proportional to the *link rows*, not `O(n²)`.

use std::collections::HashMap;

use crate::telemetry::MemoryEstimate;

/// Array-backed binary **max**-heap keyed by `u32` ids.
///
/// Priorities need a total order (`Ord`); for floating-point goodness
/// values wrap them in a totally ordered key (see
/// `agglomerate::GoodnessKey`).
///
/// Every heap keeps lifetime telemetry tallies of its push and pop
/// operations (see [`telemetry_counts`](Self::telemetry_counts)); the
/// merge engine sums them into the pipeline counters.
#[derive(Debug, Clone, Default)]
pub struct IndexedHeap<P: Ord> {
    /// Heap array of `(priority, id)`.
    entries: Vec<(P, u32)>,
    /// `pos[id]` = index in `entries`; absent ids have no entry.
    pos: HashMap<u32, usize>,
    /// Lifetime count of insert/update operations.
    pushes: u64,
    /// Lifetime count of removals (including entries dropped by `clear`).
    pops: u64,
    /// Lifetime count of internal-consistency anomalies (a `remove` whose
    /// position map and entry array disagreed). Always 0 on a healthy heap.
    anomalies: u64,
}

impl<P: Ord> IndexedHeap<P> {
    /// Creates an empty heap. `capacity` is a size hint for the expected
    /// number of simultaneous entries.
    pub fn with_capacity(capacity: usize) -> Self {
        IndexedHeap {
            entries: Vec::with_capacity(capacity.min(1024)),
            pos: HashMap::with_capacity(capacity.min(1024)),
            pushes: 0,
            pops: 0,
            anomalies: 0,
        }
    }

    /// Creates an empty heap with no preallocation.
    pub fn new() -> Self {
        IndexedHeap {
            entries: Vec::new(),
            pos: HashMap::new(),
            pushes: 0,
            pops: 0,
            anomalies: 0,
        }
    }

    /// Number of entries currently in the heap.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the heap is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns `true` if `id` is present.
    #[inline]
    pub fn contains(&self, id: u32) -> bool {
        self.pos.contains_key(&id)
    }

    /// Returns the priority stored for `id`.
    pub fn priority(&self, id: u32) -> Option<&P> {
        let p = *self.pos.get(&id)?;
        Some(&self.entries[p].0)
    }

    /// Inserts `id` with `priority`, or updates its priority if present.
    pub fn insert_or_update(&mut self, id: u32, priority: P) {
        self.pushes += 1;
        if let Some(&slot) = self.pos.get(&id) {
            let old_was_less = self.entries[slot].0 < priority;
            self.entries[slot].0 = priority;
            if old_was_less {
                self.sift_up(slot);
            } else {
                self.sift_down(slot);
            }
        } else {
            self.entries.push((priority, id));
            let idx = self.entries.len() - 1;
            self.pos.insert(id, idx);
            self.sift_up(idx);
        }
    }

    /// Removes `id`, returning its priority if it was present.
    pub fn remove(&mut self, id: u32) -> Option<P> {
        let slot = self.pos.remove(&id)?;
        self.pops += 1;
        let last = self.entries.len() - 1;
        self.entries.swap(slot, last);
        if slot != last {
            self.pos.insert(self.entries[slot].1, slot);
        }
        // The position map just yielded a slot, so an entry must exist; if
        // that ever breaks, record the corruption and degrade to `None` —
        // the anomaly tally surfaces it through telemetry and the
        // contracts checks instead of a silent wrong answer.
        let Some((p, _)) = self.entries.pop() else {
            self.anomalies += 1;
            debug_assert!(false, "heap position map referenced an empty entry array");
            return None;
        };
        if slot < self.entries.len() {
            // The element swapped into the hole may need to move either
            // direction; the two sifts are mutually exclusive no-ops.
            self.sift_up(slot);
            self.sift_down(slot);
        }
        Some(p)
    }

    /// Returns the maximum entry without removing it.
    pub fn peek(&self) -> Option<(&P, u32)> {
        self.entries.first().map(|(p, id)| (p, *id))
    }

    /// Removes and returns the maximum entry.
    pub fn pop(&mut self) -> Option<(P, u32)> {
        let id = self.entries.first()?.1;
        let p = self.remove(id)?;
        Some((p, id))
    }

    /// Removes every entry (keeps capacity). Each dropped entry counts as
    /// one pop in the telemetry tallies.
    pub fn clear(&mut self) {
        self.pops += crate::cast::usize_to_u64(self.entries.len());
        self.entries.clear();
        self.pos.clear();
    }

    /// Lifetime `(pushes, pops)` operation tallies of this heap.
    pub fn telemetry_counts(&self) -> (u64, u64) {
        (self.pushes, self.pops)
    }

    /// Lifetime count of internal-consistency anomalies (see
    /// [`remove`](Self::remove)). Nonzero means the heap corrupted itself
    /// and silently degraded; the merge engine flushes this into the
    /// `heap_anomalies` pipeline counter and
    /// [`assert_invariants`](Self::assert_invariants) rejects it outright.
    pub fn anomaly_count(&self) -> u64 {
        self.anomalies
    }

    /// Iterates `(priority, id)` in arbitrary (heap) order.
    pub fn iter(&self) -> impl Iterator<Item = (&P, u32)> {
        self.entries.iter().map(|(p, id)| (p, *id))
    }

    fn sift_up(&mut self, mut idx: usize) {
        while idx > 0 {
            let parent = (idx - 1) / 2;
            if self.entries[idx].0 <= self.entries[parent].0 {
                break;
            }
            self.entries.swap(idx, parent);
            self.pos.insert(self.entries[idx].1, idx);
            self.pos.insert(self.entries[parent].1, parent);
            idx = parent;
        }
    }

    fn sift_down(&mut self, mut idx: usize) {
        let n = self.entries.len();
        loop {
            let (l, r) = (2 * idx + 1, 2 * idx + 2);
            let mut largest = idx;
            if l < n && self.entries[l].0 > self.entries[largest].0 {
                largest = l;
            }
            if r < n && self.entries[r].0 > self.entries[largest].0 {
                largest = r;
            }
            if largest == idx {
                break;
            }
            self.entries.swap(idx, largest);
            self.pos.insert(self.entries[idx].1, idx);
            self.pos.insert(self.entries[largest].1, largest);
            idx = largest;
        }
    }

    /// Estimated heap bytes: the entry array at capacity plus the
    /// position map (bucket overhead approximated at 1/8 load slack).
    pub fn estimated_bytes(&self) -> usize {
        let map_entry = std::mem::size_of::<(u32, usize)>() + std::mem::size_of::<u64>() / 8;
        std::mem::size_of::<Self>()
            + self.entries.capacity() * std::mem::size_of::<(P, u32)>()
            + self.pos.capacity() * map_entry
    }

    /// Checks the heap invariant and position map; test/debug helper.
    #[cfg(any(test, debug_assertions))]
    pub fn assert_invariants(&self) {
        for (i, (p, id)) in self.entries.iter().enumerate() {
            assert_eq!(
                self.pos.get(id).copied(),
                Some(i),
                "pos map out of sync for id {id}"
            );
            if i > 0 {
                let parent = &self.entries[(i - 1) / 2].0;
                assert!(p <= parent, "heap order violated at index {i}");
            }
        }
        assert_eq!(
            self.pos.len(),
            self.entries.len(),
            "pos map counts mismatch"
        );
        assert_eq!(
            self.anomalies, 0,
            "heap recorded {} internal-consistency anomalies",
            self.anomalies
        );
    }
}

impl<P: Ord> MemoryEstimate for IndexedHeap<P> {
    fn estimated_bytes(&self) -> usize {
        IndexedHeap::estimated_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_counts_track_operations() {
        let mut h = IndexedHeap::with_capacity(8);
        for id in 0..5u32 {
            h.insert_or_update(id, id as i64); // 5 pushes
        }
        h.insert_or_update(0, 99); // update still counts as a push
        h.remove(1); // 1 pop
        h.remove(1); // absent: no pop
        h.pop(); // remove() inside: 1 pop
        h.clear(); // 3 remaining entries → 3 pops
        assert_eq!(h.telemetry_counts(), (6, 5));
        assert_eq!(h.anomaly_count(), 0);
        assert!(h.estimated_bytes() >= std::mem::size_of::<IndexedHeap<i64>>());
    }

    #[test]
    fn push_pop_orders_descending() {
        let mut h = IndexedHeap::with_capacity(10);
        for (id, p) in [(0u32, 3i64), (1, 9), (2, 1), (3, 7), (4, 5)] {
            h.insert_or_update(id, p);
            h.assert_invariants();
        }
        let mut out = Vec::new();
        while let Some((p, _)) = h.pop() {
            out.push(p);
            h.assert_invariants();
        }
        assert_eq!(out, vec![9, 7, 5, 3, 1]);
    }

    #[test]
    fn update_increases_priority() {
        let mut h = IndexedHeap::with_capacity(4);
        h.insert_or_update(0, 1);
        h.insert_or_update(1, 2);
        h.insert_or_update(0, 10);
        h.assert_invariants();
        assert_eq!(h.peek(), Some((&10, 0)));
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn update_decreases_priority() {
        let mut h = IndexedHeap::with_capacity(4);
        h.insert_or_update(0, 10);
        h.insert_or_update(1, 5);
        h.insert_or_update(2, 7);
        h.insert_or_update(0, 1);
        h.assert_invariants();
        assert_eq!(h.peek(), Some((&7, 2)));
    }

    #[test]
    fn remove_middle_entry() {
        let mut h = IndexedHeap::with_capacity(8);
        for id in 0..8u32 {
            h.insert_or_update(id, (id as i64) * 3 % 7);
        }
        assert_eq!(h.remove(3), Some(2));
        assert_eq!(h.remove(3), None);
        h.assert_invariants();
        assert_eq!(h.len(), 7);
        assert!(!h.contains(3));
    }

    #[test]
    fn remove_last_and_root() {
        let mut h = IndexedHeap::with_capacity(3);
        h.insert_or_update(0, 1);
        h.insert_or_update(1, 2);
        h.insert_or_update(2, 3);
        assert_eq!(h.remove(2), Some(3)); // root
        h.assert_invariants();
        assert_eq!(h.peek(), Some((&2, 1)));
        assert_eq!(h.remove(0), Some(1)); // last
        h.assert_invariants();
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn priority_lookup() {
        let mut h = IndexedHeap::with_capacity(2);
        h.insert_or_update(1, 42);
        assert_eq!(h.priority(1), Some(&42));
        assert_eq!(h.priority(0), None);
        assert_eq!(h.priority(5), None);
    }

    #[test]
    fn clear_resets() {
        let mut h = IndexedHeap::with_capacity(4);
        h.insert_or_update(0, 1);
        h.insert_or_update(1, 2);
        h.clear();
        assert!(h.is_empty());
        assert!(!h.contains(0));
        h.insert_or_update(0, 9);
        assert_eq!(h.peek(), Some((&9, 0)));
    }

    #[test]
    fn pop_on_empty_is_none() {
        let mut h: IndexedHeap<i32> = IndexedHeap::with_capacity(1);
        assert!(h.pop().is_none());
        assert!(h.peek().is_none());
    }

    #[test]
    fn sparse_ids_are_supported() {
        // Ids far beyond the capacity hint work because the index is a map.
        let mut h = IndexedHeap::with_capacity(2);
        h.insert_or_update(1_000_000, 5);
        h.insert_or_update(42, 7);
        h.assert_invariants();
        assert_eq!(h.pop(), Some((7, 42)));
        assert_eq!(h.pop(), Some((5, 1_000_000)));
    }

    #[test]
    fn ties_are_stable_under_invariants() {
        let mut h = IndexedHeap::with_capacity(5);
        for id in 0..5u32 {
            h.insert_or_update(id, 7);
        }
        h.assert_invariants();
        let mut ids: Vec<u32> = std::iter::from_fn(|| h.pop().map(|(_, id)| id)).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn randomized_against_reference_model() {
        // Deterministic pseudo-random sequence of operations checked
        // against a BTreeMap reference model.
        let mut h = IndexedHeap::with_capacity(64);
        let mut model: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
        let mut state = 0x243f_6a88_85a3_08d3u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        for _ in 0..4000 {
            let r = next();
            let id = (r % 64) as u32;
            match (r >> 8) % 3 {
                0 => {
                    let p = next() % 1000;
                    h.insert_or_update(id, p);
                    model.insert(id, p);
                }
                1 => {
                    let got = h.remove(id);
                    let expect = model.remove(&id);
                    assert_eq!(got, expect);
                }
                _ => {
                    let got = h.peek().map(|(p, _)| *p);
                    let expect = model.values().max().copied();
                    assert_eq!(got, expect);
                }
            }
            h.assert_invariants();
            assert_eq!(h.len(), model.len());
        }
    }
}
