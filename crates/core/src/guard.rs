//! Execution guardrails: run budgets, cooperative cancellation and
//! graceful degradation.
//!
//! ROCK's agglomeration is naturally *anytime* — every merge step yields a
//! valid partition, and the labeling phase (paper §4.2) works from
//! whatever representative clusters exist. This module exploits that: a
//! [`Guard`] carries a [`RunBudget`] (merge-step ceiling, wall-clock
//! deadline, memory ceiling) plus a [`CancelToken`], and the pipeline
//! checks it at the six contract-instrumented phase boundaries, inside
//! the merge loop, and from every worker of the sharded link kernel
//! (which also streams its stored-entry bytes into the memory gauge, so
//! the memory ceiling is live *while* the table grows). When a budget
//! trips, [`fit_guarded`] returns
//! [`Outcome::Degraded`] carrying the best partition available at the
//! trip point and a machine-readable [`Degradation`] report — never a
//! panic, never a bare error.
//!
//! The same type doubles as the **deterministic fault-injection harness**:
//! [`Guard::inject_trip_at`] forces a budget trip at a chosen phase, so
//! the chaos suite can drive every degradation path without timing races.
//!
//! ```
//! use rock_core::guard::{Guard, RunBudget};
//! use rock_core::prelude::*;
//!
//! let data: TransactionSet = (0..20u32)
//!     .map(|i| Transaction::new([i % 2 * 100, i % 2 * 100 + 1, i]))
//!     .collect();
//! let guard = Guard::new(RunBudget::unlimited().steps(3));
//! let outcome = RockBuilder::new(2, 0.3)
//!     .build()
//!     .fit_guarded(&data, &Observer::new(), &guard)?;
//! // Whether the run completed or degraded, a valid partition came back.
//! assert_eq!(outcome.model().assignments().len(), 20);
//! # Ok::<(), rock_core::RockError>(())
//! ```
//!
//! [`fit_guarded`]: crate::rock::Rock::fit_guarded
//! [`Outcome::Degraded`]: crate::rock::Outcome::Degraded

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::telemetry::{json::JsonObj, Observer, Phase};

/// How often the merge loop consults the wall clock: checking
/// `Instant::now` every merge would dominate small merges, so the
/// deadline is sampled every `DEADLINE_STRIDE` steps (cancellation and
/// the step budget are plain atomic reads and are checked every step).
const DEADLINE_STRIDE: u64 = 64;

/// The audited wall-clock read for deadline budgets. This is the guard
/// subsystem's **single** clock site: deadlines are observability-class
/// state (they never influence *which* merge happens, only *how many*),
/// so reading the clock here cannot make two runs of the same seed
/// produce different partitions of the work that was done.
#[inline]
fn now() -> Instant {
    // rock-analyze: allow(wall-clock) — the audited deadline clock: budgets bound how much work runs, never which merge is chosen, so the completed prefix stays deterministic.
    Instant::now()
}

/// The monotonic base shared with the trace layer: rock-trace/v1
/// timestamps annotate *completed* work and never influence clustering
/// decisions, so they reuse this audited clock instead of introducing a
/// second wall-clock site.
#[inline]
pub(crate) fn monotonic_now() -> Instant {
    now()
}

/// Cooperative cancellation flag, cheaply cloneable across threads.
///
/// Cancellation is *cooperative*: the pipeline polls the token at phase
/// boundaries and inside the merge loop, finishes the current unit of
/// work, and degrades to the partition built so far. Nothing is killed
/// mid-operation.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// `true` once [`cancel`](Self::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Resource ceilings for one clustering run. All limits default to
/// unlimited; combine with the builder methods.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunBudget {
    /// Maximum merge steps the agglomeration phase may perform.
    pub max_merge_steps: Option<u64>,
    /// Wall-clock deadline for the whole run, measured from
    /// [`Guard::new`].
    pub deadline: Option<Duration>,
    /// Ceiling on the telemetry memory gauges' tracked total (estimated
    /// bytes of the neighbor graph + link table + heaps + dendrogram).
    pub max_memory_bytes: Option<u64>,
}

impl RunBudget {
    /// No limits at all.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Caps the number of agglomeration merge steps.
    pub fn steps(mut self, max: u64) -> Self {
        self.max_merge_steps = Some(max);
        self
    }

    /// Sets a wall-clock deadline for the run.
    pub fn wall(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Caps the estimated bytes tracked by the telemetry memory gauges.
    pub fn memory(mut self, bytes: u64) -> Self {
        self.max_memory_bytes = Some(bytes);
        self
    }

    /// `true` when no limit is set (the guard can never trip on its own).
    pub fn is_unlimited(&self) -> bool {
        self.max_merge_steps.is_none() && self.deadline.is_none() && self.max_memory_bytes.is_none()
    }
}

/// Why a guarded run stopped early.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TripReason {
    /// The [`CancelToken`] was cancelled.
    Cancelled,
    /// The merge-step budget ran out.
    StepBudget {
        /// The configured step ceiling.
        limit: u64,
    },
    /// The wall-clock deadline passed.
    Deadline {
        /// The configured deadline, in seconds.
        limit_secs: f64,
    },
    /// The memory ceiling was exceeded.
    MemoryBudget {
        /// The configured ceiling, in bytes.
        limit_bytes: u64,
        /// The tracked total observed at the trip.
        observed_bytes: u64,
    },
    /// A fault-injection harness forced the trip
    /// (see [`Guard::inject_trip_at`]).
    Injected,
}

impl TripReason {
    /// Stable machine-readable name (used in the metrics JSON schema).
    pub fn name(&self) -> &'static str {
        match self {
            TripReason::Cancelled => "cancelled",
            TripReason::StepBudget { .. } => "step-budget",
            TripReason::Deadline { .. } => "deadline",
            TripReason::MemoryBudget { .. } => "memory-budget",
            TripReason::Injected => "injected",
        }
    }
}

impl std::fmt::Display for TripReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TripReason::Cancelled => write!(f, "run cancelled"),
            TripReason::StepBudget { limit } => {
                write!(f, "merge-step budget of {limit} exhausted")
            }
            TripReason::Deadline { limit_secs } => {
                write!(f, "wall-clock deadline of {limit_secs}s passed")
            }
            TripReason::MemoryBudget {
                limit_bytes,
                observed_bytes,
            } => write!(
                f,
                "memory ceiling of {limit_bytes} bytes exceeded ({observed_bytes} tracked)"
            ),
            TripReason::Injected => write!(f, "fault injection forced a trip"),
        }
    }
}

/// A budget violation observed at a specific pipeline phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trip {
    /// What tripped.
    pub reason: TripReason,
    /// The phase the pipeline had reached when it tripped.
    pub phase: Phase,
}

/// Machine-readable report of a degraded run, embedded in the
/// `rock-metrics/v1` JSON as the `degradation` block and carried by
/// [`Outcome::Degraded`](crate::rock::Outcome::Degraded).
#[derive(Debug, Clone, PartialEq)]
pub struct Degradation {
    /// What tripped.
    pub reason: TripReason,
    /// The phase the pipeline had reached when it tripped.
    pub phase: Phase,
    /// Merge steps completed before the trip.
    pub merges_completed: u64,
    /// Wall seconds elapsed (from guard creation) at the trip.
    pub elapsed_secs: f64,
}

impl Degradation {
    /// Serializes the report as a JSON object fragment (the `degradation`
    /// block of the metrics schema).
    pub fn to_json_fragment(&self, pretty: bool, indent: usize) -> String {
        let mut obj = JsonObj::new(pretty, indent);
        obj.str("reason", self.reason.name())
            .str("phase", self.phase.name())
            .num_u64("merges_completed", self.merges_completed)
            .num_f64("elapsed_secs", self.elapsed_secs);
        match self.reason {
            TripReason::StepBudget { limit } => {
                obj.num_u64("step_limit", limit);
            }
            TripReason::Deadline { limit_secs } => {
                obj.num_f64("deadline_secs", limit_secs);
            }
            TripReason::MemoryBudget {
                limit_bytes,
                observed_bytes,
            } => {
                obj.num_u64("memory_limit_bytes", limit_bytes)
                    .num_u64("memory_observed_bytes", observed_bytes);
            }
            TripReason::Cancelled | TripReason::Injected => {}
        }
        obj.end()
    }
}

impl std::fmt::Display for Degradation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} at phase `{}` after {} merges ({:.3}s)",
            self.reason,
            self.phase.name(),
            self.merges_completed,
            self.elapsed_secs
        )
    }
}

/// The runtime guardrail the pipeline consults: a [`RunBudget`], a
/// [`CancelToken`] and (for chaos testing) an optional forced trip.
///
/// The wall clock starts at [`Guard::new`]; construct the guard right
/// before calling [`fit_guarded`](crate::rock::Rock::fit_guarded).
#[derive(Debug)]
pub struct Guard {
    budget: RunBudget,
    cancel: CancelToken,
    start: Instant,
    merge_steps: AtomicU64,
    forced: Option<(Phase, TripReason)>,
}

impl Default for Guard {
    fn default() -> Self {
        Guard::unlimited()
    }
}

impl Guard {
    /// A guard with `budget` and a private (never-cancelled) token. The
    /// deadline clock starts now.
    pub fn new(budget: RunBudget) -> Self {
        Guard::with_cancel(budget, CancelToken::new())
    }

    /// A guard sharing an external cancellation token.
    pub fn with_cancel(budget: RunBudget, cancel: CancelToken) -> Self {
        Guard {
            budget,
            cancel,
            start: now(),
            merge_steps: AtomicU64::new(0),
            forced: None,
        }
    }

    /// A guard that can never trip on its own (no budget, fresh token).
    pub fn unlimited() -> Self {
        Guard::new(RunBudget::unlimited())
    }

    /// **Fault injection**: force a [`TripReason::Injected`] trip the
    /// first time the pipeline checks in at `phase` (a checkpoint at that
    /// phase boundary, or any merge tick when `phase` is
    /// [`Phase::Agglomerate`]). Deterministic by construction — no timing
    /// races — which is what the chaos suite needs to drive every
    /// degradation path.
    pub fn inject_trip_at(mut self, phase: Phase) -> Self {
        self.forced = Some((phase, TripReason::Injected));
        self
    }

    /// The budget in force.
    pub fn budget(&self) -> &RunBudget {
        &self.budget
    }

    /// The cancellation token (clone it into other threads to cancel).
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Wall time since the guard was created.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Merge steps ticked so far.
    pub fn merge_steps(&self) -> u64 {
        self.merge_steps.load(Ordering::Relaxed)
    }

    /// Phase-boundary check: consults the forced trip, the cancellation
    /// token, the deadline and the memory ceiling (read from `observer`'s
    /// gauges). Returns the trip, if any. Called by the pipeline at each
    /// of the six contract-instrumented phase boundaries, and polled
    /// concurrently by the link-kernel workers every few rows — the
    /// check is read-only over atomics (plus an occasional clock read),
    /// so it is safe and cheap from any thread.
    pub fn checkpoint(&self, phase: Phase, observer: &Observer) -> Option<Trip> {
        if let Some((at, reason)) = self.forced {
            if at == phase {
                return Some(Trip { reason, phase });
            }
        }
        if self.cancel.is_cancelled() {
            return Some(Trip {
                reason: TripReason::Cancelled,
                phase,
            });
        }
        if let Some(deadline) = self.budget.deadline {
            if self.start.elapsed() >= deadline {
                return Some(Trip {
                    reason: TripReason::Deadline {
                        limit_secs: deadline.as_secs_f64(),
                    },
                    phase,
                });
            }
        }
        if let Some(limit) = self.budget.max_memory_bytes {
            let observed = observer.memory().snapshot().tracked_total();
            if observed > limit {
                return Some(Trip {
                    reason: TripReason::MemoryBudget {
                        limit_bytes: limit,
                        observed_bytes: observed,
                    },
                    phase,
                });
            }
        }
        None
    }

    /// Merge-loop check, called once per prospective merge step. Counts
    /// the step and consults the step budget and cancellation every tick;
    /// the deadline is sampled every [`DEADLINE_STRIDE`] ticks (clock
    /// reads are too slow for the inner loop). Returns the trip, if any —
    /// in which case the step was *not* consumed.
    pub fn merge_tick(&self) -> Option<Trip> {
        let phase = Phase::Agglomerate;
        if let Some((at, reason)) = self.forced {
            if at == phase {
                return Some(Trip { reason, phase });
            }
        }
        let done = self.merge_steps.load(Ordering::Relaxed);
        if let Some(limit) = self.budget.max_merge_steps {
            if done >= limit {
                return Some(Trip {
                    reason: TripReason::StepBudget { limit },
                    phase,
                });
            }
        }
        if self.cancel.is_cancelled() {
            return Some(Trip {
                reason: TripReason::Cancelled,
                phase,
            });
        }
        if done.is_multiple_of(DEADLINE_STRIDE) {
            if let Some(deadline) = self.budget.deadline {
                if self.start.elapsed() >= deadline {
                    return Some(Trip {
                        reason: TripReason::Deadline {
                            limit_secs: deadline.as_secs_f64(),
                        },
                        phase,
                    });
                }
            }
        }
        self.merge_steps.store(done + 1, Ordering::Relaxed);
        None
    }

    /// Builds the [`Degradation`] report for a trip observed by this
    /// guard.
    pub fn degradation(&self, trip: Trip) -> Degradation {
        Degradation {
            reason: trip.reason,
            phase: trip.phase,
            merges_completed: self.merge_steps(),
            elapsed_secs: self.start.elapsed().as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::MemoryGauges;

    #[test]
    fn cancel_token_round_trip() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        let clone = t.clone();
        clone.cancel();
        assert!(t.is_cancelled());
        t.cancel(); // idempotent
        assert!(t.is_cancelled());
    }

    #[test]
    fn unlimited_guard_never_trips() {
        let g = Guard::unlimited();
        let obs = Observer::new();
        for p in Phase::ALL {
            assert!(g.checkpoint(p, &obs).is_none());
        }
        for _ in 0..1000 {
            assert!(g.merge_tick().is_none());
        }
        assert_eq!(g.merge_steps(), 1000);
        assert!(g.budget().is_unlimited());
    }

    #[test]
    fn step_budget_trips_after_limit() {
        let g = Guard::new(RunBudget::unlimited().steps(3));
        assert!(g.merge_tick().is_none());
        assert!(g.merge_tick().is_none());
        assert!(g.merge_tick().is_none());
        let trip = g.merge_tick().expect("fourth tick must trip");
        assert_eq!(trip.reason, TripReason::StepBudget { limit: 3 });
        assert_eq!(trip.phase, Phase::Agglomerate);
        // The tripped step was not consumed.
        assert_eq!(g.merge_steps(), 3);
    }

    #[test]
    fn zero_deadline_trips_at_checkpoint() {
        let g = Guard::new(RunBudget::unlimited().wall(Duration::ZERO));
        let obs = Observer::new();
        let trip = g.checkpoint(Phase::Sample, &obs).expect("must trip");
        assert!(matches!(trip.reason, TripReason::Deadline { .. }));
        // The merge loop samples the deadline on its first tick too.
        assert!(g.merge_tick().is_some());
    }

    #[test]
    fn memory_budget_reads_observer_gauges() {
        let g = Guard::new(RunBudget::unlimited().memory(100));
        let obs = Observer::new();
        assert!(g.checkpoint(Phase::Links, &obs).is_none());
        MemoryGauges::observe(&obs.memory().link_table, 500);
        let trip = g.checkpoint(Phase::Links, &obs).expect("must trip");
        assert_eq!(
            trip.reason,
            TripReason::MemoryBudget {
                limit_bytes: 100,
                observed_bytes: 500
            }
        );
    }

    #[test]
    fn cancellation_trips_checkpoints_and_ticks() {
        let g = Guard::unlimited();
        g.cancel_token().cancel();
        let obs = Observer::new();
        assert_eq!(
            g.checkpoint(Phase::Neighbors, &obs).map(|t| t.reason),
            Some(TripReason::Cancelled)
        );
        assert_eq!(
            g.merge_tick().map(|t| t.reason),
            Some(TripReason::Cancelled)
        );
    }

    #[test]
    fn injected_trip_fires_only_at_its_phase() {
        let g = Guard::unlimited().inject_trip_at(Phase::Links);
        let obs = Observer::new();
        assert!(g.checkpoint(Phase::Sample, &obs).is_none());
        assert!(g.checkpoint(Phase::Neighbors, &obs).is_none());
        let trip = g.checkpoint(Phase::Links, &obs).expect("must trip");
        assert_eq!(trip.reason, TripReason::Injected);
        // An agglomerate injection fires on merge ticks instead.
        let g = Guard::unlimited().inject_trip_at(Phase::Agglomerate);
        assert_eq!(g.merge_tick().map(|t| t.reason), Some(TripReason::Injected));
    }

    #[test]
    fn degradation_report_and_json() {
        let g = Guard::new(RunBudget::unlimited().steps(2));
        assert!(g.merge_tick().is_none());
        assert!(g.merge_tick().is_none());
        let trip = g.merge_tick().expect("trip");
        let d = g.degradation(trip);
        assert_eq!(d.merges_completed, 2);
        assert_eq!(d.phase, Phase::Agglomerate);
        assert!(d.to_string().contains("merge-step budget"));
        let json = d.to_json_fragment(false, 0);
        let v = crate::telemetry::json::Json::parse(&json).expect("valid JSON");
        assert_eq!(v.get("reason").unwrap().as_str(), Some("step-budget"));
        assert_eq!(v.get("phase").unwrap().as_str(), Some("agglomerate"));
        assert_eq!(v.get("merges_completed").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("step_limit").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn reason_names_are_stable() {
        assert_eq!(TripReason::Cancelled.name(), "cancelled");
        assert_eq!(TripReason::StepBudget { limit: 1 }.name(), "step-budget");
        assert_eq!(TripReason::Deadline { limit_secs: 1.0 }.name(), "deadline");
        assert_eq!(
            TripReason::MemoryBudget {
                limit_bytes: 1,
                observed_bytes: 2
            }
            .name(),
            "memory-budget"
        );
        assert_eq!(TripReason::Injected.name(), "injected");
    }

    #[test]
    fn budget_builder_composes() {
        let b = RunBudget::unlimited()
            .steps(10)
            .wall(Duration::from_secs(1))
            .memory(1 << 20);
        assert_eq!(b.max_merge_steps, Some(10));
        assert_eq!(b.deadline, Some(Duration::from_secs(1)));
        assert_eq!(b.max_memory_bytes, Some(1 << 20));
        assert!(!b.is_unlimited());
    }
}
