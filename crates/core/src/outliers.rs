//! Up-front outlier elimination (paper §4.3).
//!
//! "Since outliers are by definition points that are isolated, points with
//! very few or no neighbors can be discarded immediately after the
//! neighbor computation." This module implements that filter; the second
//! mechanism the paper describes — pruning small clusters once merging has
//! reduced the cluster count to a checkpoint — lives in
//! [`crate::agglomerate::PruneConfig`].

use crate::cast;
use crate::neighbors::NeighborGraph;
use crate::telemetry::{Observer, PipelineCounters};

/// Policy for the up-front neighbor-count filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NeighborFilter {
    /// Points with strictly fewer neighbors than this are flagged as
    /// outliers. `0` disables the filter.
    pub min_neighbors: usize,
}

impl NeighborFilter {
    /// Creates a filter flagging points with fewer than `min_neighbors`
    /// neighbors.
    pub fn new(min_neighbors: usize) -> Self {
        NeighborFilter { min_neighbors }
    }

    /// A disabled filter.
    pub fn disabled() -> Self {
        NeighborFilter { min_neighbors: 0 }
    }

    /// Returns `true` if the filter does nothing.
    pub fn is_disabled(&self) -> bool {
        self.min_neighbors == 0
    }

    /// Splits points into `(kept, outliers)` by degree in `graph`.
    /// Both lists are sorted ascending.
    pub fn split(&self, graph: &NeighborGraph) -> (Vec<usize>, Vec<usize>) {
        let mut kept = Vec::with_capacity(graph.len());
        let mut outliers = Vec::new();
        for i in 0..graph.len() {
            if graph.degree(i) < self.min_neighbors {
                outliers.push(i);
            } else {
                kept.push(i);
            }
        }
        (kept, outliers)
    }

    /// [`split`](Self::split) with telemetry: the number of dropped
    /// points flows into `observer`'s `outliers_filtered` counter.
    pub fn split_observed(
        &self,
        graph: &NeighborGraph,
        observer: &Observer,
    ) -> (Vec<usize>, Vec<usize>) {
        let (kept, outliers) = self.split(graph);
        PipelineCounters::add(
            &observer.counters().outliers_filtered,
            cast::usize_to_u64(outliers.len()),
        );
        (kept, outliers)
    }
}

impl Default for NeighborFilter {
    /// The default keeps points with at least one neighbor: fully isolated
    /// points can never gain links and only slow the merge phase down.
    fn default() -> Self {
        NeighborFilter { min_neighbors: 1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Transaction, TransactionSet};
    use crate::similarity::Jaccard;

    fn graph(transactions: Vec<Transaction>, theta: f64) -> NeighborGraph {
        let ts: TransactionSet = transactions.into_iter().collect();
        NeighborGraph::compute(&ts, &Jaccard, theta, 1).unwrap()
    }

    #[test]
    fn disabled_filter_keeps_everything() {
        let g = graph(vec![Transaction::new([0]), Transaction::new([99])], 0.5);
        let f = NeighborFilter::disabled();
        assert!(f.is_disabled());
        let (kept, out) = f.split(&g);
        assert_eq!(kept, vec![0, 1]);
        assert!(out.is_empty());
    }

    #[test]
    fn default_filter_drops_isolated_points() {
        let g = graph(
            vec![
                Transaction::new([0, 1]),
                Transaction::new([0, 1]),
                Transaction::new([50, 51]),
            ],
            0.9,
        );
        let (kept, out) = NeighborFilter::default().split(&g);
        assert_eq!(kept, vec![0, 1]);
        assert_eq!(out, vec![2]);
    }

    #[test]
    fn threshold_is_strict() {
        // Points 0,1,2 identical (degree 2); point 3 pairs with 4 (degree 1).
        let g = graph(
            vec![
                Transaction::new([0, 1]),
                Transaction::new([0, 1]),
                Transaction::new([0, 1]),
                Transaction::new([7, 8]),
                Transaction::new([7, 8]),
            ],
            0.9,
        );
        let (kept, out) = NeighborFilter::new(2).split(&g);
        assert_eq!(kept, vec![0, 1, 2]);
        assert_eq!(out, vec![3, 4]);
    }

    #[test]
    fn all_points_can_be_outliers() {
        let g = graph(vec![Transaction::new([0]), Transaction::new([99])], 0.5);
        let (kept, out) = NeighborFilter::new(1).split(&g);
        assert!(kept.is_empty());
        assert_eq!(out, vec![0, 1]);
    }
}
