//! Vendored deterministic pseudo-random number generation.
//!
//! The workspace must build with **no network access**, so instead of the
//! `rand` crate this module hand-rolls the two small, well-studied
//! generators the pipeline needs:
//!
//! * [`SplitMix64`] — Steele, Lea & Flood's 64-bit mixer. Statistically
//!   solid for its size and stateless-friendly; used here to expand a user
//!   seed into the larger xoshiro state (its intended role).
//! * [`Rng`] — Blackman & Vigna's **xoshiro256++**, the general-purpose
//!   stream generator behind sampling, representative selection, the
//!   synthetic dataset generators and the baseline initializers.
//!
//! Everything is deterministic given the seed, which the reproduction
//! relies on: every experiment takes `--seed` and must replay exactly.
//!
//! The API mirrors the subset of `rand` the repo used (`gen`, `gen_range`,
//! [`SliceRandom::shuffle`] / [`SliceRandom::partial_shuffle`]) so call
//! sites read the same as before the vendoring.

use std::ops::{Range, RangeInclusive};

use crate::cast;

/// SplitMix64: a tiny splittable generator used for state expansion.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ pseudo-random generator, seeded via [`SplitMix64`].
///
/// Not cryptographically secure — it drives sampling and synthetic data,
/// nothing adversarial.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut mix = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = mix.next_u64();
        }
        // All-zero state would be a fixed point; SplitMix64 cannot emit
        // four zeros in a row, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        Rng { s }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Next 32-bit output (upper half of the 64-bit stream).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        // rock-analyze: allow(core-bare-cast) — the upper 32 bits after the shift always fit in u32.
        (self.next_u64() >> 32) as u32
    }

    /// Generates a value of a primitive type with its natural uniform
    /// distribution (`f64` in `[0, 1)`, integers over their full range,
    /// `bool` fair). Mirrors `rand::Rng::gen`.
    #[inline]
    pub fn gen<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Uniform draw from a range; supports `Range<usize>`,
    /// `RangeInclusive<usize>`, `Range<u64>` and `Range<f64>`.
    ///
    /// # Panics
    /// Panics on an empty range, matching `rand`'s behavior.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Unbiased uniform integer in `[0, bound)` via Lemire's
    /// multiply-shift with rejection.
    #[inline]
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // 128-bit multiply-high; reject the biased low zone.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(bound);
            // rock-analyze: allow(core-bare-cast) — low 64-bit half of the 128-bit product; truncation is the point.
            let lo = m as u64;
            // rock-analyze: allow(core-bare-cast) — high 64-bit half of the 128-bit product; truncation is the point.
            let hi = (m >> 64) as u64;
            if lo >= threshold {
                return hi;
            }
        }
    }
}

/// Types producible directly from the generator (see [`Rng::gen`]).
pub trait FromRng {
    /// Draws one value from `rng`.
    fn from_rng(rng: &mut Rng) -> Self;
}

impl FromRng for u64 {
    #[inline]
    fn from_rng(rng: &mut Rng) -> Self {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    #[inline]
    fn from_rng(rng: &mut Rng) -> Self {
        rng.next_u32()
    }
}

impl FromRng for bool {
    #[inline]
    fn from_rng(rng: &mut Rng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRng for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    #[inline]
    fn from_rng(rng: &mut Rng) -> Self {
        cast::u64_to_f64(rng.next_u64() >> 11) * (1.0 / cast::u64_to_f64(1u64 << 53))
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws uniformly from the range.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

impl SampleRange for Range<usize> {
    type Output = usize;
    #[inline]
    fn sample(self, rng: &mut Rng) -> usize {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + cast::u64_to_usize(rng.bounded_u64(cast::usize_to_u64(self.end - self.start)))
    }
}

impl SampleRange for RangeInclusive<usize> {
    type Output = usize;
    #[inline]
    fn sample(self, rng: &mut Rng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        let span = cast::usize_to_u64(hi - lo);
        if span == u64::MAX {
            return cast::u64_to_usize(rng.next_u64());
        }
        lo + cast::u64_to_usize(rng.bounded_u64(span + 1))
    }
}

impl SampleRange for Range<u64> {
    type Output = u64;
    #[inline]
    fn sample(self, rng: &mut Rng) -> u64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + rng.bounded_u64(self.end - self.start)
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + rng.gen::<f64>() * (self.end - self.start)
    }
}

/// Slice shuffling, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle of the whole slice.
    fn shuffle(&mut self, rng: &mut Rng);

    /// Partial Fisher–Yates: places `amount` uniformly chosen elements at
    /// the front and returns `(chosen, rest)`.
    fn partial_shuffle(
        &mut self,
        rng: &mut Rng,
        amount: usize,
    ) -> (&mut [Self::Item], &mut [Self::Item]);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle(&mut self, rng: &mut Rng) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }

    fn partial_shuffle(&mut self, rng: &mut Rng, amount: usize) -> (&mut [T], &mut [T]) {
        let amount = amount.min(self.len());
        for i in 0..amount {
            let j = rng.gen_range(i..self.len());
            self.swap(i, j);
        }
        self.split_at_mut(amount)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vectors() {
        // First output for seed 0 per the public-domain splitmix64.c
        // reference implementation.
        let mut sm = SplitMix64::new(0);
        let first = sm.next_u64();
        assert_eq!(first, 0xe220_a839_7b1d_cdaf);
    }

    #[test]
    fn streams_are_seed_deterministic() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        let mut c = Rng::seed_from_u64(43);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Rng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5..=5usize);
            assert_eq!(y, 5);
            let z = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&z));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng::seed_from_u64(0).gen_range(5..5usize);
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = Rng::seed_from_u64(11);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((9_000..=11_000).contains(&c), "bucket {i}: {c}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn partial_shuffle_front_is_uniform_subset() {
        let mut rng = Rng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        let (chosen, rest) = v.partial_shuffle(&mut rng, 10);
        assert_eq!(chosen.len(), 10);
        assert_eq!(rest.len(), 40);
        let mut all: Vec<usize> = chosen.iter().chain(rest.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<_>>());
        // Oversized request clamps.
        let (chosen, rest) = v.partial_shuffle(&mut rng, 500);
        assert_eq!(chosen.len(), 50);
        assert!(rest.is_empty());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..=32_000).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
