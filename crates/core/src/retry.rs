//! Bounded retry with deterministic backoff for disk I/O.
//!
//! The out-of-core pipeline touches disk constantly — cache chunk reads,
//! partial-output appends, checkpoint writes — and transient I/O faults
//! (NFS hiccups, the seeded `FaultInjector` in the chaos suite) must not
//! kill a million-row run. [`RetryPolicy::run`] wraps one fallible
//! operation in a bounded retry loop:
//!
//! - only [`RockError::Io`] is retried — malformed-data errors
//!   (`CacheInvalid`, `CheckpointInvalid`, …) are *deterministic* and
//!   retrying them would loop forever on the same bytes;
//! - the backoff schedule is a deterministic function of the attempt
//!   number (`base << attempt`, capped) — no clock reads, no jitter, so
//!   two runs of the same seed sleep the same schedule;
//! - the loop polls [`Guard::checkpoint`] before every attempt, so a
//!   cancellation, deadline or memory trip interrupts the retry cycle
//!   instead of sleeping through it (and the `rock-analyze` guard-loop
//!   lint can verify the poll statically);
//! - after the last attempt the original [`RockError::Io`] surfaces
//!   unchanged — exit code 3, exactly as if no retry layer existed.

use crate::error::{Result, RockError};
use crate::guard::{Guard, Trip};
use crate::telemetry::{Observer, Phase, PipelineCounters};

/// How an operation wrapped in [`RetryPolicy::run`] concluded.
#[derive(Debug, Clone, PartialEq)]
pub enum RetryOutcome<T> {
    /// The operation succeeded (possibly after retries).
    Done(T),
    /// The guard tripped (cancellation, deadline, memory, injection)
    /// before the operation could complete; the caller degrades.
    Tripped(Trip),
}

/// A bounded, deterministic retry schedule for disk operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try + retries). At least 1.
    pub max_attempts: u32,
    /// Backoff before retry `k` (1-based) is `base_delay_ms << (k - 1)`,
    /// capped at [`max_delay_ms`](Self::max_delay_ms). `0` disables
    /// sleeping entirely (the chaos suite's default — deterministic and
    /// fast).
    pub base_delay_ms: u64,
    /// Upper bound on a single backoff sleep.
    pub max_delay_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay_ms: 10,
            max_delay_ms: 500,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, no backoff).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_delay_ms: 0,
            max_delay_ms: 0,
        }
    }

    /// The backoff before 1-based retry `attempt`: `base << (attempt-1)`,
    /// saturating, capped at `max_delay_ms`. Pure — the schedule is the
    /// same every run.
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        if self.base_delay_ms == 0 {
            return 0;
        }
        let shift = attempt.saturating_sub(1).min(63);
        self.base_delay_ms
            .saturating_shl(shift)
            .min(self.max_delay_ms)
    }

    /// Runs `op` under this policy. Transient [`RockError::Io`] failures
    /// are retried up to [`max_attempts`](Self::max_attempts) total
    /// tries, sleeping the deterministic backoff between attempts and
    /// counting each retry into `observer`'s `io_retries`. Any other
    /// error — and an `Io` that survives every attempt — is returned
    /// as-is. The guard is polled before each attempt; a trip short-
    /// circuits to [`RetryOutcome::Tripped`].
    ///
    /// # Errors
    /// The last [`RockError::Io`] after exhausting all attempts, or any
    /// non-retriable error from `op`, unchanged.
    pub fn run<T>(
        &self,
        guard: &Guard,
        observer: &Observer,
        phase: Phase,
        mut op: impl FnMut() -> Result<T>,
    ) -> Result<RetryOutcome<T>> {
        let attempts = self.max_attempts.max(1);
        let mut attempt = 0u32;
        loop {
            if let Some(trip) = guard.checkpoint(phase, observer) {
                return Ok(RetryOutcome::Tripped(trip));
            }
            match op() {
                Ok(v) => return Ok(RetryOutcome::Done(v)),
                Err(e @ RockError::Io { .. }) => {
                    attempt += 1;
                    if attempt >= attempts {
                        return Err(e);
                    }
                    PipelineCounters::add(&observer.counters().io_retries, 1);
                    let delay = self.backoff_ms(attempt);
                    if delay > 0 {
                        std::thread::sleep(std::time::Duration::from_millis(delay));
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Saturating `u64 << u32` (stable Rust has no `saturating_shl`; a shift
/// past the value's leading zeros would overflow).
trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> u64 {
        if shift >= self.leading_zeros() {
            u64::MAX
        } else {
            self << shift
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guard::RunBudget;

    fn io_err() -> RockError {
        RockError::Io {
            path: "/tmp/x".to_owned(),
            message: "injected".to_owned(),
        }
    }

    #[test]
    fn succeeds_first_try_without_counting_retries() {
        let guard = Guard::unlimited();
        let obs = Observer::new();
        let policy = RetryPolicy::none();
        let out = policy
            .run(&guard, &obs, Phase::Labeling, || Ok(42))
            .unwrap();
        assert_eq!(out, RetryOutcome::Done(42));
        assert_eq!(obs.counters().snapshot().io_retries, 0);
    }

    #[test]
    fn retries_transient_io_then_succeeds() {
        let guard = Guard::unlimited();
        let obs = Observer::new();
        let policy = RetryPolicy {
            max_attempts: 4,
            base_delay_ms: 0,
            max_delay_ms: 0,
        };
        let mut failures_left = 2;
        let out = policy
            .run(&guard, &obs, Phase::Labeling, || {
                if failures_left > 0 {
                    failures_left -= 1;
                    Err(io_err())
                } else {
                    Ok("done")
                }
            })
            .unwrap();
        assert_eq!(out, RetryOutcome::Done("done"));
        assert_eq!(obs.counters().snapshot().io_retries, 2);
    }

    #[test]
    fn exhaustion_surfaces_the_io_error() {
        let guard = Guard::unlimited();
        let obs = Observer::new();
        let policy = RetryPolicy {
            max_attempts: 3,
            base_delay_ms: 0,
            max_delay_ms: 0,
        };
        let err = policy
            .run::<()>(&guard, &obs, Phase::Labeling, || Err(io_err()))
            .unwrap_err();
        assert!(matches!(err, RockError::Io { .. }));
        assert_eq!(err.exit_code(), 3);
        // 3 attempts = 2 counted retries.
        assert_eq!(obs.counters().snapshot().io_retries, 2);
    }

    #[test]
    fn non_io_errors_are_not_retried() {
        let guard = Guard::unlimited();
        let obs = Observer::new();
        let policy = RetryPolicy::default();
        let mut calls = 0;
        let err = policy
            .run::<()>(&guard, &obs, Phase::Labeling, || {
                calls += 1;
                Err(RockError::CheckpointInvalid {
                    message: "corrupt".to_owned(),
                })
            })
            .unwrap_err();
        assert!(matches!(err, RockError::CheckpointInvalid { .. }));
        assert_eq!(calls, 1);
        assert_eq!(obs.counters().snapshot().io_retries, 0);
    }

    #[test]
    fn guard_trip_interrupts_the_retry_cycle() {
        let guard = Guard::unlimited().inject_trip_at(Phase::Labeling);
        let obs = Observer::new();
        let mut calls = 0;
        let out = RetryPolicy::default()
            .run(&guard, &obs, Phase::Labeling, || {
                calls += 1;
                Ok(())
            })
            .unwrap();
        assert!(matches!(out, RetryOutcome::Tripped(_)));
        // The op never ran: the guard is polled before each attempt.
        assert_eq!(calls, 0);
    }

    #[test]
    fn cancellation_stops_retries_mid_cycle() {
        let guard = Guard::new(RunBudget::unlimited());
        let obs = Observer::new();
        let policy = RetryPolicy {
            max_attempts: 100,
            base_delay_ms: 0,
            max_delay_ms: 0,
        };
        let mut calls = 0;
        let out = policy
            .run::<()>(&guard, &obs, Phase::Labeling, || {
                calls += 1;
                if calls == 2 {
                    guard.cancel_token().cancel();
                }
                Err(io_err())
            })
            .unwrap();
        assert!(matches!(out, RetryOutcome::Tripped(_)));
        assert_eq!(calls, 2);
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_capped() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_delay_ms: 10,
            max_delay_ms: 100,
        };
        assert_eq!(p.backoff_ms(1), 10);
        assert_eq!(p.backoff_ms(2), 20);
        assert_eq!(p.backoff_ms(3), 40);
        assert_eq!(p.backoff_ms(4), 80);
        assert_eq!(p.backoff_ms(5), 100); // capped
        assert_eq!(p.backoff_ms(64), 100); // shift saturates, still capped
        let zero = RetryPolicy {
            base_delay_ms: 0,
            ..p
        };
        assert_eq!(zero.backoff_ms(9), 0);
    }
}
