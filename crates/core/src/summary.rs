//! Human-readable cluster summaries.
//!
//! The ROCK paper presents its clusters by their *characteristic items* —
//! the attribute values (or basket items) shared by most members (e.g.
//! "cluster of funds that went Up on the same days", "republicans voting
//! n on education spending"). [`ClusterSummary`] computes exactly that:
//! per-cluster item supports, rendered through the dataset's
//! [`Vocabulary`](crate::data::Vocabulary) when available.

use std::collections::HashMap;

use crate::cast;
use crate::data::TransactionSet;

/// One item with the fraction of cluster members containing it.
#[derive(Debug, Clone, PartialEq)]
pub struct ItemSupport {
    /// The item id.
    pub item: u32,
    /// Members containing the item.
    pub count: usize,
    /// `count / cluster size`.
    pub support: f64,
}

/// Characteristic-item summary of one cluster.
#[derive(Debug, Clone)]
pub struct ClusterSummary {
    /// Cluster size.
    pub size: usize,
    /// Items sorted by decreasing support (ties by item id).
    pub items: Vec<ItemSupport>,
}

impl ClusterSummary {
    /// Computes the summary of the cluster given by `members` (indices
    /// into `data`), keeping items with support at least `min_support`.
    pub fn compute(data: &TransactionSet, members: &[u32], min_support: f64) -> Self {
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for &p in members {
            if let Some(t) = data.transaction(cast::u32_to_usize(p)) {
                for &item in t.items() {
                    *counts.entry(item).or_insert(0) += 1;
                }
            }
        }
        let size = members.len();
        let mut items: Vec<ItemSupport> = counts
            .into_iter()
            .map(|(item, count)| ItemSupport {
                item,
                count,
                support: if size == 0 {
                    0.0
                } else {
                    cast::usize_to_f64(count) / cast::usize_to_f64(size)
                },
            })
            .filter(|s| s.support >= min_support)
            .collect();
        items.sort_by(|a, b| {
            b.support
                .total_cmp(&a.support)
                .then_with(|| a.item.cmp(&b.item))
        });
        ClusterSummary { size, items }
    }

    /// Computes summaries for every cluster of a clustering.
    pub fn compute_all(
        data: &TransactionSet,
        clusters: &[Vec<u32>],
        min_support: f64,
    ) -> Vec<ClusterSummary> {
        clusters
            .iter()
            .map(|members| ClusterSummary::compute(data, members, min_support))
            .collect()
    }

    /// The `top` most characteristic items.
    pub fn top(&self, top: usize) -> &[ItemSupport] {
        &self.items[..top.min(self.items.len())]
    }

    /// Renders the top items as `name(support)` strings, using the
    /// dataset's vocabulary when present.
    pub fn describe(&self, data: &TransactionSet, top: usize) -> String {
        self.top(top)
            .iter()
            .map(|s| {
                let name = match data.vocabulary() {
                    Some(v) => v.describe(crate::data::ItemId(s.item)),
                    None => format!("#{}", s.item),
                };
                format!("{name}({:.2})", s.support)
            })
            .collect::<Vec<_>>()
            .join(", ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{CategoricalTable, Schema, Transaction};

    fn data() -> TransactionSet {
        vec![
            Transaction::new([0, 1, 2]),
            Transaction::new([0, 1, 3]),
            Transaction::new([0, 1]),
            Transaction::new([9]),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn supports_are_fractions_of_cluster() {
        let d = data();
        let s = ClusterSummary::compute(&d, &[0, 1, 2], 0.0);
        assert_eq!(s.size, 3);
        let top = s.top(2);
        assert_eq!(top[0].item, 0);
        assert_eq!(top[0].count, 3);
        assert!((top[0].support - 1.0).abs() < 1e-12);
        assert_eq!(top[1].item, 1);
        // Items 2 and 3 each have support 1/3.
        assert_eq!(s.items.len(), 4);
    }

    #[test]
    fn min_support_filters() {
        let d = data();
        let s = ClusterSummary::compute(&d, &[0, 1, 2], 0.5);
        let items: Vec<u32> = s.items.iter().map(|i| i.item).collect();
        assert_eq!(items, vec![0, 1]);
    }

    #[test]
    fn empty_cluster() {
        let d = data();
        let s = ClusterSummary::compute(&d, &[], 0.0);
        assert_eq!(s.size, 0);
        assert!(s.items.is_empty());
        assert_eq!(s.describe(&d, 3), "");
    }

    #[test]
    fn compute_all_matches_per_cluster() {
        let d = data();
        let all = ClusterSummary::compute_all(&d, &[vec![0, 1, 2], vec![3]], 0.0);
        assert_eq!(all.len(), 2);
        assert_eq!(all[1].size, 1);
        assert_eq!(all[1].items[0].item, 9);
    }

    #[test]
    fn describe_uses_vocabulary() {
        let mut t = CategoricalTable::new(Schema::with_names(["vote"]));
        t.push_textual(&["y"], "?").unwrap();
        t.push_textual(&["y"], "?").unwrap();
        let ts = t.to_transactions();
        let s = ClusterSummary::compute(&ts, &[0, 1], 0.0);
        assert_eq!(s.describe(&ts, 1), "a0=y(1.00)");
        // Without vocabulary: raw ids.
        let raw = data();
        let s = ClusterSummary::compute(&raw, &[3], 0.0);
        assert_eq!(s.describe(&raw, 1), "#9(1.00)");
    }

    #[test]
    fn top_is_clamped() {
        let d = data();
        let s = ClusterSummary::compute(&d, &[3], 0.0);
        assert_eq!(s.top(10).len(), 1);
    }
}
