//! Structured event tracing — the **rock-trace/v1** NDJSON stream.
//!
//! `rock-metrics/v1` answers *which phase* was slow; this module answers
//! *which worker, merge batch or request*. A [`Tracer`] (one per
//! [`Observer`](super::Observer), disabled by default) emits a versioned
//! NDJSON event stream:
//!
//! * a **meta** line first: `{"type":"meta","schema":"rock-trace/v1",...}`,
//! * one **span** line per completed unit of work (phase, worker shard,
//!   merge batch, pair-scan chunk, labeling pass, serve request) carrying
//!   monotonic begin timestamp + duration in nanoseconds, a logical
//!   worker id, the owning pipeline phase and typed payload fields
//!   (rows processed, merge goodness, shard ranges, request ids),
//! * **hist** lines at stream end: log₂-bucketed mergeable
//!   [`LatencyHistogram`]s (p50/p90/p99/max) for the hot units.
//!
//! Design constraints, in order:
//!
//! 1. **Near-zero cost when disabled.** [`Tracer::begin`] is a single
//!    relaxed atomic load returning `None`; no clock is read, nothing
//!    allocates, and every instrumentation site is `if let Some(..)`
//!    guarded.
//! 2. **No new wall-clock sites.** All timestamps flow through
//!    [`crate::guard`]'s audited monotonic clock (`monotonic_now`), so
//!    tracing can never influence which merge is chosen.
//! 3. **Canonical serialization.** [`TraceRecord::to_line`] and
//!    [`TraceRecord::parse_line`] are exact inverses on emitted lines:
//!    emit → parse → re-emit is byte-identical, which `rock-trace
//!    --check` enforces on every trace the integration suites produce.
//!    Numbers with an integral value in `[0, 2^53]` are canonicalized to
//!    integer tokens; everything else uses [`json::number`].
//!
//! Span lines are written on span *end* (one buffered write under one
//! mutex acquisition per span), so file order is completion order; the
//! begin timestamp orders spans for timeline rendering.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use super::json::{self, Json, JsonObj};
use super::Phase;
use crate::cast;
use crate::error::RockError;

/// Schema identifier on the leading meta line of every trace stream.
pub const TRACE_SCHEMA: &str = "rock-trace/v1";

/// Largest u64 exactly representable as `f64`; integral payload values up
/// to this bound are canonicalized to integer tokens.
const MAX_EXACT_F64: f64 = 9_007_199_254_740_992.0; // 2^53

/// Formats a payload number canonically: integral values in `[0, 2^53]`
/// as integer tokens, everything else via [`json::number`].
fn canon_num(v: f64) -> String {
    if v.is_finite() && v >= 0.0 && v.fract() == 0.0 && v <= MAX_EXACT_F64 {
        format!("{}", cast::f64_to_u64(v))
    } else {
        json::number(v)
    }
}

// ───────────────────────── latency histograms ──────────────────────────

/// Number of log₂ buckets: bucket 0 holds the value 0, bucket `i ≥ 1`
/// holds values in `[2^(i−1), 2^i)`.
const BUCKETS: usize = 65;

/// A log₂-bucketed, mergeable latency histogram.
///
/// Values are unitless `u64`s (the pipeline records nanoseconds). The
/// bucket scheme trades ≤ 2× relative resolution for O(1) recording,
/// fixed 65-slot storage and lossless merging — the aggregation the
/// k-histograms line of work motivates for cheap summaries. Percentiles
/// report the **upper bound** of the bucket containing the requested
/// rank, clamped to the observed maximum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// The bucket index holding `v`: 0 for 0, else `64 − leading_zeros`.
    fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            cast::u32_to_usize(u64::BITS - v.leading_zeros())
        }
    }

    /// Inclusive upper bound of bucket `i` (`2^i − 1`, saturating).
    fn bucket_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Adds every sample of `other` into `self` (lossless: buckets align).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at quantile `q ∈ [0, 1]`: the upper bound of the bucket
    /// containing the nearest rank, clamped to the observed maximum.
    /// Returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = cast::f64_to_u64((q.clamp(0.0, 1.0) * cast::u64_to_f64(self.count)).ceil())
            .clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Sparse `(bucket_index, count)` pairs, ascending, zeros omitted.
    pub fn sparse_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (cast::usize_to_u64(i), c))
            .collect()
    }

    /// Rebuilds a histogram from its serialized parts (the inverse of
    /// [`sparse_buckets`](Self::sparse_buckets) plus `sum`/`max`).
    ///
    /// # Errors
    /// Returns a message when a bucket index exceeds the fixed range.
    pub fn from_parts(buckets: &[(u64, u64)], sum: u64, max: u64) -> Result<Self, String> {
        let mut h = LatencyHistogram::new();
        for &(i, c) in buckets {
            let idx = cast::u64_to_usize(i);
            if idx >= BUCKETS {
                return Err(format!(
                    "bucket index {i} out of range (max {})",
                    BUCKETS - 1
                ));
            }
            h.buckets[idx] += c;
            h.count += c;
        }
        h.sum = sum;
        h.max = max;
        Ok(h)
    }
}

// ─────────────────────────── trace records ─────────────────────────────

/// A typed payload value on a span record.
#[derive(Debug, Clone, PartialEq)]
pub enum PayloadValue {
    /// A number (canonicalized: integral values in `[0, 2^53]` emit as
    /// integer tokens).
    Num(f64),
    /// A string.
    Str(String),
}

/// Ordered payload fields attached to a span, built fluently:
/// `Payload::new().num("rows", 128.0).str("kind", "shard")`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Payload {
    fields: Vec<(String, PayloadValue)>,
}

impl Payload {
    /// An empty payload.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a numeric field.
    #[must_use]
    pub fn num(mut self, key: &str, v: f64) -> Self {
        self.fields.push((key.to_owned(), PayloadValue::Num(v)));
        self
    }

    /// Appends a numeric field from a `u64` count.
    #[must_use]
    pub fn count(self, key: &str, v: u64) -> Self {
        self.num(key, cast::u64_to_f64(v.min(1u64 << f64::MANTISSA_DIGITS)))
    }

    /// Appends a string field.
    #[must_use]
    pub fn str(mut self, key: &str, v: &str) -> Self {
        self.fields
            .push((key.to_owned(), PayloadValue::Str(v.to_owned())));
        self
    }

    /// The fields, in insertion order.
    pub fn fields(&self) -> &[(String, PayloadValue)] {
        &self.fields
    }
}

/// One completed span: a unit of work with monotonic begin timestamp and
/// duration (nanoseconds since the trace epoch).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span id, unique within the stream, assigned at span begin.
    pub id: u64,
    /// Enclosing span id (0 = root; serialized only when nonzero).
    pub parent: u64,
    /// Span name, dotted by convention (`links.shard`, `serve.request`).
    pub name: String,
    /// Owning pipeline phase, when the span belongs to one.
    pub phase: Option<String>,
    /// Logical worker id (shard index; 0 for the coordinating thread).
    pub worker: u64,
    /// Begin timestamp, nanoseconds since the trace epoch (monotonic).
    pub ts_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Typed payload fields, in emission order.
    pub payload: Vec<(String, PayloadValue)>,
}

/// One serialized histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistRecord {
    /// Histogram name (`links.shard_ns`, `serve.request_ns`, ...).
    pub name: String,
    /// Logical worker id, when the histogram is per-worker.
    pub worker: Option<u64>,
    /// Unit of the recorded values (`"ns"` for every built-in site).
    pub unit: String,
    /// The histogram itself.
    pub hist: LatencyHistogram,
}

/// One line of a rock-trace/v1 stream.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceRecord {
    /// The leading stream header.
    Meta {
        /// Schema identifier (always [`TRACE_SCHEMA`] for this version).
        schema: String,
        /// Emitting program (`"rock-cluster"`, `"rock-serve"`, ...).
        source: String,
    },
    /// A completed span.
    Span(SpanRecord),
    /// A latency histogram (boxed: the bucket array dwarfs the other
    /// variants).
    Hist(Box<HistRecord>),
}

/// Structural keys of span lines; everything else is payload.
const SPAN_KEYS: [&str; 8] = [
    "type", "id", "parent", "name", "phase", "worker", "ts_ns", "dur_ns",
];

impl TraceRecord {
    /// Serializes to the canonical single-line form (no newline).
    pub fn to_line(&self) -> String {
        match self {
            TraceRecord::Meta { schema, source } => {
                let mut o = JsonObj::new(false, 0);
                o.str("type", "meta")
                    .str("schema", schema)
                    .str("source", source);
                o.end()
            }
            TraceRecord::Span(s) => {
                let mut o = JsonObj::new(false, 0);
                o.str("type", "span").num_u64("id", s.id);
                if s.parent != 0 {
                    o.num_u64("parent", s.parent);
                }
                o.str("name", &s.name);
                if let Some(phase) = &s.phase {
                    o.str("phase", phase);
                }
                o.num_u64("worker", s.worker)
                    .num_u64("ts_ns", s.ts_ns)
                    .num_u64("dur_ns", s.dur_ns);
                for (k, v) in &s.payload {
                    match v {
                        PayloadValue::Num(x) => o.raw(k, &canon_num(*x)),
                        PayloadValue::Str(x) => o.str(k, x),
                    };
                }
                o.end()
            }
            TraceRecord::Hist(h) => {
                let mut o = JsonObj::new(false, 0);
                o.str("type", "hist").str("name", &h.name);
                if let Some(w) = h.worker {
                    o.num_u64("worker", w);
                }
                o.str("unit", &h.unit)
                    .num_u64("count", h.hist.count())
                    .num_u64("sum", h.hist.sum())
                    .num_u64("max", h.hist.max());
                let mut buckets = String::from("[");
                for (i, (idx, c)) in h.hist.sparse_buckets().iter().enumerate() {
                    if i > 0 {
                        buckets.push(',');
                    }
                    buckets.push_str(&format!("[{idx},{c}]"));
                }
                buckets.push(']');
                o.raw("buckets", &buckets);
                o.end()
            }
        }
    }

    /// Parses one line. Exact inverse of [`to_line`](Self::to_line) on
    /// canonically emitted lines.
    ///
    /// # Errors
    /// Returns a human-readable message on malformed JSON, an unknown
    /// record type, or missing/ill-typed structural fields.
    pub fn parse_line(line: &str) -> Result<TraceRecord, String> {
        let doc = Json::parse(line)?;
        let fields = doc.fields().ok_or("trace line is not a JSON object")?;
        let get_str = |key: &str| -> Result<String, String> {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("missing or non-string {key:?}"))
        };
        let get_u64 = |key: &str| -> Result<u64, String> {
            doc.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing or non-integer {key:?}"))
        };
        match get_str("type")?.as_str() {
            "meta" => Ok(TraceRecord::Meta {
                schema: get_str("schema")?,
                source: get_str("source")?,
            }),
            "span" => {
                let mut payload = Vec::new();
                for (k, v) in fields {
                    if SPAN_KEYS.contains(&k.as_str()) {
                        continue;
                    }
                    let value = match v {
                        Json::Num(x) => PayloadValue::Num(*x),
                        Json::Str(s) => PayloadValue::Str(s.clone()),
                        other => {
                            return Err(format!("payload {k:?} has unsupported type {other:?}"))
                        }
                    };
                    payload.push((k.clone(), value));
                }
                Ok(TraceRecord::Span(SpanRecord {
                    id: get_u64("id")?,
                    parent: doc.get("parent").and_then(Json::as_u64).unwrap_or(0),
                    name: get_str("name")?,
                    phase: doc.get("phase").and_then(Json::as_str).map(str::to_owned),
                    worker: get_u64("worker")?,
                    ts_ns: get_u64("ts_ns")?,
                    dur_ns: get_u64("dur_ns")?,
                    payload,
                }))
            }
            "hist" => {
                let buckets_json = doc.get("buckets").ok_or("missing \"buckets\"")?;
                let Json::Arr(items) = buckets_json else {
                    return Err("\"buckets\" is not an array".to_owned());
                };
                let mut buckets = Vec::with_capacity(items.len());
                for item in items {
                    let pair = match item {
                        Json::Arr(p) if p.len() == 2 => match (p[0].as_u64(), p[1].as_u64()) {
                            (Some(i), Some(c)) => (i, c),
                            _ => return Err("bucket pair is not [u64, u64]".to_owned()),
                        },
                        _ => return Err("bucket entry is not a 2-element array".to_owned()),
                    };
                    buckets.push(pair);
                }
                let hist =
                    LatencyHistogram::from_parts(&buckets, get_u64("sum")?, get_u64("max")?)?;
                if hist.count() != get_u64("count")? {
                    return Err("hist \"count\" disagrees with bucket totals".to_owned());
                }
                Ok(TraceRecord::Hist(Box::new(HistRecord {
                    name: get_str("name")?,
                    worker: doc.get("worker").and_then(Json::as_u64),
                    unit: get_str("unit")?,
                    hist,
                })))
            }
            other => Err(format!("unknown trace record type {other:?}")),
        }
    }
}

// ─────────────────────────── the tracer ────────────────────────────────

/// A begun span: id, restore-parent and start instant. Returned by
/// [`Tracer::begin`]/[`Tracer::begin_scope`], consumed by
/// [`Tracer::end`]/[`Tracer::end_scope`].
#[derive(Debug)]
pub struct SpanStart {
    id: u64,
    prev_parent: u64,
    start: Instant,
}

impl SpanStart {
    /// The id assigned to this span (stable for the stream's lifetime).
    pub fn id(&self) -> u64 {
        self.id
    }
}

/// A monotonic lap timer handed out by [`Tracer::stopwatch`] for
/// recording successive batch durations into a [`LatencyHistogram`].
#[derive(Debug)]
pub struct Stopwatch {
    last: Instant,
}

impl Stopwatch {
    /// Nanoseconds since the previous lap (or since creation), resetting
    /// the lap base to now.
    pub fn lap_ns(&mut self) -> u64 {
        let now = crate::guard::monotonic_now();
        let d = now.saturating_duration_since(self.last);
        self.last = now;
        u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Mutable stream state, present only while tracing is active.
struct TraceState {
    epoch: Instant,
    out: std::io::BufWriter<std::fs::File>,
    path: PathBuf,
    /// First write error, surfaced by [`Tracer::finish`].
    error: Option<String>,
}

/// The rock-trace/v1 emitter. One lives inside every
/// [`Observer`](super::Observer); it stays disabled (a single relaxed
/// atomic load per [`begin`](Self::begin)) until
/// [`start_to_path`](Self::start_to_path) attaches an output file.
#[derive(Default)]
pub struct Tracer {
    enabled: AtomicBool,
    next_id: AtomicU64,
    parent: AtomicU64,
    state: Mutex<Option<TraceState>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// Locks the state mutex, recovering from poison: a panicking worker
/// must not take the trace stream down with it.
fn lock_state(tracer: &Tracer) -> std::sync::MutexGuard<'_, Option<TraceState>> {
    tracer
        .state
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Tracer {
    /// A disabled tracer.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` while a stream is attached.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Attaches an output file, writes the meta line and enables the
    /// tracer. The epoch is read from the audited monotonic clock in
    /// [`crate::guard`] — tracing adds no wall-clock site of its own.
    ///
    /// # Errors
    /// [`RockError::Io`] when the file cannot be created or written.
    pub fn start_to_path(&self, path: &Path, source: &str) -> crate::Result<()> {
        let io_err = |e: &std::io::Error| RockError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        };
        let file = std::fs::File::create(path).map_err(|e| io_err(&e))?;
        let mut out = std::io::BufWriter::new(file);
        let meta = TraceRecord::Meta {
            schema: TRACE_SCHEMA.to_owned(),
            source: source.to_owned(),
        };
        writeln!(out, "{}", meta.to_line()).map_err(|e| io_err(&e))?;
        let mut state = lock_state(self);
        *state = Some(TraceState {
            epoch: crate::guard::monotonic_now(),
            out,
            path: path.to_path_buf(),
            error: None,
        });
        self.next_id.store(1, Ordering::Relaxed);
        self.parent.store(0, Ordering::Relaxed);
        self.enabled.store(true, Ordering::Relaxed);
        Ok(())
    }

    /// Begins a span. `None` when disabled — the only cost on the
    /// disabled path is one relaxed atomic load.
    #[inline]
    pub fn begin(&self) -> Option<SpanStart> {
        if !self.is_enabled() {
            return None;
        }
        Some(SpanStart {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            prev_parent: self.parent.load(Ordering::Relaxed),
            start: crate::guard::monotonic_now(),
        })
    }

    /// Begins a *scope* span: until the matching
    /// [`end_scope`](Self::end_scope), spans begun on any thread record
    /// this span as their parent. Used for the strictly sequential
    /// pipeline phase spans.
    pub fn begin_scope(&self) -> Option<SpanStart> {
        let span = self.begin()?;
        self.parent.store(span.id, Ordering::Relaxed);
        Some(span)
    }

    /// Ends a span and writes its record.
    pub fn end(
        &self,
        span: SpanStart,
        name: &str,
        phase: Option<Phase>,
        worker: u64,
        payload: Payload,
    ) {
        let end = crate::guard::monotonic_now();
        let dur = end.saturating_duration_since(span.start);
        let mut guard = lock_state(self);
        let Some(state) = guard.as_mut() else {
            return; // finished concurrently; drop the record
        };
        let ts = span.start.saturating_duration_since(state.epoch);
        let record = TraceRecord::Span(SpanRecord {
            id: span.id,
            parent: span.prev_parent,
            name: name.to_owned(),
            phase: phase.map(|p| p.name().to_owned()),
            worker,
            ts_ns: u64::try_from(ts.as_nanos()).unwrap_or(u64::MAX),
            dur_ns: u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX),
            payload: payload.fields().to_vec(),
        });
        Self::write_record(state, &record);
    }

    /// Ends a scope span: restores the previous parent, then writes the
    /// record like [`end`](Self::end) (worker 0, the coordinator).
    pub fn end_scope(&self, span: SpanStart, name: &str, phase: Option<Phase>, payload: Payload) {
        self.parent.store(span.prev_parent, Ordering::Relaxed);
        self.end(span, name, phase, 0, payload);
    }

    /// Elapsed nanoseconds on `span` so far (for histogram recording at
    /// the same instant the span ends).
    pub fn elapsed_ns(span: &SpanStart) -> u64 {
        let d = crate::guard::monotonic_now().saturating_duration_since(span.start);
        u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
    }

    /// A lap timer when tracing is enabled, `None` otherwise — the
    /// disabled path costs one relaxed atomic load and reads no clock.
    /// Instrumentation sites outside this (wall-clock-exempt) module use
    /// it to feed [`LatencyHistogram`]s without a clock site of their own.
    pub fn stopwatch(&self) -> Option<Stopwatch> {
        self.is_enabled().then(|| Stopwatch {
            last: crate::guard::monotonic_now(),
        })
    }

    /// Writes a histogram record.
    pub fn record_hist(&self, name: &str, worker: Option<u64>, hist: &LatencyHistogram) {
        if !self.is_enabled() {
            return;
        }
        let mut guard = lock_state(self);
        let Some(state) = guard.as_mut() else {
            return;
        };
        let record = TraceRecord::Hist(Box::new(HistRecord {
            name: name.to_owned(),
            worker,
            unit: "ns".to_owned(),
            hist: hist.clone(),
        }));
        Self::write_record(state, &record);
    }

    fn write_record(state: &mut TraceState, record: &TraceRecord) {
        if state.error.is_some() {
            return;
        }
        if let Err(e) = writeln!(state.out, "{}", record.to_line()) {
            state.error = Some(e.to_string());
        }
    }

    /// Flushes and detaches the stream. Idempotent: returns `Ok(None)`
    /// when no stream was attached.
    ///
    /// # Errors
    /// [`RockError::Io`] when any buffered write (or the final flush)
    /// failed; the path is still detached.
    pub fn finish(&self) -> crate::Result<Option<PathBuf>> {
        self.enabled.store(false, Ordering::Relaxed);
        let taken = lock_state(self).take();
        let Some(mut state) = taken else {
            return Ok(None);
        };
        let flush = state.out.flush();
        let path = state.path;
        if let Some(message) = state.error {
            return Err(RockError::Io {
                path: path.display().to_string(),
                message,
            });
        }
        flush.map_err(|e| RockError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        Ok(Some(path))
    }
}

// ─────────────────────────── validation ────────────────────────────────

/// Summary statistics returned by [`validate`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Source declared by the meta line.
    pub source: String,
    /// Number of span records.
    pub spans: usize,
    /// Number of histogram records.
    pub hists: usize,
}

/// Validates a complete rock-trace/v1 document: leading meta line with
/// the right schema, every line parseable, and every line byte-identical
/// under parse → re-emit (the canonical-form contract `rock-trace
/// --check` enforces).
///
/// # Errors
/// Returns `"line N: reason"` for the first violation.
pub fn validate(text: &str) -> Result<TraceSummary, String> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (first_no, first) = lines.next().ok_or("empty trace (no meta line)")?;
    let meta = TraceRecord::parse_line(first).map_err(|e| format!("line {}: {e}", first_no + 1))?;
    let TraceRecord::Meta { schema, source } = &meta else {
        return Err(format!("line {}: first record is not meta", first_no + 1));
    };
    if schema != TRACE_SCHEMA {
        return Err(format!(
            "line {}: schema {schema:?}, expected {TRACE_SCHEMA:?}",
            first_no + 1
        ));
    }
    if meta.to_line() != first {
        return Err(format!("line {}: not in canonical form", first_no + 1));
    }
    let mut summary = TraceSummary {
        source: source.clone(),
        spans: 0,
        hists: 0,
    };
    for (no, line) in lines {
        let record = TraceRecord::parse_line(line).map_err(|e| format!("line {}: {e}", no + 1))?;
        if record.to_line() != line {
            return Err(format!("line {}: not in canonical form", no + 1));
        }
        match record {
            TraceRecord::Meta { .. } => {
                return Err(format!("line {}: duplicate meta record", no + 1))
            }
            TraceRecord::Span(_) => summary.spans += 1,
            TraceRecord::Hist(_) => summary.hists += 1,
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_cover_the_range() {
        assert_eq!(LatencyHistogram::bucket_index(0), 0);
        assert_eq!(LatencyHistogram::bucket_index(1), 1);
        assert_eq!(LatencyHistogram::bucket_index(2), 2);
        assert_eq!(LatencyHistogram::bucket_index(3), 2);
        assert_eq!(LatencyHistogram::bucket_index(4), 3);
        assert_eq!(LatencyHistogram::bucket_index(u64::MAX), 64);
        assert_eq!(LatencyHistogram::bucket_bound(0), 0);
        assert_eq!(LatencyHistogram::bucket_bound(3), 7);
        assert_eq!(LatencyHistogram::bucket_bound(64), u64::MAX);
    }

    #[test]
    fn histogram_percentiles_and_merge() {
        let mut h = LatencyHistogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.max(), 100);
        // p50 rank 50 lands in bucket [32,64) → bound 63.
        assert_eq!(h.percentile(0.50), 63);
        // p99 and p100 land in the top bucket, clamped to max.
        assert_eq!(h.percentile(0.99), 100);
        assert_eq!(h.percentile(1.0), 100);
        assert_eq!(LatencyHistogram::new().percentile(0.5), 0);

        let mut a = LatencyHistogram::new();
        a.record(5);
        let mut b = LatencyHistogram::new();
        b.record(500);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.sum(), 505);
        assert_eq!(a.max(), 500);
    }

    #[test]
    fn histogram_round_trips_through_parts() {
        let mut h = LatencyHistogram::new();
        for v in [0u64, 1, 7, 900, 900, u64::MAX] {
            h.record(v);
        }
        let rebuilt = LatencyHistogram::from_parts(&h.sparse_buckets(), h.sum(), h.max()).unwrap();
        assert_eq!(rebuilt, h);
        assert!(LatencyHistogram::from_parts(&[(65, 1)], 0, 0).is_err());
    }

    #[test]
    fn records_round_trip_byte_identically() {
        let mut hist = LatencyHistogram::new();
        hist.record(100);
        hist.record(90_000);
        let records = vec![
            TraceRecord::Meta {
                schema: TRACE_SCHEMA.to_owned(),
                source: "unit".to_owned(),
            },
            TraceRecord::Span(SpanRecord {
                id: 3,
                parent: 1,
                name: "links.shard".to_owned(),
                phase: Some("links".to_owned()),
                worker: 2,
                ts_ns: 1_000,
                dur_ns: 2_500,
                payload: vec![
                    ("rows".to_owned(), PayloadValue::Num(128.0)),
                    ("goodness".to_owned(), PayloadValue::Num(0.25)),
                    ("kind".to_owned(), PayloadValue::Str("shard".to_owned())),
                ],
            }),
            TraceRecord::Span(SpanRecord {
                id: 4,
                parent: 0,
                name: "serve.request".to_owned(),
                phase: None,
                worker: 0,
                ts_ns: 5,
                dur_ns: 6,
                payload: Vec::new(),
            }),
            TraceRecord::Hist(Box::new(HistRecord {
                name: "links.shard_ns".to_owned(),
                worker: Some(1),
                unit: "ns".to_owned(),
                hist,
            })),
        ];
        for record in records {
            let line = record.to_line();
            let parsed = TraceRecord::parse_line(&line).unwrap();
            assert_eq!(parsed, record);
            assert_eq!(parsed.to_line(), line, "re-emit must be byte-identical");
        }
    }

    #[test]
    fn canonical_numbers() {
        assert_eq!(canon_num(3.0), "3");
        assert_eq!(canon_num(0.25), "0.25");
        assert_eq!(canon_num(-2.0), "-2.0");
        assert_eq!(canon_num(f64::NAN), "null");
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(TraceRecord::parse_line("{").is_err());
        assert!(TraceRecord::parse_line("{\"type\":\"wat\"}").is_err());
        assert!(TraceRecord::parse_line("{\"type\":\"span\",\"id\":1}").is_err());
        assert!(
            TraceRecord::parse_line(
                "{\"type\":\"hist\",\"name\":\"h\",\"unit\":\"ns\",\"count\":2,\"sum\":1,\"max\":1,\"buckets\":[[1,1]]}"
            )
            .is_err(),
            "count disagreeing with buckets must be rejected"
        );
    }

    #[test]
    fn tracer_emits_a_valid_stream() {
        let dir = std::env::temp_dir().join("rock-trace-unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("unit.trace");
        let tracer = Tracer::new();
        assert!(tracer.begin().is_none(), "disabled tracer begins nothing");

        tracer.start_to_path(&path, "unit").unwrap();
        let scope = tracer.begin_scope().unwrap();
        let child = tracer.begin().unwrap();
        assert_eq!(child.id(), scope.id() + 1);
        tracer.end(
            child,
            "links.shard",
            Some(Phase::Links),
            1,
            Payload::new().count("rows", 42),
        );
        tracer.end_scope(scope, "phase", Some(Phase::Links), Payload::new());
        let mut hist = LatencyHistogram::new();
        hist.record(1_000);
        tracer.record_hist("links.shard_ns", None, &hist);
        let finished = tracer.finish().unwrap();
        assert_eq!(finished, Some(path.clone()));
        assert!(tracer.finish().unwrap().is_none(), "finish is idempotent");

        let text = std::fs::read_to_string(&path).unwrap();
        let summary = validate(&text).unwrap();
        assert_eq!(summary.source, "unit");
        assert_eq!(summary.spans, 2);
        assert_eq!(summary.hists, 1);

        // The child ends first, so it is line 2; its parent field points
        // at the scope span that ends after it.
        let lines: Vec<&str> = text.lines().collect();
        let TraceRecord::Span(child) = TraceRecord::parse_line(lines[1]).unwrap() else {
            panic!("expected span");
        };
        let TraceRecord::Span(scope) = TraceRecord::parse_line(lines[2]).unwrap() else {
            panic!("expected span");
        };
        assert_eq!(child.parent, scope.id);
        assert_eq!(scope.parent, 0);
        assert_eq!(
            child.payload,
            vec![("rows".to_owned(), PayloadValue::Num(42.0))]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn validate_rejects_broken_streams() {
        assert!(validate("").is_err());
        assert!(validate("{\"type\":\"span\"}").is_err());
        let meta = TraceRecord::Meta {
            schema: "rock-trace/v0".to_owned(),
            source: "x".to_owned(),
        };
        assert!(validate(&meta.to_line()).is_err());
        let good = TraceRecord::Meta {
            schema: TRACE_SCHEMA.to_owned(),
            source: "x".to_owned(),
        };
        let doubled = format!("{}\n{}", good.to_line(), good.to_line());
        assert!(validate(&doubled).unwrap_err().contains("duplicate meta"));
        // Non-canonical (reordered keys) is parseable but fails --check.
        let noncanon = format!(
            "{}\n{{\"type\":\"span\",\"name\":\"x\",\"id\":1,\"worker\":0,\"ts_ns\":0,\"dur_ns\":0}}",
            good.to_line()
        );
        assert!(validate(&noncanon).unwrap_err().contains("canonical"));
    }
}
