//! A minimal JSON writer and parser, hand-rolled because the workspace
//! builds with no external dependencies.
//!
//! The writer ([`JsonObj`]) covers exactly what the telemetry layer needs:
//! flat or nested objects of strings and numbers, with optional
//! pretty-printing. The parser ([`Json::parse`]) is a small
//! recursive-descent implementation used by tests (schema round-trips) and
//! by tooling that compares `BENCH_*.json` baselines; it accepts any
//! RFC 8259 document, storing every number as `f64`.

use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON document (without the
/// surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number token (`null` for non-finite values,
/// which JSON cannot represent).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        let mut s = format!("{v}");
        // `Display` omits the fractional part for integral floats; keep a
        // stable numeric form either way (both are valid JSON).
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            s.push_str(".0");
        }
        s
    } else {
        "null".to_owned()
    }
}

/// Incremental JSON object writer.
///
/// ```
/// use rock_core::telemetry::json::JsonObj;
/// let mut o = JsonObj::new(false, 0);
/// o.num_u64("n", 3);
/// o.str("name", "demo");
/// assert_eq!(o.end(), r#"{"n":3,"name":"demo"}"#);
/// ```
#[derive(Debug)]
pub struct JsonObj {
    buf: String,
    first: bool,
    pretty: bool,
    indent: usize,
}

impl JsonObj {
    /// Starts an object. `indent` is the nesting depth used when `pretty`.
    pub fn new(pretty: bool, indent: usize) -> Self {
        JsonObj {
            buf: String::from("{"),
            first: true,
            pretty,
            indent,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        if self.pretty {
            self.buf.push('\n');
            for _ in 0..=self.indent {
                self.buf.push_str("  ");
            }
        }
        let _ = write!(self.buf, "\"{}\":", escape(k));
        if self.pretty {
            self.buf.push(' ');
        }
    }

    /// Adds a string field.
    pub fn str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "\"{}\"", escape(v));
        self
    }

    /// Adds an unsigned integer field.
    pub fn num_u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Adds a floating-point field (`null` when non-finite).
    pub fn num_f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        self.buf.push_str(&number(v));
        self
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a field whose value is an already-serialized JSON fragment
    /// (typically a nested [`JsonObj::end`] result).
    pub fn raw(&mut self, k: &str, json: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(json);
        self
    }

    /// Closes the object and returns the document.
    pub fn end(mut self) -> String {
        if self.pretty && !self.first {
            self.buf.push('\n');
            for _ in 0..self.indent {
                self.buf.push_str("  ");
            }
        }
        self.buf.push('}');
        self.buf
    }
}

/// A parsed JSON value. Numbers are stored as `f64` (exact for the
/// integer counters the telemetry schema emits, up to 2^53).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document.
    ///
    /// # Errors
    /// Returns a human-readable message (with byte offset) on malformed
    /// input or trailing garbage.
    pub fn parse(src: &str) -> Result<Json, String> {
        let bytes = src.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(crate::cast::f64_to_u64(*v)),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The object fields, if it is an object.
    pub fn fields(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_literal(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(b, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        _ => Err(format!("unexpected input at byte {}", *pos)),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs are not needed by our schema;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let Some(c) = rest.chars().next() else {
                    return Err("unexpected end of input".to_string());
                };
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn writer_builds_nested_objects() {
        let mut inner = JsonObj::new(false, 1);
        inner.num_u64("x", 1).num_f64("y", 0.5);
        let mut outer = JsonObj::new(false, 0);
        outer
            .str("name", "t")
            .raw("inner", &inner.end())
            .bool("ok", true);
        assert_eq!(
            outer.end(),
            r#"{"name":"t","inner":{"x":1,"y":0.5},"ok":true}"#
        );
    }

    #[test]
    fn pretty_output_is_parseable_and_indented() {
        let mut inner = JsonObj::new(true, 1);
        inner.num_u64("x", 1);
        let mut outer = JsonObj::new(true, 0);
        outer.raw("inner", &inner.end());
        let s = outer.end();
        assert!(s.contains("\n  \"inner\""));
        assert!(Json::parse(&s).is_ok());
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(2.0), "2.0");
    }

    #[test]
    fn parser_round_trips_values() {
        let doc = r#"{"a": 1, "b": [1.5, "x", null, true], "c": {"d": -2e3}, "e": "q\"\n"}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(
            v.get("c").unwrap().get("d").unwrap().as_f64(),
            Some(-2000.0)
        );
        assert_eq!(v.get("e").unwrap().as_str(), Some("q\"\n"));
        match v.get("b").unwrap() {
            Json::Arr(items) => {
                assert_eq!(items.len(), 4);
                assert_eq!(items[0], Json::Num(1.5));
                assert_eq!(items[2], Json::Null);
                assert_eq!(items[3], Json::Bool(true));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse(r#"{"a":}"#).is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse(r#""unterminated"#).is_err());
    }

    #[test]
    fn writer_output_always_parses() {
        let mut o = JsonObj::new(false, 0);
        o.str("weird", "a\"b\\c\nd\t\u{1}");
        let s = o.end();
        let v = Json::parse(&s).unwrap();
        assert_eq!(v.get("weird").unwrap().as_str(), Some("a\"b\\c\nd\t\u{1}"));
    }
}
