//! Dependency-free observability for the ROCK pipeline.
//!
//! The paper's evaluation (§4–5) is entirely about *where time and memory
//! go* — neighbor computation vs. link computation vs. agglomeration — so
//! the reproduction instruments every phase. The subsystem is hand-rolled
//! on `std` only (no `tracing`/`log`):
//!
//! * **Phase spans** — [`Observer::phase`] opens a [`PhaseSpan`] for one of
//!   the six pipeline [`Phase`]s; wall time accumulates per phase and
//!   start/end [`Event`]s flow to the attached [`EventSink`].
//! * **Pipeline counters** — [`PipelineCounters`] holds atomic tallies of
//!   the quantities the paper's complexity analysis is written in:
//!   similarity comparisons, neighbor edges, link-kernel steps, link-table
//!   entries, heap pushes/pops, merges, labeling evaluations. Hot loops
//!   accumulate locally and flush per row/chunk, so counting is always on
//!   and costs well under 1%.
//! * **Memory accounting** — [`MemoryGauges`] records estimated bytes held
//!   by the neighbor graph, link table, merge heaps and dendrogram
//!   (see [`MemoryEstimate`]).
//! * **Metrics export** — [`Metrics::collect`] snapshots an observer into
//!   a plain struct serialized as JSON ([`Metrics::to_json`]) or one-line
//!   NDJSON ([`Metrics::to_ndjson_line`]) by the built-in writer in
//!   [`json`]. The schema is versioned (`rock-metrics/v1`).
//!
//! ```
//! use rock_core::prelude::*;
//! use rock_core::telemetry::Observer;
//!
//! let data: TransactionSet = vec![
//!     Transaction::new([0, 1, 2]),
//!     Transaction::new([0, 1, 3]),
//!     Transaction::new([10, 11, 12]),
//!     Transaction::new([10, 11, 13]),
//! ].into_iter().collect();
//!
//! let obs = Observer::new();
//! let model = RockBuilder::new(2, 0.4).build().fit_observed(&data, &obs)?;
//! let c = obs.counters().snapshot();
//! assert_eq!(c.similarity_comparisons, 4 * 3); // every ordered pair
//! assert!(obs.memory().snapshot().neighbor_graph > 0);
//! # Ok::<(), rock_core::RockError>(())
//! ```

pub mod json;
pub mod trace;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use json::JsonObj;

/// Schema identifier embedded in every metrics document.
pub const METRICS_SCHEMA: &str = "rock-metrics/v1";

/// The six instrumented pipeline phases, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Drawing the random sample (paper §4.2).
    Sample,
    /// Neighbor-graph computation on the sample.
    Neighbors,
    /// Up-front outlier filtering of the neighbor graph (paper §4.3).
    Outliers,
    /// Link-table computation.
    Links,
    /// Agglomerative merging.
    Agglomerate,
    /// Labeling of outside-sample points.
    Labeling,
}

impl Phase {
    /// All phases, in pipeline order.
    pub const ALL: [Phase; 6] = [
        Phase::Sample,
        Phase::Neighbors,
        Phase::Outliers,
        Phase::Links,
        Phase::Agglomerate,
        Phase::Labeling,
    ];

    /// Stable lowercase name (used in events, logs and the JSON schema).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Sample => "sample",
            Phase::Neighbors => "neighbors",
            Phase::Outliers => "outliers",
            Phase::Links => "links",
            Phase::Agglomerate => "agglomerate",
            Phase::Labeling => "labeling",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Sample => 0,
            Phase::Neighbors => 1,
            Phase::Outliers => 2,
            Phase::Links => 3,
            Phase::Agglomerate => 4,
            Phase::Labeling => 5,
        }
    }
}

/// Verbosity of [`Event::Message`] logging.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// No messages.
    #[default]
    Off,
    /// Failures only.
    Error,
    /// Phase-level narration (default for `--log-level info`).
    Info,
    /// Per-step details.
    Debug,
}

impl std::str::FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(Level::Off),
            "error" => Ok(Level::Error),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            other => Err(format!("expected off|error|info|debug, got {other:?}")),
        }
    }
}

/// A telemetry event delivered to an [`EventSink`].
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A phase span opened.
    PhaseStart {
        /// The phase.
        phase: Phase,
    },
    /// A phase span closed.
    PhaseEnd {
        /// The phase.
        phase: Phase,
        /// Wall time between start and end.
        wall: Duration,
    },
    /// Work progressed within a phase (`done` out of `total` units).
    Progress {
        /// The phase reporting progress.
        phase: Phase,
        /// Units completed.
        done: u64,
        /// Total units expected.
        total: u64,
    },
    /// A log message.
    Message {
        /// Severity.
        level: Level,
        /// The message text.
        text: String,
    },
}

/// Receives [`Event`]s. Implementations must be thread-safe: the neighbor
/// and labeling phases emit progress from worker threads.
pub trait EventSink: Send + Sync {
    /// Handles one event.
    fn record(&self, event: &Event);
}

/// Default sink: stores every event in memory, in arrival order.
#[derive(Debug, Default)]
pub struct RecordingSink {
    events: Mutex<Vec<Event>>,
}

impl RecordingSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of the events recorded so far.
    pub fn events(&self) -> Vec<Event> {
        // Recover from a poisoned lock: a panicking recorder thread must
        // not take the telemetry snapshot down with it.
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }
}

impl EventSink for RecordingSink {
    fn record(&self, event: &Event) {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(event.clone());
    }
}

/// Sink that narrates events on stderr — the `--progress` /
/// `--log-level` implementation of the CLI and experiment binaries.
#[derive(Debug, Clone)]
pub struct StderrSink {
    /// Print `Progress` events (phase percentage lines).
    pub show_progress: bool,
}

impl StderrSink {
    /// Creates a sink; `show_progress` enables per-chunk progress lines.
    pub fn new(show_progress: bool) -> Self {
        StderrSink { show_progress }
    }
}

impl EventSink for StderrSink {
    fn record(&self, event: &Event) {
        match event {
            Event::PhaseStart { phase } => eprintln!("[rock] {} ...", phase.name()),
            Event::PhaseEnd { phase, wall } => {
                eprintln!("[rock] {} done in {}", phase.name(), format_secs(*wall));
            }
            Event::Progress { phase, done, total } if self.show_progress => {
                eprintln!("[rock] {} {done}/{total}", phase.name());
            }
            Event::Progress { .. } => {}
            Event::Message { level, text } => {
                eprintln!("[rock] {}: {text}", format!("{level:?}").to_lowercase());
            }
        }
    }
}

/// Atomic tallies of the pipeline's unit operations.
///
/// Counter semantics (also documented in `README.md` › Observability):
///
/// | counter | one unit is |
/// |---|---|
/// | `similarity_comparisons` | one `sim(p, q)` evaluation in the neighbor phase (ordered pairs: a full graph build on `n` points performs `n·(n−1)`) |
/// | `neighbor_edges` | one directed edge stored in the neighbor graph |
/// | `neighbor_candidates` | one candidate row surfaced (deduplicated) by the inverted-index join's posting lists (DESIGN.md §17; 0 on brute-force runs) |
/// | `neighbor_candidates_pruned` | one join candidate discarded by the exact size filter before any intersection work |
/// | `neighbor_pairs_verified` | one join candidate whose intersection was computed and checked against θ (each is also one `similarity_comparisons` unit) |
/// | `link_kernel_steps` | one visit of the link kernel's inner loop (`Σ_i Σ_{l∈N(i)} deg(l)` — the paper's `Σ deg²` cost) |
/// | `link_entries` | one nonzero upper-triangle entry in the link table |
/// | `heap_pushes` | one `insert_or_update` on a merge-engine heap |
/// | `heap_pops` | one removal from a merge-engine heap (`remove`, or one entry dropped by `clear`) |
/// | `heap_anomalies` | one internal-consistency anomaly inside a merge-engine heap (a `remove` whose position map and entry array disagreed) — always 0 on a healthy run |
/// | `merges` | one cluster merge |
/// | `points_sampled` | one point drawn into the clustering sample |
/// | `outliers_filtered` | one point dropped by the up-front neighbor filter |
/// | `outliers_pruned` | one point discarded by mid-merge pruning |
/// | `labeling_evaluations` | one point-vs-representative similarity evaluation in the labeling phase |
/// | `points_labeled` | one outside-sample point assigned to a cluster |
/// | `chunks_labeled` | one dataset-cache chunk labeled end-to-end by the streaming labeler |
/// | `io_retries` | one retried disk read/write in the streaming pipeline (a failure that a later attempt absorbed) |
/// | `stream_resumes` | one streaming run resumed from an on-disk checkpoint instead of starting fresh |
/// | `checkpoint_writes` | one durable `rock-checkpoint/v1` write (atomic temp-file + rename) |
#[derive(Debug, Default)]
pub struct PipelineCounters {
    /// See the table in the type docs.
    pub similarity_comparisons: AtomicU64,
    /// Directed neighbor edges stored.
    pub neighbor_edges: AtomicU64,
    /// Deduplicated candidates surfaced by the inverted-index join.
    pub neighbor_candidates: AtomicU64,
    /// Join candidates discarded by the exact size filter.
    pub neighbor_candidates_pruned: AtomicU64,
    /// Join candidates verified by an exact intersection count.
    pub neighbor_pairs_verified: AtomicU64,
    /// Inner-kernel visits of link computation.
    pub link_kernel_steps: AtomicU64,
    /// Nonzero link-table entries.
    pub link_entries: AtomicU64,
    /// Heap insert/update operations in the merge engine.
    pub heap_pushes: AtomicU64,
    /// Heap removal operations in the merge engine.
    pub heap_pops: AtomicU64,
    /// Internal-consistency anomalies recorded by merge-engine heaps.
    pub heap_anomalies: AtomicU64,
    /// Merges performed.
    pub merges: AtomicU64,
    /// Points drawn into the clustering sample.
    pub points_sampled: AtomicU64,
    /// Points dropped by the up-front neighbor filter.
    pub outliers_filtered: AtomicU64,
    /// Points discarded by mid-merge pruning.
    pub outliers_pruned: AtomicU64,
    /// Similarity evaluations performed while labeling.
    pub labeling_evaluations: AtomicU64,
    /// Outside-sample points labeled into a cluster.
    pub points_labeled: AtomicU64,
    /// Dataset-cache chunks labeled by the streaming labeler.
    pub chunks_labeled: AtomicU64,
    /// Disk reads/writes retried by the streaming retry policy.
    pub io_retries: AtomicU64,
    /// Streaming runs resumed from an on-disk checkpoint.
    pub stream_resumes: AtomicU64,
    /// Durable checkpoint writes performed by the streaming labeler.
    pub checkpoint_writes: AtomicU64,
}

/// Plain-value snapshot of [`PipelineCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)] // field meanings documented on PipelineCounters
pub struct CounterSnapshot {
    pub similarity_comparisons: u64,
    pub neighbor_edges: u64,
    pub neighbor_candidates: u64,
    pub neighbor_candidates_pruned: u64,
    pub neighbor_pairs_verified: u64,
    pub link_kernel_steps: u64,
    pub link_entries: u64,
    pub heap_pushes: u64,
    pub heap_pops: u64,
    pub heap_anomalies: u64,
    pub merges: u64,
    pub points_sampled: u64,
    pub outliers_filtered: u64,
    pub outliers_pruned: u64,
    pub labeling_evaluations: u64,
    pub points_labeled: u64,
    pub chunks_labeled: u64,
    pub io_retries: u64,
    pub stream_resumes: u64,
    pub checkpoint_writes: u64,
}

impl PipelineCounters {
    /// Adds `n` to a counter (relaxed; tallies have no ordering needs).
    #[inline]
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Reads every counter.
    pub fn snapshot(&self) -> CounterSnapshot {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        CounterSnapshot {
            similarity_comparisons: get(&self.similarity_comparisons),
            neighbor_edges: get(&self.neighbor_edges),
            neighbor_candidates: get(&self.neighbor_candidates),
            neighbor_candidates_pruned: get(&self.neighbor_candidates_pruned),
            neighbor_pairs_verified: get(&self.neighbor_pairs_verified),
            link_kernel_steps: get(&self.link_kernel_steps),
            link_entries: get(&self.link_entries),
            heap_pushes: get(&self.heap_pushes),
            heap_pops: get(&self.heap_pops),
            heap_anomalies: get(&self.heap_anomalies),
            merges: get(&self.merges),
            points_sampled: get(&self.points_sampled),
            outliers_filtered: get(&self.outliers_filtered),
            outliers_pruned: get(&self.outliers_pruned),
            labeling_evaluations: get(&self.labeling_evaluations),
            points_labeled: get(&self.points_labeled),
            chunks_labeled: get(&self.chunks_labeled),
            io_retries: get(&self.io_retries),
            stream_resumes: get(&self.stream_resumes),
            checkpoint_writes: get(&self.checkpoint_writes),
        }
    }
}

/// Estimated heap memory held by the pipeline's big structures, in bytes.
/// Gauges keep the **maximum** value ever stored, so a snapshot after a
/// run reports each structure at its largest.
#[derive(Debug, Default)]
pub struct MemoryGauges {
    /// Neighbor-graph adjacency lists.
    pub neighbor_graph: AtomicU64,
    /// Link-table sparse rows.
    pub link_table: AtomicU64,
    /// Merge-engine heaps (global + all local heaps).
    pub heaps: AtomicU64,
    /// Recorded merge history / dendrogram steps.
    pub dendrogram: AtomicU64,
    /// Streaming-labeler chunk buffers (the transactions of the chunk
    /// currently in flight), so `--mem-budget` trips stay honest while
    /// labeling data that never fully materializes.
    pub stream_buffers: AtomicU64,
}

/// Plain-value snapshot of [`MemoryGauges`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)] // field meanings documented on MemoryGauges
pub struct MemorySnapshot {
    pub neighbor_graph: u64,
    pub link_table: u64,
    pub heaps: u64,
    pub dendrogram: u64,
    pub stream_buffers: u64,
}

impl MemorySnapshot {
    /// Sum of all tracked structures.
    pub fn tracked_total(&self) -> u64 {
        self.neighbor_graph + self.link_table + self.heaps + self.dendrogram + self.stream_buffers
    }
}

impl MemoryGauges {
    /// Raises `gauge` to `bytes` if larger (gauges track the high-water
    /// mark).
    pub fn observe(gauge: &AtomicU64, bytes: u64) {
        gauge.fetch_max(bytes, Ordering::Relaxed);
    }

    /// Reads every gauge.
    pub fn snapshot(&self) -> MemorySnapshot {
        let get = |g: &AtomicU64| g.load(Ordering::Relaxed);
        MemorySnapshot {
            neighbor_graph: get(&self.neighbor_graph),
            link_table: get(&self.link_table),
            heaps: get(&self.heaps),
            dendrogram: get(&self.dendrogram),
            stream_buffers: get(&self.stream_buffers),
        }
    }
}

/// Types that can estimate the heap bytes they hold.
///
/// Estimates count the dominant buffers (element storage at capacity);
/// allocator and hash-table bookkeeping are approximated, not measured.
pub trait MemoryEstimate {
    /// Estimated heap bytes currently held.
    fn estimated_bytes(&self) -> usize;
}

/// The pipeline's telemetry hub: counters + memory gauges + per-phase
/// wall clocks, with an optional [`EventSink`] for streaming events.
///
/// Counting is always on (it is flush-based and effectively free); events
/// are only constructed when a sink is attached. An `Observer` is shared
/// by reference across the pipeline's worker threads.
#[derive(Default)]
pub struct Observer {
    counters: PipelineCounters,
    memory: MemoryGauges,
    phase_nanos: [AtomicU64; 6],
    sink: Option<Arc<dyn EventSink>>,
    level: Level,
    tracer: trace::Tracer,
}

impl std::fmt::Debug for Observer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Observer")
            .field("counters", &self.counters)
            .field("memory", &self.memory)
            .field("level", &self.level)
            .field("has_sink", &self.sink.is_some())
            .finish()
    }
}

impl Observer {
    /// A counting-only observer (no sink, no log output).
    pub fn new() -> Self {
        Self::default()
    }

    /// An observer that streams events to `sink`; messages below `level`
    /// are suppressed.
    pub fn with_sink(sink: Arc<dyn EventSink>, level: Level) -> Self {
        Observer {
            sink: Some(sink),
            level,
            ..Self::default()
        }
    }

    /// The pipeline counters.
    pub fn counters(&self) -> &PipelineCounters {
        &self.counters
    }

    /// The memory gauges.
    pub fn memory(&self) -> &MemoryGauges {
        &self.memory
    }

    /// The rock-trace/v1 emitter (disabled until a stream is attached;
    /// see [`trace::Tracer::start_to_path`]).
    pub fn tracer(&self) -> &trace::Tracer {
        &self.tracer
    }

    /// `true` when an event sink is attached.
    pub fn has_sink(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits `event` to the sink, if any.
    pub fn emit(&self, event: Event) {
        if let Some(sink) = &self.sink {
            sink.record(&event);
        }
    }

    /// Opens a span for `phase`: emits [`Event::PhaseStart`] now and, on
    /// [`PhaseSpan::finish`] or drop, [`Event::PhaseEnd`], accumulating
    /// the elapsed wall time into the per-phase clock.
    pub fn phase(&self, phase: Phase) -> PhaseSpan<'_> {
        self.emit(Event::PhaseStart { phase });
        PhaseSpan {
            observer: self,
            phase,
            start: Instant::now(),
            closed: false,
        }
    }

    /// Reports progress within a phase (forwarded to the sink only).
    pub fn progress(&self, phase: Phase, done: u64, total: u64) {
        if self.sink.is_some() {
            self.emit(Event::Progress { phase, done, total });
        }
    }

    /// Logs a message at `level`; the text closure runs only when a sink
    /// is attached and the level passes the filter.
    pub fn log<F: FnOnce() -> String>(&self, level: Level, text: F) {
        if self.sink.is_some() && level <= self.level && level != Level::Off {
            self.emit(Event::Message {
                level,
                text: text(),
            });
        }
    }

    /// Accumulated wall time of `phase` across all its spans.
    pub fn phase_wall(&self, phase: Phase) -> Duration {
        Duration::from_nanos(self.phase_nanos[phase.index()].load(Ordering::Relaxed))
    }

    fn close_span(&self, phase: Phase, wall: Duration) {
        // Saturate instead of truncating: u64 nanoseconds cover ~584 years.
        let nanos = u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX);
        self.phase_nanos[phase.index()].fetch_add(nanos, Ordering::Relaxed);
        self.emit(Event::PhaseEnd { phase, wall });
    }
}

/// An open phase span (see [`Observer::phase`]). Closing is idempotent:
/// explicit [`finish`](Self::finish) or implicit drop.
#[must_use = "a span measures the time until finish()/drop"]
#[derive(Debug)]
pub struct PhaseSpan<'a> {
    observer: &'a Observer,
    phase: Phase,
    start: Instant,
    closed: bool,
}

impl PhaseSpan<'_> {
    /// Closes the span, returning its wall time.
    pub fn finish(mut self) -> Duration {
        let wall = self.start.elapsed();
        self.closed = true;
        self.observer.close_span(self.phase, wall);
        wall
    }
}

impl Drop for PhaseSpan<'_> {
    fn drop(&mut self) {
        if !self.closed {
            self.observer.close_span(self.phase, self.start.elapsed());
        }
    }
}

/// Runs `f`, returning its result and elapsed wall-clock time. The
/// free-standing companion of [`Observer::phase`] for code outside the
/// pipeline (experiment harness, ad-hoc measurements).
pub fn time_it<T, F: FnOnce() -> T>(f: F) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Formats a duration as fractional seconds with millisecond precision.
pub fn format_secs(d: Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

/// Identification of one clustering run, embedded in [`Metrics`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunInfo {
    /// Free-form run label (e.g. `"cli"`, `"exp_votes"`).
    pub experiment: String,
    /// Input size.
    pub n: usize,
    /// Requested cluster count.
    pub k: usize,
    /// Similarity threshold θ.
    pub theta: f64,
    /// RNG seed.
    pub seed: u64,
    /// Points actually clustered (after sampling and filtering).
    pub sample_size: usize,
    /// Clusters found.
    pub clusters: usize,
    /// Points declared outliers.
    pub outliers: usize,
}

/// A machine-readable snapshot of one observed run: per-phase wall times,
/// all pipeline counters and memory estimates. Serialized by
/// [`to_json`](Self::to_json) / [`to_ndjson_line`](Self::to_ndjson_line).
#[derive(Debug, Clone, PartialEq)]
pub struct Metrics {
    /// Run identification.
    pub run: RunInfo,
    /// Wall seconds per phase, in [`Phase::ALL`] order.
    pub phase_secs: [f64; 6],
    /// End-to-end wall seconds (includes inter-phase bookkeeping).
    pub total_secs: f64,
    /// Counter values.
    pub counters: CounterSnapshot,
    /// Memory estimates.
    pub memory: MemorySnapshot,
    /// Degradation report, present when the run tripped a budget or was
    /// cancelled (see [`crate::guard`]). Serialized as the `degradation`
    /// block; absent from complete runs.
    pub degradation: Option<crate::guard::Degradation>,
}

impl Metrics {
    /// Snapshots `observer` into a metrics document. `total` is the
    /// end-to-end wall time of the run (phase times alone exclude
    /// inter-phase bookkeeping).
    pub fn collect(observer: &Observer, run: RunInfo, total: Duration) -> Self {
        let mut phase_secs = [0.0f64; 6];
        for p in Phase::ALL {
            phase_secs[p.index()] = observer.phase_wall(p).as_secs_f64();
        }
        Metrics {
            run,
            phase_secs,
            total_secs: total.as_secs_f64(),
            counters: observer.counters().snapshot(),
            memory: observer.memory().snapshot(),
            degradation: None,
        }
    }

    /// Attaches a degradation report (for degraded/early-exit runs).
    pub fn with_degradation(mut self, degradation: crate::guard::Degradation) -> Self {
        self.degradation = Some(degradation);
        self
    }

    /// Wall seconds of one phase.
    pub fn phase_wall_secs(&self, phase: Phase) -> f64 {
        self.phase_secs[phase.index()]
    }

    fn serialize(&self, pretty: bool) -> String {
        let ind = usize::from(pretty);

        let mut run = JsonObj::new(pretty, ind);
        run.num_u64("n", crate::cast::usize_to_u64(self.run.n))
            .num_u64("k", crate::cast::usize_to_u64(self.run.k))
            .num_f64("theta", self.run.theta)
            .num_u64("seed", self.run.seed)
            .num_u64(
                "sample_size",
                crate::cast::usize_to_u64(self.run.sample_size),
            )
            .num_u64("clusters", crate::cast::usize_to_u64(self.run.clusters))
            .num_u64("outliers", crate::cast::usize_to_u64(self.run.outliers));

        let mut wall = JsonObj::new(pretty, ind);
        for p in Phase::ALL {
            wall.num_f64(p.name(), self.phase_secs[p.index()]);
        }
        wall.num_f64("total", self.total_secs);

        let c = &self.counters;
        let mut counters = JsonObj::new(pretty, ind);
        counters
            .num_u64("similarity_comparisons", c.similarity_comparisons)
            .num_u64("neighbor_edges", c.neighbor_edges)
            .num_u64("neighbor_candidates", c.neighbor_candidates)
            .num_u64("neighbor_candidates_pruned", c.neighbor_candidates_pruned)
            .num_u64("neighbor_pairs_verified", c.neighbor_pairs_verified)
            .num_u64("link_kernel_steps", c.link_kernel_steps)
            .num_u64("link_entries", c.link_entries)
            .num_u64("heap_pushes", c.heap_pushes)
            .num_u64("heap_pops", c.heap_pops)
            .num_u64("heap_anomalies", c.heap_anomalies)
            .num_u64("merges", c.merges)
            .num_u64("points_sampled", c.points_sampled)
            .num_u64("outliers_filtered", c.outliers_filtered)
            .num_u64("outliers_pruned", c.outliers_pruned)
            .num_u64("labeling_evaluations", c.labeling_evaluations)
            .num_u64("points_labeled", c.points_labeled)
            .num_u64("chunks_labeled", c.chunks_labeled)
            .num_u64("io_retries", c.io_retries)
            .num_u64("stream_resumes", c.stream_resumes)
            .num_u64("checkpoint_writes", c.checkpoint_writes);

        let m = &self.memory;
        let mut memory = JsonObj::new(pretty, ind);
        memory
            .num_u64("neighbor_graph", m.neighbor_graph)
            .num_u64("link_table", m.link_table)
            .num_u64("heaps", m.heaps)
            .num_u64("dendrogram", m.dendrogram)
            .num_u64("stream_buffers", m.stream_buffers)
            .num_u64("tracked_total", m.tracked_total());

        let mut doc = JsonObj::new(pretty, 0);
        doc.str("schema", METRICS_SCHEMA)
            .str("experiment", &self.run.experiment)
            .raw("run", &run.end())
            .raw("wall_secs", &wall.end())
            .raw("counters", &counters.end())
            .raw("memory_bytes", &memory.end());
        if let Some(d) = &self.degradation {
            doc.raw("degradation", &d.to_json_fragment(pretty, ind));
        }
        doc.end()
    }

    /// Pretty-printed JSON document (one run).
    pub fn to_json(&self) -> String {
        self.serialize(true)
    }

    /// Compact single-line JSON, suitable for appending to an NDJSON
    /// stream of runs (no trailing newline).
    pub fn to_ndjson_line(&self) -> String {
        self.serialize(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_metrics() -> Metrics {
        Metrics {
            run: RunInfo {
                experiment: "unit \"quoted\"".to_owned(),
                n: 100,
                k: 3,
                theta: 0.73,
                seed: 42,
                sample_size: 80,
                clusters: 3,
                outliers: 2,
            },
            phase_secs: [0.0, 1.25, 0.001, 0.5, 0.25, 0.0],
            total_secs: 2.1,
            counters: CounterSnapshot {
                similarity_comparisons: 9900,
                neighbor_edges: 420,
                neighbor_candidates: 900,
                neighbor_candidates_pruned: 200,
                neighbor_pairs_verified: 700,
                link_kernel_steps: 1234,
                link_entries: 300,
                heap_pushes: 777,
                heap_pops: 555,
                heap_anomalies: 0,
                merges: 77,
                points_sampled: 80,
                outliers_filtered: 1,
                outliers_pruned: 1,
                labeling_evaluations: 640,
                points_labeled: 18,
                chunks_labeled: 2,
                io_retries: 1,
                stream_resumes: 1,
                checkpoint_writes: 2,
            },
            memory: MemorySnapshot {
                neighbor_graph: 2048,
                link_table: 4096,
                heaps: 1024,
                dendrogram: 512,
                stream_buffers: 256,
            },
            degradation: None,
        }
    }

    #[test]
    fn spans_accumulate_wall_time() {
        let obs = Observer::new();
        {
            let span = obs.phase(Phase::Links);
            std::thread::sleep(Duration::from_millis(5));
            let wall = span.finish();
            assert!(wall >= Duration::from_millis(4));
        }
        {
            let _span = obs.phase(Phase::Links); // closed by drop
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(obs.phase_wall(Phase::Links) >= Duration::from_millis(8));
        assert_eq!(obs.phase_wall(Phase::Sample), Duration::ZERO);
    }

    #[test]
    fn recording_sink_sees_span_events_in_order() {
        let sink = Arc::new(RecordingSink::new());
        let obs = Observer::with_sink(sink.clone(), Level::Debug);
        obs.phase(Phase::Neighbors).finish();
        obs.progress(Phase::Neighbors, 5, 10);
        obs.log(Level::Info, || "hello".to_owned());
        let events = sink.events();
        assert_eq!(events.len(), 4);
        assert_eq!(
            events[0],
            Event::PhaseStart {
                phase: Phase::Neighbors
            }
        );
        assert!(matches!(
            events[1],
            Event::PhaseEnd {
                phase: Phase::Neighbors,
                ..
            }
        ));
        assert_eq!(
            events[2],
            Event::Progress {
                phase: Phase::Neighbors,
                done: 5,
                total: 10
            }
        );
        assert_eq!(
            events[3],
            Event::Message {
                level: Level::Info,
                text: "hello".to_owned()
            }
        );
    }

    #[test]
    fn log_level_filters_messages() {
        let sink = Arc::new(RecordingSink::new());
        let obs = Observer::with_sink(sink.clone(), Level::Error);
        obs.log(Level::Debug, || "dropped".to_owned());
        obs.log(Level::Info, || "dropped".to_owned());
        obs.log(Level::Error, || "kept".to_owned());
        assert_eq!(sink.events().len(), 1);
        // No sink: the closure must not even run.
        let silent = Observer::new();
        silent.log(Level::Error, || panic!("must not format"));
    }

    #[test]
    fn counters_and_gauges_snapshot() {
        let obs = Observer::new();
        PipelineCounters::add(&obs.counters().merges, 3);
        PipelineCounters::add(&obs.counters().merges, 2);
        MemoryGauges::observe(&obs.memory().heaps, 100);
        MemoryGauges::observe(&obs.memory().heaps, 50); // high-water mark kept
        let c = obs.counters().snapshot();
        let m = obs.memory().snapshot();
        assert_eq!(c.merges, 5);
        assert_eq!(m.heaps, 100);
        assert_eq!(m.tracked_total(), 100);
    }

    #[test]
    fn level_parses_and_orders() {
        assert_eq!("debug".parse::<Level>().unwrap(), Level::Debug);
        assert_eq!("off".parse::<Level>().unwrap(), Level::Off);
        assert!("verbose".parse::<Level>().is_err());
        assert!(Level::Error < Level::Info && Level::Info < Level::Debug);
    }

    #[test]
    fn metrics_json_round_trips_through_parser() {
        let metrics = demo_metrics();
        for doc in [metrics.to_json(), metrics.to_ndjson_line().clone()] {
            let v = json::Json::parse(&doc).expect("valid JSON");
            assert_eq!(v.get("schema").unwrap().as_str(), Some(METRICS_SCHEMA));
            assert_eq!(
                v.get("experiment").unwrap().as_str(),
                Some("unit \"quoted\"")
            );
            let run = v.get("run").unwrap();
            assert_eq!(run.get("n").unwrap().as_u64(), Some(100));
            assert_eq!(run.get("theta").unwrap().as_f64(), Some(0.73));
            let wall = v.get("wall_secs").unwrap();
            assert_eq!(wall.get("neighbors").unwrap().as_f64(), Some(1.25));
            assert_eq!(wall.get("total").unwrap().as_f64(), Some(2.1));
            let counters = v.get("counters").unwrap();
            assert_eq!(
                counters.get("similarity_comparisons").unwrap().as_u64(),
                Some(9900)
            );
            let memory = v.get("memory_bytes").unwrap();
            assert_eq!(memory.get("tracked_total").unwrap().as_u64(), Some(7936));
            assert_eq!(memory.get("stream_buffers").unwrap().as_u64(), Some(256));
            assert_eq!(counters.get("io_retries").unwrap().as_u64(), Some(1));
        }
    }

    #[test]
    fn metrics_schema_is_stable() {
        // The exact key set is a public contract (BENCH_*.json baselines
        // are diffed across PRs); additions are fine, renames are not.
        let v = json::Json::parse(&demo_metrics().to_json()).unwrap();
        let top: Vec<&str> = v
            .fields()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(
            top,
            [
                "schema",
                "experiment",
                "run",
                "wall_secs",
                "counters",
                "memory_bytes"
            ]
        );
        let counters: Vec<&str> = v
            .get("counters")
            .unwrap()
            .fields()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(
            counters,
            [
                "similarity_comparisons",
                "neighbor_edges",
                "neighbor_candidates",
                "neighbor_candidates_pruned",
                "neighbor_pairs_verified",
                "link_kernel_steps",
                "link_entries",
                "heap_pushes",
                "heap_pops",
                "heap_anomalies",
                "merges",
                "points_sampled",
                "outliers_filtered",
                "outliers_pruned",
                "labeling_evaluations",
                "points_labeled",
                "chunks_labeled",
                "io_retries",
                "stream_resumes",
                "checkpoint_writes",
            ]
        );
        let wall: Vec<&str> = v
            .get("wall_secs")
            .unwrap()
            .fields()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(
            wall,
            [
                "sample",
                "neighbors",
                "outliers",
                "links",
                "agglomerate",
                "labeling",
                "total"
            ]
        );
    }

    #[test]
    fn ndjson_line_is_single_line() {
        let line = demo_metrics().to_ndjson_line();
        assert!(!line.contains('\n'));
    }

    #[test]
    fn degraded_run_embeds_degradation_block() {
        use crate::guard::{Degradation, TripReason};
        let metrics = demo_metrics().with_degradation(Degradation {
            reason: TripReason::StepBudget { limit: 40 },
            phase: Phase::Agglomerate,
            merges_completed: 40,
            elapsed_secs: 0.75,
        });
        for doc in [metrics.to_json(), metrics.to_ndjson_line()] {
            let v = json::Json::parse(&doc).expect("valid JSON");
            let d = v.get("degradation").expect("degradation block present");
            assert_eq!(d.get("reason").unwrap().as_str(), Some("step-budget"));
            assert_eq!(d.get("phase").unwrap().as_str(), Some("agglomerate"));
            assert_eq!(d.get("merges_completed").unwrap().as_u64(), Some(40));
            assert_eq!(d.get("step_limit").unwrap().as_u64(), Some(40));
        }
        // Complete runs carry no degradation key at all.
        let clean = json::Json::parse(&demo_metrics().to_json()).unwrap();
        assert!(clean.get("degradation").is_none());
    }

    #[test]
    fn time_it_measures_and_formats() {
        let ((), d) = time_it(|| std::thread::sleep(Duration::from_millis(15)));
        assert!(d >= Duration::from_millis(14), "elapsed {d:?}");
        let (v, _) = time_it(|| 6 * 7);
        assert_eq!(v, 42);
        assert_eq!(format_secs(Duration::from_millis(1500)), "1.500s");
    }
}
