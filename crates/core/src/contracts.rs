//! Runtime invariant contracts for the pipeline's phase boundaries.
//!
//! This module is the runtime twin of the `rock-analyze` static pass
//! (`crates/analysis`): the lint pass proves *textual* discipline (no
//! unchecked casts, no raw float orderings), while these contracts check
//! the *numeric* invariants the paper's correctness argument rests on —
//! at every one of the six phase boundaries of
//! [`fit`](crate::rock::Rock::fit):
//!
//! | phase boundary | contract |
//! |----------------|----------|
//! | sample         | [`check_sample`] — indices in range, strictly increasing |
//! | neighbors      | [`check_neighbor_graph`] — symmetric, sorted, no self-loops |
//! | outliers       | [`check_outlier_split`] — kept/filtered partition the sample |
//! | links          | [`check_link_table`] — upper-triangle, sorted, positive counts |
//! | agglomerate    | [`check_agglomeration`] — clusters ↔ assignment agree, criterion finite |
//! | labeling       | [`check_partition`] — every point labeled or an outlier, never both |
//!
//! All checks are `debug_assert!`-class: they run under `cargo test` and
//! debug builds (where every seed-loop and pipeline test exercises them)
//! and compile to nothing in release, so the serving hot path pays zero
//! cost. Violations indicate a bug in `rock-core` itself, never bad user
//! input — user input is validated with typed [`RockError`]s instead.
//!
//! [`RockError`]: crate::error::RockError

use crate::agglomerate::Agglomeration;
use crate::data::ClusterId;
use crate::heap::IndexedHeap;
use crate::links::LinkTable;
use crate::neighbors::NeighborGraph;

/// Checks a drawn sample: every index in `0..n`, strictly increasing
/// (which also proves distinctness).
#[inline]
pub fn check_sample(sample: &[usize], n: usize) {
    if cfg!(debug_assertions) {
        debug_assert!(
            sample.windows(2).all(|w| w[0] < w[1]),
            "sample indices must be strictly increasing"
        );
        debug_assert!(
            sample.last().is_none_or(|&last| last < n),
            "sample index out of range (n = {n})"
        );
    }
}

/// Checks the neighbor graph: lists sorted and self-loop free, and every
/// edge symmetric (`j ∈ N(i) ⇔ i ∈ N(j)` — similarity is symmetric, so
/// an asymmetric graph means a parallel fill went wrong).
#[inline]
pub fn check_neighbor_graph(graph: &NeighborGraph) {
    if cfg!(debug_assertions) {
        for (i, list) in graph.iter().enumerate() {
            let i32b = crate::cast::usize_to_u32(i);
            debug_assert!(
                list.windows(2).all(|w| w[0] < w[1]),
                "neighbor list {i} not strictly sorted"
            );
            debug_assert!(!list.contains(&i32b), "self-loop on point {i}");
            for &j in list {
                let back = graph.neighbors(crate::cast::u32_to_usize(j));
                debug_assert!(
                    back.binary_search(&i32b).is_ok(),
                    "neighbor edge {i} -> {j} has no reverse edge"
                );
            }
        }
    }
}

/// Checks the outlier split: `kept` and `filtered` are each strictly
/// increasing, disjoint, and together cover exactly `0..sample_len`.
#[inline]
pub fn check_outlier_split(kept: &[usize], filtered: &[usize], sample_len: usize) {
    if cfg!(debug_assertions) {
        debug_assert!(kept.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(filtered.windows(2).all(|w| w[0] < w[1]));
        debug_assert_eq!(
            kept.len() + filtered.len(),
            sample_len,
            "outlier split must cover the sample"
        );
        let mut merged: Vec<usize> = kept.iter().chain(filtered).copied().collect();
        merged.sort_unstable();
        debug_assert!(
            merged.iter().copied().eq(0..sample_len),
            "outlier split must partition 0..{sample_len}"
        );
    }
}

/// Checks the link table: rows are upper-triangle (`j > i`), sorted, in
/// range, with strictly positive counts. Together with the construction
/// (each row stores the pair once) this is link symmetry: `link(i, j)`
/// and `link(j, i)` read the same entry.
#[inline]
pub fn check_link_table(links: &LinkTable) {
    if cfg!(debug_assertions) {
        let n = crate::cast::usize_to_u32(links.len());
        for i in 0..links.len() {
            let row = links.row(i);
            let iu = crate::cast::usize_to_u32(i);
            debug_assert!(
                row.windows(2).all(|w| w[0].0 < w[1].0),
                "link row {i} not strictly sorted"
            );
            for &(j, c) in row {
                debug_assert!(j > iu, "link entry ({i}, {j}) below the diagonal");
                debug_assert!(j < n, "link entry ({i}, {j}) out of range");
                debug_assert!(c > 0, "stored link count ({i}, {j}) must be positive");
            }
        }
    }
}

/// Checks a finished agglomeration: cluster member lists are sorted and
/// disjoint, the assignment vector points each member at its cluster,
/// outliers are unassigned, and the criterion value is finite.
#[inline]
pub fn check_agglomeration(agg: &Agglomeration) {
    if cfg!(debug_assertions) {
        debug_assert!(
            agg.criterion.is_finite(),
            "criterion E_l must stay finite (got {})",
            agg.criterion
        );
        for step in &agg.history {
            debug_assert!(
                step.goodness.is_finite(),
                "merge goodness must stay finite (got {})",
                step.goodness
            );
        }
        for (c, members) in agg.clusters.iter().enumerate() {
            debug_assert!(members.windows(2).all(|w| w[0] < w[1]));
            let cid = crate::cast::usize_to_u32(c);
            for &p in members {
                debug_assert_eq!(
                    agg.assignment[crate::cast::u32_to_usize(p)],
                    Some(cid),
                    "member {p} of cluster {c} not assigned to it"
                );
            }
        }
        for &p in &agg.outliers {
            debug_assert!(
                agg.assignment[crate::cast::u32_to_usize(p)].is_none(),
                "pruned outlier {p} still assigned"
            );
        }
        let assigned = agg.assignment.iter().filter(|a| a.is_some()).count();
        let member_total: usize = agg.clusters.iter().map(Vec::len).sum();
        debug_assert_eq!(assigned, member_total, "assignment/cluster totals differ");
    }
}

/// Checks label-partition totality after the labeling phase: every point
/// is either assigned to a cluster or listed as an outlier — never both,
/// never neither — and the outlier list is sorted and duplicate-free.
#[inline]
pub fn check_partition(assignments: &[Option<ClusterId>], outliers: &[u32]) {
    if cfg!(debug_assertions) {
        debug_assert!(
            outliers.windows(2).all(|w| w[0] < w[1]),
            "outlier list must be strictly increasing"
        );
        let mut next_outlier = outliers.iter().peekable();
        for (i, a) in assignments.iter().enumerate() {
            let is_outlier = next_outlier
                .peek()
                .is_some_and(|&&o| crate::cast::u32_to_usize(o) == i);
            if is_outlier {
                next_outlier.next();
            }
            debug_assert!(
                a.is_some() != is_outlier,
                "point {i} must be exactly one of labeled/outlier (assigned: {}, outlier: {is_outlier})",
                a.is_some()
            );
        }
        debug_assert!(
            next_outlier.peek().is_none(),
            "outlier index beyond the assignment range"
        );
    }
}

/// Checks the structural invariants of an [`IndexedHeap`] (heap order and
/// position-map consistency). Used by the merge engine at its checkpoints.
#[inline]
pub fn check_heap<P: Ord>(heap: &IndexedHeap<P>) {
    #[cfg(debug_assertions)]
    heap.assert_invariants();
    #[cfg(not(debug_assertions))]
    let _ = heap;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Transaction, TransactionSet};
    use crate::similarity::Jaccard;

    fn small_graph() -> NeighborGraph {
        let data: TransactionSet = vec![
            Transaction::new([0, 1, 2]),
            Transaction::new([0, 1, 3]),
            Transaction::new([0, 2, 3]),
        ]
        .into_iter()
        .collect();
        NeighborGraph::compute(&data, &Jaccard, 0.4, 1).unwrap()
    }

    #[test]
    fn healthy_structures_pass() {
        let g = small_graph();
        check_neighbor_graph(&g);
        let links = LinkTable::compute(&g);
        check_link_table(&links);
        check_sample(&[0, 2, 5], 6);
        check_outlier_split(&[0, 2], &[1], 3);
        check_partition(&[Some(ClusterId(0)), None, Some(ClusterId(0))], &[1]);
        let mut heap = IndexedHeap::with_capacity(4);
        heap.insert_or_update(3, 17i64);
        check_heap(&heap);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    #[cfg(debug_assertions)]
    fn unsorted_sample_is_rejected() {
        check_sample(&[3, 1], 5);
    }

    #[test]
    #[should_panic(expected = "exactly one of labeled/outlier")]
    #[cfg(debug_assertions)]
    fn double_booked_point_is_rejected() {
        // Point 0 is both assigned and an outlier.
        check_partition(&[Some(ClusterId(0))], &[0]);
    }

    #[test]
    #[should_panic(expected = "partition")]
    #[cfg(debug_assertions)]
    fn leaky_outlier_split_is_rejected() {
        check_outlier_split(&[0, 1], &[3], 3);
    }
}
