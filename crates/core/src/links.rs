//! Link computation (paper §4.1, procedure `compute_links`).
//!
//! `link(p, q)` is the number of common neighbors of `p` and `q`. The paper
//! computes links by "multiplying" the neighbor adjacency structure with
//! itself: for every point `l`, every pair of `l`'s neighbors gains one
//! link. The cost is `Σ_l deg(l)²` — between `O(n·m_a·m_m)` and `O(n²·m_a)`
//! — and is the second hot spot after neighbor computation.
//!
//! Instead of a hash map per increment we sweep one dense `u32` scratch row
//! per point: for point `i`, `scratch[j] = |N(i) ∩ N(j)|` is accumulated by
//! walking `j ∈ N(l)` for every `l ∈ N(i)`, then the touched entries are
//! harvested into a sparse row. This is the classic sparse
//! matrix-square-row kernel and keeps the inner loop to an indexed add.
//!
//! Source rows are independent — row `i` reads only the (immutable)
//! neighbor graph and writes only `rows[i]` — so the kernel shards over a
//! scoped thread pool (DESIGN.md §13): rows are partitioned into
//! contiguous ranges balanced by the per-row work estimate
//! `Σ_{l∈N(i)} deg(l)`, each worker owns a private scratch + touched list,
//! and the merged table is **byte-identical** to the sequential result for
//! any thread count. Workers poll the run [`Guard`] every
//! [`GUARD_STRIDE`] rows, so budget trips and cancellation degrade
//! mid-phase instead of finishing the whole table first.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::cast;
use crate::guard::{Guard, Trip};
use crate::neighbors::NeighborGraph;
use crate::telemetry::trace::{LatencyHistogram, Payload};
use crate::telemetry::{MemoryEstimate, MemoryGauges, Observer, Phase, PipelineCounters};

/// How often (in source rows) each worker polls the guard and flushes its
/// stored-entry tally into the shared memory gauge. Checkpoints read two
/// or three atomics plus (rarely) the clock, so a small stride keeps
/// trips responsive without measurable kernel overhead.
const GUARD_STRIDE: usize = 64;

/// Sparse symmetric matrix of link counts, stored as upper-triangle rows:
/// `rows[i]` holds `(j, link(i, j))` for `j > i`, sorted by `j`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkTable {
    rows: Vec<Vec<(u32, u32)>>,
}

/// Computes one upper-triangle row of the link table into `out`,
/// returning the kernel steps spent (`Σ_{l∈N(i)} deg(l)`). `scratch` must
/// be all-zero on entry and is restored to all-zero on exit; `touched` is
/// scratch storage for the nonzero column indices.
fn fill_links_row(
    graph: &NeighborGraph,
    i: usize,
    scratch: &mut [u32],
    touched: &mut Vec<u32>,
    out: &mut Vec<(u32, u32)>,
) -> u64 {
    let mut kernel_steps = 0u64;
    for &l in graph.neighbors(i) {
        kernel_steps += cast::usize_to_u64(graph.degree(cast::u32_to_usize(l)));
        for &j in graph.neighbors(cast::u32_to_usize(l)) {
            // Only accumulate the upper triangle (j > i); the pair
            // (i, j) with j < i was produced when j was the source.
            if cast::u32_to_usize(j) > i {
                if scratch[cast::u32_to_usize(j)] == 0 {
                    touched.push(j);
                }
                scratch[cast::u32_to_usize(j)] += 1;
            }
        }
    }
    if !touched.is_empty() {
        touched.sort_unstable();
        *out = touched
            .iter()
            .map(|&j| {
                let c = scratch[cast::u32_to_usize(j)];
                scratch[cast::u32_to_usize(j)] = 0;
                (j, c)
            })
            .collect();
        touched.clear();
    }
    kernel_steps
}

/// Shared state of one sharded computation: the early-exit broadcast flag
/// and the cross-worker stored-entry tally feeding the memory gauge (so a
/// memory ceiling can trip *while* the table grows, not only after).
struct ShardState<'a> {
    stop: AtomicBool,
    partial_entries: AtomicU64,
    observer: &'a Observer,
    guard: &'a Guard,
}

impl ShardState<'_> {
    /// Worker poll: flushes `delta` freshly stored entries into the
    /// shared gauge (entry payload bytes only — always at or below the
    /// finished table's estimate, so the high-water mark stays
    /// deterministic) and consults the guard. Returns the trip, if any,
    /// after broadcasting stop to the other workers.
    fn poll(&self, delta: u64) -> Option<Trip> {
        let entries = delta + self.partial_entries.fetch_add(delta, Ordering::Relaxed);
        MemoryGauges::observe(
            &self.observer.memory().link_table,
            entries * cast::usize_to_u64(std::mem::size_of::<(u32, u32)>()),
        );
        if self.stop.load(Ordering::Relaxed) {
            return None; // another worker already tripped and reported
        }
        let trip = self.guard.checkpoint(Phase::Links, self.observer)?;
        self.stop.store(true, Ordering::Relaxed);
        Some(trip)
    }
}

/// Per-worker tallies of one [`compute_range`] call.
struct RangeResult {
    kernel_steps: u64,
    entries: u64,
    trip: Option<Trip>,
    /// Per-stride-batch latencies (empty unless tracing was enabled).
    batch_ns: LatencyHistogram,
}

/// Computes rows `start..start + out.len()` into `out`, polling the guard
/// every [`GUARD_STRIDE`] rows. Returns the kernel steps performed, the
/// entries stored, and the trip that stopped this worker (if any). When
/// tracing is enabled it also emits one `links.shard` span and fills the
/// per-stride-batch latency histogram.
fn compute_range(
    graph: &NeighborGraph,
    worker: u64,
    start: usize,
    out: &mut [Vec<(u32, u32)>],
    state: &ShardState<'_>,
) -> RangeResult {
    let tracer = state.observer.tracer();
    let shard_span = tracer.begin();
    let mut watch = tracer.stopwatch();
    let mut batch_ns = LatencyHistogram::new();
    let mut scratch: Vec<u32> = vec![0; graph.len()];
    let mut touched: Vec<u32> = Vec::new();
    let mut kernel_steps = 0u64;
    let mut entries = 0u64;
    let mut unflushed = 0u64;
    let mut rows_done = 0u64;
    let mut rows_since_lap = 0u64;
    let mut trip = None;
    for (off, row) in out.iter_mut().enumerate() {
        if off.is_multiple_of(GUARD_STRIDE) {
            if rows_since_lap > 0 {
                if let Some(w) = watch.as_mut() {
                    batch_ns.record(w.lap_ns());
                }
                rows_since_lap = 0;
            }
            trip = state.poll(unflushed);
            unflushed = 0;
            if trip.is_some() || state.stop.load(Ordering::Relaxed) {
                break;
            }
        }
        kernel_steps += fill_links_row(graph, start + off, &mut scratch, &mut touched, row);
        entries += cast::usize_to_u64(row.len());
        unflushed += cast::usize_to_u64(row.len());
        rows_done += 1;
        rows_since_lap += 1;
    }
    if rows_since_lap > 0 {
        if let Some(w) = watch.as_mut() {
            batch_ns.record(w.lap_ns());
        }
    }
    state
        .partial_entries
        .fetch_add(unflushed, Ordering::Relaxed);
    if let Some(span) = shard_span {
        tracer.end(
            span,
            "links.shard",
            Some(Phase::Links),
            worker,
            Payload::new()
                .count("start", cast::usize_to_u64(start))
                .count("rows", rows_done)
                .count("kernel_steps", kernel_steps)
                .count("entries", entries),
        );
    }
    RangeResult {
        kernel_steps,
        entries,
        trip,
        batch_ns,
    }
}

/// Splits `0..n` into `shards` contiguous ranges balanced by the per-row
/// work estimate `Σ_{l∈N(i)} deg(l)` (+1 so empty rows still carry their
/// loop cost). Returns `shards + 1` non-decreasing boundaries starting at
/// 0 and ending at `n`. Purely a function of the graph (via
/// [`crate::shard::shard_by_weights`]), so the partition — and hence each
/// worker's output slice — is deterministic.
fn shard_boundaries(graph: &NeighborGraph, shards: usize) -> Vec<usize> {
    let weights: Vec<u64> = (0..graph.len())
        .map(|i| {
            1 + graph
                .neighbors(i)
                .iter()
                .map(|&l| cast::usize_to_u64(graph.degree(cast::u32_to_usize(l))))
                .sum::<u64>()
        })
        .collect();
    crate::shard::shard_by_weights(&weights, shards)
}

impl LinkTable {
    /// Computes all pairwise link counts from a neighbor graph
    /// (single-threaded).
    pub fn compute(graph: &NeighborGraph) -> Self {
        Self::compute_observed(graph, 1, &Observer::new())
    }

    /// [`compute`](Self::compute) with telemetry, sharded over `threads`
    /// workers (`0` = one per available CPU, capped; tiny inputs stay
    /// single-threaded): inner-kernel visits (the paper's `Σ deg²` cost
    /// measure) and stored entries flow into `observer`'s counters, and
    /// the finished table's size into its memory gauge. The result is
    /// byte-identical for every thread count.
    pub fn compute_observed(graph: &NeighborGraph, threads: usize, observer: &Observer) -> Self {
        let (table, _) = Self::compute_guarded(graph, threads, observer, &Guard::unlimited());
        table
    }

    /// [`compute_observed`](Self::compute_observed) under an execution
    /// [`Guard`]: every worker polls [`Guard::checkpoint`] each
    /// [`GUARD_STRIDE`] rows and flushes its stored-entry tally into the
    /// link-table memory gauge, so budget trips and cancellation stop the
    /// kernel mid-phase. On a trip the partially filled table is returned
    /// together with the trip; counters then cover the completed prefix
    /// only and the caller is expected to discard the partial table
    /// (the pipeline degrades to an all-outlier partition).
    pub fn compute_guarded(
        graph: &NeighborGraph,
        threads: usize,
        observer: &Observer,
        guard: &Guard,
    ) -> (Self, Option<Trip>) {
        let n = graph.len();
        let threads = crate::neighbors::effective_threads(threads, n);
        let mut rows: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        let state = ShardState {
            stop: AtomicBool::new(false),
            partial_entries: AtomicU64::new(0),
            observer,
            guard,
        };
        let mut kernel_steps = 0u64;
        let mut entries = 0u64;
        let mut trip: Option<Trip> = None;
        if threads <= 1 {
            let result = compute_range(graph, 0, 0, &mut rows, &state);
            kernel_steps = result.kernel_steps;
            entries = result.entries;
            trip = result.trip;
            if result.batch_ns.count() > 0 {
                observer
                    .tracer()
                    .record_hist("links.shard_ns", Some(0), &result.batch_ns);
            }
        } else {
            let bounds = shard_boundaries(graph, threads);
            // Per-worker tallies come back through the join handles and
            // are summed in spawn (= row-range) order, so the flushed
            // totals are deterministic for every thread count.
            let results = std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(threads);
                let mut rest: &mut [Vec<(u32, u32)>] = &mut rows;
                let mut prev = 0usize;
                for w in 0..threads {
                    let (slice, tail) = rest.split_at_mut(bounds[w + 1] - prev);
                    rest = tail;
                    let start = prev;
                    prev = bounds[w + 1];
                    let state = &state;
                    let worker = cast::usize_to_u64(w);
                    handles.push(
                        scope.spawn(move || compute_range(graph, worker, start, slice, state)),
                    );
                }
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(result) => result,
                        Err(panic) => std::panic::resume_unwind(panic),
                    })
                    .collect::<Vec<_>>()
            });
            for (w, result) in results.into_iter().enumerate() {
                kernel_steps += result.kernel_steps;
                entries += result.entries;
                trip = trip.or(result.trip);
                if result.batch_ns.count() > 0 {
                    observer.tracer().record_hist(
                        "links.shard_ns",
                        Some(cast::usize_to_u64(w)),
                        &result.batch_ns,
                    );
                }
            }
        }
        let table = LinkTable { rows };
        let counters = observer.counters();
        PipelineCounters::add(&counters.link_kernel_steps, kernel_steps);
        PipelineCounters::add(&counters.link_entries, entries);
        if trip.is_none() {
            // Only a finished table publishes its full (capacity-based)
            // footprint; a tripped run leaves the gauge at the partial
            // entry bytes already flushed.
            MemoryGauges::observe(
                &observer.memory().link_table,
                cast::usize_to_u64(table.estimated_bytes()),
            );
        }
        (table, trip)
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table covers no points.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Link count between `i` and `j` (0 when they share no neighbor).
    pub fn link(&self, i: usize, j: usize) -> u32 {
        if i == j {
            return 0;
        }
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        match self.rows[lo].binary_search_by_key(&cast::usize_to_u32(hi), |&(j, _)| j) {
            Ok(pos) => self.rows[lo][pos].1,
            Err(_) => 0,
        }
    }

    /// Upper-triangle row of point `i`: sorted `(j, link)` pairs with `j > i`.
    pub fn row(&self, i: usize) -> &[(u32, u32)] {
        &self.rows[i]
    }

    /// Iterates every nonzero `(i, j, link)` with `i < j`.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, u32)> + '_ {
        self.rows
            .iter()
            .enumerate()
            .flat_map(|(i, row)| row.iter().map(move |&(j, c)| (cast::usize_to_u32(i), j, c)))
    }

    /// Number of stored nonzero entries.
    pub fn num_entries(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Sum of all link counts over unordered pairs.
    pub fn total_links(&self) -> u64 {
        self.rows
            .iter()
            .flat_map(|r| r.iter())
            .map(|&(_, c)| u64::from(c))
            .sum()
    }
}

impl MemoryEstimate for LinkTable {
    fn estimated_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.rows.capacity() * std::mem::size_of::<Vec<(u32, u32)>>()
            + self
                .rows
                .iter()
                .map(|r| r.capacity() * std::mem::size_of::<(u32, u32)>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Transaction, TransactionSet};
    use crate::neighbors::NeighborGraph;
    use crate::similarity::Jaccard;

    fn graph_of(transactions: Vec<Transaction>, theta: f64) -> NeighborGraph {
        let data: TransactionSet = transactions.into_iter().collect();
        NeighborGraph::compute(&data, &Jaccard, theta, 1).unwrap()
    }

    /// Brute-force reference: link(i,j) = |N(i) ∩ N(j)|.
    fn reference_link(g: &NeighborGraph, i: usize, j: usize) -> u32 {
        let (a, b) = (g.neighbors(i), g.neighbors(j));
        let sb: std::collections::HashSet<u32> = b.iter().copied().collect();
        a.iter().filter(|x| sb.contains(x)).count() as u32
    }

    #[test]
    fn clique_links() {
        // Four identical points: everyone neighbors everyone, so each pair
        // has the remaining 2 points as common neighbors.
        let data = vec![
            Transaction::new([0, 1]),
            Transaction::new([0, 1]),
            Transaction::new([0, 1]),
            Transaction::new([0, 1]),
        ];
        let g = graph_of(data, 0.9);
        let t = LinkTable::compute(&g);
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    assert_eq!(t.link(i, j), 2, "pair ({i},{j})");
                }
            }
        }
        assert_eq!(t.num_entries(), 6);
        assert_eq!(t.total_links(), 12);
    }

    #[test]
    fn disconnected_points_have_zero_links() {
        let data = vec![
            Transaction::new([0, 1]),
            Transaction::new([0, 1]),
            Transaction::new([10, 11]),
        ];
        let g = graph_of(data, 0.9);
        let t = LinkTable::compute(&g);
        assert_eq!(t.link(0, 2), 0);
        assert_eq!(t.link(1, 2), 0);
        // A pair of mutual neighbors with no *common* neighbor has 0 links.
        assert_eq!(t.link(0, 1), 0);
    }

    #[test]
    fn path_graph_links() {
        // Points: a-b-c chain (a~b, b~c, a!~c): link(a,c) = 1 (via b),
        // link(a,b) = 0, link(b,c) = 0.
        let data = vec![
            Transaction::new([0, 1, 2, 3]), // a
            Transaction::new([2, 3, 4, 5]), // b: sim(a,b)=2/6=1/3
            Transaction::new([4, 5, 6, 7]), // c: sim(b,c)=1/3, sim(a,c)=0
        ];
        let g = graph_of(data, 1.0 / 3.0);
        assert_eq!(g.neighbors(1), &[0, 2]);
        let t = LinkTable::compute(&g);
        assert_eq!(t.link(0, 2), 1);
        assert_eq!(t.link(0, 1), 0);
        assert_eq!(t.link(1, 2), 0);
    }

    #[test]
    fn self_links_are_zero() {
        let data = vec![Transaction::new([0]), Transaction::new([0])];
        let g = graph_of(data, 0.5);
        let t = LinkTable::compute(&g);
        assert_eq!(t.link(0, 0), 0);
        assert_eq!(t.link(1, 1), 0);
    }

    #[test]
    fn symmetric_accessor() {
        let data = vec![
            Transaction::new([0, 1]),
            Transaction::new([0, 1]),
            Transaction::new([0, 1]),
        ];
        let t = LinkTable::compute(&graph_of(data, 0.9));
        assert_eq!(t.link(0, 2), t.link(2, 0));
        assert_eq!(t.link(0, 2), 1);
    }

    #[test]
    fn matches_bruteforce_on_random_structure() {
        // Deterministic pseudo-random transactions; cross-check every pair.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let data: Vec<Transaction> = (0..60)
            .map(|_| {
                let len = 3 + (next() % 5) as usize;
                Transaction::new((0..len).map(|_| (next() % 25) as u32))
            })
            .collect();
        let g = graph_of(data, 0.3);
        let t = LinkTable::compute(&g);
        for i in 0..g.len() {
            for j in (i + 1)..g.len() {
                assert_eq!(t.link(i, j), reference_link(&g, i, j), "pair ({i},{j})");
            }
        }
    }

    #[test]
    fn iter_yields_upper_triangle() {
        let data = vec![
            Transaction::new([0, 1]),
            Transaction::new([0, 1]),
            Transaction::new([0, 1]),
        ];
        let t = LinkTable::compute(&graph_of(data, 0.9));
        for (i, j, c) in t.iter() {
            assert!(i < j);
            assert!(c > 0);
        }
        assert_eq!(t.iter().count(), t.num_entries());
    }

    /// A random graph with enough rows to clear the tiny-input
    /// single-thread cutoff in [`effective_threads`], plus skewed
    /// degrees so shard boundaries actually move with the weights.
    fn random_graph(seed: u64) -> NeighborGraph {
        let mut rng = crate::rng::Rng::seed_from_u64(seed);
        let n = rng.gen_range(300..500usize);
        let data: Vec<Transaction> = (0..n)
            .map(|_| {
                // Two vocabularies of very different sizes: items drawn
                // from the small one create dense hub rows.
                let vocab: usize = if rng.gen_bool(0.3) { 6 } else { 40 };
                let len = rng.gen_range(2..6usize);
                Transaction::new((0..len).map(|_| rng.gen_range(0..vocab) as u32))
            })
            .collect();
        graph_of(data, 0.4)
    }

    #[test]
    fn parallel_output_is_byte_identical_across_thread_counts() {
        const CASES: u64 = 16;
        for seed in 0..CASES {
            let g = random_graph(seed);
            let base_obs = Observer::new();
            let base = LinkTable::compute_observed(&g, 1, &base_obs);
            let base_counters = base_obs.counters().snapshot();
            for threads in [2usize, 4, 8] {
                let obs = Observer::new();
                let t = LinkTable::compute_observed(&g, threads, &obs);
                assert_eq!(t, base, "seed {seed}, threads {threads}");
                let c = obs.counters().snapshot();
                assert_eq!(
                    c.link_kernel_steps, base_counters.link_kernel_steps,
                    "seed {seed}, threads {threads}"
                );
                assert_eq!(
                    c.link_entries, base_counters.link_entries,
                    "seed {seed}, threads {threads}"
                );
                // The completed-run high-water gauge is capacity-based and
                // must not depend on worker interleaving.
                assert_eq!(
                    obs.memory().snapshot().link_table,
                    base_obs.memory().snapshot().link_table,
                    "seed {seed}, threads {threads}"
                );
            }
        }
    }

    #[test]
    fn shard_boundaries_partition_all_rows() {
        for seed in 0..8u64 {
            let g = random_graph(seed);
            let n = g.len();
            for shards in 1..=8usize {
                let bounds = shard_boundaries(&g, shards);
                assert_eq!(bounds.len(), shards + 1);
                assert_eq!(bounds[0], 0);
                assert_eq!(bounds[shards], n);
                for w in bounds.windows(2) {
                    assert!(w[0] <= w[1], "non-decreasing boundaries");
                }
            }
        }
    }

    #[test]
    fn shard_boundaries_with_more_shards_than_rows() {
        let data = vec![
            Transaction::new([0, 1]),
            Transaction::new([0, 1]),
            Transaction::new([0, 1]),
        ];
        let g = graph_of(data, 0.9);
        let bounds = shard_boundaries(&g, 8);
        assert_eq!(bounds.len(), 9);
        assert_eq!(bounds[0], 0);
        assert_eq!(*bounds.last().unwrap(), 3);
        // Every row is covered exactly once by the slices.
        let covered: usize = bounds.windows(2).map(|w| w[1] - w[0]).sum();
        assert_eq!(covered, 3);
    }

    #[test]
    fn injected_trip_stops_the_kernel_mid_phase() {
        let g = random_graph(0);
        let observer = Observer::new();
        let guard = Guard::unlimited().inject_trip_at(Phase::Links);
        let (_, trip) = LinkTable::compute_guarded(&g, 4, &observer, &guard);
        let trip = trip.expect("injected trip must surface from the workers");
        assert_eq!(trip.phase, Phase::Links);
        // The workers stopped early: strictly fewer kernel steps than the
        // full run performs on this graph.
        let full_obs = Observer::new();
        let _ = LinkTable::compute_observed(&g, 1, &full_obs);
        let partial = observer.counters().snapshot().link_kernel_steps;
        let full = full_obs.counters().snapshot().link_kernel_steps;
        assert!(partial < full, "partial {partial} vs full {full}");
    }
}
