//! Link computation (paper §4.1, procedure `compute_links`).
//!
//! `link(p, q)` is the number of common neighbors of `p` and `q`. The paper
//! computes links by "multiplying" the neighbor adjacency structure with
//! itself: for every point `l`, every pair of `l`'s neighbors gains one
//! link. The cost is `Σ_l deg(l)²` — between `O(n·m_a·m_m)` and `O(n²·m_a)`
//! — and is the second hot spot after neighbor computation.
//!
//! Instead of a hash map per increment we sweep one dense `u32` scratch row
//! per point: for point `i`, `scratch[j] = |N(i) ∩ N(j)|` is accumulated by
//! walking `j ∈ N(l)` for every `l ∈ N(i)`, then the touched entries are
//! harvested into a sparse row. This is the classic sparse
//! matrix-square-row kernel and keeps the inner loop to an indexed add.

use crate::cast;
use crate::neighbors::NeighborGraph;
use crate::telemetry::{MemoryEstimate, MemoryGauges, Observer, PipelineCounters};

/// Sparse symmetric matrix of link counts, stored as upper-triangle rows:
/// `rows[i]` holds `(j, link(i, j))` for `j > i`, sorted by `j`.
#[derive(Debug, Clone)]
pub struct LinkTable {
    rows: Vec<Vec<(u32, u32)>>,
}

impl LinkTable {
    /// Computes all pairwise link counts from a neighbor graph.
    pub fn compute(graph: &NeighborGraph) -> Self {
        Self::compute_observed(graph, &Observer::new())
    }

    /// [`compute`](Self::compute) with telemetry: inner-kernel visits
    /// (the paper's `Σ deg²` cost measure) and stored entries flow into
    /// `observer`'s counters, and the finished table's size into its
    /// memory gauge.
    #[allow(clippy::needless_range_loop)] // scratch/touched/rows are parallel arrays
    pub fn compute_observed(graph: &NeighborGraph, observer: &Observer) -> Self {
        let n = graph.len();
        let mut rows: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        // Dense scratch: counts for the current source row; `touched`
        // records which entries must be reset (rows are usually sparse).
        let mut scratch: Vec<u32> = vec![0; n];
        let mut touched: Vec<u32> = Vec::new();
        let mut kernel_steps = 0u64;
        for i in 0..n {
            for &l in graph.neighbors(i) {
                kernel_steps += cast::usize_to_u64(graph.degree(cast::u32_to_usize(l)));
                for &j in graph.neighbors(cast::u32_to_usize(l)) {
                    // Only accumulate the upper triangle (j > i); the pair
                    // (i, j) with j < i was produced when j was the source.
                    if cast::u32_to_usize(j) > i {
                        if scratch[cast::u32_to_usize(j)] == 0 {
                            touched.push(j);
                        }
                        scratch[cast::u32_to_usize(j)] += 1;
                    }
                }
            }
            if !touched.is_empty() {
                touched.sort_unstable();
                let row: Vec<(u32, u32)> = touched
                    .iter()
                    .map(|&j| {
                        let c = scratch[cast::u32_to_usize(j)];
                        scratch[cast::u32_to_usize(j)] = 0;
                        (j, c)
                    })
                    .collect();
                rows[i] = row;
                touched.clear();
            }
        }
        let table = LinkTable { rows };
        let counters = observer.counters();
        PipelineCounters::add(&counters.link_kernel_steps, kernel_steps);
        PipelineCounters::add(
            &counters.link_entries,
            cast::usize_to_u64(table.num_entries()),
        );
        MemoryGauges::observe(
            &observer.memory().link_table,
            cast::usize_to_u64(table.estimated_bytes()),
        );
        table
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table covers no points.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Link count between `i` and `j` (0 when they share no neighbor).
    pub fn link(&self, i: usize, j: usize) -> u32 {
        if i == j {
            return 0;
        }
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        match self.rows[lo].binary_search_by_key(&cast::usize_to_u32(hi), |&(j, _)| j) {
            Ok(pos) => self.rows[lo][pos].1,
            Err(_) => 0,
        }
    }

    /// Upper-triangle row of point `i`: sorted `(j, link)` pairs with `j > i`.
    pub fn row(&self, i: usize) -> &[(u32, u32)] {
        &self.rows[i]
    }

    /// Iterates every nonzero `(i, j, link)` with `i < j`.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, u32)> + '_ {
        self.rows
            .iter()
            .enumerate()
            .flat_map(|(i, row)| row.iter().map(move |&(j, c)| (cast::usize_to_u32(i), j, c)))
    }

    /// Number of stored nonzero entries.
    pub fn num_entries(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Sum of all link counts over unordered pairs.
    pub fn total_links(&self) -> u64 {
        self.rows
            .iter()
            .flat_map(|r| r.iter())
            .map(|&(_, c)| u64::from(c))
            .sum()
    }
}

impl MemoryEstimate for LinkTable {
    fn estimated_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.rows.capacity() * std::mem::size_of::<Vec<(u32, u32)>>()
            + self
                .rows
                .iter()
                .map(|r| r.capacity() * std::mem::size_of::<(u32, u32)>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Transaction, TransactionSet};
    use crate::neighbors::NeighborGraph;
    use crate::similarity::Jaccard;

    fn graph_of(transactions: Vec<Transaction>, theta: f64) -> NeighborGraph {
        let data: TransactionSet = transactions.into_iter().collect();
        NeighborGraph::compute(&data, &Jaccard, theta, 1).unwrap()
    }

    /// Brute-force reference: link(i,j) = |N(i) ∩ N(j)|.
    fn reference_link(g: &NeighborGraph, i: usize, j: usize) -> u32 {
        let (a, b) = (g.neighbors(i), g.neighbors(j));
        let sb: std::collections::HashSet<u32> = b.iter().copied().collect();
        a.iter().filter(|x| sb.contains(x)).count() as u32
    }

    #[test]
    fn clique_links() {
        // Four identical points: everyone neighbors everyone, so each pair
        // has the remaining 2 points as common neighbors.
        let data = vec![
            Transaction::new([0, 1]),
            Transaction::new([0, 1]),
            Transaction::new([0, 1]),
            Transaction::new([0, 1]),
        ];
        let g = graph_of(data, 0.9);
        let t = LinkTable::compute(&g);
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    assert_eq!(t.link(i, j), 2, "pair ({i},{j})");
                }
            }
        }
        assert_eq!(t.num_entries(), 6);
        assert_eq!(t.total_links(), 12);
    }

    #[test]
    fn disconnected_points_have_zero_links() {
        let data = vec![
            Transaction::new([0, 1]),
            Transaction::new([0, 1]),
            Transaction::new([10, 11]),
        ];
        let g = graph_of(data, 0.9);
        let t = LinkTable::compute(&g);
        assert_eq!(t.link(0, 2), 0);
        assert_eq!(t.link(1, 2), 0);
        // A pair of mutual neighbors with no *common* neighbor has 0 links.
        assert_eq!(t.link(0, 1), 0);
    }

    #[test]
    fn path_graph_links() {
        // Points: a-b-c chain (a~b, b~c, a!~c): link(a,c) = 1 (via b),
        // link(a,b) = 0, link(b,c) = 0.
        let data = vec![
            Transaction::new([0, 1, 2, 3]), // a
            Transaction::new([2, 3, 4, 5]), // b: sim(a,b)=2/6=1/3
            Transaction::new([4, 5, 6, 7]), // c: sim(b,c)=1/3, sim(a,c)=0
        ];
        let g = graph_of(data, 1.0 / 3.0);
        assert_eq!(g.neighbors(1), &[0, 2]);
        let t = LinkTable::compute(&g);
        assert_eq!(t.link(0, 2), 1);
        assert_eq!(t.link(0, 1), 0);
        assert_eq!(t.link(1, 2), 0);
    }

    #[test]
    fn self_links_are_zero() {
        let data = vec![Transaction::new([0]), Transaction::new([0])];
        let g = graph_of(data, 0.5);
        let t = LinkTable::compute(&g);
        assert_eq!(t.link(0, 0), 0);
        assert_eq!(t.link(1, 1), 0);
    }

    #[test]
    fn symmetric_accessor() {
        let data = vec![
            Transaction::new([0, 1]),
            Transaction::new([0, 1]),
            Transaction::new([0, 1]),
        ];
        let t = LinkTable::compute(&graph_of(data, 0.9));
        assert_eq!(t.link(0, 2), t.link(2, 0));
        assert_eq!(t.link(0, 2), 1);
    }

    #[test]
    fn matches_bruteforce_on_random_structure() {
        // Deterministic pseudo-random transactions; cross-check every pair.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let data: Vec<Transaction> = (0..60)
            .map(|_| {
                let len = 3 + (next() % 5) as usize;
                Transaction::new((0..len).map(|_| (next() % 25) as u32))
            })
            .collect();
        let g = graph_of(data, 0.3);
        let t = LinkTable::compute(&g);
        for i in 0..g.len() {
            for j in (i + 1)..g.len() {
                assert_eq!(t.link(i, j), reference_link(&g, i, j), "pair ({i},{j})");
            }
        }
    }

    #[test]
    fn iter_yields_upper_triangle() {
        let data = vec![
            Transaction::new([0, 1]),
            Transaction::new([0, 1]),
            Transaction::new([0, 1]),
        ];
        let t = LinkTable::compute(&graph_of(data, 0.9));
        for (i, j, c) in t.iter() {
            assert!(i < j);
            assert!(c > 0);
        }
        assert_eq!(t.iter().count(), t.num_entries());
    }
}
