//! Persisting fitted models: the `rock-model/v1` snapshot format.
//!
//! ROCK's labeling pass (paper §4.2) makes a fitted model *servable*: the
//! per-cluster representative sets `L_i`, the threshold θ and the link
//! exponent `f(θ)` are everything needed to assign an arbitrary outside
//! point via `N_i / (|L_i| + 1)^{f(θ)}`. A [`ModelSnapshot`] captures
//! exactly that closure — plus the interned item table so textual records
//! can be mapped into item-id space — in a versioned, line-oriented,
//! dependency-free text format with a content checksum:
//!
//! ```text
//! rock-model/v1
//! checksum fnv1a64 91ec59a92b3f0ab0
//! theta 3fe999999999999a 0.8
//! exponent 3fbc71c71c71c71c 0.11111111111111113
//! similarity jaccard
//! policy mark
//! universe 5
//! clusters 2
//! vocab 5
//! v 65535 bread
//! v 65535 milk
//! ...
//! reps 0 2
//! r 0 1 3
//! r 0 1
//! reps 1 1
//! r 2 4
//! end rock-model/v1
//! ```
//!
//! The checksum is FNV-1a 64 over every byte *after* the checksum line;
//! any corruption — truncation, bit flips, hand edits — is detected at
//! load time. Loading never panics: malformed input surfaces as
//! [`RockError::SnapshotVersion`], [`RockError::SnapshotChecksum`],
//! [`RockError::SnapshotFormat`] or [`RockError::SnapshotInvalid`], all
//! mapped to the CLI's "malformed input" exit code (4).
//!
//! Serialization is canonical: saving, loading and saving again produces
//! byte-identical output (floats round-trip through their IEEE-754 bit
//! patterns; the human-readable decimal on the same line is advisory).

use std::io::Write;
use std::path::Path;

use crate::cast;
use crate::data::{AttrId, Transaction, TransactionSet, Vocabulary};
use crate::error::{Result, RockError};
use crate::goodness::ConstantExponent;
use crate::hash::fnv1a64;
use crate::labeling::{label_point, DenseReps, LabelingConfig, Representatives};
use crate::rock::RockModel;
use crate::sampling::seeded_rng;
use crate::similarity::{Cosine, Dice, Jaccard, Overlap, Similarity};

/// Format header (and footer) line; the version is part of the name.
const HEADER: &str = "rock-model/v1";

/// Escapes a vocabulary value for single-line storage (`\` → `\\`,
/// newline → `\n`, carriage return → `\r`).
fn escape_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out
}

/// Inverse of [`escape_value`]; rejects dangling or unknown escapes.
fn unescape_value(s: &str) -> std::result::Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => return Err(format!("unknown escape \\{other}")),
            None => return Err("dangling escape at end of value".to_owned()),
        }
    }
    Ok(out)
}

/// The similarity measure a snapshot was fitted with, by name.
///
/// Snapshots store the measure as a string; this enum is the closed set
/// of *stateless* measures the loader can reconstruct (parameterized
/// measures like `HammingRecord` would need their parameters persisted
/// and are not servable today). It implements [`Similarity`] by dispatch
/// so a loaded model labels with the exact fitted measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimilarityKind {
    /// Jaccard coefficient (the paper's measure).
    Jaccard,
    /// Dice coefficient.
    Dice,
    /// Overlap coefficient.
    Overlap,
    /// Cosine similarity of indicator vectors.
    Cosine,
}

impl SimilarityKind {
    /// Parses a measure name as written by [`Similarity::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "jaccard" => Some(SimilarityKind::Jaccard),
            "dice" => Some(SimilarityKind::Dice),
            "overlap" => Some(SimilarityKind::Overlap),
            "cosine" => Some(SimilarityKind::Cosine),
            _ => None,
        }
    }
}

impl SimilarityKind {
    /// The measure from precomputed set sizes — the dispatch the
    /// bit-packed labeling index uses. Every arm calls the same
    /// `from_counts` definition [`Similarity::sim`] is built on, so the
    /// packed and merge-based labeling paths produce bit-identical
    /// floats.
    #[inline]
    #[must_use]
    pub fn sim_from_counts(self, inter: usize, a_len: usize, b_len: usize) -> f64 {
        match self {
            SimilarityKind::Jaccard => Jaccard::from_counts(inter, a_len, b_len),
            SimilarityKind::Dice => Dice::from_counts(inter, a_len, b_len),
            SimilarityKind::Overlap => Overlap::from_counts(inter, a_len, b_len),
            SimilarityKind::Cosine => Cosine::from_counts(inter, a_len, b_len),
        }
    }
}

impl Similarity for SimilarityKind {
    fn sim(&self, a: &Transaction, b: &Transaction) -> f64 {
        match self {
            SimilarityKind::Jaccard => Jaccard.sim(a, b),
            SimilarityKind::Dice => Dice.sim(a, b),
            SimilarityKind::Overlap => Overlap.sim(a, b),
            SimilarityKind::Cosine => Cosine.sim(a, b),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            SimilarityKind::Jaccard => Jaccard.name(),
            SimilarityKind::Dice => Dice.name(),
            SimilarityKind::Overlap => Overlap.name(),
            SimilarityKind::Cosine => Cosine.name(),
        }
    }

    fn count_kind(&self) -> Option<SimilarityKind> {
        Some(*self)
    }
}

/// What a loaded model does with points that have no θ-neighbor in any
/// representative set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutlierPolicy {
    /// Report the point as an outlier (`None`) — the paper's behavior.
    #[default]
    Mark,
    /// Fall back to the cluster holding the most similar representative
    /// (ties to the lower cluster index); still an outlier when every
    /// similarity is zero.
    Nearest,
}

impl OutlierPolicy {
    /// Stable serialized name.
    pub fn name(self) -> &'static str {
        match self {
            OutlierPolicy::Mark => "mark",
            OutlierPolicy::Nearest => "nearest",
        }
    }

    /// Parses a serialized name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "mark" => Some(OutlierPolicy::Mark),
            "nearest" => Some(OutlierPolicy::Nearest),
            _ => None,
        }
    }
}

/// A self-contained, servable fitted model: everything §4.2 labeling
/// needs, detached from the process that fitted it.
#[derive(Debug, Clone)]
pub struct ModelSnapshot {
    theta: f64,
    exponent: f64,
    similarity: SimilarityKind,
    policy: OutlierPolicy,
    universe: usize,
    vocabulary: Option<Vocabulary>,
    reps: Representatives,
    /// Bit-packed representative index, built at construction for small
    /// universes. Derived from `reps` — never rendered, never compared;
    /// [`ModelSnapshot::label`] answers identically with or without it.
    dense: Option<DenseReps>,
}

impl ModelSnapshot {
    /// Assembles a snapshot from explicit parts, validating invariants.
    ///
    /// # Errors
    /// [`RockError::SnapshotInvalid`] when θ or `f(θ)` is out of range,
    /// the vocabulary size disagrees with the universe, there are no
    /// clusters, or a representative references an item outside the
    /// universe.
    pub fn new(
        theta: f64,
        exponent: f64,
        similarity: SimilarityKind,
        policy: OutlierPolicy,
        universe: usize,
        vocabulary: Option<Vocabulary>,
        reps: Representatives,
    ) -> Result<Self> {
        let mut snapshot = ModelSnapshot {
            theta,
            exponent,
            similarity,
            policy,
            universe,
            vocabulary,
            reps,
            dense: None,
        };
        snapshot.validate()?;
        snapshot.dense = DenseReps::build(&snapshot.reps, snapshot.universe);
        Ok(snapshot)
    }

    /// Captures a fitted model as a snapshot: draws the representative
    /// sets `L_i` from the model's final clusters over `data` (seeded —
    /// the same seed always draws the same sets) and records the labeling
    /// closure.
    ///
    /// # Errors
    /// Propagates labeling-config validation and snapshot invariants.
    #[allow(clippy::too_many_arguments)] // a snapshot is exactly this closure
    pub fn from_model(
        data: &TransactionSet,
        model: &RockModel,
        theta: f64,
        exponent: f64,
        similarity: SimilarityKind,
        policy: OutlierPolicy,
        labeling: &LabelingConfig,
        seed: u64,
    ) -> Result<Self> {
        let mut rng = seeded_rng(seed);
        let reps = Representatives::draw(data, model.clusters(), labeling, &mut rng)?;
        Self::new(
            theta,
            exponent,
            similarity,
            policy,
            data.universe(),
            data.vocabulary().cloned(),
            reps,
        )
    }

    fn validate(&self) -> Result<()> {
        if !(self.theta > 0.0 && self.theta < 1.0) {
            return Err(RockError::SnapshotInvalid {
                message: format!("theta {} outside (0, 1)", self.theta),
            });
        }
        if !self.exponent.is_finite() || self.exponent < 0.0 {
            return Err(RockError::SnapshotInvalid {
                message: format!(
                    "exponent {} is not a finite non-negative value",
                    self.exponent
                ),
            });
        }
        if self.reps.num_clusters() == 0 {
            return Err(RockError::SnapshotInvalid {
                message: "snapshot has no clusters".to_owned(),
            });
        }
        if let Some(vocab) = &self.vocabulary {
            if vocab.len() != self.universe {
                return Err(RockError::SnapshotInvalid {
                    message: format!(
                        "vocabulary has {} items but universe is {}",
                        vocab.len(),
                        self.universe
                    ),
                });
            }
        }
        for c in 0..self.reps.num_clusters() {
            for t in self.reps.set(c) {
                if let Some(&item) = t
                    .items()
                    .iter()
                    .find(|&&i| cast::u32_to_usize(i) >= self.universe)
                {
                    return Err(RockError::SnapshotInvalid {
                        message: format!(
                            "cluster {c} representative references item {item} outside universe {}",
                            self.universe
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// The fitted similarity threshold θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The fitted link exponent value `f(θ)`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// The fitted similarity measure.
    pub fn similarity(&self) -> SimilarityKind {
        self.similarity
    }

    /// The outlier policy applied by [`ModelSnapshot::label`].
    pub fn policy(&self) -> OutlierPolicy {
        self.policy
    }

    /// Number of items in the universe.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.reps.num_clusters()
    }

    /// The persisted representative sets.
    pub fn representatives(&self) -> &Representatives {
        &self.reps
    }

    /// The interned item table, when the fit carried one.
    pub fn vocabulary(&self) -> Option<&Vocabulary> {
        self.vocabulary.as_ref()
    }

    /// Labels one point with the paper's §4.2 rule, applying the
    /// snapshot's outlier policy. Deterministic: no RNG, ties break to
    /// the lower cluster index.
    pub fn label(&self, point: &Transaction) -> Option<usize> {
        let mut scratch = Vec::new();
        let hit = self.hit_with(point, &mut scratch);
        match (hit, self.policy) {
            (Some(c), _) => Some(c),
            (None, OutlierPolicy::Mark) => None,
            (None, OutlierPolicy::Nearest) => self.nearest(point),
        }
    }

    /// The §4.2 threshold rule without the outlier policy, through the
    /// bit-packed index when one was built (small universes) and the
    /// sorted-merge kernel otherwise. Both paths evaluate the same
    /// `from_counts` similarity definitions on the same integer counts,
    /// so the answer is identical either way.
    fn hit_with(&self, point: &Transaction, scratch: &mut Vec<u64>) -> Option<usize> {
        match &self.dense {
            Some(dense) => {
                dense.prepare_scratch(scratch);
                dense.label_point(
                    point,
                    |inter, a, b| self.similarity.sim_from_counts(inter, a, b),
                    self.theta,
                    self.exponent,
                    scratch,
                )
            }
            None => label_point(
                point,
                &self.reps,
                &self.similarity,
                &ConstantExponent(self.exponent),
                self.theta,
            ),
        }
    }

    /// Labels a chunk of points through the parallel labeling kernel
    /// (`threads` workers over contiguous slices; `0` = one per CPU,
    /// capped at 16), applying the snapshot's outlier policy to every
    /// point. Deterministic: output order matches input order and is
    /// independent of the thread count — the invariant the streaming
    /// checkpoint layer's byte-identical-resume guarantee rests on.
    pub fn label_chunk(&self, points: &[&Transaction], threads: usize) -> Vec<Option<usize>> {
        let n = points.len();
        let hw = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(16);
        let threads = if threads == 0 { hw } else { threads };
        let mut out = if threads <= 1 || n < 256 {
            let mut scratch = Vec::new();
            points
                .iter()
                .map(|p| self.hit_with(p, &mut scratch))
                .collect()
        } else {
            let mut out: Vec<Option<usize>> = vec![None; n];
            let chunk = n.div_ceil(threads);
            std::thread::scope(|scope| {
                for (slice_in, slice_out) in points.chunks(chunk).zip(out.chunks_mut(chunk)) {
                    scope.spawn(move || {
                        let mut scratch = Vec::new();
                        for (p, o) in slice_in.iter().zip(slice_out.iter_mut()) {
                            *o = self.hit_with(p, &mut scratch);
                        }
                    });
                }
            });
            out
        };
        if self.policy == OutlierPolicy::Nearest {
            for (p, l) in points.iter().zip(out.iter_mut()) {
                if l.is_none() {
                    *l = self.nearest(p);
                }
            }
        }
        out
    }

    /// Nearest-representative fallback: the cluster with the most similar
    /// representative, provided any similarity is positive.
    fn nearest(&self, point: &Transaction) -> Option<usize> {
        let mut best: Option<(f64, usize)> = None;
        for c in 0..self.reps.num_clusters() {
            for r in self.reps.set(c) {
                let s = self.similarity.sim(point, r);
                if s > 0.0 && best.is_none_or(|(b, _)| s > b) {
                    best = Some((s, c));
                }
            }
        }
        best.map(|(_, c)| c)
    }

    /// Maps a textual table record (one cell per schema column, in the
    /// fitted column order) into item-id space via the snapshot's
    /// vocabulary. Cells equal to `missing` and values never seen at fit
    /// time contribute no item — exactly how the offline pipeline treats
    /// missing cells.
    ///
    /// # Errors
    /// [`RockError::SnapshotInvalid`] when the snapshot carries no
    /// vocabulary or the record has more columns than the attribute id
    /// space.
    pub fn transaction_from_cells(&self, cells: &[&str], missing: &str) -> Result<Transaction> {
        let vocab = self.require_vocabulary()?;
        let mut items: Vec<u32> = Vec::with_capacity(cells.len());
        for (j, &cell) in cells.iter().enumerate() {
            if j >= usize::from(u16::MAX) {
                return Err(RockError::SnapshotInvalid {
                    message: format!(
                        "record has {} columns, beyond the attribute id space",
                        cells.len()
                    ),
                });
            }
            if cell == missing {
                continue;
            }
            if let Some(id) = vocab.get(AttrId(cast::usize_to_u16(j)), cell) {
                items.push(id.0);
            }
        }
        Ok(Transaction::new(items))
    }

    /// Maps market-basket item names into item-id space via the
    /// snapshot's vocabulary; unknown items contribute nothing.
    ///
    /// # Errors
    /// [`RockError::SnapshotInvalid`] when the snapshot carries no
    /// vocabulary.
    pub fn transaction_from_basket<'a, I: IntoIterator<Item = &'a str>>(
        &self,
        names: I,
    ) -> Result<Transaction> {
        let vocab = self.require_vocabulary()?;
        let items: Vec<u32> = names
            .into_iter()
            .filter_map(|name| vocab.get(Vocabulary::BASKET_ATTR, name))
            .map(|id| id.0)
            .collect();
        Ok(Transaction::new(items))
    }

    fn require_vocabulary(&self) -> Result<&Vocabulary> {
        self.vocabulary
            .as_ref()
            .ok_or_else(|| RockError::SnapshotInvalid {
                message: "snapshot has no vocabulary; textual records cannot be mapped".to_owned(),
            })
    }

    /// Renders the canonical `rock-model/v1` text. Rendering the same
    /// snapshot always yields the same bytes, and `parse(render(s))`
    /// re-renders byte-identically.
    pub fn render(&self) -> String {
        let mut body = String::new();
        body.push_str(&format!(
            "theta {:016x} {}\n",
            self.theta.to_bits(),
            self.theta
        ));
        body.push_str(&format!(
            "exponent {:016x} {}\n",
            self.exponent.to_bits(),
            self.exponent
        ));
        body.push_str(&format!("similarity {}\n", self.similarity.name()));
        body.push_str(&format!("policy {}\n", self.policy.name()));
        body.push_str(&format!("universe {}\n", self.universe));
        body.push_str(&format!("clusters {}\n", self.reps.num_clusters()));
        match &self.vocabulary {
            None => body.push_str("vocab 0\n"),
            Some(vocab) => {
                body.push_str(&format!("vocab {}\n", vocab.len()));
                for (_, key) in vocab.iter() {
                    body.push_str(&format!("v {} {}\n", key.attr.0, escape_value(&key.value)));
                }
            }
        }
        for c in 0..self.reps.num_clusters() {
            let set = self.reps.set(c);
            body.push_str(&format!("reps {c} {}\n", set.len()));
            for t in set {
                body.push('r');
                for &item in t.items() {
                    body.push_str(&format!(" {item}"));
                }
                body.push('\n');
            }
        }
        body.push_str(&format!("end {HEADER}\n"));
        format!(
            "{HEADER}\nchecksum fnv1a64 {:016x}\n{body}",
            fnv1a64(body.as_bytes())
        )
    }

    /// Writes the canonical text to `out`.
    ///
    /// # Errors
    /// Propagates I/O errors from the writer.
    pub fn write_to<W: Write>(&self, out: &mut W) -> std::io::Result<()> {
        out.write_all(self.render().as_bytes())
    }

    /// Content fingerprint of the snapshot: FNV-1a 64 over the canonical
    /// rendering. Two snapshots fingerprint equal iff they render to the
    /// same bytes, so the streaming checkpoint layer uses this to refuse
    /// resuming a run against a different model.
    pub fn fingerprint(&self) -> u64 {
        fnv1a64(self.render().as_bytes())
    }

    /// [`ModelSnapshot::fingerprint`] rendered the canonical way every
    /// subsystem prints it: 16 lowercase hex digits, zero-padded. The
    /// checkpoint `model` line and the serve registry's model-identity
    /// headers both use this form, so logs and traces cross-reference
    /// byte-for-byte.
    pub fn fingerprint_hex(&self) -> String {
        format!("{:016x}", self.fingerprint())
    }

    /// Saves the snapshot to `path`.
    ///
    /// # Errors
    /// [`RockError::Io`] on filesystem failure.
    pub fn save(&self, path: &Path) -> Result<()> {
        std::fs::write(path, self.render()).map_err(|e| RockError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })
    }

    /// Parses snapshot text, verifying version, checksum, grammar and
    /// semantic invariants. Never panics on malformed input.
    ///
    /// # Errors
    /// [`RockError::SnapshotVersion`] for an unknown header,
    /// [`RockError::SnapshotChecksum`] when the body was altered,
    /// [`RockError::SnapshotFormat`] for grammar defects and
    /// [`RockError::SnapshotInvalid`] for semantic ones.
    pub fn parse(text: &str) -> Result<Self> {
        let bad = |line: usize, message: String| RockError::SnapshotFormat { line, message };
        let Some((first, rest)) = text.split_once('\n') else {
            return Err(RockError::SnapshotVersion {
                found: text.trim().to_owned(),
            });
        };
        if first.trim_end_matches('\r') != HEADER {
            return Err(RockError::SnapshotVersion {
                found: first.trim_end_matches('\r').to_owned(),
            });
        }
        let Some((checksum_line, body)) = rest.split_once('\n') else {
            return Err(bad(2, "missing checksum line".to_owned()));
        };
        let expected = match checksum_line
            .split_whitespace()
            .collect::<Vec<_>>()
            .as_slice()
        {
            ["checksum", "fnv1a64", hex] => u64::from_str_radix(hex, 16)
                .map_err(|e| bad(2, format!("bad checksum value {hex:?}: {e}")))?,
            _ => return Err(bad(2, format!("bad checksum line {checksum_line:?}"))),
        };
        let actual = fnv1a64(body.as_bytes());
        if actual != expected {
            return Err(RockError::SnapshotChecksum {
                expected: format!("fnv1a64:{expected:016x}"),
                actual: format!("fnv1a64:{actual:016x}"),
            });
        }

        // Body grammar: fixed key order, then vocab block, reps blocks, end.
        let mut lines = body.lines();
        let mut lineno = 2usize;
        let mut next = |what: &str| -> Result<(usize, &str)> {
            lineno += 1;
            lines
                .next()
                .map(|l| (lineno, l))
                .ok_or_else(|| RockError::SnapshotFormat {
                    line: lineno,
                    message: format!("truncated snapshot: expected {what}"),
                })
        };
        let mut keyed = |key: &str| -> Result<(usize, String)> {
            let (no, line) = next(&format!("`{key}` line"))?;
            let rest = line.strip_prefix(key).and_then(|r| r.strip_prefix(' '));
            match rest {
                Some(r) => Ok((no, r.to_owned())),
                None => Err(bad(no, format!("expected `{key} ...`, found {line:?}"))),
            }
        };

        let parse_f64_bits = |no: usize, value: &str, key: &str| -> Result<f64> {
            let bits_token = value.split_whitespace().next().unwrap_or("");
            let bits = u64::from_str_radix(bits_token, 16)
                .map_err(|e| bad(no, format!("bad {key} bits {bits_token:?}: {e}")))?;
            Ok(f64::from_bits(bits))
        };

        let (no, v) = keyed("theta")?;
        let theta = parse_f64_bits(no, &v, "theta")?;
        let (no, v) = keyed("exponent")?;
        let exponent = parse_f64_bits(no, &v, "exponent")?;
        let (no, v) = keyed("similarity")?;
        let similarity = SimilarityKind::from_name(v.trim())
            .ok_or_else(|| bad(no, format!("unknown similarity {v:?}")))?;
        let (no, v) = keyed("policy")?;
        let policy = OutlierPolicy::from_name(v.trim())
            .ok_or_else(|| bad(no, format!("unknown outlier policy {v:?}")))?;
        let (no, v) = keyed("universe")?;
        let universe: usize = v
            .trim()
            .parse()
            .map_err(|e| bad(no, format!("bad universe {v:?}: {e}")))?;
        let (no, v) = keyed("clusters")?;
        let clusters: usize = v
            .trim()
            .parse()
            .map_err(|e| bad(no, format!("bad cluster count {v:?}: {e}")))?;
        let (no, v) = keyed("vocab")?;
        let vocab_len: usize = v
            .trim()
            .parse()
            .map_err(|e| bad(no, format!("bad vocab size {v:?}: {e}")))?;

        let vocabulary = if vocab_len == 0 {
            None
        } else {
            let mut vocab = Vocabulary::new();
            for i in 0..vocab_len {
                let (no, line) = next("vocabulary entry")?;
                let Some(rest) = line.strip_prefix("v ") else {
                    return Err(bad(
                        no,
                        format!("expected `v <attr> <value>`, found {line:?}"),
                    ));
                };
                let (attr_token, value) = rest.split_once(' ').unwrap_or((rest, ""));
                let attr: u16 = attr_token
                    .parse()
                    .map_err(|e| bad(no, format!("bad attribute id {attr_token:?}: {e}")))?;
                let value = unescape_value(value).map_err(|e| bad(no, e))?;
                let id = vocab.intern(AttrId(attr), &value);
                if id.index() != i {
                    return Err(bad(no, format!("duplicate vocabulary entry {value:?}")));
                }
            }
            Some(vocab)
        };

        let mut sets: Vec<Vec<Transaction>> = Vec::with_capacity(clusters);
        for c in 0..clusters {
            let (no, line) = next("reps header")?;
            let toks: Vec<&str> = line.split_whitespace().collect();
            let ["reps", idx, count] = toks.as_slice() else {
                return Err(bad(
                    no,
                    format!("expected `reps <cluster> <count>`, found {line:?}"),
                ));
            };
            if idx.parse::<usize>().ok() != Some(c) {
                return Err(bad(no, format!("expected cluster {c}, found {idx:?}")));
            }
            let count: usize = count
                .parse()
                .map_err(|e| bad(no, format!("bad representative count {count:?}: {e}")))?;
            let mut set = Vec::with_capacity(count);
            for _ in 0..count {
                let (no, line) = next("representative line")?;
                if line != "r" && !line.starts_with("r ") {
                    return Err(bad(no, format!("expected `r <items...>`, found {line:?}")));
                }
                let mut items: Vec<u32> = Vec::new();
                for tok in line[1..].split_whitespace() {
                    let item: u32 = tok
                        .parse()
                        .map_err(|e| bad(no, format!("bad item id {tok:?}: {e}")))?;
                    if items.last().is_some_and(|&prev| prev >= item) {
                        return Err(bad(no, format!("items not strictly increasing at {item}")));
                    }
                    items.push(item);
                }
                set.push(Transaction::from_sorted(items));
            }
            sets.push(set);
        }

        let (no, line) = next("end line")?;
        if line != format!("end {HEADER}") {
            return Err(bad(no, format!("expected `end {HEADER}`, found {line:?}")));
        }
        if let Some(extra) = lines.find(|l| !l.trim().is_empty()) {
            return Err(bad(lineno + 1, format!("trailing content {extra:?}")));
        }

        Self::new(
            theta,
            exponent,
            similarity,
            policy,
            universe,
            vocabulary,
            Representatives::from_sets(sets),
        )
    }

    /// Loads a snapshot from `path`.
    ///
    /// # Errors
    /// [`RockError::Io`] on filesystem failure, otherwise the same
    /// classes as [`ModelSnapshot::parse`].
    pub fn load(path: &Path) -> Result<Self> {
        let text = std::fs::read_to_string(path).map_err(|e| RockError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        Self::parse(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::goodness::{LinkExponent, MarketBasket};
    use crate::rock::{RockBuilder, SampleStrategy};

    fn toy_snapshot() -> ModelSnapshot {
        let mut vocab = Vocabulary::new();
        for name in ["bread", "milk", "charcoal", "butter", "buns"] {
            vocab.intern_basket(name);
        }
        let sets = vec![
            vec![Transaction::new([0, 1, 3]), Transaction::new([0, 1])],
            vec![Transaction::new([2, 4])],
        ];
        ModelSnapshot::new(
            0.5,
            MarketBasket.f(0.5),
            SimilarityKind::Jaccard,
            OutlierPolicy::Mark,
            5,
            Some(vocab),
            Representatives::from_sets(sets),
        )
        .unwrap()
    }

    #[test]
    fn render_parse_render_is_byte_identical() {
        let snap = toy_snapshot();
        let text = snap.render();
        let back = ModelSnapshot::parse(&text).unwrap();
        assert_eq!(back.render(), text);
        assert_eq!(back.theta(), snap.theta());
        assert_eq!(back.exponent(), snap.exponent());
        assert_eq!(back.similarity(), snap.similarity());
        assert_eq!(back.num_clusters(), 2);
        assert_eq!(back.universe(), 5);
    }

    #[test]
    fn save_load_save_is_byte_identical() {
        let dir = std::env::temp_dir().join("rock-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let p1 = dir.join("m1.rockmodel");
        let p2 = dir.join("m2.rockmodel");
        let snap = toy_snapshot();
        snap.save(&p1).unwrap();
        let loaded = ModelSnapshot::load(&p1).unwrap();
        loaded.save(&p2).unwrap();
        assert_eq!(std::fs::read(&p1).unwrap(), std::fs::read(&p2).unwrap());
        std::fs::remove_file(p1).ok();
        std::fs::remove_file(p2).ok();
    }

    #[test]
    fn labels_match_label_point_and_honor_policy() {
        let snap = toy_snapshot();
        assert_eq!(snap.label(&Transaction::new([0, 1, 4])), Some(0));
        assert_eq!(snap.label(&Transaction::new([2, 4])), Some(1));
        // A lone shared item is below theta for cluster 0 and has no
        // neighbor anywhere: an outlier under Mark...
        let weak = Transaction::new([3]);
        assert_eq!(snap.label(&weak), None);
        // ...but Nearest falls back to the most similar representative.
        let nearest = ModelSnapshot::new(
            snap.theta(),
            snap.exponent(),
            snap.similarity(),
            OutlierPolicy::Nearest,
            snap.universe(),
            snap.vocabulary().cloned(),
            snap.representatives().clone(),
        )
        .unwrap();
        assert_eq!(nearest.label(&weak), Some(0));
        // Zero similarity everywhere stays an outlier even under Nearest.
        assert_eq!(nearest.label(&Transaction::new([])), None);
    }

    #[test]
    fn textual_records_map_through_vocabulary() {
        let snap = toy_snapshot();
        let t = snap
            .transaction_from_basket(["bread", "milk", "unseen-item"])
            .unwrap();
        assert_eq!(t.items(), &[0, 1]);

        // Cells map per (column, value); toy vocab is basket-keyed, so
        // build a small tabular vocabulary to exercise the cell path.
        let mut vocab = Vocabulary::new();
        vocab.intern(AttrId(0), "y");
        vocab.intern(AttrId(0), "n");
        vocab.intern(AttrId(1), "y");
        let tab = ModelSnapshot::new(
            0.5,
            0.2,
            SimilarityKind::Jaccard,
            OutlierPolicy::Mark,
            3,
            Some(vocab),
            Representatives::from_sets(vec![vec![Transaction::new([0, 2])]]),
        )
        .unwrap();
        let t = tab.transaction_from_cells(&["n", "?"], "?").unwrap();
        assert_eq!(t.items(), &[1]);
        let t = tab.transaction_from_cells(&["y", "y"], "?").unwrap();
        assert_eq!(t.items(), &[0, 2]);
        // Unseen value contributes nothing rather than failing.
        let t = tab.transaction_from_cells(&["maybe", "y"], "?").unwrap();
        assert_eq!(t.items(), &[2]);
    }

    #[test]
    fn textual_records_require_a_vocabulary() {
        let snap = ModelSnapshot::new(
            0.5,
            0.2,
            SimilarityKind::Jaccard,
            OutlierPolicy::Mark,
            3,
            None,
            Representatives::from_sets(vec![vec![Transaction::new([0])]]),
        )
        .unwrap();
        assert!(matches!(
            snap.transaction_from_cells(&["a"], "?"),
            Err(RockError::SnapshotInvalid { .. })
        ));
        assert!(matches!(
            snap.transaction_from_basket(["a"]),
            Err(RockError::SnapshotInvalid { .. })
        ));
    }

    #[test]
    fn vocabulary_values_with_spaces_and_escapes_roundtrip() {
        let mut vocab = Vocabulary::new();
        vocab.intern(AttrId(0), "two words");
        vocab.intern(AttrId(0), "back\\slash");
        vocab.intern(AttrId(0), "new\nline");
        vocab.intern(AttrId(0), "car\rriage");
        vocab.intern(AttrId(0), " leading and trailing ");
        let snap = ModelSnapshot::new(
            0.4,
            0.3,
            SimilarityKind::Dice,
            OutlierPolicy::Nearest,
            5,
            Some(vocab),
            Representatives::from_sets(vec![vec![Transaction::new([0, 2, 4])]]),
        )
        .unwrap();
        let text = snap.render();
        let back = ModelSnapshot::parse(&text).unwrap();
        assert_eq!(back.render(), text);
        let vocab = back.vocabulary().unwrap();
        assert_eq!(vocab.get(AttrId(0), "new\nline").map(|i| i.0), Some(2));
        assert_eq!(
            vocab.get(AttrId(0), " leading and trailing ").map(|i| i.0),
            Some(4)
        );
    }

    #[test]
    fn rejects_unknown_version() {
        let err = ModelSnapshot::parse("rock-model/v9\njunk\n").unwrap_err();
        assert!(matches!(err, RockError::SnapshotVersion { .. }));
        let err = ModelSnapshot::parse("").unwrap_err();
        assert!(matches!(err, RockError::SnapshotVersion { .. }));
    }

    #[test]
    fn rejects_corrupted_body() {
        let text = toy_snapshot().render();
        // Flip one byte in the body: the checksum must catch it.
        let corrupted = text.replace("similarity jaccard", "similarity jaccarD");
        let err = ModelSnapshot::parse(&corrupted).unwrap_err();
        assert!(matches!(err, RockError::SnapshotChecksum { .. }));
    }

    #[test]
    fn rejects_truncation() {
        let text = toy_snapshot().render();
        for keep in [1, 2, 3] {
            let truncated: String = text.lines().take(keep).map(|l| format!("{l}\n")).collect();
            let err = ModelSnapshot::parse(&truncated).unwrap_err();
            // Dropping body lines breaks the checksum (or, for very short
            // prefixes, the framing itself).
            assert!(
                matches!(
                    err,
                    RockError::SnapshotChecksum { .. } | RockError::SnapshotFormat { .. }
                ),
                "keep={keep}: {err}"
            );
        }
    }

    #[test]
    fn rejects_semantic_violations() {
        // Item id outside the declared universe.
        assert!(matches!(
            ModelSnapshot::new(
                0.5,
                0.2,
                SimilarityKind::Jaccard,
                OutlierPolicy::Mark,
                2,
                None,
                Representatives::from_sets(vec![vec![Transaction::new([5])]]),
            ),
            Err(RockError::SnapshotInvalid { .. })
        ));
        // No clusters at all.
        assert!(matches!(
            ModelSnapshot::new(
                0.5,
                0.2,
                SimilarityKind::Jaccard,
                OutlierPolicy::Mark,
                2,
                None,
                Representatives::from_sets(vec![]),
            ),
            Err(RockError::SnapshotInvalid { .. })
        ));
        // Theta outside (0, 1).
        assert!(matches!(
            ModelSnapshot::new(
                1.5,
                0.2,
                SimilarityKind::Jaccard,
                OutlierPolicy::Mark,
                2,
                None,
                Representatives::from_sets(vec![vec![Transaction::new([0])]]),
            ),
            Err(RockError::SnapshotInvalid { .. })
        ));
    }

    #[test]
    fn parse_never_panics_on_garbage(/* fuzz-lite */) {
        let samples = [
            "rock-model/v1\nchecksum fnv1a64 zz\n",
            "rock-model/v1\nchecksum fnv1a64 0000000000000000\n",
            "rock-model/v1\nchecksum md5 abc\nbody\n",
            "rock-model/v1\n",
            "\n\n\n",
            "rock-model/v1\r\nchecksum fnv1a64 0\r\n",
        ];
        for s in samples {
            assert!(ModelSnapshot::parse(s).is_err(), "{s:?}");
        }
        // Valid checksum over a garbage body still fails cleanly.
        let body = "theta zz zz\n";
        let text = format!(
            "rock-model/v1\nchecksum fnv1a64 {:016x}\n{body}",
            super::fnv1a64(body.as_bytes())
        );
        assert!(matches!(
            ModelSnapshot::parse(&text).unwrap_err(),
            RockError::SnapshotFormat { .. }
        ));
    }

    #[test]
    fn from_model_is_seed_deterministic() {
        let data: TransactionSet = (0..40u32)
            .map(|i| {
                if i % 2 == 0 {
                    Transaction::new([0, 1, 2, 3 + (i % 4)])
                } else {
                    Transaction::new([20, 21, 22, 23 + (i % 4)])
                }
            })
            .collect();
        let model = RockBuilder::new(2, 0.4)
            .sample(SampleStrategy::All)
            .seed(7)
            .build()
            .fit(&data)
            .unwrap();
        let cfg = LabelingConfig::default();
        let mb = MarketBasket.f(0.4);
        let a = ModelSnapshot::from_model(
            &data,
            &model,
            0.4,
            mb,
            SimilarityKind::Jaccard,
            OutlierPolicy::Mark,
            &cfg,
            99,
        )
        .unwrap();
        let b = ModelSnapshot::from_model(
            &data,
            &model,
            0.4,
            mb,
            SimilarityKind::Jaccard,
            OutlierPolicy::Mark,
            &cfg,
            99,
        )
        .unwrap();
        assert_eq!(a.render(), b.render());
        // A different representative seed may draw different sets, but the
        // snapshot stays valid and parseable.
        let c = ModelSnapshot::from_model(
            &data,
            &model,
            0.4,
            mb,
            SimilarityKind::Jaccard,
            OutlierPolicy::Mark,
            &cfg,
            100,
        )
        .unwrap();
        assert_eq!(
            ModelSnapshot::parse(&c.render()).unwrap().render(),
            c.render()
        );
    }

    #[test]
    fn similarity_kind_roundtrips_names() {
        for kind in [
            SimilarityKind::Jaccard,
            SimilarityKind::Dice,
            SimilarityKind::Overlap,
            SimilarityKind::Cosine,
        ] {
            assert_eq!(SimilarityKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(SimilarityKind::from_name("euclid"), None);
        let a = Transaction::new([0, 1, 2]);
        let b = Transaction::new([1, 2, 3]);
        assert_eq!(SimilarityKind::Jaccard.sim(&a, &b), Jaccard.sim(&a, &b));
        assert_eq!(SimilarityKind::Cosine.sim(&a, &b), Cosine.sim(&a, &b));
    }
}
