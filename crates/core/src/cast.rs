//! Audited numeric conversions.
//!
//! The `core-bare-cast` lint (see `crates/analysis`) bans bare `as`
//! casts in `rock-core`: a silent truncation in an id or a count corrupts
//! clustering results without a panic. Conversions the type system can
//! prove lossless should use `From`/`Into`; everything else funnels
//! through this module, which is the audited home of the few remaining
//! `as` expressions. Every helper either carries a compile-time proof
//! (`usize` width assertions) or a `debug_assert!` that fires in tests
//! and debug builds, while compiling to the plain cast in release.
//!
//! The workspace assumes `usize` is at least 32 bits wide and at most 64
//! — checked at compile time below — which makes `u32 → usize` and
//! `usize → u64` lossless.

const _USIZE_AT_LEAST_32_BITS: () = assert!(usize::BITS >= 32);
const _USIZE_AT_MOST_64_BITS: () = assert!(usize::BITS <= 64);

/// `u32 → usize`, lossless: the workspace requires `usize` ≥ 32 bits.
#[inline(always)]
#[must_use]
pub fn u32_to_usize(i: u32) -> usize {
    // rock-analyze: allow(core-bare-cast) — lossless: usize ≥ 32 bits, asserted at compile time.
    i as usize
}

/// `usize → u32` for dense point/cluster ids. ROCK indexes points with
/// `u32`; collections larger than `u32::MAX` are rejected long before
/// any hot path runs. Debug builds assert the value fits.
#[inline(always)]
#[must_use]
pub fn usize_to_u32(n: usize) -> u32 {
    debug_assert!(u32::try_from(n).is_ok(), "id {n} exceeds u32::MAX");
    // rock-analyze: allow(core-bare-cast) — audited: debug-asserted in range above.
    n as u32
}

/// `usize → u16` for attribute/domain codes. Debug builds assert the
/// value fits; fallible call sites (user-controlled domains) must use
/// `u16::try_from` and surface `RockError::DomainTooLarge` instead.
#[inline(always)]
#[must_use]
pub fn usize_to_u16(n: usize) -> u16 {
    debug_assert!(u16::try_from(n).is_ok(), "code {n} exceeds u16::MAX");
    // rock-analyze: allow(core-bare-cast) — audited: debug-asserted in range above.
    n as u16
}

/// `usize → u64`, lossless: the workspace requires `usize` ≤ 64 bits.
#[inline(always)]
#[must_use]
pub fn usize_to_u64(n: usize) -> u64 {
    // rock-analyze: allow(core-bare-cast) — lossless: usize ≤ 64 bits, asserted at compile time.
    n as u64
}

/// `u64 → usize`, for counts that re-enter indexing. Debug builds assert
/// the value fits (only relevant on 32-bit targets).
#[inline(always)]
#[must_use]
pub fn u64_to_usize(n: u64) -> usize {
    debug_assert!(usize::try_from(n).is_ok(), "count {n} exceeds usize::MAX");
    // rock-analyze: allow(core-bare-cast) — audited: debug-asserted in range above.
    n as usize
}

/// `usize → f64` for goodness/criterion arithmetic. Exact for every
/// count below 2⁵³ — astronomically beyond any in-memory point count —
/// and debug-asserted to stay in that exact range.
#[inline(always)]
#[must_use]
pub fn usize_to_f64(n: usize) -> f64 {
    debug_assert!(
        usize_to_u64(n) <= (1u64 << f64::MANTISSA_DIGITS),
        "count {n} not exactly representable in f64"
    );
    // rock-analyze: allow(core-bare-cast) — audited: exact below 2^53, debug-asserted above.
    n as f64
}

/// `u64 → f64` for link-count arithmetic; exact below 2⁵³ and
/// debug-asserted to stay there.
#[inline(always)]
#[must_use]
pub fn u64_to_f64(n: u64) -> f64 {
    debug_assert!(
        n <= (1u64 << f64::MANTISSA_DIGITS),
        "count {n} not exactly representable in f64"
    );
    // rock-analyze: allow(core-bare-cast) — audited: exact below 2^53, debug-asserted above.
    n as f64
}

/// `i64 → f64` for score arithmetic (e.g. Hungarian-matching profits);
/// exact below 2⁵³ in magnitude and debug-asserted to stay there.
#[inline(always)]
#[must_use]
pub fn i64_to_f64(n: i64) -> f64 {
    debug_assert!(
        n.unsigned_abs() <= (1u64 << f64::MANTISSA_DIGITS),
        "value {n} not exactly representable in f64"
    );
    // rock-analyze: allow(core-bare-cast) — audited: exact below 2^53 in magnitude, debug-asserted above.
    n as f64
}

/// `f64 → usize` with the saturating semantics of Rust's float-to-int
/// `as` (NaN → 0, clamps to the target range), for sizing computations
/// like Chernoff sample bounds. Debug builds assert the input is finite
/// and non-negative so saturation never silently hides a logic error.
#[inline(always)]
#[must_use]
pub fn f64_to_usize(x: f64) -> usize {
    debug_assert!(
        x.is_finite() && x >= 0.0,
        "size computation produced {x}; expected a finite non-negative value"
    );
    // rock-analyze: allow(core-bare-cast) — audited: finite & non-negative debug-asserted above; `as` saturates.
    x as usize
}

/// `f64 → u64` with saturating semantics, for histogram/telemetry style
/// rounding. Debug builds assert finite and non-negative.
#[inline(always)]
#[must_use]
pub fn f64_to_u64(x: f64) -> u64 {
    debug_assert!(
        x.is_finite() && x >= 0.0,
        "value {x} not convertible to u64; expected finite non-negative"
    );
    // rock-analyze: allow(core-bare-cast) — audited: finite & non-negative debug-asserted above; `as` saturates.
    x as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_round_trips() {
        assert_eq!(u32_to_usize(u32::MAX), u32::MAX as usize);
        assert_eq!(usize_to_u32(7), 7);
        assert_eq!(usize_to_u16(65_535), u16::MAX);
        assert_eq!(usize_to_u64(123), 123);
        assert_eq!(u64_to_usize(456), 456);
    }

    #[test]
    fn float_conversions_are_exact_in_range() {
        assert_eq!(usize_to_f64(1 << 20), 1_048_576.0);
        assert_eq!(u64_to_f64(0), 0.0);
        assert_eq!(f64_to_usize(12.9), 12);
        assert_eq!(f64_to_u64(3.0), 3);
    }

    #[test]
    #[should_panic(expected = "exceeds u32::MAX")]
    #[cfg(debug_assertions)]
    fn narrowing_overflow_is_caught_in_debug() {
        let _ = usize_to_u32(usize::try_from(u64::from(u32::MAX) + 1).unwrap());
    }

    #[test]
    #[should_panic(expected = "expected a finite non-negative")]
    #[cfg(debug_assertions)]
    fn negative_sizes_are_caught_in_debug() {
        let _ = f64_to_usize(-1.0);
    }
}
