//! # rock-core
//!
//! A faithful, production-quality Rust implementation of **ROCK** (*RObust
//! Clustering using linKs*), the link-based agglomerative clustering
//! algorithm for categorical and market-basket data introduced by Guha,
//! Rastogi and Shim (ICDE 1999; *Information Systems* 25(5), 2000).
//!
//! ROCK's central idea is that pairwise similarity alone is too *local* a
//! signal for categorical data: two points belong together when they share
//! many **common neighbors** (their *link* count), not merely when they
//! look alike. The algorithm:
//!
//! 1. declares `p, q` **neighbors** when `sim(p, q) ≥ θ` (Jaccard by
//!    default) — [`neighbors`],
//! 2. counts **links** `link(p, q) = |N(p) ∩ N(q)|` — [`links`],
//! 3. agglomeratively merges the pair of clusters with the best
//!    **goodness** (cross-links normalized by the expected cross-links
//!    `(n_i+n_j)^{1+2f(θ)} − n_i^{1+2f(θ)} − n_j^{1+2f(θ)}`) — [`goodness`],
//!    [`agglomerate`],
//! 4. scales to large data by clustering a Chernoff-sized random
//!    **sample** and **labeling** the remainder — [`sampling`],
//!    [`labeling`],
//! 5. discards **outliers** up front (isolated points) and mid-run (small
//!    stagnant clusters) — [`outliers`].
//!
//! The one-stop entry point is [`rock::RockBuilder`]:
//!
//! ```
//! use rock_core::prelude::*;
//!
//! let data: TransactionSet = vec![
//!     Transaction::new([0, 1, 2]),
//!     Transaction::new([0, 1, 3]),
//!     Transaction::new([0, 2, 3]),
//!     Transaction::new([10, 11, 12]),
//!     Transaction::new([10, 11, 13]),
//!     Transaction::new([10, 12, 13]),
//! ]
//! .into_iter()
//! .collect();
//!
//! let model = RockBuilder::new(2, 0.4).build().fit(&data)?;
//! assert_eq!(model.num_clusters(), 2);
//! # Ok::<(), rock_core::RockError>(())
//! ```
//!
//! Lower-level building blocks (neighbor graphs, link tables, the merge
//! engine, the heaps) are public so baselines, ablations and the
//! experiment harness can compose them directly.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod agglomerate;
pub mod cast;
pub mod checkpoint;
pub mod components;
pub mod contracts;
pub mod data;
pub mod dendrogram;
pub mod error;
pub mod export;
pub mod goodness;
pub mod guard;
pub mod hash;
pub mod heap;
pub mod labeling;
pub mod links;
pub mod metrics;
pub mod neighbors;
pub mod outliers;
pub mod retry;
pub mod rng;
pub mod rock;
pub mod sampling;
mod shard;
pub mod similarity;
pub mod snapshot;
pub mod stream;
pub mod summary;
pub mod telemetry;

pub use error::{Result, RockError};

/// Convenient glob-import of the common public surface.
pub mod prelude {
    pub use crate::agglomerate::{AgglomerateConfig, Agglomeration, MergeStep, PruneConfig};
    pub use crate::checkpoint::StreamCheckpoint;
    pub use crate::components::connected_components;
    pub use crate::data::{
        AttrId, CategoricalTable, ClusterId, ItemId, Schema, Transaction, TransactionSet,
        Vocabulary,
    };
    pub use crate::dendrogram::Dendrogram;
    pub use crate::error::{Result, RockError};
    pub use crate::export::{read_assignments, write_assignments};
    pub use crate::goodness::{ConstantExponent, Goodness, LinkExponent, MarketBasket};
    pub use crate::guard::{CancelToken, Degradation, Guard, RunBudget, Trip, TripReason};
    pub use crate::hash::{fnv1a64, Fnv1a64};
    pub use crate::labeling::{LabelingConfig, Representatives};
    pub use crate::links::LinkTable;
    pub use crate::metrics::{
        cluster_breakdown, densify_labels, matched_accuracy, mean_std, purity, ContingencyTable,
    };
    pub use crate::neighbors::{JoinStrategy, NeighborGraph};
    pub use crate::outliers::NeighborFilter;
    pub use crate::retry::{RetryOutcome, RetryPolicy};
    pub use crate::rng::{Rng, SliceRandom};
    pub use crate::rock::{
        Outcome, PhaseTimings, Rock, RockBuilder, RockConfig, RockModel, RockStats, SampleStrategy,
    };
    pub use crate::sampling::{chernoff_sample_size, sample_indices, seeded_rng};
    pub use crate::similarity::{Cosine, Dice, HammingRecord, Jaccard, Overlap, Similarity};
    pub use crate::snapshot::{ModelSnapshot, OutlierPolicy, SimilarityKind};
    pub use crate::stream::{ChunkSource, StreamLabeler, StreamOutcome, StreamStats};
    pub use crate::summary::{ClusterSummary, ItemSupport};
    pub use crate::telemetry::{Level, MemoryEstimate, Metrics, Observer, Phase, RunInfo};
}
