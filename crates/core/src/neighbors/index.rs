//! Inverted-index set-similarity join for the neighbor phase
//! (DESIGN.md §17).
//!
//! The brute-force scan evaluates `sim(p, q)` for all `n·(n−1)` ordered
//! pairs. For the count-based measures ([`SimilarityKind`]) the neighbor
//! predicate `sim(p, q) ≥ θ` only depends on `(|P ∩ Q|, |P|, |Q|)`, which
//! admits the classic all-pairs join: generate few candidates from an
//! inverted index over the interned vocabulary, prune with exact
//! per-kind bounds, and verify survivors with the very same
//! [`SimilarityKind::sim_from_counts`] the brute scan evaluates — so the
//! joined graph is byte-identical to the scan by construction.
//!
//! * **Global item order** — items are ranked by (frequency ascending,
//!   item id ascending); rare items first makes prefixes selective.
//! * **Prefix filter** — for a row of length `a`, only its `π(a) = a −
//!   t_lb(a) + 1` smallest-ranked items are indexed and probed, where
//!   `t_lb(a)` is the smallest intersection any partner length present
//!   in the dataset could need. `t_min(a, b)` (the least intersection
//!   with `sim_from_counts(t, a, b) ≥ θ`) is found by binary search —
//!   every kind is monotone in the intersection — so no analytic ceil
//!   can drift from the verification predicate.
//! * **Size filter** — a candidate `(a, b)` survives only when the best
//!   possible similarity `sim_from_counts(min(a, b), a, b)` reaches θ.
//!   This is exact for Jaccard (`|T2| ≥ θ·|T1|`), Dice, overlap and
//!   cosine alike because it evaluates the measure itself.
//! * **Bounded verification** — survivors are checked in the threshold
//!   form `|Ti ∩ Tj| ≥ t_min(a, b)` (a table lookup over the distinct
//!   lengths). Vocabularies up to [`DENSE_VOCAB_MAX`] verify on a
//!   bit-packed rank matrix (`AND` + popcount, the `DenseReps` trick);
//!   larger ones use a sorted merge that exits at the `t_min`-th match
//!   or as soon as the remainder cannot reach it. Either way the
//!   decision is exactly the brute predicate's.
//! * **Empty rows** — kept out of the index and handled by predicate:
//!   `sim_from_counts(0, a, 0)` decides empty↔nonempty pairs (1.0 for
//!   the overlap coefficient, which makes empty rows neighbor
//!   everything; 0.0 elsewhere) and empty↔empty pairs are similarity 1.
//!
//! Candidate generation shards across scoped workers exactly like the
//! link kernel (DESIGN.md §13): contiguous row ranges balanced by the
//! estimated candidate work, disjoint output slices, [`Guard`] polling
//! every [`GUARD_STRIDE`] rows, posting/edge bytes streamed into the
//! neighbor-graph gauge, and per-worker tallies summed in spawn order —
//! the graph and every counter are byte-identical for any thread count.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::cast;
use crate::data::TransactionSet;
use crate::guard::{Guard, Trip};
use crate::snapshot::SimilarityKind;
use crate::telemetry::trace::{LatencyHistogram, Payload};
use crate::telemetry::{MemoryGauges, Observer, Phase, PipelineCounters};

/// How often (in rows) the index build and every probe worker poll the
/// guard and flush byte tallies into the memory gauge. Same stride as
/// the link kernel, for the same reason: responsive trips at a cost
/// that does not register next to the kernel work.
const GUARD_STRIDE: usize = 64;

/// Largest vocabulary that still gets bit-packed rows for verification
/// — same cutoff as `labeling::DenseReps`, for the same reason: at
/// ≤ 4096 items a row is at most 64 words and the exact intersection
/// is a handful of `AND` + popcount steps instead of a sorted merge.
const DENSE_VOCAB_MAX: usize = 4096;

/// The smallest integer intersection `t` with
/// `sim_from_counts(t, a, b) ≥ θ`, or `None` when even the best possible
/// intersection (`min(a, b)`) stays below θ. Every [`SimilarityKind`] is
/// monotone non-decreasing in the intersection, so binary search against
/// the *verification predicate itself* is exact — unlike an analytic
/// `ceil`, it cannot disagree with verification in the last float bit.
fn t_min(kind: SimilarityKind, theta: f64, a: usize, b: usize) -> Option<usize> {
    let cap = a.min(b);
    if kind.sim_from_counts(cap, a, b) < theta {
        return None;
    }
    let (mut lo, mut hi) = (0usize, cap);
    // rock-analyze: allow(guard-loop) — bounded: the interval halves every iteration.
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if kind.sim_from_counts(mid, a, b) >= theta {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(lo)
}

/// The built inverted index: per-row prefix ranks and posting lists of
/// rows per prefix rank, plus the row metadata the probe needs.
struct JoinIndex {
    /// Transaction length per row.
    lengths: Vec<u32>,
    /// Rows with no items, ascending (kept out of the postings).
    empties: Vec<u32>,
    /// Flat storage of each row's prefix ranks, ascending per row.
    ranked: Vec<u32>,
    /// Row `i`'s prefix ranks live at `ranked[row_start[i]..row_start[i+1]]`.
    row_start: Vec<usize>,
    /// Flat posting storage: probing rows (ascending) per rank.
    post: Vec<u32>,
    /// Rank `r`'s posting list lives at `post[post_start[r]..post_start[r+1]]`.
    post_start: Vec<usize>,
    /// Dense index of each occurring length into the `t_min` table.
    len_idx: Vec<u32>,
    /// Number of distinct nonzero lengths (the `t_min` table's side).
    distinct_lens: usize,
    /// `t_min` per distinct length pair, row-major over `len_idx`
    /// (`u32::MAX` where no intersection reaches θ — the size filter
    /// prunes those pairs before the table is consulted).
    tmin_tab: Vec<u32>,
    /// Bit-matrix words per row (0 when the vocabulary exceeds
    /// [`DENSE_VOCAB_MAX`] and verification falls back to the merge).
    words_per_row: usize,
    /// Row-major bit matrix over ranks: row `i` occupies
    /// `dense[i·words_per_row..(i+1)·words_per_row]`.
    dense: Vec<u64>,
    /// Estimated bytes held by the persistent index buffers (streamed
    /// into the neighbor-graph gauge alongside the growing edge lists).
    bytes: u64,
}

impl JoinIndex {
    fn prefix_ranks(&self, i: usize) -> &[u32] {
        &self.ranked[self.row_start[i]..self.row_start[i + 1]]
    }

    fn posting(&self, r: u32) -> &[u32] {
        let r = cast::u32_to_usize(r);
        &self.post[self.post_start[r]..self.post_start[r + 1]]
    }

    /// Table lookup of [`t_min`] for two nonzero row lengths.
    fn t_min_for(&self, a: u32, b: u32) -> u32 {
        let ia = cast::u32_to_usize(self.len_idx[cast::u32_to_usize(a)]);
        let ib = cast::u32_to_usize(self.len_idx[cast::u32_to_usize(b)]);
        self.tmin_tab[ia * self.distinct_lens + ib]
    }

    /// Exact `|Ti ∩ Tj|` over the bit matrix — ranks are a bijection of
    /// the interned items, so the popcount equals the set intersection.
    fn dense_intersection(&self, i: usize, j: usize) -> usize {
        let w = self.words_per_row;
        let ri = &self.dense[i * w..(i + 1) * w];
        let rj = &self.dense[j * w..(j + 1) * w];
        ri.iter()
            .zip(rj)
            .map(|(x, y)| cast::u32_to_usize((x & y).count_ones()))
            .sum()
    }
}

/// Exact bounded-merge verification: does `|x ∩ y|` reach `t`? With
/// `t = t_min(|x|, |y|)` this is the threshold form of the verification
/// predicate — monotonicity makes `sim_from_counts(|x ∩ y|, …) ≥ θ`
/// and `|x ∩ y| ≥ t_min` the same decision — but the merge stops the
/// moment the outcome is settled in either direction: accepted at the
/// `t`-th match, rejected once the shorter remainder cannot close the
/// gap. The early exits are what make low-θ verification affordable
/// (at θ = 0.5 most candidate pairs survive the filters, so nearly
/// every pair used to pay for a full merge).
fn intersects_at_least(x: &[u32], y: &[u32], t: usize) -> bool {
    if t == 0 {
        return true;
    }
    let (mut ix, mut iy, mut seen) = (0usize, 0usize, 0usize);
    // rock-analyze: allow(guard-loop) — bounded: every iteration advances ix or iy.
    while seen + (x.len() - ix).min(y.len() - iy) >= t {
        match x[ix].cmp(&y[iy]) {
            std::cmp::Ordering::Equal => {
                seen += 1;
                if seen == t {
                    return true;
                }
                ix += 1;
                iy += 1;
            }
            std::cmp::Ordering::Less => ix += 1,
            std::cmp::Ordering::Greater => iy += 1,
        }
    }
    false
}

fn vec_bytes<T>(v: &[T]) -> u64 {
    cast::usize_to_u64(std::mem::size_of_val(v))
}

/// Builds the index sequentially, polling the guard between passes and
/// every [`GUARD_STRIDE`] rows inside them, with all live build buffers
/// flushed into the neighbor-graph gauge at each poll — a memory ceiling
/// can trip *while* the index grows. Returns the trip instead of the
/// index when one fires.
fn build(
    data: &TransactionSet,
    kind: SimilarityKind,
    theta: f64,
    observer: &Observer,
    guard: &Guard,
) -> Result<JoinIndex, Trip> {
    let n = data.len();
    let tracer = observer.tracer();
    let span = tracer.begin();
    let poll = |live: u64| -> Option<Trip> {
        MemoryGauges::observe(&observer.memory().neighbor_graph, live);
        guard.checkpoint(Phase::Neighbors, observer)
    };

    // Pass 1: row lengths and empty rows.
    let mut lengths: Vec<u32> = Vec::with_capacity(n);
    let mut empties: Vec<u32> = Vec::new();
    let mut total_items = 0usize;
    for (i, t) in data.iter().enumerate() {
        lengths.push(cast::usize_to_u32(t.len()));
        total_items += t.len();
        if t.is_empty() {
            empties.push(cast::usize_to_u32(i));
        }
    }
    let base = vec_bytes(&lengths) + vec_bytes(&empties);
    if let Some(trip) = poll(base) {
        return Err(trip);
    }

    // Pass 2: vocabulary with frequencies (sort one flat copy of all
    // items; runs of equal items give the counts).
    let mut all: Vec<u32> = Vec::with_capacity(total_items);
    for t in data.iter() {
        all.extend_from_slice(t.items());
    }
    all.sort_unstable();
    let mut vocab: Vec<u32> = Vec::new();
    let mut freq: Vec<u32> = Vec::new();
    for &item in &all {
        if vocab.last() == Some(&item) {
            // rock-analyze: allow(core-unwrap) — vocab.last() matched, so freq (grown in lockstep) is nonempty.
            let f = freq.last_mut().expect("freq tracks vocab");
            *f += 1;
        } else {
            vocab.push(item);
            freq.push(1);
        }
    }
    let base = base + vec_bytes(&all) + vec_bytes(&vocab) + vec_bytes(&freq);
    if let Some(trip) = poll(base) {
        return Err(trip);
    }

    // Pass 3: global rank of each vocabulary slot — frequency ascending,
    // item id ascending — so prefixes hold the rarest items.
    let num_items = vocab.len();
    let mut order: Vec<u32> = (0..num_items).map(cast::usize_to_u32).collect();
    order.sort_unstable_by_key(|&v| (freq[cast::u32_to_usize(v)], vocab[cast::u32_to_usize(v)]));
    let mut rank_of: Vec<u32> = vec![0; num_items];
    for (r, &v) in order.iter().enumerate() {
        rank_of[cast::u32_to_usize(v)] = cast::usize_to_u32(r);
    }
    drop(order);

    // Pass 4: the t_min table over distinct lengths (the probe's bounded
    // verification reads it per candidate) and per-length prefix
    // lengths. For each distinct length `a`, `t_lb(a)` is the least
    // intersection any partner length in the dataset could require; the
    // prefix `π(a) = a − t_lb(a) + 1` is then long enough for every
    // qualifying pair (a longer prefix is always safe, and `t_lb(a) ≥ 1`
    // because θ > 0).
    let mut distinct: Vec<usize> = lengths
        .iter()
        .filter(|&&l| l > 0)
        .map(|&l| cast::u32_to_usize(l))
        .collect();
    distinct.sort_unstable();
    distinct.dedup();
    let max_len = distinct.last().copied().unwrap_or(0);
    let distinct_lens = distinct.len();
    let mut len_idx: Vec<u32> = vec![0; max_len + 1];
    for (ix, &a) in distinct.iter().enumerate() {
        len_idx[a] = cast::usize_to_u32(ix);
    }
    let mut tmin_tab: Vec<u32> = vec![u32::MAX; distinct_lens * distinct_lens];
    let mut prefix_by_len: Vec<u32> = vec![0; max_len + 1];
    for (ia, &a) in distinct.iter().enumerate() {
        for (ib, &b) in distinct.iter().enumerate() {
            if let Some(t) = t_min(kind, theta, a, b) {
                tmin_tab[ia * distinct_lens + ib] = cast::usize_to_u32(t);
            }
        }
        let t_lb = tmin_tab[ia * distinct_lens..(ia + 1) * distinct_lens]
            .iter()
            .filter(|&&t| t != u32::MAX)
            .map(|&t| cast::u32_to_usize(t))
            .min()
            // `t_min(a, a)` always exists: sim_from_counts(a, a, a) = 1 ≥ θ.
            .unwrap_or(a)
            .max(1);
        prefix_by_len[a] = cast::usize_to_u32(a - t_lb + 1);
    }
    let base = base
        + vec_bytes(&rank_of)
        + vec_bytes(&prefix_by_len)
        + vec_bytes(&len_idx)
        + vec_bytes(&tmin_tab);
    if let Some(trip) = poll(base) {
        return Err(trip);
    }

    // Pass 5: each row's prefix ranks (its π(len) smallest-ranked
    // items) and, for vocabularies up to DENSE_VOCAB_MAX, the bit
    // matrix over full ranked rows that verification popcounts.
    let words_per_row = if num_items <= DENSE_VOCAB_MAX {
        num_items.div_ceil(64)
    } else {
        0
    };
    let mut dense: Vec<u64> = vec![0; n * words_per_row];
    let mut ranked: Vec<u32> = Vec::new();
    let mut row_start: Vec<usize> = Vec::with_capacity(n + 1);
    row_start.push(0);
    let mut buf: Vec<u32> = Vec::new();
    let base = base + vec_bytes(&dense);
    for (i, t) in data.iter().enumerate() {
        if i.is_multiple_of(GUARD_STRIDE) {
            if let Some(trip) = poll(base + vec_bytes(&ranked)) {
                return Err(trip);
            }
        }
        buf.clear();
        for &item in t.items() {
            // rock-analyze: allow(core-unwrap) — pass 2 interned every item of every row into vocab.
            let v = vocab.binary_search(&item).expect("item interned in pass 2");
            buf.push(rank_of[v]);
        }
        buf.sort_unstable();
        if words_per_row > 0 {
            let row_w = i * words_per_row;
            for &r in &buf {
                let r = cast::u32_to_usize(r);
                dense[row_w + r / 64] |= 1u64 << (r % 64);
            }
        }
        let pi = cast::u32_to_usize(prefix_by_len[t.len()]);
        ranked.extend_from_slice(&buf[..pi.min(buf.len())]);
        row_start.push(ranked.len());
    }
    drop(all);
    let base = base + vec_bytes(&ranked) + vec_bytes(&row_start);
    if let Some(trip) = poll(base) {
        return Err(trip);
    }

    // Pass 6: posting lists, rank → probing rows. Counting layout plus an
    // ascending fill keeps every list sorted by row id with no per-list
    // allocation.
    let mut counts: Vec<usize> = vec![0; num_items];
    for &r in &ranked {
        counts[cast::u32_to_usize(r)] += 1;
    }
    let mut post_start: Vec<usize> = Vec::with_capacity(num_items + 1);
    post_start.push(0);
    let mut acc = 0usize;
    for &c in &counts {
        acc += c;
        post_start.push(acc);
    }
    let mut cursor = post_start.clone();
    let mut post: Vec<u32> = vec![0; acc];
    for i in 0..n {
        if i.is_multiple_of(GUARD_STRIDE) {
            if let Some(trip) = poll(base + vec_bytes(&post) + vec_bytes(&post_start) * 2) {
                return Err(trip);
            }
        }
        for &r in &ranked[row_start[i]..row_start[i + 1]] {
            let c = &mut cursor[cast::u32_to_usize(r)];
            post[*c] = cast::usize_to_u32(i);
            *c += 1;
        }
    }
    drop(cursor);
    drop(counts);

    let index = JoinIndex {
        bytes: vec_bytes(&lengths)
            + vec_bytes(&empties)
            + vec_bytes(&ranked)
            + vec_bytes(&row_start)
            + vec_bytes(&post)
            + vec_bytes(&post_start)
            + vec_bytes(&len_idx)
            + vec_bytes(&tmin_tab)
            + vec_bytes(&dense),
        lengths,
        empties,
        ranked,
        row_start,
        post,
        post_start,
        len_idx,
        distinct_lens,
        tmin_tab,
        words_per_row,
        dense,
    };
    MemoryGauges::observe(&observer.memory().neighbor_graph, index.bytes);
    if let Some(trip) = guard.checkpoint(Phase::Neighbors, observer) {
        return Err(trip);
    }
    if let Some(s) = span {
        tracer.end(
            s,
            "neighbors.index",
            Some(Phase::Neighbors),
            0,
            Payload::new()
                .count("rows", cast::usize_to_u64(n))
                .count("items", cast::usize_to_u64(num_items))
                .count("postings", cast::usize_to_u64(index.post.len()))
                .count("bytes", index.bytes),
        );
    }
    Ok(index)
}

/// Shared state of one sharded probe: the early-exit broadcast flag and
/// the cross-worker edge tally feeding the memory gauge on top of the
/// (constant) index footprint.
struct ProbeState<'a> {
    stop: AtomicBool,
    partial_edges: AtomicU64,
    index_bytes: u64,
    done_rows: AtomicU64,
    total_rows: u64,
    observer: &'a Observer,
    guard: &'a Guard,
}

impl ProbeState<'_> {
    /// Worker poll: flushes `delta` freshly stored edges into the shared
    /// gauge (index bytes + edge payload bytes — always at or below the
    /// finished graph high-water, so the mark stays deterministic) and
    /// consults the guard. Returns the trip, if any, after broadcasting
    /// stop to the other workers.
    fn poll(&self, delta: u64) -> Option<Trip> {
        let edges = delta + self.partial_edges.fetch_add(delta, Ordering::Relaxed);
        MemoryGauges::observe(
            &self.observer.memory().neighbor_graph,
            self.index_bytes + edges * cast::usize_to_u64(std::mem::size_of::<u32>()),
        );
        if self.stop.load(Ordering::Relaxed) {
            return None; // another worker already tripped and reported
        }
        let trip = self.guard.checkpoint(Phase::Neighbors, self.observer)?;
        self.stop.store(true, Ordering::Relaxed);
        Some(trip)
    }
}

/// Per-worker tallies of one [`probe_range`] call. Summed in spawn order
/// by [`compute`], so the flushed counters are deterministic for every
/// thread count.
struct ProbeResult {
    candidates: u64,
    pruned: u64,
    verified: u64,
    edges: u64,
    trip: Option<Trip>,
    /// Per-stride-batch latencies (empty unless tracing was enabled).
    batch_ns: LatencyHistogram,
}

/// Probes rows `start..start + out.len()` against the index, writing each
/// row's sorted neighbor list into its slot of `out` and polling the
/// guard every [`GUARD_STRIDE`] rows. When tracing is enabled it emits
/// one `neighbors.probe` span and fills the per-stride-batch histogram.
#[allow(clippy::too_many_arguments)] // mirrors the link kernel's compute_range
fn probe_range(
    data: &TransactionSet,
    index: &JoinIndex,
    kind: SimilarityKind,
    theta: f64,
    worker: u64,
    start: usize,
    out: &mut [Vec<u32>],
    state: &ProbeState<'_>,
) -> ProbeResult {
    let tracer = state.observer.tracer();
    let shard_span = tracer.begin();
    let mut watch = tracer.stopwatch();
    let mut batch_ns = LatencyHistogram::new();
    let n = index.lengths.len();
    // Stamp-based candidate dedup: `stamp[j] == tick` marks j as already
    // collected for the current probing row; no clearing between rows.
    let mut stamp: Vec<u32> = vec![0; n];
    let mut tick: u32 = 0;
    let mut cand: Vec<u32> = Vec::new();
    let mut candidates = 0u64;
    let mut pruned = 0u64;
    let mut verified = 0u64;
    let mut edges = 0u64;
    let mut unflushed = 0u64;
    let mut rows_done = 0u64;
    let mut rows_since_lap = 0u64;
    let mut trip = None;
    for (off, row) in out.iter_mut().enumerate() {
        if off.is_multiple_of(GUARD_STRIDE) {
            if rows_since_lap > 0 {
                if let Some(w) = watch.as_mut() {
                    batch_ns.record(w.lap_ns());
                }
                rows_since_lap = 0;
            }
            trip = state.poll(unflushed);
            unflushed = 0;
            if trip.is_some() || state.stop.load(Ordering::Relaxed) {
                break;
            }
        }
        let i = start + off;
        let a = cast::u32_to_usize(index.lengths[i]);
        if a == 0 {
            // Empty rows sit outside the postings: decide every pair by
            // the measure's empty-set definition (overlap: 1.0 against
            // everything; the rest: 1.0 only against other empties).
            for (j, &len_j) in index.lengths.iter().enumerate() {
                if j != i && kind.sim_from_counts(0, 0, cast::u32_to_usize(len_j)) >= theta {
                    row.push(cast::usize_to_u32(j));
                }
            }
        } else if let Some(ti) = data.transaction(i) {
            tick += 1;
            cand.clear();
            for &r in index.prefix_ranks(i) {
                for &j in index.posting(r) {
                    if cast::u32_to_usize(j) != i && stamp[cast::u32_to_usize(j)] != tick {
                        stamp[cast::u32_to_usize(j)] = tick;
                        cand.push(j);
                    }
                }
            }
            candidates += cast::usize_to_u64(cand.len());
            for &j in &cand {
                let b = cast::u32_to_usize(index.lengths[cast::u32_to_usize(j)]);
                // Exact size filter: the best similarity these lengths
                // allow, by the verification predicate itself.
                if kind.sim_from_counts(a.min(b), a, b) < theta {
                    pruned += 1;
                    continue;
                }
                verified += 1;
                // Threshold form of `sim_from_counts(|Ti ∩ Tj|, a, b) ≥ θ`
                // — the size filter passed, so t_min exists for (a, b).
                let t = cast::u32_to_usize(
                    index.t_min_for(index.lengths[i], index.lengths[cast::u32_to_usize(j)]),
                );
                let hit = if index.words_per_row > 0 {
                    index.dense_intersection(i, cast::u32_to_usize(j)) >= t
                } else if let Some(tj) = data.transaction(cast::u32_to_usize(j)) {
                    intersects_at_least(ti.items(), tj.items(), t)
                } else {
                    false
                };
                if hit {
                    row.push(j);
                }
            }
            if !index.empties.is_empty() && kind.sim_from_counts(0, a, 0) >= theta {
                row.extend_from_slice(&index.empties);
            }
            row.sort_unstable();
        }
        edges += cast::usize_to_u64(row.len());
        unflushed += cast::usize_to_u64(row.len());
        rows_done += 1;
        rows_since_lap += 1;
    }
    if rows_since_lap > 0 {
        if let Some(w) = watch.as_mut() {
            batch_ns.record(w.lap_ns());
        }
    }
    state.partial_edges.fetch_add(unflushed, Ordering::Relaxed);
    let done = rows_done + state.done_rows.fetch_add(rows_done, Ordering::Relaxed);
    state
        .observer
        .progress(Phase::Neighbors, done, state.total_rows);
    if let Some(span) = shard_span {
        tracer.end(
            span,
            "neighbors.probe",
            Some(Phase::Neighbors),
            worker,
            Payload::new()
                .count("start", cast::usize_to_u64(start))
                .count("rows", rows_done)
                .count("candidates", candidates)
                .count("edges", edges),
        );
    }
    ProbeResult {
        candidates,
        pruned,
        verified,
        edges,
        trip,
        batch_ns,
    }
}

/// Computes the θ-neighbor lists of every row via the inverted-index
/// join, sharded over `threads` workers. Returns the lists together with
/// the trip that stopped the kernel, if any — on a trip the lists cover
/// only the completed prefix of each shard and the caller is expected to
/// discard them (the pipeline degrades to an all-outlier partition).
pub(super) fn compute(
    data: &TransactionSet,
    kind: SimilarityKind,
    theta: f64,
    threads: usize,
    observer: &Observer,
    guard: &Guard,
) -> (Vec<Vec<u32>>, Option<Trip>) {
    let n = data.len();
    let mut lists: Vec<Vec<u32>> = vec![Vec::new(); n];
    let index = match build(data, kind, theta, observer, guard) {
        Ok(index) => index,
        Err(trip) => return (lists, Some(trip)),
    };

    // Estimated candidate work per row: posting lengths over the probe
    // prefix (empty rows scan the length table instead). Purely a
    // function of the index, so the shard partition is deterministic.
    let weights: Vec<u64> = (0..n)
        .map(|i| {
            if index.lengths[i] == 0 {
                1 + cast::usize_to_u64(n)
            } else {
                1 + index
                    .prefix_ranks(i)
                    .iter()
                    .map(|&r| cast::usize_to_u64(index.posting(r).len()))
                    .sum::<u64>()
            }
        })
        .collect();

    let state = ProbeState {
        stop: AtomicBool::new(false),
        partial_edges: AtomicU64::new(0),
        index_bytes: index.bytes,
        done_rows: AtomicU64::new(0),
        total_rows: cast::usize_to_u64(n),
        observer,
        guard,
    };
    let mut candidates = 0u64;
    let mut pruned = 0u64;
    let mut verified = 0u64;
    let mut edges = 0u64;
    let mut trip: Option<Trip> = None;
    if threads <= 1 {
        let result = probe_range(data, &index, kind, theta, 0, 0, &mut lists, &state);
        candidates = result.candidates;
        pruned = result.pruned;
        verified = result.verified;
        edges = result.edges;
        trip = result.trip;
        if result.batch_ns.count() > 0 {
            observer
                .tracer()
                .record_hist("neighbors.probe_ns", Some(0), &result.batch_ns);
        }
    } else {
        let bounds = crate::shard::shard_by_weights(&weights, threads);
        // Per-worker tallies come back through the join handles and are
        // summed in spawn (= row-range) order, so the flushed totals are
        // deterministic for every thread count.
        let results = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            let mut rest: &mut [Vec<u32>] = &mut lists;
            let mut prev = 0usize;
            for w in 0..threads {
                let (slice, tail) = rest.split_at_mut(bounds[w + 1] - prev);
                rest = tail;
                let start = prev;
                prev = bounds[w + 1];
                let state = &state;
                let index = &index;
                let worker = cast::usize_to_u64(w);
                handles.push(scope.spawn(move || {
                    probe_range(data, index, kind, theta, worker, start, slice, state)
                }));
            }
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(result) => result,
                    Err(panic) => std::panic::resume_unwind(panic),
                })
                .collect::<Vec<_>>()
        });
        for (w, result) in results.into_iter().enumerate() {
            candidates += result.candidates;
            pruned += result.pruned;
            verified += result.verified;
            edges += result.edges;
            trip = trip.or(result.trip);
            if result.batch_ns.count() > 0 {
                observer.tracer().record_hist(
                    "neighbors.probe_ns",
                    Some(cast::usize_to_u64(w)),
                    &result.batch_ns,
                );
            }
        }
    }
    // Deterministic closing observe: every mid-probe poll reported
    // `index.bytes + partial·4` with `partial ≤ edges`, so this value
    // dominates them all and the high-water mark of a completed join is
    // identical for every thread count (a tripped run skips it — its
    // partial marks are not part of the determinism contract).
    if trip.is_none() {
        MemoryGauges::observe(
            &observer.memory().neighbor_graph,
            index.bytes + edges * cast::usize_to_u64(std::mem::size_of::<u32>()),
        );
    }
    let counters = observer.counters();
    PipelineCounters::add(&counters.neighbor_candidates, candidates);
    PipelineCounters::add(&counters.neighbor_candidates_pruned, pruned);
    PipelineCounters::add(&counters.neighbor_pairs_verified, verified);
    // Each verified candidate is one similarity evaluation — the same
    // unit the brute-force scan counts, just far fewer of them.
    PipelineCounters::add(&counters.similarity_comparisons, verified);
    PipelineCounters::add(&counters.neighbor_edges, edges);
    (lists, trip)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_min_matches_linear_scan_for_every_kind() {
        let kinds = [
            SimilarityKind::Jaccard,
            SimilarityKind::Dice,
            SimilarityKind::Overlap,
            SimilarityKind::Cosine,
        ];
        for kind in kinds {
            for theta in [0.2, 0.5, 0.8, 0.999] {
                for a in 1..=24usize {
                    for b in 1..=24usize {
                        let linear =
                            (0..=a.min(b)).find(|&t| kind.sim_from_counts(t, a, b) >= theta);
                        assert_eq!(
                            t_min(kind, theta, a, b),
                            linear,
                            "{kind:?} θ={theta} a={a} b={b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn t_min_is_symmetric() {
        for a in 1..=16usize {
            for b in 1..=16usize {
                assert_eq!(
                    t_min(SimilarityKind::Jaccard, 0.5, a, b),
                    t_min(SimilarityKind::Jaccard, 0.5, b, a),
                );
            }
        }
    }

    #[test]
    fn bounded_merge_decides_exactly_the_intersection_threshold() {
        // Every sorted deduplicated pair of small sets, every bound t:
        // the early-exit merge must agree with the full intersection.
        let sets: Vec<Vec<u32>> = vec![
            vec![],
            vec![1],
            vec![1, 2, 3],
            vec![2, 4, 6, 8],
            vec![1, 3, 5, 7, 9],
            vec![1, 2, 3, 4, 5, 6, 7, 8, 9],
            vec![9, 10, 11],
            vec![3, 8, 12, 20, 21],
        ];
        for x in &sets {
            for y in &sets {
                let full = x.iter().filter(|i| y.contains(i)).count();
                for t in 0..=(x.len().min(y.len()) + 1) {
                    assert_eq!(
                        intersects_at_least(x, y, t),
                        full >= t,
                        "x={x:?} y={y:?} t={t}"
                    );
                }
            }
        }
    }

    #[test]
    fn every_kind_is_monotone_in_the_intersection() {
        // The binary search in t_min assumes it; pin it down.
        let kinds = [
            SimilarityKind::Jaccard,
            SimilarityKind::Dice,
            SimilarityKind::Overlap,
            SimilarityKind::Cosine,
        ];
        for kind in kinds {
            for a in 1..=12usize {
                for b in 1..=12usize {
                    let mut prev = -1.0f64;
                    for t in 0..=a.min(b) {
                        let s = kind.sim_from_counts(t, a, b);
                        assert!(s >= prev, "{kind:?} a={a} b={b} t={t}");
                        prev = s;
                    }
                }
            }
        }
    }
}
