//! Crash-safe resume records: the `rock-checkpoint/v1` format.
//!
//! The streaming labeler writes one checkpoint after every durably
//! labeled chunk. A checkpoint captures everything a fresh process needs
//! to continue the run *byte-identically*: which cache and model the run
//! was labeling (by content fingerprint — resuming against different
//! inputs fails closed), how many chunks/rows are already in the partial
//! output, the running labeled/outlier/cluster tallies the final header
//! needs, and the partial file's length plus its **running FNV-1a 64
//! state** — the digest is the hasher's whole state (see
//! [`crate::hash::Fnv1a64`]), so verification after a crash costs one
//! hash of the surviving bytes and resumption continues the same stream.
//!
//! ```text
//! rock-checkpoint/v1
//! checksum fnv1a64 91ec59a92b3f0ab0
//! cache 00000000deadbeef
//! model 00000000cafebabe
//! chunks 7 40
//! rows 7000
//! labeled 6800
//! outliers 200
//! kmax 4
//! partial 123456 00000000feedf00d
//! end rock-checkpoint/v1
//! ```
//!
//! Writes are atomic (temp file + rename in the destination directory),
//! so a crash mid-write leaves either the previous checkpoint or the new
//! one, never a torn file. Parsing never panics; every defect surfaces
//! as [`RockError::CheckpointInvalid`] (exit code 4) — resume **fails
//! closed**, it never silently restarts from scratch on a corrupt
//! record.

use std::path::Path;

use crate::error::{Result, RockError};
use crate::hash::fnv1a64;

/// Format header (and footer) line; the version is part of the name.
const HEADER: &str = "rock-checkpoint/v1";

/// A `rock-checkpoint/v1` resume record: the durable progress of one
/// streaming labeling run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamCheckpoint {
    /// Content identity of the dataset cache being labeled.
    pub cache_id: u64,
    /// Content fingerprint of the model snapshot doing the labeling.
    pub model_id: u64,
    /// Chunks durably labeled so far.
    pub chunks_done: u64,
    /// Total chunks in the cache (recorded so a resume can detect a
    /// cache swap even when ids collide on length).
    pub chunks_total: u64,
    /// Rows durably labeled so far (the next global row index).
    pub rows_done: u64,
    /// Rows assigned to some cluster so far.
    pub labeled: u64,
    /// Rows marked outliers so far.
    pub outliers: u64,
    /// One past the highest cluster id assigned so far (`0` = none yet);
    /// becomes the final header's `k`.
    pub kmax: u64,
    /// Length in bytes of the partial assignment body.
    pub partial_bytes: u64,
    /// Running FNV-1a 64 state over the partial assignment body.
    pub partial_fnv: u64,
}

impl StreamCheckpoint {
    /// The canonical text rendering (always the same bytes for the same
    /// record).
    pub fn render(&self) -> String {
        let body = format!(
            "cache {:016x}\nmodel {:016x}\nchunks {} {}\nrows {}\nlabeled {}\noutliers {}\nkmax {}\npartial {} {:016x}\nend {HEADER}\n",
            self.cache_id,
            self.model_id,
            self.chunks_done,
            self.chunks_total,
            self.rows_done,
            self.labeled,
            self.outliers,
            self.kmax,
            self.partial_bytes,
            self.partial_fnv,
        );
        format!(
            "{HEADER}\nchecksum fnv1a64 {:016x}\n{body}",
            fnv1a64(body.as_bytes())
        )
    }

    /// Parses checkpoint text, verifying the header, checksum and
    /// grammar. Never panics.
    ///
    /// # Errors
    /// [`RockError::CheckpointInvalid`] for every defect — version,
    /// checksum, grammar or framing. One error class: resume either
    /// trusts the record completely or fails closed.
    pub fn parse(text: &str) -> Result<Self> {
        let bad = |message: String| RockError::CheckpointInvalid { message };
        let Some((first, rest)) = text.split_once('\n') else {
            return Err(bad(format!("missing header, found {:?}", text.trim())));
        };
        if first.trim_end_matches('\r') != HEADER {
            return Err(bad(format!("unknown format/version {first:?}")));
        }
        let Some((checksum_line, body)) = rest.split_once('\n') else {
            return Err(bad("missing checksum line".to_owned()));
        };
        let expected = match checksum_line
            .split_whitespace()
            .collect::<Vec<_>>()
            .as_slice()
        {
            ["checksum", "fnv1a64", hex] => u64::from_str_radix(hex, 16)
                .map_err(|e| bad(format!("bad checksum value {hex:?}: {e}")))?,
            _ => return Err(bad(format!("bad checksum line {checksum_line:?}"))),
        };
        let actual = fnv1a64(body.as_bytes());
        if actual != expected {
            return Err(bad(format!(
                "checksum mismatch: header says {expected:016x}, body hashes to {actual:016x} (truncated or corrupt)"
            )));
        }

        let mut lines = body.lines();
        let mut field = |key: &str| -> Result<Vec<String>> {
            let line = lines
                .next()
                .ok_or_else(|| bad(format!("truncated: expected `{key}` line")))?;
            let rest = line
                .strip_prefix(key)
                .and_then(|r| r.strip_prefix(' '))
                .ok_or_else(|| bad(format!("expected `{key} ...`, found {line:?}")))?;
            Ok(rest.split_whitespace().map(str::to_owned).collect())
        };
        let hex1 = |key: &str, toks: &[String]| -> Result<u64> {
            match toks {
                [h] => u64::from_str_radix(h, 16)
                    .map_err(|e| bad(format!("bad {key} value {h:?}: {e}"))),
                _ => Err(bad(format!("expected `{key} <hex>`, found {toks:?}"))),
            }
        };
        let dec1 = |key: &str, toks: &[String]| -> Result<u64> {
            match toks {
                [d] => d
                    .parse()
                    .map_err(|e| bad(format!("bad {key} value {d:?}: {e}"))),
                _ => Err(bad(format!("expected `{key} <n>`, found {toks:?}"))),
            }
        };

        let cache_id = hex1("cache", &field("cache")?)?;
        let model_id = hex1("model", &field("model")?)?;
        let chunks = field("chunks")?;
        let (chunks_done, chunks_total) = match chunks.as_slice() {
            [done, total] => (
                done.parse()
                    .map_err(|e| bad(format!("bad chunks done {done:?}: {e}")))?,
                total
                    .parse()
                    .map_err(|e| bad(format!("bad chunks total {total:?}: {e}")))?,
            ),
            _ => {
                return Err(bad(format!(
                    "expected `chunks <done> <total>`, found {chunks:?}"
                )))
            }
        };
        let rows_done = dec1("rows", &field("rows")?)?;
        let labeled = dec1("labeled", &field("labeled")?)?;
        let outliers = dec1("outliers", &field("outliers")?)?;
        let kmax = dec1("kmax", &field("kmax")?)?;
        let partial = field("partial")?;
        let (partial_bytes, partial_fnv) = match partial.as_slice() {
            [bytes, fnv] => (
                bytes
                    .parse()
                    .map_err(|e| bad(format!("bad partial bytes {bytes:?}: {e}")))?,
                u64::from_str_radix(fnv, 16)
                    .map_err(|e| bad(format!("bad partial fnv {fnv:?}: {e}")))?,
            ),
            _ => {
                return Err(bad(format!(
                    "expected `partial <bytes> <fnv-hex>`, found {partial:?}"
                )))
            }
        };
        match lines.next() {
            Some(l) if l == format!("end {HEADER}") => {}
            other => return Err(bad(format!("expected `end {HEADER}`, found {other:?}"))),
        }
        if let Some(extra) = lines.find(|l| !l.trim().is_empty()) {
            return Err(bad(format!("trailing content {extra:?}")));
        }

        let cp = StreamCheckpoint {
            cache_id,
            model_id,
            chunks_done,
            chunks_total,
            rows_done,
            labeled,
            outliers,
            kmax,
            partial_bytes,
            partial_fnv,
        };
        if cp.chunks_done > cp.chunks_total {
            return Err(bad(format!(
                "chunks done {} exceeds total {}",
                cp.chunks_done, cp.chunks_total
            )));
        }
        if cp.labeled + cp.outliers != cp.rows_done {
            return Err(bad(format!(
                "labeled {} + outliers {} does not equal rows done {}",
                cp.labeled, cp.outliers, cp.rows_done
            )));
        }
        Ok(cp)
    }

    /// Atomically persists the checkpoint: the text is written to
    /// `<path>.tmp` in the same directory, flushed, then renamed over
    /// `path`. A crash leaves either the old record or the new one.
    ///
    /// # Errors
    /// [`RockError::Io`] on filesystem failure.
    pub fn save(&self, path: &Path) -> Result<()> {
        let io = |e: std::io::Error| RockError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        };
        let tmp = tmp_path(path);
        std::fs::write(&tmp, self.render()).map_err(io)?;
        std::fs::rename(&tmp, path).map_err(io)
    }

    /// Loads and verifies a checkpoint from `path`.
    ///
    /// # Errors
    /// [`RockError::Io`] when the file cannot be read,
    /// [`RockError::CheckpointInvalid`] when it can be read but not
    /// trusted.
    pub fn load(path: &Path) -> Result<Self> {
        let text = std::fs::read_to_string(path).map_err(|e| RockError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        Self::parse(&text)
    }
}

/// Sibling temp path used for atomic replacement (same directory, so the
/// rename cannot cross filesystems).
pub(crate) fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StreamCheckpoint {
        StreamCheckpoint {
            cache_id: 0xdead_beef,
            model_id: 0xcafe_babe,
            chunks_done: 7,
            chunks_total: 40,
            rows_done: 7000,
            labeled: 6800,
            outliers: 200,
            kmax: 4,
            partial_bytes: 123_456,
            partial_fnv: 0xfeed_f00d,
        }
    }

    #[test]
    fn render_parse_round_trips() {
        let cp = sample();
        let text = cp.render();
        assert_eq!(StreamCheckpoint::parse(&text).unwrap(), cp);
        // Canonical: re-render is byte-identical.
        assert_eq!(StreamCheckpoint::parse(&text).unwrap().render(), text);
    }

    #[test]
    fn save_load_round_trips_atomically() {
        let dir = std::env::temp_dir().join("rock-checkpoint-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.rockckpt");
        let cp = sample();
        cp.save(&path).unwrap();
        assert_eq!(StreamCheckpoint::load(&path).unwrap(), cp);
        // Overwrite with new progress; no temp file left behind.
        let mut next = cp;
        next.chunks_done = 8;
        next.rows_done = 8000;
        next.labeled = 7800;
        next.save(&path).unwrap();
        assert_eq!(StreamCheckpoint::load(&path).unwrap(), next);
        assert!(!tmp_path(&path).exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corruption_fails_closed() {
        let text = sample().render();
        // Flip a digit in the body: checksum must catch it.
        let corrupt = text.replace("rows 7000", "rows 7001");
        assert!(matches!(
            StreamCheckpoint::parse(&corrupt).unwrap_err(),
            RockError::CheckpointInvalid { .. }
        ));
    }

    #[test]
    fn truncation_fails_closed() {
        let text = sample().render();
        for keep in 1..text.lines().count() {
            let truncated: String = text.lines().take(keep).map(|l| format!("{l}\n")).collect();
            assert!(
                matches!(
                    StreamCheckpoint::parse(&truncated).unwrap_err(),
                    RockError::CheckpointInvalid { .. }
                ),
                "keep={keep}"
            );
        }
    }

    #[test]
    fn garbage_never_panics() {
        for s in [
            "",
            "\n",
            "rock-checkpoint/v9\nx\n",
            "rock-checkpoint/v1\nchecksum md5 00\nbody\n",
            "rock-checkpoint/v1\nchecksum fnv1a64 zz\n",
            "rock-checkpoint/v1\nchecksum fnv1a64 0000000000000000\n",
        ] {
            assert!(
                matches!(
                    StreamCheckpoint::parse(s).unwrap_err(),
                    RockError::CheckpointInvalid { .. }
                ),
                "{s:?}"
            );
        }
        // A valid checksum over a garbage body still fails cleanly.
        let body = "cache zz\n";
        let text = format!(
            "rock-checkpoint/v1\nchecksum fnv1a64 {:016x}\n{body}",
            fnv1a64(body.as_bytes())
        );
        assert!(matches!(
            StreamCheckpoint::parse(&text).unwrap_err(),
            RockError::CheckpointInvalid { .. }
        ));
    }

    #[test]
    fn semantic_invariants_fail_closed() {
        let mut cp = sample();
        cp.chunks_done = 99; // > total
        assert!(StreamCheckpoint::parse(&cp.render()).is_err());
        let mut cp = sample();
        cp.labeled = 1; // labeled + outliers != rows
        assert!(StreamCheckpoint::parse(&cp.render()).is_err());
    }

    #[test]
    fn exit_code_is_malformed_input() {
        let err = StreamCheckpoint::parse("junk").unwrap_err();
        assert_eq!(err.exit_code(), 4);
    }
}
