//! The links-based criterion function and merge goodness measure.
//!
//! ROCK maximizes the criterion function (paper §3.3)
//!
//! ```text
//! E_l = Σ_i  n_i · Σ_{p,q ∈ C_i} link(p,q) / n_i^(1 + 2 f(θ))
//! ```
//!
//! where `n_i^(1+2f(θ))` estimates the number of links *expected* inside a
//! cluster of `n_i` points, under the heuristic that each point of the
//! cluster has about `n_i^{f(θ)}` neighbors within it. For market-basket
//! data the paper proposes `f(θ) = (1−θ)/(1+θ)`.
//!
//! The pairwise merge *goodness measure* (paper §3.4) normalizes the
//! cross-link count between two clusters by the expected cross-links:
//!
//! ```text
//! g(Ci, Cj) = link[Ci, Cj] / ( (ni+nj)^(1+2f(θ)) − ni^(1+2f(θ)) − nj^(1+2f(θ)) )
//! ```
//!
//! Merging the pair with maximal goodness greedily increases `E_l`.

use crate::cast;
use crate::error::{Result, RockError};

/// The cluster-size exponent function `f(θ)`.
///
/// The paper stresses that `f` is data-dependent: it must satisfy (1) pairs
/// of points in the same cluster have more links than pairs in different
/// clusters, and (2) points in a cluster of size `n` have roughly `n^{f(θ)}`
/// neighbors inside it. Implementations return `f(θ)` for the θ in use.
pub trait LinkExponent: Sync {
    /// Value of `f(θ)`.
    fn f(&self, theta: f64) -> f64;

    /// Short name for experiment output.
    fn name(&self) -> &'static str;
}

/// The paper's market-basket exponent `f(θ) = (1−θ)/(1+θ)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MarketBasket;

impl LinkExponent for MarketBasket {
    #[inline]
    fn f(&self, theta: f64) -> f64 {
        (1.0 - theta) / (1.0 + theta)
    }

    fn name(&self) -> &'static str {
        "market-basket"
    }
}

/// A constant exponent `f(θ) = c`, independent of θ. Useful for ablations
/// (e.g. `c = 1` makes the expected-link estimate `n²`, i.e. every pair of
/// cluster members is presumed linked).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantExponent(pub f64);

impl LinkExponent for ConstantExponent {
    #[inline]
    fn f(&self, _theta: f64) -> f64 {
        self.0
    }

    fn name(&self) -> &'static str {
        "constant"
    }
}

/// Precomputed goodness evaluator for a fixed `(θ, f)` pair.
///
/// Caches the exponent `1 + 2 f(θ)` and memoizes `n^(1+2f(θ))` for small
/// `n`, since the merge loop evaluates the denominator for every candidate
/// pair it touches.
#[derive(Debug, Clone)]
pub struct Goodness {
    theta: f64,
    exponent: f64,
    /// `pow_cache[n] = n^exponent` for `n < pow_cache.len()`.
    pow_cache: Vec<f64>,
}

/// Size beyond which `powf` is computed directly instead of cached.
const POW_CACHE: usize = 4096;

impl Goodness {
    /// Creates an evaluator for threshold `theta` and exponent function `f`.
    ///
    /// # Errors
    /// Returns [`RockError::InvalidTheta`] unless `0 < θ < 1`.
    pub fn new<F: LinkExponent + ?Sized>(theta: f64, f: &F) -> Result<Self> {
        if !(theta > 0.0 && theta < 1.0) {
            return Err(RockError::InvalidTheta(theta));
        }
        let exponent = 1.0 + 2.0 * f.f(theta);
        let pow_cache = (0..POW_CACHE)
            .map(|n| cast::usize_to_f64(n).powf(exponent))
            .collect();
        Ok(Goodness {
            theta,
            exponent,
            pow_cache,
        })
    }

    /// The similarity threshold θ.
    #[inline]
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The cached exponent `1 + 2 f(θ)`.
    #[inline]
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Expected number of links inside a cluster of `n` points:
    /// `n^(1 + 2 f(θ))`.
    #[inline]
    pub fn expected_links(&self, n: usize) -> f64 {
        if n < self.pow_cache.len() {
            self.pow_cache[n]
        } else {
            cast::usize_to_f64(n).powf(self.exponent)
        }
    }

    /// Goodness of merging clusters of sizes `n_i` and `n_j` joined by
    /// `links` cross-links.
    ///
    /// A non-positive denominator cannot occur for `n_i, n_j ≥ 1` because
    /// `x ↦ x^e` is strictly superadditive for `e > 1` (`f(θ) > 0`); we
    /// guard with a `debug_assert` and clamp for `f(θ) = 0` ablations.
    #[inline]
    pub fn merge_goodness(&self, links: u64, n_i: usize, n_j: usize) -> f64 {
        let denom =
            self.expected_links(n_i + n_j) - self.expected_links(n_i) - self.expected_links(n_j);
        debug_assert!(n_i > 0 && n_j > 0, "clusters must be non-empty");
        if denom <= 0.0 {
            // Degenerate exponent (f(θ) = 0 → e = 1). Fall back to raw
            // cross-link count so the merge order is still well-defined.
            return cast::u64_to_f64(links);
        }
        cast::u64_to_f64(links) / denom
    }

    /// Contribution of one cluster to the criterion `E_l`:
    /// `n · internal_links / n^(1+2f(θ))`, where `internal_links` counts
    /// ordered pairs `link(p,q)` with `p ≠ q` (i.e. twice the unordered sum).
    #[inline]
    pub fn criterion_term(&self, internal_links: u64, n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        cast::usize_to_f64(n) * cast::u64_to_f64(internal_links) / self.expected_links(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn market_basket_exponent_values() {
        let f = MarketBasket;
        assert!((f.f(0.5) - 1.0 / 3.0).abs() < 1e-12);
        assert!((f.f(0.0) - 1.0).abs() < 1e-12);
        assert!(f.f(1.0).abs() < 1e-12);
        // Monotone decreasing in θ.
        assert!(f.f(0.2) > f.f(0.8));
    }

    #[test]
    fn goodness_rejects_bad_theta() {
        assert!(Goodness::new(0.0, &MarketBasket).is_err());
        assert!(Goodness::new(1.0, &MarketBasket).is_err());
        assert!(Goodness::new(-0.5, &MarketBasket).is_err());
        assert!(Goodness::new(f64::NAN, &MarketBasket).is_err());
        assert!(Goodness::new(0.5, &MarketBasket).is_ok());
    }

    #[test]
    fn expected_links_matches_powf() {
        let g = Goodness::new(0.5, &MarketBasket).unwrap();
        let e = 1.0 + 2.0 / 3.0;
        for n in [0usize, 1, 2, 10, 100, 4095, 4096, 10_000] {
            let want = (n as f64).powf(e);
            let got = g.expected_links(n);
            assert!(
                (got - want).abs() <= 1e-9 * want.max(1.0),
                "n={n}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn merge_goodness_penalizes_large_clusters() {
        let g = Goodness::new(0.5, &MarketBasket).unwrap();
        // Same number of cross-links, larger clusters → lower goodness.
        let small = g.merge_goodness(10, 5, 5);
        let large = g.merge_goodness(10, 50, 50);
        assert!(small > large);
    }

    #[test]
    fn merge_goodness_scales_linearly_in_links() {
        let g = Goodness::new(0.73, &MarketBasket).unwrap();
        let one = g.merge_goodness(1, 4, 6);
        let ten = g.merge_goodness(10, 4, 6);
        assert!((ten - 10.0 * one).abs() < 1e-9);
    }

    #[test]
    fn constant_exponent_zero_falls_back_to_links() {
        // f = 0 → exponent 1 → denominator 0; goodness should degrade to
        // the raw link count rather than dividing by zero.
        let g = Goodness::new(0.5, &ConstantExponent(0.0)).unwrap();
        assert_eq!(g.merge_goodness(7, 3, 4), 7.0);
    }

    #[test]
    fn criterion_term_normalizes_by_expected_links() {
        let g = Goodness::new(0.5, &MarketBasket).unwrap();
        // A clique of n=4 where every pair has exactly 2 links: ordered
        // internal link count = 4*3*2 = 24? (n(n-1) pairs × 2 links).
        let term = g.criterion_term(24, 4);
        assert!((term - 4.0 * 24.0 / 4f64.powf(1.0 + 2.0 / 3.0)).abs() < 1e-12);
        assert_eq!(g.criterion_term(0, 0), 0.0);
    }

    #[test]
    fn theta_and_exponent_accessors() {
        let g = Goodness::new(0.8, &MarketBasket).unwrap();
        assert_eq!(g.theta(), 0.8);
        let want = 1.0 + 2.0 * (0.2 / 1.8);
        assert!((g.exponent() - want).abs() < 1e-12);
    }

    #[test]
    fn paper_example_goodness_ordering() {
        // From the paper's motivation: with θ = 0.5 and f(θ) = 1/3, merging
        // two singleton clusters with 1 link should beat merging two size-2
        // clusters with 1 link.
        let g = Goodness::new(0.5, &MarketBasket).unwrap();
        assert!(g.merge_goodness(1, 1, 1) > g.merge_goodness(1, 2, 2));
    }
}
