//! The ROCK agglomerative merge engine (paper §4, procedure `cluster`).
//!
//! Every point starts as a singleton cluster. Each cluster `i` owns a
//! *local heap* `q[i]` of the clusters linked to it, ordered by the
//! goodness measure; a *global heap* `Q` orders clusters by the goodness of
//! their best local merge. Each iteration merges the globally best pair
//! `(u, v)`, folds `v`'s link row into `u`'s, and repairs the heaps of all
//! affected clusters — `O(links touched · log n)` per merge, exactly the
//! bookkeeping the paper describes.
//!
//! The loop stops when the requested number of clusters is reached or when
//! no cross-cluster links remain (the paper's termination condition; the
//! leftover link-free clusters cannot be merged meaningfully).
//!
//! Outlier handling follows paper §4.3: optionally, when the number of
//! clusters first falls to a checkpoint fraction of the starting count,
//! clusters that are still very small are discarded — outliers tend to form
//! singletons or tiny groups that stop participating in merges early.

use std::collections::HashMap;

use crate::cast;
use crate::contracts;
use crate::error::{Result, RockError};
use crate::goodness::Goodness;
use crate::guard::{Guard, Trip};
use crate::heap::IndexedHeap;
use crate::links::LinkTable;
use crate::telemetry::trace::{LatencyHistogram, Payload, Tracer};
use crate::telemetry::{MemoryGauges, Observer, Phase, PipelineCounters};

/// Merges per trace span / histogram sample in the instrumented merge
/// loop: small enough to localize a slow stretch, large enough to keep
/// trace volume at ~1/64 of the merge count.
const MERGE_BATCH: u64 = 64;

/// The workspace's **single audited total order over floating-point
/// goodness values**.
///
/// Floats are only partially ordered (`NaN` compares to nothing), and a
/// `partial_cmp(..).unwrap()` on a NaN goodness would panic mid-merge —
/// or worse, a silent `unwrap_or` tie-break would scramble the merge
/// order nondeterministically. `GoodnessOrd` closes that hole once, for
/// everyone: construction debug-asserts the value is not NaN (goodness
/// denominators are proven positive in [`Goodness`]), and ordering is
/// IEEE 754 `total_cmp`, which is total even if a NaN slips through a
/// release build.
///
/// The `float-ord` lint (`crates/analysis`) bans `partial_cmp` and raw
/// float `Ord` shims everywhere else in the workspace; float orderings
/// must route through this type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GoodnessOrd(f64);

impl GoodnessOrd {
    /// Wraps a goodness/score value, debug-asserting it is not NaN.
    #[inline]
    pub fn new(value: f64) -> Self {
        debug_assert!(!value.is_nan(), "ordered float value must not be NaN");
        GoodnessOrd(value)
    }

    /// The wrapped value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for GoodnessOrd {}

impl Ord for GoodnessOrd {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl PartialOrd for GoodnessOrd {
    #[inline]
    // rock-analyze: allow(float-ord) — the audited site: delegates to total_cmp, non-NaN is debug-asserted at construction.
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Totally ordered heap key: goodness value with a deterministic id
/// tie-break (smaller id wins ties, so runs are reproducible). Ordering
/// is derived lexicographically over ([`GoodnessOrd`], reversed id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct GoodnessKey {
    goodness: GoodnessOrd,
    tie: std::cmp::Reverse<u32>,
}

impl GoodnessKey {
    /// Creates a key; `goodness` must not be NaN (debug-asserted by
    /// [`GoodnessOrd::new`]).
    #[inline]
    pub fn new(goodness: f64, tie: u32) -> Self {
        GoodnessKey {
            goodness: GoodnessOrd::new(goodness),
            tie: std::cmp::Reverse(tie),
        }
    }

    /// The goodness value.
    #[inline]
    pub fn goodness(self) -> f64 {
        self.goodness.get()
    }

    /// The tie-breaking id.
    #[inline]
    pub fn tie(self) -> u32 {
        self.tie.0
    }
}

/// Outlier pruning policy applied during merging (paper §4.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PruneConfig {
    /// When the live cluster count first drops to
    /// `ceil(checkpoint_fraction · n)`, pruning fires. The paper suggests
    /// around 1/3.
    pub checkpoint_fraction: f64,
    /// Clusters with at most this many members are discarded at the
    /// checkpoint (the paper suggests 1–2 points).
    pub max_prune_size: usize,
}

impl Default for PruneConfig {
    fn default() -> Self {
        PruneConfig {
            checkpoint_fraction: 1.0 / 3.0,
            max_prune_size: 2,
        }
    }
}

/// Configuration for [`agglomerate`].
#[derive(Debug, Clone)]
pub struct AgglomerateConfig {
    /// Target number of clusters.
    pub k: usize,
    /// Optional mid-run outlier pruning.
    pub prune: Option<PruneConfig>,
    /// Record the merge history (one [`MergeStep`] per merge).
    pub record_history: bool,
    /// Stop early once the best available merge's goodness falls below
    /// this value (the paper's alternative termination condition when the
    /// natural cluster count is unknown). `None` disables it.
    pub min_goodness: Option<f64>,
}

impl AgglomerateConfig {
    /// Plain configuration: merge down to `k`, no pruning, keep history.
    pub fn new(k: usize) -> Self {
        AgglomerateConfig {
            k,
            prune: None,
            record_history: true,
            min_goodness: None,
        }
    }

    /// Sets the early-stop goodness threshold.
    pub fn min_goodness(mut self, threshold: f64) -> Self {
        self.min_goodness = Some(threshold);
        self
    }
}

/// One merge performed by the engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MergeStep {
    /// Cluster slot that survived the merge.
    pub kept: u32,
    /// Cluster slot folded into `kept`.
    pub absorbed: u32,
    /// Goodness of the merged pair.
    pub goodness: f64,
    /// Sizes of `(kept, absorbed)` before the merge.
    pub sizes: (u32, u32),
    /// Value of the criterion function E_l after the merge.
    pub criterion: f64,
}

/// Result of a run of the merge engine.
#[derive(Debug, Clone)]
pub struct Agglomeration {
    /// For each input point, the dense output cluster index, or `None` if
    /// the point was pruned as an outlier.
    pub assignment: Vec<Option<u32>>,
    /// Member point indices per output cluster, each sorted ascending.
    /// Clusters are ordered by decreasing size (ties by smallest member).
    pub clusters: Vec<Vec<u32>>,
    /// Merge history (empty unless `record_history`).
    pub history: Vec<MergeStep>,
    /// Final value of the criterion function E_l.
    pub criterion: f64,
    /// Number of merges performed (counted even when history is off).
    pub merges: usize,
    /// `true` if the engine reached exactly `k` clusters; `false` if it
    /// stopped early because no cross-cluster links remained.
    pub reached_k: bool,
    /// Points pruned as outliers during merging.
    pub outliers: Vec<u32>,
}

/// Runs the ROCK merge engine over `n` points with the given link table.
///
/// # Errors
/// * [`RockError::EmptyDataset`] when `n == 0`.
/// * [`RockError::InvalidK`] when `k` is 0 or exceeds `n`.
pub fn agglomerate(
    n: usize,
    links: &LinkTable,
    goodness: &Goodness,
    config: &AgglomerateConfig,
) -> Result<Agglomeration> {
    agglomerate_observed(n, links, goodness, config, &Observer::new())
}

/// [`agglomerate`] with telemetry: merges, heap push/pop totals (summed
/// over the global and every local heap) and pruned outliers flow into
/// `observer`'s counters, and the combined heap footprint into its memory
/// gauge.
///
/// # Errors
/// Same as [`agglomerate`].
pub fn agglomerate_observed(
    n: usize,
    links: &LinkTable,
    goodness: &Goodness,
    config: &AgglomerateConfig,
    observer: &Observer,
) -> Result<Agglomeration> {
    let (agg, _trip) =
        agglomerate_guarded(n, links, goodness, config, observer, &Guard::unlimited())?;
    Ok(agg)
}

/// [`agglomerate_observed`] under a [`Guard`]: the merge loop calls
/// [`Guard::merge_tick`] before every merge, so a step budget of `s`
/// permits exactly `s` merges, cancellation takes effect within one merge,
/// and a deadline is sampled periodically. On a trip the engine stops
/// cleanly — telemetry still flushes and the partial result is a valid
/// partition (ROCK is an anytime algorithm: every prefix of the merge
/// sequence is a consistent clustering). Returns the agglomeration plus
/// the trip, if one occurred.
///
/// # Errors
/// Same as [`agglomerate`]; a budget trip is **not** an error.
pub fn agglomerate_guarded(
    n: usize,
    links: &LinkTable,
    goodness: &Goodness,
    config: &AgglomerateConfig,
    observer: &Observer,
    guard: &Guard,
) -> Result<(Agglomeration, Option<Trip>)> {
    if n == 0 {
        return Err(RockError::EmptyDataset);
    }
    if config.k == 0 || config.k > n {
        return Err(RockError::InvalidK { k: config.k, n });
    }
    debug_assert_eq!(links.len(), n, "link table size mismatch");

    let mut engine = Engine::new(n, links, goodness, config.record_history);
    // Contract: the freshly built heaps are structurally sound.
    contracts::check_heap(&engine.global);
    // Heaps are at their fullest right after construction.
    MemoryGauges::observe(
        &observer.memory().heaps,
        cast::usize_to_u64(engine.heap_bytes()),
    );
    let checkpoint = config.prune.map(|p| {
        let c = cast::f64_to_usize((p.checkpoint_fraction * cast::usize_to_f64(n)).ceil());
        (c.clamp(config.k, n), p.max_prune_size)
    });
    let mut pruned_at_checkpoint = checkpoint.is_none();

    // Trace instrumentation: one `agglomerate.batch` span (and one
    // histogram sample) per MERGE_BATCH merges. All of it is `None`-guarded,
    // so a disabled tracer costs one atomic load before the loop.
    let tracer = observer.tracer();
    let mut batch_span = tracer.begin();
    let mut batch_hist = LatencyHistogram::new();
    let mut batch_merges = 0u64;
    let mut batch_goodness = 0.0f64;
    fn end_batch(
        tracer: &Tracer,
        hist: &mut LatencyHistogram,
        span: crate::telemetry::trace::SpanStart,
        merges: u64,
        goodness: f64,
        active: usize,
    ) {
        hist.record(Tracer::elapsed_ns(&span));
        tracer.end(
            span,
            "agglomerate.batch",
            Some(Phase::Agglomerate),
            0,
            Payload::new()
                .count("merges", merges)
                .num("goodness", goodness)
                .count("active", cast::usize_to_u64(active)),
        );
    }

    let mut trip = None;
    let mut active = n;
    while active > config.k {
        if let Some((at, max_size)) = checkpoint {
            if !pruned_at_checkpoint && active <= at {
                engine.prune_small(max_size);
                contracts::check_heap(&engine.global);
                pruned_at_checkpoint = true;
                active = engine.active_count();
                if active <= config.k {
                    break;
                }
            }
        }
        if let Some(threshold) = config.min_goodness {
            if engine.best_goodness().is_none_or(|g| g < threshold) {
                break; // remaining merges are below the quality floor
            }
        }
        if let Some(t) = guard.merge_tick() {
            trip = Some(t); // budget tripped; keep the partial clustering
            break;
        }
        let Some(goodness_value) = engine.merge_best() else {
            break; // no cross-cluster links remain
        };
        active -= 1;
        if batch_span.is_some() {
            batch_merges += 1;
            batch_goodness = goodness_value;
            if batch_merges == MERGE_BATCH {
                if let Some(span) = batch_span.take() {
                    end_batch(
                        tracer,
                        &mut batch_hist,
                        span,
                        batch_merges,
                        batch_goodness,
                        active,
                    );
                }
                batch_merges = 0;
                batch_span = tracer.begin();
            }
        }
    }
    if batch_merges > 0 {
        if let Some(span) = batch_span.take() {
            end_batch(
                tracer,
                &mut batch_hist,
                span,
                batch_merges,
                batch_goodness,
                active,
            );
        }
    }
    if batch_hist.count() > 0 {
        tracer.record_hist("agglomerate.batch_ns", None, &batch_hist);
    }

    engine.flush_telemetry(observer);
    let agg = engine.finish(active == config.k);
    // Contract: clusters, assignment, outliers and criterion agree.
    contracts::check_agglomeration(&agg);
    Ok((agg, trip))
}

/// Internal merge-engine state.
struct Engine<'a> {
    goodness: &'a Goodness,
    /// Member lists per slot; empty = inactive slot.
    members: Vec<Vec<u32>>,
    /// Cross-link rows per slot: partner slot → link count. Symmetric.
    rows: Vec<HashMap<u32, u64>>,
    /// Internal (within-cluster) ordered link counts per slot.
    internal: Vec<u64>,
    /// Local heaps.
    local: Vec<IndexedHeap<GoodnessKey>>,
    /// Global heap over slots with non-empty local heaps.
    global: IndexedHeap<GoodnessKey>,
    history: Vec<MergeStep>,
    record_history: bool,
    merges: usize,
    outliers: Vec<u32>,
    active: usize,
}

impl<'a> Engine<'a> {
    #[allow(clippy::needless_range_loop)] // local heaps & rows are parallel arrays
    fn new(n: usize, links: &LinkTable, goodness: &'a Goodness, record_history: bool) -> Self {
        let members: Vec<Vec<u32>> = (0..cast::usize_to_u32(n)).map(|i| vec![i]).collect();
        // Build symmetric rows from the upper-triangle link table.
        let mut rows: Vec<HashMap<u32, u64>> = vec![HashMap::new(); n];
        for (i, j, c) in links.iter() {
            rows[cast::u32_to_usize(i)].insert(j, u64::from(c));
            rows[cast::u32_to_usize(j)].insert(i, u64::from(c));
        }
        let mut local: Vec<IndexedHeap<GoodnessKey>> = Vec::with_capacity(n);
        let mut global = IndexedHeap::with_capacity(n);
        for i in 0..n {
            let iu = cast::usize_to_u32(i);
            let mut h = IndexedHeap::with_capacity(rows[i].len());
            // rock-analyze: allow(nondet-iter) — order-insensitive: heap pop order is a pure function of the strict GoodnessKey total order, not insertion order.
            for (&j, &c) in &rows[i] {
                h.insert_or_update(j, GoodnessKey::new(goodness.merge_goodness(c, 1, 1), j));
            }
            if let Some((best, _)) = h.peek() {
                global.insert_or_update(iu, GoodnessKey::new(best.goodness(), iu));
            }
            local.push(h);
        }
        Engine {
            goodness,
            members,
            rows,
            internal: vec![0; n],
            local,
            global,
            history: Vec::new(),
            record_history,
            merges: 0,
            outliers: Vec::new(),
            active: n,
        }
    }

    fn active_count(&self) -> usize {
        self.active
    }

    #[inline]
    fn size(&self, slot: u32) -> usize {
        self.members[cast::u32_to_usize(slot)].len()
    }

    /// Goodness of the best available merge, if any.
    fn best_goodness(&self) -> Option<f64> {
        self.global.peek().map(|(k, _)| k.goodness())
    }

    /// Recomputes slot `i`'s entry in the global heap from its local heap.
    fn refresh_global(&mut self, i: u32) {
        match self.local[cast::u32_to_usize(i)].peek() {
            Some((best, _)) => self
                .global
                .insert_or_update(i, GoodnessKey::new(best.goodness(), i)),
            None => {
                self.global.remove(i);
            }
        }
    }

    /// Merges the globally best pair, returning its goodness. `None` when
    /// no pair exists.
    fn merge_best(&mut self) -> Option<f64> {
        let (_, u) = self.global.peek()?;
        let Some((key, v)) = self.local[cast::u32_to_usize(u)]
            .peek()
            .map(|(k, v)| (*k, v))
        else {
            // Defensive: a slot in the global heap always has a local best.
            self.global.remove(u);
            if self.global.is_empty() {
                return None;
            }
            return self.merge_best();
        };
        self.merge(u, v, key.goodness());
        Some(key.goodness())
    }

    /// Merges cluster `v` into cluster `u`.
    fn merge(&mut self, u: u32, v: u32, goodness_value: f64) {
        debug_assert_ne!(u, v);
        let (nu, nv) = (self.size(u), self.size(v));
        let cross = self.rows[cast::u32_to_usize(u)]
            .get(&v)
            .copied()
            .unwrap_or(0);

        // Fold members and internal links.
        let v_members = std::mem::take(&mut self.members[cast::u32_to_usize(v)]);
        self.members[cast::u32_to_usize(u)].extend(v_members);
        self.internal[cast::u32_to_usize(u)] += self.internal[cast::u32_to_usize(v)] + 2 * cross;
        self.internal[cast::u32_to_usize(v)] = 0;

        // Fold v's row into u's; drop the u↔v entry.
        let v_row = std::mem::take(&mut self.rows[cast::u32_to_usize(v)]);
        self.rows[cast::u32_to_usize(u)].remove(&v);
        for (x, c) in v_row {
            if x == u {
                continue;
            }
            *self.rows[cast::u32_to_usize(u)].entry(x).or_insert(0) += c;
        }

        // Repair every affected neighbor x: its row and local heap lose u
        // and v, gaining the merged cluster (slot u) with updated goodness.
        let nw = nu + nv;
        let partners: Vec<(u32, u64, usize)> = self.rows[cast::u32_to_usize(u)]
            // rock-analyze: allow(nondet-iter) — order-insensitive: each partner row/heap repair is independent and heap order follows the strict GoodnessKey total order.
            .iter()
            .map(|(&x, &c)| (x, c, self.members[cast::u32_to_usize(x)].len()))
            .collect();
        for &(x, c, nx) in &partners {
            let g = self.goodness.merge_goodness(c, nx, nw);
            let xr = &mut self.rows[cast::u32_to_usize(x)];
            xr.remove(&u);
            xr.remove(&v);
            xr.insert(u, c);
            let xl = &mut self.local[cast::u32_to_usize(x)];
            xl.remove(u);
            xl.remove(v);
            xl.insert_or_update(u, GoodnessKey::new(g, u));
            self.refresh_global(x);
        }

        // Rebuild u's local heap, retire v's.
        self.local[cast::u32_to_usize(v)].clear();
        self.global.remove(v);
        let good = self.goodness;
        let ul = &mut self.local[cast::u32_to_usize(u)];
        ul.clear();
        for &(x, c, nx) in &partners {
            let g = good.merge_goodness(c, nw, nx);
            ul.insert_or_update(x, GoodnessKey::new(g, x));
        }
        self.refresh_global(u);
        self.active -= 1;
        self.merges += 1;

        if self.record_history {
            let criterion = self.criterion();
            self.history.push(MergeStep {
                kept: u,
                absorbed: v,
                goodness: goodness_value,
                sizes: (cast::usize_to_u32(nu), cast::usize_to_u32(nv)),
                criterion,
            });
        }
    }

    /// Discards every active cluster with at most `max_size` members.
    fn prune_small(&mut self, max_size: usize) {
        let victims: Vec<u32> = (0..cast::usize_to_u32(self.members.len()))
            .filter(|&s| {
                let m = &self.members[cast::u32_to_usize(s)];
                !m.is_empty() && m.len() <= max_size
            })
            .collect();
        // Never prune everything: keep at least one cluster.
        if victims.len() == self.active {
            return;
        }
        for s in victims {
            let mem = std::mem::take(&mut self.members[cast::u32_to_usize(s)]);
            self.outliers.extend(mem);
            self.internal[cast::u32_to_usize(s)] = 0;
            let row = std::mem::take(&mut self.rows[cast::u32_to_usize(s)]);
            for (x, _) in row {
                self.rows[cast::u32_to_usize(x)].remove(&s);
                self.local[cast::u32_to_usize(x)].remove(s);
                self.refresh_global(x);
            }
            self.local[cast::u32_to_usize(s)].clear();
            self.global.remove(s);
            self.active -= 1;
        }
    }

    /// Combined estimated bytes of the global heap and every local heap.
    fn heap_bytes(&self) -> usize {
        self.global.estimated_bytes()
            + self
                .local
                .iter()
                .map(IndexedHeap::estimated_bytes)
                .sum::<usize>()
    }

    /// Flushes the run's tallies into `observer`: merges, pruned points,
    /// and push/pop totals summed over all heaps.
    fn flush_telemetry(&self, observer: &Observer) {
        let counters = observer.counters();
        let (mut pushes, mut pops) = self.global.telemetry_counts();
        let mut anomalies = self.global.anomaly_count();
        for h in &self.local {
            let (pu, po) = h.telemetry_counts();
            pushes += pu;
            pops += po;
            anomalies += h.anomaly_count();
        }
        PipelineCounters::add(&counters.heap_pushes, pushes);
        PipelineCounters::add(&counters.heap_pops, pops);
        PipelineCounters::add(&counters.heap_anomalies, anomalies);
        PipelineCounters::add(&counters.merges, cast::usize_to_u64(self.merges));
        PipelineCounters::add(
            &counters.outliers_pruned,
            cast::usize_to_u64(self.outliers.len()),
        );
    }

    /// Current value of the criterion function E_l.
    fn criterion(&self) -> f64 {
        self.members
            .iter()
            .enumerate()
            .filter(|(_, m)| !m.is_empty())
            .map(|(i, m)| self.goodness.criterion_term(self.internal[i], m.len()))
            .sum()
    }

    fn finish(self, reached_k: bool) -> Agglomeration {
        let criterion = self.criterion();
        let n: usize = self.members.iter().map(Vec::len).sum::<usize>() + self.outliers.len();
        let mut clusters: Vec<Vec<u32>> = self
            .members
            .into_iter()
            .filter(|m| !m.is_empty())
            .map(|mut m| {
                m.sort_unstable();
                m
            })
            .collect();
        clusters.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a[0].cmp(&b[0])));
        let mut assignment: Vec<Option<u32>> = vec![None; n];
        for (c, mem) in clusters.iter().enumerate() {
            for &p in mem {
                assignment[cast::u32_to_usize(p)] = Some(cast::usize_to_u32(c));
            }
        }
        let mut outliers = self.outliers;
        outliers.sort_unstable();
        Agglomeration {
            assignment,
            clusters,
            history: self.history,
            criterion,
            merges: self.merges,
            reached_k,
            outliers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Transaction, TransactionSet};
    use crate::goodness::MarketBasket;
    use crate::neighbors::NeighborGraph;
    use crate::similarity::Jaccard;

    fn pipeline(transactions: Vec<Transaction>, theta: f64, k: usize) -> Agglomeration {
        let data: TransactionSet = transactions.into_iter().collect();
        let g = NeighborGraph::compute(&data, &Jaccard, theta, 1).unwrap();
        let links = LinkTable::compute(&g);
        let good = Goodness::new(theta, &MarketBasket).unwrap();
        agglomerate(data.len(), &links, &good, &AgglomerateConfig::new(k)).unwrap()
    }

    fn block(base: u32, n: usize, shared: usize) -> Vec<Transaction> {
        // n transactions sharing `shared` common items plus one unique item.
        (0..n as u32)
            .map(|i| {
                let mut items: Vec<u32> = (base..base + shared as u32).collect();
                items.push(base + 1000 + i);
                Transaction::new(items)
            })
            .collect()
    }

    #[test]
    fn goodness_key_ordering() {
        let a = GoodnessKey::new(1.0, 5);
        let b = GoodnessKey::new(2.0, 9);
        assert!(b > a);
        // Equal goodness: smaller tie id wins.
        let c = GoodnessKey::new(1.0, 2);
        assert!(c > a);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
        assert_eq!(a.goodness(), 1.0);
        assert_eq!(a.tie(), 5);
    }

    #[test]
    fn goodness_ord_is_total() {
        let lo = GoodnessOrd::new(-1.5);
        let hi = GoodnessOrd::new(2.5);
        assert!(hi > lo);
        assert_eq!(hi.get(), 2.5);
        assert_eq!(lo.cmp(&lo), std::cmp::Ordering::Equal);
        assert!(GoodnessOrd::new(f64::INFINITY) > hi);
        assert!(GoodnessOrd::new(f64::NEG_INFINITY) < lo);
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    #[cfg(debug_assertions)]
    fn nan_goodness_is_rejected_in_debug() {
        let _ = GoodnessOrd::new(f64::NAN);
    }

    #[test]
    fn two_blocks_recovered() {
        let mut data = block(0, 6, 4);
        data.extend(block(500, 6, 4));
        let out = pipeline(data, 0.5, 2);
        assert!(out.reached_k);
        assert_eq!(out.clusters.len(), 2);
        let sizes: Vec<usize> = out.clusters.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![6, 6]);
        // Members 0..6 together, 6..12 together.
        assert_eq!(out.clusters[0], vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(out.clusters[1], vec![6, 7, 8, 9, 10, 11]);
    }

    #[test]
    fn assignment_matches_clusters() {
        let mut data = block(0, 5, 4);
        data.extend(block(500, 7, 4));
        let out = pipeline(data, 0.5, 2);
        for (c, mem) in out.clusters.iter().enumerate() {
            for &p in mem {
                assert_eq!(out.assignment[p as usize], Some(c as u32));
            }
        }
        assert_eq!(out.assignment.iter().filter(|a| a.is_some()).count(), 12);
    }

    #[test]
    fn stops_when_no_links_remain() {
        // Three mutually unlinked pairs; asking for 2 clusters must stop at 3.
        let data = vec![
            Transaction::new([0, 1]),
            Transaction::new([0, 1]),
            Transaction::new([10, 11]),
            Transaction::new([10, 11]),
            Transaction::new([20, 21]),
            Transaction::new([20, 21]),
        ];
        let out = pipeline(data, 0.9, 2);
        assert!(!out.reached_k);
        // Each pair is mutual-neighbors but has no *common* third neighbor,
        // so there are no links at all: six singletons remain.
        assert_eq!(out.clusters.len(), 6);
    }

    #[test]
    fn pairs_with_links_do_merge() {
        // Triples: within a triple every pair has the third point as a
        // common neighbor → 1 link. Triples are link-free across.
        let data = vec![
            Transaction::new([0, 1]),
            Transaction::new([0, 1]),
            Transaction::new([0, 1]),
            Transaction::new([7, 8]),
            Transaction::new([7, 8]),
            Transaction::new([7, 8]),
        ];
        let out = pipeline(data, 0.9, 2);
        assert!(out.reached_k);
        assert_eq!(out.clusters[0], vec![0, 1, 2]);
        assert_eq!(out.clusters[1], vec![3, 4, 5]);
    }

    #[test]
    fn history_records_every_merge() {
        let mut data = block(0, 4, 4);
        data.extend(block(500, 4, 4));
        let out = pipeline(data, 0.5, 2);
        // 8 points → 2 clusters = 6 merges.
        assert_eq!(out.history.len(), 6);
        for step in &out.history {
            assert!(step.goodness > 0.0);
            assert_ne!(step.kept, step.absorbed);
            assert!(step.sizes.0 >= 1 && step.sizes.1 >= 1);
        }
    }

    #[test]
    fn merging_down_to_one_cluster() {
        let data = block(0, 5, 4);
        let out = pipeline(data, 0.5, 1);
        assert!(out.reached_k);
        assert_eq!(out.clusters.len(), 1);
        assert_eq!(out.clusters[0].len(), 5);
        assert!(out.criterion > 0.0);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let data: TransactionSet = block(0, 3, 2).into_iter().collect();
        let g = NeighborGraph::compute(&data, &Jaccard, 0.5, 1).unwrap();
        let links = LinkTable::compute(&g);
        let good = Goodness::new(0.5, &MarketBasket).unwrap();
        assert!(matches!(
            agglomerate(0, &links, &good, &AgglomerateConfig::new(1)),
            Err(RockError::EmptyDataset)
        ));
        assert!(matches!(
            agglomerate(3, &links, &good, &AgglomerateConfig::new(0)),
            Err(RockError::InvalidK { .. })
        ));
        assert!(matches!(
            agglomerate(3, &links, &good, &AgglomerateConfig::new(4)),
            Err(RockError::InvalidK { .. })
        ));
    }

    #[test]
    fn pruning_discards_small_clusters() {
        // Two solid blocks of 8 plus two isolated-ish points that link to
        // nothing: with pruning they become outliers.
        let mut data = block(0, 8, 4);
        data.extend(block(500, 8, 4));
        data.push(Transaction::new([9000, 9001]));
        data.push(Transaction::new([9500, 9501]));
        let ts: TransactionSet = data.into_iter().collect();
        let g = NeighborGraph::compute(&ts, &Jaccard, 0.5, 1).unwrap();
        let links = LinkTable::compute(&g);
        let good = Goodness::new(0.5, &MarketBasket).unwrap();
        let cfg = AgglomerateConfig {
            k: 2,
            min_goodness: None,
            // Fire the checkpoint once only ~4 clusters remain, i.e. after
            // both blocks have fully coalesced, leaving the two isolated
            // points as prunable singletons.
            prune: Some(PruneConfig {
                checkpoint_fraction: 0.2,
                max_prune_size: 1,
            }),
            record_history: false,
        };
        let out = agglomerate(ts.len(), &links, &good, &cfg).unwrap();
        assert_eq!(out.outliers, vec![16, 17]);
        assert_eq!(out.clusters.len(), 2);
        assert!(out.assignment[16].is_none());
        assert!(out.assignment[17].is_none());
        assert!(out.reached_k);
    }

    #[test]
    fn criterion_is_positive_after_merges() {
        let mut data = block(0, 6, 4);
        data.extend(block(500, 6, 4));
        let out = pipeline(data, 0.5, 2);
        assert!(out.criterion > 0.0);
        // History criterion should end at the final criterion.
        let last = out.history.last().unwrap();
        assert!((last.criterion - out.criterion).abs() < 1e-9);
    }

    #[test]
    fn clusters_sorted_by_decreasing_size() {
        let mut data = block(0, 9, 4);
        data.extend(block(500, 4, 4));
        let out = pipeline(data, 0.5, 2);
        assert!(out.clusters[0].len() >= out.clusters[1].len());
        assert_eq!(out.clusters[0].len(), 9);
    }

    #[test]
    fn min_goodness_stops_early() {
        // Two tight blocks joined by one bridge transaction: links exist
        // across, so unconstrained merging reaches k = 1, but the final
        // merges have far lower goodness than the within-block ones. A
        // goodness floor between the two stops at the block structure.
        let mut data: Vec<Transaction> = (0..8u32)
            .map(|i| {
                let b = i / 4;
                Transaction::new([b * 10, b * 10 + 1, b * 10 + 2])
            })
            .collect();
        data.push(Transaction::new([0, 1, 10, 11])); // bridge
        let ts: TransactionSet = data.into_iter().collect();
        let g = NeighborGraph::compute(&ts, &Jaccard, 0.3, 1).unwrap();
        let links = LinkTable::compute(&g);
        let good = Goodness::new(0.3, &MarketBasket).unwrap();
        let unbounded = agglomerate(9, &links, &good, &AgglomerateConfig::new(1)).unwrap();
        assert_eq!(unbounded.clusters.len(), 1);
        let first = unbounded.history.first().unwrap().goodness;
        let last = unbounded.history.last().unwrap().goodness;
        assert!(first > last, "within-block merges must score higher");
        let cfg = AgglomerateConfig::new(1).min_goodness((first + last) / 2.0);
        let stopped = agglomerate(9, &links, &good, &cfg).unwrap();
        assert!(!stopped.reached_k);
        assert!(stopped.clusters.len() >= 2);
        // Every block stays whole: points 0-3 together, 4-7 together.
        let cluster_of = |p: usize| stopped.assignment[p].unwrap();
        assert!((1..4).all(|p| cluster_of(p) == cluster_of(0)));
        assert!((5..8).all(|p| cluster_of(p) == cluster_of(4)));
    }

    #[test]
    fn deterministic_runs() {
        let mut data = block(0, 7, 4);
        data.extend(block(500, 7, 4));
        let a = pipeline(data.clone(), 0.5, 2);
        let b = pipeline(data, 0.5, 2);
        assert_eq!(a.clusters, b.clusters);
        assert_eq!(a.assignment, b.assignment);
    }

    fn guarded_fixture() -> (TransactionSet, LinkTable, Goodness) {
        let mut data = block(0, 6, 4);
        data.extend(block(500, 6, 4));
        let ts: TransactionSet = data.into_iter().collect();
        let g = NeighborGraph::compute(&ts, &Jaccard, 0.5, 1).unwrap();
        let links = LinkTable::compute(&g);
        let good = Goodness::new(0.5, &MarketBasket).unwrap();
        (ts, links, good)
    }

    #[test]
    fn step_budget_stops_after_exact_step_count() {
        use crate::guard::{Guard, RunBudget, TripReason};
        use crate::telemetry::Observer;
        let (ts, links, good) = guarded_fixture();
        let guard = Guard::new(RunBudget::unlimited().steps(3));
        let (agg, trip) = agglomerate_guarded(
            ts.len(),
            &links,
            &good,
            &AgglomerateConfig::new(2),
            &Observer::new(),
            &guard,
        )
        .unwrap();
        let trip = trip.expect("budget of 3 must trip before 10 merges");
        assert_eq!(trip.reason, TripReason::StepBudget { limit: 3 });
        assert_eq!(agg.merges, 3);
        assert!(!agg.reached_k);
        // The partial result is still a full, consistent partition.
        assert_eq!(agg.clusters.len(), ts.len() - 3);
        let covered: usize = agg.clusters.iter().map(Vec::len).sum();
        assert_eq!(covered + agg.outliers.len(), ts.len());
    }

    #[test]
    fn unlimited_guard_matches_unguarded_run() {
        use crate::guard::Guard;
        use crate::telemetry::Observer;
        let (ts, links, good) = guarded_fixture();
        let plain = agglomerate(ts.len(), &links, &good, &AgglomerateConfig::new(2)).unwrap();
        let (guarded, trip) = agglomerate_guarded(
            ts.len(),
            &links,
            &good,
            &AgglomerateConfig::new(2),
            &Observer::new(),
            &Guard::unlimited(),
        )
        .unwrap();
        assert!(trip.is_none());
        assert_eq!(plain.clusters, guarded.clusters);
        assert_eq!(plain.assignment, guarded.assignment);
    }

    #[test]
    fn cancellation_stops_merge_loop() {
        use crate::guard::{Guard, TripReason};
        use crate::telemetry::Observer;
        let (ts, links, good) = guarded_fixture();
        let guard = Guard::unlimited();
        guard.cancel_token().cancel();
        let (agg, trip) = agglomerate_guarded(
            ts.len(),
            &links,
            &good,
            &AgglomerateConfig::new(2),
            &Observer::new(),
            &guard,
        )
        .unwrap();
        assert_eq!(trip.map(|t| t.reason), Some(TripReason::Cancelled));
        assert_eq!(agg.merges, 0);
        assert_eq!(agg.clusters.len(), ts.len());
    }

    #[test]
    fn guarded_run_flushes_heap_telemetry() {
        use crate::guard::{Guard, RunBudget};
        use crate::telemetry::Observer;
        let (ts, links, good) = guarded_fixture();
        let obs = Observer::new();
        let guard = Guard::new(RunBudget::unlimited().steps(2));
        agglomerate_guarded(
            ts.len(),
            &links,
            &good,
            &AgglomerateConfig::new(2),
            &obs,
            &guard,
        )
        .unwrap();
        let c = obs.counters().snapshot();
        assert_eq!(c.merges, 2);
        assert!(c.heap_pushes > 0);
        assert_eq!(c.heap_anomalies, 0);
    }
}
