//! Similarity measures between transactions.
//!
//! ROCK defines *neighbors* through a similarity function and a threshold θ:
//! `p` and `q` are neighbors iff `sim(p, q) ≥ θ`. The paper uses the
//! Jaccard coefficient for market-basket and categorical data; this module
//! provides it along with common drop-in alternatives. All measures return
//! values in `[0, 1]` with `sim(x, x) = 1` for non-empty `x`.

use crate::cast;
use crate::data::Transaction;
use crate::snapshot::SimilarityKind;

/// A symmetric similarity measure on transactions with range `[0, 1]`.
///
/// Implementors must be cheap to copy/share across threads — the neighbor
/// phase evaluates the measure `O(n²)` times from a thread pool.
pub trait Similarity: Sync {
    /// Similarity of `a` and `b` in `[0, 1]`.
    fn sim(&self, a: &Transaction, b: &Transaction) -> f64;

    /// Short human-readable name, used in experiment output.
    fn name(&self) -> &'static str;

    /// The count-based measure this implementation evaluates, if any.
    ///
    /// Returning `Some(kind)` is a promise that `self.sim(a, b)` is
    /// **bit-for-bit equal** to
    /// `kind.sim_from_counts(a.intersection_len(b), a.len(), b.len())`.
    /// The neighbor phase uses it to route the graph build through the
    /// inverted-index similarity join (DESIGN.md §17), whose size/prefix
    /// filters and candidate verification evaluate exactly that
    /// expression — so the joined graph is byte-identical to the
    /// brute-force scan. Measures without a faithful count form (e.g.
    /// [`HammingRecord`], whose denominator is the schema arity rather
    /// than the set sizes) keep the default `None` and the brute-force
    /// scan.
    fn count_kind(&self) -> Option<SimilarityKind> {
        None
    }
}

/// Jaccard coefficient `|A ∩ B| / |A ∪ B|` — the measure used throughout
/// the ROCK paper. Two empty transactions are defined to have similarity 1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Jaccard;

impl Jaccard {
    /// The coefficient from precomputed set sizes. This is the single
    /// definition [`Similarity::sim`] and the bit-packed labeling index
    /// ([`crate::labeling::DenseReps`]) both evaluate, so the two paths
    /// cannot drift.
    #[inline]
    #[must_use]
    pub fn from_counts(inter: usize, a_len: usize, b_len: usize) -> f64 {
        let union = a_len + b_len - inter;
        if union == 0 {
            1.0
        } else {
            cast::usize_to_f64(inter) / cast::usize_to_f64(union)
        }
    }
}

impl Similarity for Jaccard {
    #[inline]
    fn sim(&self, a: &Transaction, b: &Transaction) -> f64 {
        Self::from_counts(a.intersection_len(b), a.len(), b.len())
    }

    fn count_kind(&self) -> Option<SimilarityKind> {
        Some(SimilarityKind::Jaccard)
    }

    fn name(&self) -> &'static str {
        "jaccard"
    }
}

/// Dice coefficient `2|A ∩ B| / (|A| + |B|)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Dice;

impl Dice {
    /// The coefficient from precomputed set sizes (see
    /// [`Jaccard::from_counts`] for why this form exists).
    #[inline]
    #[must_use]
    pub fn from_counts(inter: usize, a_len: usize, b_len: usize) -> f64 {
        let denom = a_len + b_len;
        if denom == 0 {
            1.0
        } else {
            2.0 * cast::usize_to_f64(inter) / cast::usize_to_f64(denom)
        }
    }
}

impl Similarity for Dice {
    #[inline]
    fn sim(&self, a: &Transaction, b: &Transaction) -> f64 {
        Self::from_counts(a.intersection_len(b), a.len(), b.len())
    }

    fn count_kind(&self) -> Option<SimilarityKind> {
        Some(SimilarityKind::Dice)
    }

    fn name(&self) -> &'static str {
        "dice"
    }
}

/// Overlap coefficient `|A ∩ B| / min(|A|, |B|)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Overlap;

impl Overlap {
    /// The coefficient from precomputed set sizes (see
    /// [`Jaccard::from_counts`] for why this form exists).
    #[inline]
    #[must_use]
    pub fn from_counts(inter: usize, a_len: usize, b_len: usize) -> f64 {
        let denom = a_len.min(b_len);
        if denom == 0 {
            1.0
        } else {
            cast::usize_to_f64(inter) / cast::usize_to_f64(denom)
        }
    }
}

impl Similarity for Overlap {
    #[inline]
    fn sim(&self, a: &Transaction, b: &Transaction) -> f64 {
        Self::from_counts(a.intersection_len(b), a.len(), b.len())
    }

    fn count_kind(&self) -> Option<SimilarityKind> {
        Some(SimilarityKind::Overlap)
    }

    fn name(&self) -> &'static str {
        "overlap"
    }
}

/// Cosine similarity on set indicators: `|A ∩ B| / sqrt(|A| · |B|)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cosine;

impl Cosine {
    /// The coefficient from precomputed set sizes (see
    /// [`Jaccard::from_counts`] for why this form exists).
    #[inline]
    #[must_use]
    pub fn from_counts(inter: usize, a_len: usize, b_len: usize) -> f64 {
        if a_len == 0 && b_len == 0 {
            return 1.0;
        }
        if a_len == 0 || b_len == 0 {
            return 0.0;
        }
        cast::usize_to_f64(inter) / cast::usize_to_f64(a_len * b_len).sqrt()
    }
}

impl Similarity for Cosine {
    #[inline]
    fn sim(&self, a: &Transaction, b: &Transaction) -> f64 {
        Self::from_counts(a.intersection_len(b), a.len(), b.len())
    }

    fn count_kind(&self) -> Option<SimilarityKind> {
        Some(SimilarityKind::Cosine)
    }

    fn name(&self) -> &'static str {
        "cosine"
    }
}

/// Hamming-derived similarity for fixed-arity records: `matches / d`,
/// where a *match* is an attribute both records fill with the same value.
///
/// When records (one item per present attribute, over `d` attributes) are
/// encoded as transactions, the intersection size is exactly the number of
/// matching attributes, so this is `|A ∩ B| / d` — i.e. `1 − normalized
/// Hamming distance` when no values are missing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HammingRecord {
    /// Total number of attributes in the schema.
    pub num_attributes: usize,
}

impl HammingRecord {
    /// Creates the measure for records over `d` attributes.
    pub fn new(num_attributes: usize) -> Self {
        HammingRecord { num_attributes }
    }
}

impl Similarity for HammingRecord {
    #[inline]
    fn sim(&self, a: &Transaction, b: &Transaction) -> f64 {
        if self.num_attributes == 0 {
            return 1.0;
        }
        cast::usize_to_f64(a.intersection_len(b)) / cast::usize_to_f64(self.num_attributes)
    }

    fn name(&self) -> &'static str {
        "hamming-record"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(items: &[u32]) -> Transaction {
        Transaction::new(items.iter().copied())
    }

    #[test]
    fn jaccard_basic() {
        let a = t(&[1, 2, 3]);
        let b = t(&[2, 3, 4]);
        assert!((Jaccard.sim(&a, &b) - 0.5).abs() < 1e-12);
        assert_eq!(Jaccard.sim(&a, &a), 1.0);
        assert_eq!(Jaccard.sim(&a, &t(&[9])), 0.0);
    }

    #[test]
    fn jaccard_empty_edge_cases() {
        let e = Transaction::empty();
        assert_eq!(Jaccard.sim(&e, &e), 1.0);
        assert_eq!(Jaccard.sim(&e, &t(&[1])), 0.0);
    }

    #[test]
    fn dice_basic() {
        let a = t(&[1, 2]);
        let b = t(&[2, 3]);
        assert!((Dice.sim(&a, &b) - 0.5).abs() < 1e-12);
        assert_eq!(Dice.sim(&Transaction::empty(), &Transaction::empty()), 1.0);
    }

    #[test]
    fn overlap_basic() {
        let a = t(&[1, 2]);
        let b = t(&[1, 2, 3, 4]);
        assert_eq!(Overlap.sim(&a, &b), 1.0);
        assert_eq!(Overlap.sim(&Transaction::empty(), &b), 1.0);
    }

    #[test]
    fn cosine_basic() {
        let a = t(&[1, 2, 3, 4]);
        let b = t(&[1]);
        assert!((Cosine.sim(&a, &b) - 0.5).abs() < 1e-12);
        assert_eq!(
            Cosine.sim(&Transaction::empty(), &Transaction::empty()),
            1.0
        );
        assert_eq!(Cosine.sim(&Transaction::empty(), &a), 0.0);
    }

    #[test]
    fn hamming_record_counts_matches() {
        // Records over 4 attributes: items are (attr, value) codes.
        let a = t(&[0, 10, 20, 30]);
        let b = t(&[0, 11, 20, 31]);
        let h = HammingRecord::new(4);
        assert!((h.sim(&a, &b) - 0.5).abs() < 1e-12);
        assert_eq!(HammingRecord::new(0).sim(&a, &b), 1.0);
    }

    #[test]
    fn all_measures_symmetric_and_bounded() {
        let pairs = [
            (t(&[1, 2, 3]), t(&[3, 4])),
            (t(&[]), t(&[1])),
            (t(&[5]), t(&[5])),
            (t(&[1, 2, 3, 4, 5]), t(&[6, 7])),
        ];
        let measures: Vec<Box<dyn Similarity>> = vec![
            Box::new(Jaccard),
            Box::new(Dice),
            Box::new(Overlap),
            Box::new(Cosine),
            Box::new(HammingRecord::new(8)),
        ];
        for m in &measures {
            for (a, b) in &pairs {
                let s1 = m.sim(a, b);
                let s2 = m.sim(b, a);
                assert_eq!(s1, s2, "{} not symmetric", m.name());
                assert!((0.0..=1.0).contains(&s1), "{} out of range: {s1}", m.name());
            }
        }
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            Jaccard.name(),
            Dice.name(),
            Overlap.name(),
            Cosine.name(),
            HammingRecord::new(1).name(),
        ];
        let set: std::collections::HashSet<&str> = names.into_iter().collect();
        assert_eq!(set.len(), 5);
    }
}
