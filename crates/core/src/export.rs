//! Plain-text export/import of clustering results.
//!
//! Clusterings routinely feed downstream tools (plotting, scoring,
//! joins); this module writes and reads a minimal line-oriented format
//! with no external dependencies:
//!
//! ```text
//! rock-assignments v1
//! n=6 k=2 outliers=1
//! 0 0
//! 1 0
//! 2 1
//! 3 1
//! 4 1
//! 5 -
//! ```
//!
//! One `point cluster` pair per line, `-` marking outliers.

use std::io::{BufRead, Write};

use crate::data::ClusterId;
use crate::error::{Result, RockError};

/// Format header line.
const HEADER: &str = "rock-assignments v1";

/// Writes assignments (`None` = outlier) to `out`.
///
/// # Errors
/// Propagates I/O errors from the writer.
pub fn write_assignments<W: Write>(
    out: &mut W,
    assignments: &[Option<ClusterId>],
) -> std::io::Result<()> {
    let k = assignments
        .iter()
        .flatten()
        .map(|c| c.0 + 1)
        .max()
        .unwrap_or(0);
    let outliers = assignments.iter().filter(|a| a.is_none()).count();
    writeln!(out, "{HEADER}")?;
    writeln!(out, "n={} k={} outliers={}", assignments.len(), k, outliers)?;
    for (i, a) in assignments.iter().enumerate() {
        match a {
            Some(c) => writeln!(out, "{i} {}", c.0)?,
            None => writeln!(out, "{i} -")?,
        }
    }
    Ok(())
}

/// Errors from parsing the assignment format.
#[derive(Debug)]
pub enum ImportError {
    /// Underlying reader failure.
    Io(std::io::Error),
    /// Header missing or wrong version.
    BadHeader(String),
    /// A malformed line, with its 1-based number.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// Fewer/more rows than the header declared, or ids out of order.
    Inconsistent(String),
}

impl std::fmt::Display for ImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImportError::Io(e) => write!(f, "io error: {e}"),
            ImportError::BadHeader(h) => write!(f, "bad header: {h:?}"),
            ImportError::BadLine { line, content } => {
                write!(f, "malformed line {line}: {content:?}")
            }
            ImportError::Inconsistent(msg) => write!(f, "inconsistent file: {msg}"),
        }
    }
}

impl std::error::Error for ImportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ImportError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ImportError {
    fn from(e: std::io::Error) -> Self {
        ImportError::Io(e)
    }
}

/// Reads assignments previously written by [`write_assignments`].
///
/// Tolerant of transport mangling that leaves the data intact (mirroring
/// the CSV loader's hardening): CRLF line endings, a UTF-8 BOM before the
/// header, blank lines and a trailing newline are all accepted. `lines()`
/// strips `\r\n` pairs; the explicit `\r`-trimming below additionally
/// covers lone carriage returns from pre-split or mixed-ending input.
pub fn read_assignments<R: BufRead>(
    input: R,
) -> std::result::Result<Vec<Option<ClusterId>>, ImportError> {
    let mut lines = input.lines();
    let header = lines
        .next()
        .ok_or_else(|| ImportError::BadHeader(String::new()))??;
    if header.trim_start_matches('\u{feff}').trim() != HEADER {
        return Err(ImportError::BadHeader(header));
    }
    let meta = lines
        .next()
        .ok_or_else(|| ImportError::Inconsistent("missing meta line".into()))??;
    let meta = meta.trim_end_matches('\r');
    let n: usize = meta
        .split_whitespace()
        .find_map(|kv| kv.strip_prefix("n=").and_then(|v| v.parse().ok()))
        .ok_or_else(|| ImportError::Inconsistent(format!("meta line lacks n=: {meta:?}")))?;
    let mut out: Vec<Option<ClusterId>> = Vec::with_capacity(n);
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        let line = line.trim_end_matches('\r').to_owned();
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(idx), Some(cluster), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(ImportError::BadLine {
                line: lineno + 3,
                content: line,
            });
        };
        let idx: usize = idx.parse().map_err(|_| ImportError::BadLine {
            line: lineno + 3,
            content: line.clone(),
        })?;
        if idx != out.len() {
            return Err(ImportError::Inconsistent(format!(
                "expected point {} on line {}, found {idx}",
                out.len(),
                lineno + 3
            )));
        }
        let value = if cluster == "-" {
            None
        } else {
            Some(ClusterId(cluster.parse().map_err(|_| {
                ImportError::BadLine {
                    line: lineno + 3,
                    content: line.clone(),
                }
            })?))
        };
        out.push(value);
    }
    if out.len() != n {
        return Err(ImportError::Inconsistent(format!(
            "header declared n={n} but found {} rows",
            out.len()
        )));
    }
    Ok(out)
}

/// Round-trips assignments through the text format (testing/diagnostics).
pub fn roundtrip(assignments: &[Option<ClusterId>]) -> Result<Vec<Option<ClusterId>>> {
    let mut buf = Vec::new();
    write_assignments(&mut buf, assignments).map_err(|_| RockError::EmptyDataset)?;
    read_assignments(std::io::Cursor::new(buf)).map_err(|_| RockError::EmptyDataset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample() -> Vec<Option<ClusterId>> {
        vec![
            Some(ClusterId(0)),
            Some(ClusterId(0)),
            Some(ClusterId(1)),
            None,
            Some(ClusterId(2)),
        ]
    }

    #[test]
    fn roundtrip_preserves_assignments() {
        let a = sample();
        let mut buf = Vec::new();
        write_assignments(&mut buf, &a).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("rock-assignments v1\n"));
        assert!(text.contains("n=5 k=3 outliers=1"));
        assert!(text.contains("3 -"));
        let back = read_assignments(Cursor::new(buf)).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn empty_assignments() {
        let a: Vec<Option<ClusterId>> = vec![];
        let mut buf = Vec::new();
        write_assignments(&mut buf, &a).unwrap();
        let back = read_assignments(Cursor::new(buf)).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn rejects_bad_header() {
        let err =
            read_assignments(Cursor::new(b"wrong v9\nn=0 k=0 outliers=0\n".to_vec())).unwrap_err();
        assert!(matches!(err, ImportError::BadHeader(_)));
        assert!(err.to_string().contains("bad header"));
    }

    #[test]
    fn rejects_malformed_line() {
        let text = "rock-assignments v1\nn=1 k=1 outliers=0\n0 zero\n";
        let err = read_assignments(Cursor::new(text.as_bytes().to_vec())).unwrap_err();
        assert!(matches!(err, ImportError::BadLine { line: 3, .. }));
    }

    #[test]
    fn rejects_out_of_order_points() {
        let text = "rock-assignments v1\nn=2 k=1 outliers=0\n1 0\n0 0\n";
        let err = read_assignments(Cursor::new(text.as_bytes().to_vec())).unwrap_err();
        assert!(matches!(err, ImportError::Inconsistent(_)));
    }

    #[test]
    fn rejects_count_mismatch() {
        let text = "rock-assignments v1\nn=3 k=1 outliers=0\n0 0\n";
        let err = read_assignments(Cursor::new(text.as_bytes().to_vec())).unwrap_err();
        assert!(matches!(err, ImportError::Inconsistent(_)));
    }

    #[test]
    fn convenience_roundtrip() {
        assert_eq!(roundtrip(&sample()).unwrap(), sample());
    }

    #[test]
    fn tolerates_crlf_line_endings() {
        let a = sample();
        let mut buf = Vec::new();
        write_assignments(&mut buf, &a).unwrap();
        let crlf = String::from_utf8(buf).unwrap().replace('\n', "\r\n");
        let back = read_assignments(Cursor::new(crlf.into_bytes())).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn tolerates_trailing_newlines_and_bom() {
        let a = sample();
        let mut buf = Vec::new();
        write_assignments(&mut buf, &a).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        // A trailing newline (already present) plus extra blank lines.
        text.push('\n');
        text.push_str("\r\n");
        let bom = format!("\u{feff}{text}");
        assert_eq!(read_assignments(Cursor::new(text.into_bytes())).unwrap(), a);
        assert_eq!(read_assignments(Cursor::new(bom.into_bytes())).unwrap(), a);
    }

    #[test]
    fn tolerates_missing_final_newline() {
        let text = "rock-assignments v1\nn=2 k=1 outliers=1\n0 0\n1 -";
        let back = read_assignments(Cursor::new(text.as_bytes().to_vec())).unwrap();
        assert_eq!(back, vec![Some(ClusterId(0)), None]);
    }

    #[test]
    fn crlf_malformed_lines_still_rejected() {
        let text = "rock-assignments v1\r\nn=1 k=1 outliers=0\r\n0 zero\r\n";
        let err = read_assignments(Cursor::new(text.as_bytes().to_vec())).unwrap_err();
        assert!(matches!(err, ImportError::BadLine { line: 3, .. }));
    }
}
