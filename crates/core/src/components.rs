//! Connected-components clustering over the θ-neighbor graph.
//!
//! A well-known shortcut from the ROCK follow-on literature (QROCK, Dutta
//! et al. 2005): when θ is chosen well, the *connected components* of the
//! neighbor graph already coincide with ROCK's final clusters, skipping
//! links and merging entirely. This is exact when clusters are separated
//! (no cross-cluster neighbor edges at the chosen θ) and a fast first look
//! at a dataset otherwise; the full link machinery remains the robust
//! choice when bridges exist.

use crate::cast;
use crate::neighbors::NeighborGraph;

/// Clusters the points of `graph` into connected components.
///
/// Returns member lists ordered by decreasing size (ties by smallest
/// member), like the merge engine. Isolated points come out as singleton
/// components — callers wanting ROCK-style outlier treatment can filter by
/// size.
pub fn connected_components(graph: &NeighborGraph) -> Vec<Vec<u32>> {
    let n = graph.len();
    let mut component = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut stack: Vec<u32> = Vec::new();
    for start in 0..n {
        if component[start] != u32::MAX {
            continue;
        }
        component[start] = next;
        stack.push(cast::usize_to_u32(start));
        while let Some(p) = stack.pop() {
            for &q in graph.neighbors(cast::u32_to_usize(p)) {
                if component[cast::u32_to_usize(q)] == u32::MAX {
                    component[cast::u32_to_usize(q)] = next;
                    stack.push(q);
                }
            }
        }
        next += 1;
    }
    let mut clusters: Vec<Vec<u32>> = vec![Vec::new(); cast::u32_to_usize(next)];
    for (p, &c) in component.iter().enumerate() {
        clusters[cast::u32_to_usize(c)].push(cast::usize_to_u32(p));
    }
    clusters.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a[0].cmp(&b[0])));
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Transaction, TransactionSet};
    use crate::similarity::Jaccard;

    fn graph(transactions: Vec<Transaction>, theta: f64) -> NeighborGraph {
        let ts: TransactionSet = transactions.into_iter().collect();
        NeighborGraph::compute(&ts, &Jaccard, theta, 1).unwrap()
    }

    #[test]
    fn separated_blocks_are_components() {
        let g = graph(
            vec![
                Transaction::new([0, 1]),
                Transaction::new([0, 1]),
                Transaction::new([0, 1]),
                Transaction::new([9, 10]),
                Transaction::new([9, 10]),
            ],
            0.9,
        );
        let c = connected_components(&g);
        assert_eq!(c.len(), 2);
        assert_eq!(c[0], vec![0, 1, 2]);
        assert_eq!(c[1], vec![3, 4]);
    }

    #[test]
    fn isolated_points_are_singletons() {
        let g = graph(
            vec![
                Transaction::new([0, 1]),
                Transaction::new([0, 1]),
                Transaction::new([50]),
            ],
            0.9,
        );
        let c = connected_components(&g);
        assert_eq!(c.len(), 2);
        assert_eq!(c[1], vec![2]);
    }

    #[test]
    fn chains_connect_transitively() {
        // a~b and b~c but a!~c: all one component.
        let g = graph(
            vec![
                Transaction::new([0, 1, 2, 3]),
                Transaction::new([2, 3, 4, 5]),
                Transaction::new([4, 5, 6, 7]),
            ],
            1.0 / 3.0,
        );
        let c = connected_components(&g);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0], vec![0, 1, 2]);
    }

    #[test]
    fn matches_rock_on_separated_data() {
        // When no cross-cluster edges exist, components == ROCK clusters.
        let data: Vec<Transaction> = (0..9u32)
            .map(|i| {
                let b = i / 3;
                Transaction::new([b * 10, b * 10 + 1, 100 + i])
            })
            .collect();
        let ts: TransactionSet = data.into_iter().collect();
        let g = NeighborGraph::compute(&ts, &Jaccard, 0.4, 1).unwrap();
        let comps = connected_components(&g);
        let rock = crate::rock::RockBuilder::new(3, 0.4)
            .build()
            .fit(&ts)
            .unwrap();
        assert_eq!(comps, rock.clusters().to_vec());
    }

    #[test]
    fn every_point_in_exactly_one_component() {
        let g = graph(
            (0..20u32)
                .map(|i| Transaction::new([i / 4, 100 + i]))
                .collect(),
            0.3,
        );
        let c = connected_components(&g);
        let total: usize = c.iter().map(Vec::len).sum();
        assert_eq!(total, 20);
        let mut all: Vec<u32> = c.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..20).collect::<Vec<u32>>());
    }
}
