//! Error types for the `rock-core` crate.
//!
//! All fallible public entry points return [`Result`]. Errors are plain
//! enums implementing [`std::error::Error`]; no external error-handling
//! crates are used.

use std::fmt;

/// Convenience alias used across the crate.
pub type Result<T, E = RockError> = std::result::Result<T, E>;

/// Errors produced by configuration validation and clustering entry points.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RockError {
    /// The dataset contained no points.
    EmptyDataset,
    /// The requested number of clusters is zero or exceeds the number of
    /// (non-outlier) points.
    InvalidK {
        /// Requested number of clusters.
        k: usize,
        /// Number of points available for clustering.
        n: usize,
    },
    /// The similarity threshold θ must lie in `(0, 1)`.
    InvalidTheta(f64),
    /// A fractional parameter (sampling fraction, labeling fraction,
    /// checkpoint fraction, confidence δ, …) was outside its valid range.
    InvalidFraction {
        /// Human-readable name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// Two collections that must be index-aligned had different lengths.
    LengthMismatch {
        /// Name of the first collection.
        left_name: &'static str,
        /// Length of the first collection.
        left: usize,
        /// Name of the second collection.
        right_name: &'static str,
        /// Length of the second collection.
        right: usize,
    },
    /// A transaction referenced an item id outside the vocabulary/universe.
    ItemOutOfRange {
        /// The offending item id.
        item: u32,
        /// The number of items in the universe.
        universe: usize,
    },
    /// The sample drawn for clustering was empty (e.g. every point was
    /// filtered as an outlier).
    EmptySample,
    /// An attribute's value domain grew past the `u16` code space while
    /// interning. Categorical domains this large are almost certainly a
    /// parsing bug (e.g. a numeric column read as categorical).
    DomainTooLarge {
        /// Name of the offending attribute.
        attribute: String,
        /// Domain size at the point of failure (already `u16::MAX + 1`).
        cardinality: usize,
    },
    /// Clustering could not reach the requested number of clusters because
    /// no cross-cluster links remain; carries the number of clusters left.
    ///
    /// This is surfaced as an error only when the caller demanded an exact
    /// cluster count; the default pipeline treats it as normal termination.
    NoLinksRemain {
        /// Clusters remaining when the link supply was exhausted.
        remaining: usize,
        /// The requested number of clusters.
        requested: usize,
    },
    /// A filesystem operation failed. The underlying [`std::io::Error`]
    /// is flattened to a message so the error stays `Clone + PartialEq`.
    Io {
        /// Path involved in the failed operation.
        path: String,
        /// The I/O error message.
        message: String,
    },
    /// Input text was malformed (ragged row, unterminated quote, …).
    Csv {
        /// 1-based line number of the offending row.
        line: usize,
        /// Human-readable description of the defect.
        message: String,
    },
    /// The requested label column index is out of range.
    InvalidLabelColumn {
        /// Requested 0-based column index.
        index: usize,
        /// Number of columns in the file.
        columns: usize,
    },
    /// Lenient ingestion quarantined more rows than the configured
    /// ceiling allows; the file is too dirty to trust.
    QuarantineExceeded {
        /// Rows quarantined.
        quarantined: usize,
        /// Rows read in total.
        rows: usize,
        /// The configured maximum quarantine fraction.
        max_fraction: f64,
    },
    /// A run budget (merge steps, wall-clock deadline, or memory ceiling)
    /// was exhausted and the caller asked for strict failure instead of a
    /// degraded result.
    BudgetExhausted {
        /// Machine-readable trip reason (see `guard::TripReason::name`).
        reason: String,
        /// Name of the pipeline phase that tripped.
        phase: String,
    },
    /// The run was cancelled via a `guard::CancelToken` and the caller
    /// asked for strict failure instead of a degraded result.
    Cancelled,
    /// A model snapshot's header named an unknown format or version.
    SnapshotVersion {
        /// The header line actually found.
        found: String,
    },
    /// A model snapshot's content checksum did not match its body —
    /// the file was corrupted or hand-edited.
    SnapshotChecksum {
        /// Checksum declared in the header.
        expected: String,
        /// Checksum recomputed from the body.
        actual: String,
    },
    /// A model snapshot line could not be parsed.
    SnapshotFormat {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description of the defect.
        message: String,
    },
    /// A model snapshot parsed cleanly but violated a semantic invariant
    /// (item id outside the universe, cluster count mismatch, …).
    SnapshotInvalid {
        /// Human-readable description of the violated invariant.
        message: String,
    },
    /// A `rock-cache/v1` binary dataset cache was unreadable: unknown
    /// magic/version, malformed structure, or a chunk whose checksum did
    /// not match its payload.
    CacheInvalid {
        /// Human-readable description of the defect.
        message: String,
    },
    /// A `rock-checkpoint/v1` resume record was corrupt, truncated, or
    /// inconsistent with the cache/model/partial output it describes.
    /// Resume fails closed on this error — it never silently restarts.
    CheckpointInvalid {
        /// Human-readable description of the defect.
        message: String,
    },
}

impl RockError {
    /// Stable process exit code for this error, used by the CLI:
    ///
    /// | code | class |
    /// |------|-------|
    /// | 0    | success (including recovered/degraded runs) |
    /// | 1    | internal / non-`RockError` failure (mapped by the CLI) |
    /// | 2    | usage error (bad flags — produced by the CLI, not here) |
    /// | 3    | I/O failure |
    /// | 4    | malformed input data |
    /// | 5    | invalid configuration or data shape (default class) |
    /// | 6    | budget exhausted / cancelled |
    pub fn exit_code(&self) -> u8 {
        match self {
            RockError::Io { .. } => 3,
            RockError::Csv { .. }
            | RockError::DomainTooLarge { .. }
            | RockError::ItemOutOfRange { .. }
            | RockError::QuarantineExceeded { .. }
            | RockError::SnapshotVersion { .. }
            | RockError::SnapshotChecksum { .. }
            | RockError::SnapshotFormat { .. }
            | RockError::SnapshotInvalid { .. }
            | RockError::CacheInvalid { .. }
            | RockError::CheckpointInvalid { .. } => 4,
            RockError::BudgetExhausted { .. } | RockError::Cancelled => 6,
            _ => 5,
        }
    }
}

impl fmt::Display for RockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RockError::EmptyDataset => write!(f, "dataset contains no points"),
            RockError::InvalidK { k, n } => {
                write!(f, "invalid cluster count k={k} for {n} points")
            }
            RockError::InvalidTheta(t) => {
                write!(f, "similarity threshold theta={t} must lie in (0, 1)")
            }
            RockError::InvalidFraction { name, value } => {
                write!(f, "parameter `{name}`={value} outside its valid range")
            }
            RockError::LengthMismatch {
                left_name,
                left,
                right_name,
                right,
            } => write!(
                f,
                "length mismatch: {left_name} has {left} entries but {right_name} has {right}"
            ),
            RockError::ItemOutOfRange { item, universe } => {
                write!(
                    f,
                    "item id {item} out of range for universe of {universe} items"
                )
            }
            RockError::EmptySample => {
                write!(f, "sample for clustering is empty (all points filtered?)")
            }
            RockError::DomainTooLarge {
                attribute,
                cardinality,
            } => write!(
                f,
                "attribute `{attribute}` has {cardinality} distinct values, exceeding the u16 code space"
            ),
            RockError::NoLinksRemain {
                remaining,
                requested,
            } => write!(
                f,
                "no cross-cluster links remain with {remaining} clusters (requested {requested})"
            ),
            RockError::Io { path, message } => write!(f, "io error on {path}: {message}"),
            RockError::Csv { line, message } => write!(f, "csv error: {message} (line {line})"),
            RockError::InvalidLabelColumn { index, columns } => {
                write!(f, "label column {index} out of range for {columns} columns")
            }
            RockError::QuarantineExceeded {
                quarantined,
                rows,
                max_fraction,
            } => write!(
                f,
                "quarantined {quarantined} of {rows} rows, above the {max_fraction} ceiling"
            ),
            RockError::BudgetExhausted { reason, phase } => {
                write!(f, "run budget exhausted ({reason}) at phase `{phase}`")
            }
            RockError::Cancelled => write!(f, "run cancelled"),
            RockError::SnapshotVersion { found } => {
                write!(f, "unknown snapshot format/version: {found:?}")
            }
            RockError::SnapshotChecksum { expected, actual } => write!(
                f,
                "snapshot checksum mismatch: header says {expected}, body hashes to {actual}"
            ),
            RockError::SnapshotFormat { line, message } => {
                write!(f, "snapshot format error: {message} (line {line})")
            }
            RockError::SnapshotInvalid { message } => {
                write!(f, "snapshot invariant violated: {message}")
            }
            RockError::CacheInvalid { message } => {
                write!(f, "dataset cache invalid: {message}")
            }
            RockError::CheckpointInvalid { message } => {
                write!(f, "checkpoint invalid: {message}")
            }
        }
    }
}

impl std::error::Error for RockError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(RockError, &str)> = vec![
            (RockError::EmptyDataset, "no points"),
            (RockError::InvalidK { k: 5, n: 2 }, "k=5"),
            (RockError::InvalidTheta(1.5), "theta=1.5"),
            (
                RockError::InvalidFraction {
                    name: "delta",
                    value: -0.2,
                },
                "delta",
            ),
            (
                RockError::LengthMismatch {
                    left_name: "labels",
                    left: 3,
                    right_name: "points",
                    right: 4,
                },
                "labels",
            ),
            (
                RockError::ItemOutOfRange {
                    item: 9,
                    universe: 4,
                },
                "item id 9",
            ),
            (RockError::EmptySample, "sample"),
            (
                RockError::DomainTooLarge {
                    attribute: "odor".to_owned(),
                    cardinality: 70_000,
                },
                "odor",
            ),
            (
                RockError::NoLinksRemain {
                    remaining: 7,
                    requested: 2,
                },
                "7 clusters",
            ),
            (
                RockError::Io {
                    path: "/tmp/x.csv".to_owned(),
                    message: "permission denied".to_owned(),
                },
                "/tmp/x.csv",
            ),
            (
                RockError::Csv {
                    line: 12,
                    message: "unterminated quote".to_owned(),
                },
                "line 12",
            ),
            (
                RockError::InvalidLabelColumn {
                    index: 9,
                    columns: 4,
                },
                "label column 9",
            ),
            (
                RockError::QuarantineExceeded {
                    quarantined: 30,
                    rows: 100,
                    max_fraction: 0.2,
                },
                "30 of 100",
            ),
            (
                RockError::BudgetExhausted {
                    reason: "step-budget".to_owned(),
                    phase: "agglomerate".to_owned(),
                },
                "step-budget",
            ),
            (RockError::Cancelled, "cancelled"),
            (
                RockError::SnapshotVersion {
                    found: "rock-model/v9".to_owned(),
                },
                "rock-model/v9",
            ),
            (
                RockError::SnapshotChecksum {
                    expected: "fnv1a64:00".to_owned(),
                    actual: "fnv1a64:ff".to_owned(),
                },
                "checksum mismatch",
            ),
            (
                RockError::SnapshotFormat {
                    line: 7,
                    message: "bad reps header".to_owned(),
                },
                "line 7",
            ),
            (
                RockError::SnapshotInvalid {
                    message: "item 9 outside universe 4".to_owned(),
                },
                "item 9",
            ),
            (
                RockError::CacheInvalid {
                    message: "chunk 3 checksum mismatch".to_owned(),
                },
                "chunk 3",
            ),
            (
                RockError::CheckpointInvalid {
                    message: "partial output shorter than recorded".to_owned(),
                },
                "partial output",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&RockError::EmptyDataset);
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(RockError::EmptyDataset, RockError::EmptyDataset);
        assert_ne!(RockError::InvalidTheta(0.0), RockError::InvalidTheta(1.0));
    }

    #[test]
    fn exit_codes_are_stable() {
        assert_eq!(
            RockError::Io {
                path: "f".into(),
                message: "m".into()
            }
            .exit_code(),
            3
        );
        assert_eq!(
            RockError::Csv {
                line: 1,
                message: "m".into()
            }
            .exit_code(),
            4
        );
        assert_eq!(
            RockError::DomainTooLarge {
                attribute: "a".into(),
                cardinality: 70_000
            }
            .exit_code(),
            4
        );
        assert_eq!(
            RockError::QuarantineExceeded {
                quarantined: 3,
                rows: 4,
                max_fraction: 0.1
            }
            .exit_code(),
            4
        );
        assert_eq!(
            RockError::SnapshotVersion { found: "x".into() }.exit_code(),
            4
        );
        assert_eq!(
            RockError::SnapshotChecksum {
                expected: "a".into(),
                actual: "b".into()
            }
            .exit_code(),
            4
        );
        assert_eq!(
            RockError::SnapshotFormat {
                line: 1,
                message: "m".into()
            }
            .exit_code(),
            4
        );
        assert_eq!(
            RockError::SnapshotInvalid {
                message: "m".into()
            }
            .exit_code(),
            4
        );
        assert_eq!(
            RockError::CacheInvalid {
                message: "m".into()
            }
            .exit_code(),
            4
        );
        assert_eq!(
            RockError::CheckpointInvalid {
                message: "m".into()
            }
            .exit_code(),
            4
        );
        assert_eq!(RockError::EmptyDataset.exit_code(), 5);
        assert_eq!(RockError::InvalidK { k: 9, n: 2 }.exit_code(), 5);
        assert_eq!(
            RockError::InvalidLabelColumn {
                index: 9,
                columns: 2
            }
            .exit_code(),
            5
        );
        assert_eq!(
            RockError::BudgetExhausted {
                reason: "deadline".into(),
                phase: "links".into()
            }
            .exit_code(),
            6
        );
        assert_eq!(RockError::Cancelled.exit_code(), 6);
    }
}
