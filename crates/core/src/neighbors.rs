//! Neighbor graph computation (paper §3.1 / §4.1).
//!
//! Point `q` is a *neighbor* of `p` iff `sim(p, q) ≥ θ`. The neighbor lists
//! are the input to link computation; their sizes (`m_a` average, `m_m`
//! maximum) drive the complexity of the whole algorithm, so we also expose
//! degree statistics.
//!
//! Computing the graph is the `O(n²)` hot spot of ROCK. Two kernels are
//! available behind [`JoinStrategy`]:
//!
//! * **Brute force** — every ordered pair, rows chunked over a small
//!   scoped thread pool. Works for any [`Similarity`]; kept as the
//!   oracle the index kernel is tested against and as the path for
//!   tiny inputs and custom measures.
//! * **Inverted-index join** ([`index`], DESIGN.md §17) — for the
//!   count-based measures (those reporting a
//!   [`Similarity::count_kind`]), candidates come from posting lists
//!   over a frequency-ranked prefix of each row, are pruned by exact
//!   size bounds and verified with the same counts predicate the brute
//!   scan evaluates. Orders of magnitude fewer `sim()` evaluations at
//!   identical output.
//!
//! Both kernels are deterministic regardless of thread count: the graph
//! (and every counter flushed) is byte-identical for 1..k workers.

mod index;

use std::sync::atomic::AtomicU64;

use crate::cast;
use crate::data::TransactionSet;
use crate::error::{Result, RockError};
use crate::guard::{Guard, Trip};
use crate::similarity::Similarity;
use crate::telemetry::trace::Payload;
use crate::telemetry::{MemoryEstimate, MemoryGauges, Observer, Phase, PipelineCounters};

/// Below this row count [`JoinStrategy::Auto`] stays brute force: index
/// construction has a fixed cost that only pays for itself once the
/// quadratic scan is measurably bigger.
const INDEX_MIN_N: usize = 128;

/// Which kernel [`NeighborGraph::compute_strategy`] runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum JoinStrategy {
    /// Index join when the measure supports it and the input is large
    /// enough ([`INDEX_MIN_N`] rows); brute force otherwise.
    #[default]
    Auto,
    /// Force the inverted-index join. Falls back to brute force when the
    /// measure reports no [`Similarity::count_kind`] (the index needs
    /// the counts-based predicate).
    Index,
    /// Force the brute-force scan (the test oracle).
    BruteForce,
}

/// θ-threshold neighbor graph: for each point, the sorted list of its
/// neighbors (excluding itself).
#[derive(Debug, Clone)]
pub struct NeighborGraph {
    lists: Vec<Vec<u32>>,
    theta: f64,
}

impl NeighborGraph {
    /// Computes the neighbor graph of `data` under `sim` with threshold
    /// `theta`, using `threads` worker threads (`0` = one per available
    /// CPU, capped at 16).
    ///
    /// # Errors
    /// * [`RockError::InvalidTheta`] unless `0 < θ < 1`.
    /// * [`RockError::EmptyDataset`] for an empty input.
    pub fn compute<S: Similarity>(
        data: &TransactionSet,
        sim: &S,
        theta: f64,
        threads: usize,
    ) -> Result<Self> {
        Self::compute_observed(data, sim, theta, threads, &Observer::new())
    }

    /// [`compute`](Self::compute) with telemetry: similarity comparisons
    /// and stored edges flow into `observer`'s counters, the finished
    /// graph's size into its memory gauge, and [`Phase::Neighbors`]
    /// progress events to its sink. Kernel selection is
    /// [`JoinStrategy::Auto`].
    pub fn compute_observed<S: Similarity>(
        data: &TransactionSet,
        sim: &S,
        theta: f64,
        threads: usize,
        observer: &Observer,
    ) -> Result<Self> {
        // An unlimited guard never trips, so the graph is always complete.
        let (graph, _) =
            Self::compute_guarded(data, sim, theta, threads, observer, &Guard::unlimited())?;
        Ok(graph)
    }

    /// [`compute_observed`](Self::compute_observed) under an execution
    /// [`Guard`] with [`JoinStrategy::Auto`] kernel selection. On the
    /// index path every worker polls [`Guard::checkpoint`] every few
    /// rows, so budget trips and cancellation stop the kernel mid-phase;
    /// the partially filled graph is returned together with the trip and
    /// the caller is expected to discard it (the pipeline degrades to an
    /// all-outlier partition). The brute-force path checks the guard only
    /// at phase boundaries.
    pub fn compute_guarded<S: Similarity>(
        data: &TransactionSet,
        sim: &S,
        theta: f64,
        threads: usize,
        observer: &Observer,
        guard: &Guard,
    ) -> Result<(Self, Option<Trip>)> {
        Self::compute_strategy(
            data,
            sim,
            theta,
            threads,
            observer,
            guard,
            JoinStrategy::Auto,
        )
    }

    /// [`compute_guarded`](Self::compute_guarded) with an explicit kernel
    /// choice. Every strategy produces a byte-identical graph for every
    /// thread count — and the index join is byte-identical to the brute
    /// scan, because its filters only ever *narrow* the candidate set and
    /// survivors are accepted by the very same counts predicate
    /// (see `crates/core/src/neighbors/index.rs`).
    ///
    /// # Errors
    /// * [`RockError::InvalidTheta`] unless `0 < θ < 1`.
    /// * [`RockError::EmptyDataset`] for an empty input.
    pub fn compute_strategy<S: Similarity>(
        data: &TransactionSet,
        sim: &S,
        theta: f64,
        threads: usize,
        observer: &Observer,
        guard: &Guard,
        strategy: JoinStrategy,
    ) -> Result<(Self, Option<Trip>)> {
        if !(theta > 0.0 && theta < 1.0) {
            return Err(RockError::InvalidTheta(theta));
        }
        let n = data.len();
        if n == 0 {
            return Err(RockError::EmptyDataset);
        }
        let threads = effective_threads(threads, n);
        let use_index = match strategy {
            JoinStrategy::Auto => n >= INDEX_MIN_N,
            JoinStrategy::Index => true,
            JoinStrategy::BruteForce => false,
        };
        if use_index {
            if let Some(kind) = sim.count_kind() {
                let (lists, trip) = index::compute(data, kind, theta, threads, observer, guard);
                let graph = NeighborGraph { lists, theta };
                if trip.is_none() {
                    // Only a finished graph publishes its full
                    // (capacity-based) footprint; a tripped run leaves the
                    // gauge at the bytes already streamed by the workers.
                    MemoryGauges::observe(
                        &observer.memory().neighbor_graph,
                        cast::usize_to_u64(graph.estimated_bytes()),
                    );
                }
                return Ok((graph, trip));
            }
        }
        let graph = Self::brute_force_scan(data, sim, theta, threads, observer);
        Ok((graph, None))
    }

    /// The brute-force `O(n²)` scan, for any [`Similarity`] — the oracle
    /// the index join is verified against, and the kernel behind
    /// [`JoinStrategy::BruteForce`].
    ///
    /// # Errors
    /// * [`RockError::InvalidTheta`] unless `0 < θ < 1`.
    /// * [`RockError::EmptyDataset`] for an empty input.
    pub fn compute_brute_force<S: Similarity>(
        data: &TransactionSet,
        sim: &S,
        theta: f64,
        threads: usize,
        observer: &Observer,
    ) -> Result<Self> {
        if !(theta > 0.0 && theta < 1.0) {
            return Err(RockError::InvalidTheta(theta));
        }
        let n = data.len();
        if n == 0 {
            return Err(RockError::EmptyDataset);
        }
        let threads = effective_threads(threads, n);
        Ok(Self::brute_force_scan(data, sim, theta, threads, observer))
    }

    /// Scans all ordered pairs with `threads` pre-resolved workers and
    /// publishes the finished graph's footprint to the memory gauge.
    fn brute_force_scan<S: Similarity>(
        data: &TransactionSet,
        sim: &S,
        theta: f64,
        threads: usize,
        observer: &Observer,
    ) -> Self {
        let n = data.len();
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); n];
        let counters = observer.counters();
        if threads <= 1 {
            let span = observer.tracer().begin();
            let mut edges = 0u64;
            for (i, out) in lists.iter_mut().enumerate() {
                fill_row(data, sim, theta, i, out);
                edges += cast::usize_to_u64(out.len());
            }
            // Every row evaluates sim() against all n−1 other points.
            PipelineCounters::add(
                &counters.similarity_comparisons,
                cast::usize_to_u64(n) * cast::usize_to_u64(n - 1),
            );
            PipelineCounters::add(&counters.neighbor_edges, edges);
            if let Some(s) = span {
                observer.tracer().end(
                    s,
                    "neighbors.scan",
                    Some(Phase::Neighbors),
                    0,
                    Payload::new()
                        .count("start", 0)
                        .count("rows", cast::usize_to_u64(n))
                        .count("edges", edges),
                );
            }
        } else {
            // Chunk rows contiguously; each worker writes its own disjoint
            // slice of `lists`, so no synchronization is needed. Counters
            // are flushed once per chunk, not per row.
            let chunk = n.div_ceil(threads);
            let done_rows = AtomicU64::new(0);
            std::thread::scope(|scope| {
                for (c, slice) in lists.chunks_mut(chunk).enumerate() {
                    let start = c * chunk;
                    let done_rows = &done_rows;
                    scope.spawn(move || {
                        let span = observer.tracer().begin();
                        let mut edges = 0u64;
                        for (off, out) in slice.iter_mut().enumerate() {
                            fill_row(data, sim, theta, start + off, out);
                            edges += cast::usize_to_u64(out.len());
                        }
                        let rows = cast::usize_to_u64(slice.len());
                        PipelineCounters::add(
                            &counters.similarity_comparisons,
                            rows * cast::usize_to_u64(n - 1),
                        );
                        PipelineCounters::add(&counters.neighbor_edges, edges);
                        if let Some(s) = span {
                            observer.tracer().end(
                                s,
                                "neighbors.scan",
                                Some(Phase::Neighbors),
                                cast::usize_to_u64(c),
                                Payload::new()
                                    .count("start", cast::usize_to_u64(start))
                                    .count("rows", rows)
                                    .count("edges", edges),
                            );
                        }
                        let done =
                            rows + done_rows.fetch_add(rows, std::sync::atomic::Ordering::Relaxed);
                        observer.progress(Phase::Neighbors, done, cast::usize_to_u64(n));
                    });
                }
            });
        }
        let graph = NeighborGraph { lists, theta };
        MemoryGauges::observe(
            &observer.memory().neighbor_graph,
            cast::usize_to_u64(graph.estimated_bytes()),
        );
        graph
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.lists.len()
    }

    /// Returns `true` if the graph has no points.
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }

    /// The θ used to build the graph.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Sorted neighbor list of point `i` (self excluded).
    pub fn neighbors(&self, i: usize) -> &[u32] {
        &self.lists[i]
    }

    /// Degree (neighbor count) of point `i`.
    pub fn degree(&self, i: usize) -> usize {
        self.lists[i].len()
    }

    /// Iterates all neighbor lists in index order.
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> {
        self.lists.iter().map(Vec::as_slice)
    }

    /// Total number of directed neighbor edges (`Σ degree`).
    pub fn num_edges(&self) -> usize {
        self.lists.iter().map(Vec::len).sum()
    }

    /// Degree statistics `(average m_a, maximum m_m)`.
    pub fn degree_stats(&self) -> (f64, usize) {
        let max = self.lists.iter().map(Vec::len).max().unwrap_or(0);
        let avg = if self.lists.is_empty() {
            0.0
        } else {
            cast::usize_to_f64(self.num_edges()) / cast::usize_to_f64(self.lists.len())
        };
        (avg, max)
    }

    /// Consumes the graph, returning the raw lists.
    pub fn into_lists(self) -> Vec<Vec<u32>> {
        self.lists
    }

    /// Restricts the graph to the points in `kept` (sorted, distinct
    /// indices), re-indexing nodes to `0..kept.len()`. Edges to dropped
    /// points disappear. Used by the outlier filter so the neighbor matrix
    /// is not recomputed after discarding isolated points.
    pub fn restricted(&self, kept: &[usize]) -> NeighborGraph {
        debug_assert!(kept.windows(2).all(|w| w[0] < w[1]));
        let mut remap: Vec<u32> = vec![u32::MAX; self.lists.len()];
        for (new, &old) in kept.iter().enumerate() {
            remap[old] = cast::usize_to_u32(new);
        }
        let lists = kept
            .iter()
            .map(|&old| {
                self.lists[old]
                    .iter()
                    .filter_map(|&j| {
                        let r = remap[cast::u32_to_usize(j)];
                        (r != u32::MAX).then_some(r)
                    })
                    .collect()
            })
            .collect();
        NeighborGraph {
            lists,
            theta: self.theta,
        }
    }
}

impl MemoryEstimate for NeighborGraph {
    fn estimated_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.lists.capacity() * std::mem::size_of::<Vec<u32>>()
            + self
                .lists
                .iter()
                .map(|l| l.capacity() * std::mem::size_of::<u32>())
                .sum::<usize>()
    }
}

fn fill_row<S: Similarity>(
    data: &TransactionSet,
    sim: &S,
    theta: f64,
    i: usize,
    out: &mut Vec<u32>,
) {
    // Rows are driven by `lists` (length n), so `i` is always in range;
    // degrade to an empty row rather than panicking if that ever breaks.
    let Some(ti) = data.transaction(i) else {
        return;
    };
    for (j, tj) in data.iter().enumerate() {
        if j != i && sim.sim(ti, tj) >= theta {
            out.push(cast::usize_to_u32(j));
        }
    }
}

/// Resolves a `threads` request: `0` means auto (one per CPU, capped), and
/// tiny inputs stay single-threaded to avoid spawn overhead. Shared by
/// every row-sharded phase (neighbors, links, labeling) so one knob means
/// the same thing everywhere.
pub(crate) fn effective_threads(requested: usize, n: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(16);
    let t = if requested == 0 { hw } else { requested };
    if n < 256 {
        1
    } else {
        t.min(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Transaction;
    use crate::similarity::Jaccard;

    fn set(groups: &[&[&[u32]]]) -> TransactionSet {
        let mut v = Vec::new();
        for g in groups {
            for t in *g {
                v.push(Transaction::new(t.iter().copied()));
            }
        }
        v.into_iter().collect()
    }

    #[test]
    fn two_blocks_are_separated() {
        // Block A shares items {0,1,2}; block B shares {10,11,12}.
        let data = set(&[
            &[&[0, 1, 2], &[0, 1, 2, 3], &[0, 1, 2, 4]],
            &[&[10, 11, 12], &[10, 11, 12, 13]],
        ]);
        let g = NeighborGraph::compute(&data, &Jaccard, 0.5, 1).unwrap();
        assert_eq!(g.len(), 5);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(3), &[4]);
        assert_eq!(g.neighbors(4), &[3]);
    }

    #[test]
    fn graph_is_symmetric() {
        let data = set(&[&[&[0, 1], &[1, 2], &[2, 3], &[0, 3], &[0, 1, 2, 3]]]);
        let g = NeighborGraph::compute(&data, &Jaccard, 0.3, 1).unwrap();
        for i in 0..g.len() {
            for &j in g.neighbors(i) {
                assert!(
                    g.neighbors(j as usize).contains(&(i as u32)),
                    "edge {i}->{j} not symmetric"
                );
            }
        }
    }

    #[test]
    fn no_self_loops_and_sorted_lists() {
        let data = set(&[&[&[0, 1], &[0, 1], &[0, 1]]]);
        let g = NeighborGraph::compute(&data, &Jaccard, 0.9, 1).unwrap();
        for i in 0..g.len() {
            let l = g.neighbors(i);
            assert!(!l.contains(&(i as u32)));
            assert!(l.windows(2).all(|w| w[0] < w[1]));
            assert_eq!(l.len(), 2);
        }
    }

    #[test]
    fn identical_points_are_neighbors_at_any_theta() {
        let data = set(&[&[&[5, 6], &[5, 6]]]);
        let g = NeighborGraph::compute(&data, &Jaccard, 0.999, 1).unwrap();
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn threshold_is_inclusive() {
        // sim = 1/3 exactly.
        let data = set(&[&[&[0, 1], &[1, 2]]]);
        let g = NeighborGraph::compute(&data, &Jaccard, 1.0 / 3.0, 1).unwrap();
        assert_eq!(g.degree(0), 1);
        let g2 = NeighborGraph::compute(&data, &Jaccard, 1.0 / 3.0 + 1e-9, 1).unwrap();
        assert_eq!(g2.degree(0), 0);
    }

    #[test]
    fn parallel_matches_sequential() {
        // 300 points in 3 blocks (n ≥ 256 so threading actually engages).
        let mut v = Vec::new();
        for b in 0..3u32 {
            for i in 0..100u32 {
                v.push(Transaction::new([b * 10, b * 10 + 1, b * 10 + 2, 100 + i]));
            }
        }
        let data: TransactionSet = v.into_iter().collect();
        let seq = NeighborGraph::compute(&data, &Jaccard, 0.4, 1).unwrap();
        let par = NeighborGraph::compute(&data, &Jaccard, 0.4, 4).unwrap();
        for i in 0..data.len() {
            assert_eq!(seq.neighbors(i), par.neighbors(i), "row {i}");
        }
    }

    #[test]
    fn degree_stats() {
        let data = set(&[&[&[0, 1], &[0, 1], &[0, 1], &[9]]]);
        let g = NeighborGraph::compute(&data, &Jaccard, 0.9, 1).unwrap();
        let (avg, max) = g.degree_stats();
        assert_eq!(max, 2);
        assert!((avg - 6.0 / 4.0).abs() < 1e-12);
        assert_eq!(g.num_edges(), 6);
    }

    #[test]
    fn rejects_invalid_inputs() {
        let data = set(&[&[&[0]]]);
        assert!(matches!(
            NeighborGraph::compute(&data, &Jaccard, 0.0, 1),
            Err(RockError::InvalidTheta(_))
        ));
        let empty: TransactionSet = Vec::new().into_iter().collect();
        assert!(matches!(
            NeighborGraph::compute(&empty, &Jaccard, 0.5, 1),
            Err(RockError::EmptyDataset)
        ));
    }

    #[test]
    fn restricted_reindexes_and_drops_edges() {
        let data = set(&[&[&[0, 1], &[0, 1], &[0, 1], &[9]]]);
        let g = NeighborGraph::compute(&data, &Jaccard, 0.9, 1).unwrap();
        // Keep points 0 and 2 (old indices): they were mutual neighbors.
        let r = g.restricted(&[0, 2]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.neighbors(0), &[1]);
        assert_eq!(r.neighbors(1), &[0]);
        assert_eq!(r.theta(), 0.9);
        // Keeping an isolated point yields empty lists.
        let r = g.restricted(&[0, 3]);
        assert_eq!(r.neighbors(0), &[] as &[u32]);
        assert_eq!(r.neighbors(1), &[] as &[u32]);
    }

    #[test]
    fn effective_threads_resolution() {
        assert_eq!(super::effective_threads(4, 100), 1); // tiny input
        assert_eq!(super::effective_threads(4, 1000), 4);
        assert!(super::effective_threads(0, 1000) >= 1);
    }
}
