//! Dendrograms: reusing one merge run for every `k`.
//!
//! ROCK is agglomerative, so a single run down to `k_min` clusters induces
//! the entire merge tree above it. [`Dendrogram`] captures that tree from
//! the engine's [`MergeStep`] history and can be *cut* at any cluster
//! count ≥ `k_min` without re-running neighbor, link or merge phases —
//! handy for choosing `k` by inspecting the goodness/criterion profile.
//!
//! The replay is only valid for runs **without mid-merge pruning**
//! (pruning removes clusters outside the merge sequence); the pipeline
//! records history for exactly this use.

use crate::agglomerate::MergeStep;
use crate::telemetry::MemoryEstimate;

/// A merge tree over `n` points, built from an agglomeration history.
#[derive(Debug, Clone)]
pub struct Dendrogram {
    n: usize,
    steps: Vec<MergeStep>,
}

impl Dendrogram {
    /// Builds a dendrogram for `n` points from the recorded merge history
    /// (in merge order, as produced with `record_history = true`).
    pub fn new(n: usize, steps: Vec<MergeStep>) -> Self {
        debug_assert!(steps.len() < n.max(1), "more merges than points allow");
        Dendrogram { n, steps }
    }

    /// Number of points.
    pub fn num_points(&self) -> usize {
        self.n
    }

    /// Number of merges recorded.
    pub fn num_merges(&self) -> usize {
        self.steps.len()
    }

    /// The merge steps in order.
    pub fn steps(&self) -> &[MergeStep] {
        &self.steps
    }

    /// Smallest cluster count this dendrogram can produce.
    pub fn min_clusters(&self) -> usize {
        self.n - self.steps.len()
    }

    /// Goodness of each merge, in merge order — a sharp drop suggests the
    /// natural cluster count (merges beyond it join genuinely different
    /// groups).
    pub fn goodness_profile(&self) -> Vec<f64> {
        self.steps.iter().map(|s| s.goodness).collect()
    }

    /// Criterion function E_l after each merge, in merge order.
    pub fn criterion_profile(&self) -> Vec<f64> {
        self.steps.iter().map(|s| s.criterion).collect()
    }

    /// Cuts the tree at `k` clusters: replays the first `n − k` merges.
    ///
    /// Returns member lists ordered by decreasing size (ties broken by
    /// smallest member), exactly like the merge engine's output. Returns
    /// `None` when `k` is 0, exceeds `n`, or undershoots
    /// [`min_clusters`](Self::min_clusters).
    pub fn cut(&self, k: usize) -> Option<Vec<Vec<u32>>> {
        if k == 0 || k > self.n || k < self.min_clusters() {
            return None;
        }
        // Union-find over the point slots; merge steps reference engine
        // slots, which are always the `kept`/`absorbed` cluster's slot id
        // (a point index), so replay is a straight union sequence.
        let mut members: Vec<Vec<u32>> = (0..crate::cast::usize_to_u32(self.n))
            .map(|i| vec![i])
            .collect();
        for step in &self.steps[..self.n - k] {
            let absorbed = std::mem::take(&mut members[crate::cast::u32_to_usize(step.absorbed)]);
            members[crate::cast::u32_to_usize(step.kept)].extend(absorbed);
        }
        let mut clusters: Vec<Vec<u32>> = members
            .into_iter()
            .filter(|m| !m.is_empty())
            .map(|mut m| {
                m.sort_unstable();
                m
            })
            .collect();
        clusters.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a[0].cmp(&b[0])));
        Some(clusters)
    }

    /// Assignment form of [`cut`](Self::cut): per-point cluster index.
    pub fn cut_assignments(&self, k: usize) -> Option<Vec<u32>> {
        let clusters = self.cut(k)?;
        let mut out = vec![0u32; self.n];
        for (c, members) in clusters.iter().enumerate() {
            for &p in members {
                out[crate::cast::u32_to_usize(p)] = crate::cast::usize_to_u32(c);
            }
        }
        Some(out)
    }

    /// Suggests a cluster count by the largest *relative* drop in merge
    /// goodness: if merge `i` has goodness `g_i`, the cut is placed before
    /// the merge maximizing `g_{i-1} / g_i` (ignoring the first
    /// `min_considered` merges, which are noisy singleton joins).
    ///
    /// Two guards keep the heuristic honest on gradual declines: the
    /// refused merge's predecessor must itself be a *respectable* merge
    /// (goodness at least 10% of the median — otherwise the deep tail,
    /// where goodness decays toward 0 and ratios explode, always wins),
    /// and NaN/non-positive entries are skipped.
    ///
    /// This is a heuristic, not part of the paper; on gradual declines it
    /// lands near, not exactly at, the planted count.
    ///
    /// Returns `None` when fewer than two merges are recorded.
    pub fn suggest_k(&self, min_considered: usize) -> Option<usize> {
        if self.steps.len() < 2 {
            return None;
        }
        let mut sorted: Vec<f64> = self.steps.iter().map(|s| s.goodness).collect();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2];
        let floor = 0.1 * median;
        let start = min_considered.min(self.steps.len() - 1).max(1);
        let mut best = (1.0f64, self.steps.len());
        for i in start..self.steps.len() {
            let prev = self.steps[i - 1].goodness;
            let cur = self.steps[i].goodness;
            if cur <= 0.0 || prev < floor {
                continue;
            }
            let ratio = prev / cur;
            if ratio > best.0 {
                best = (ratio, i);
            }
        }
        // Cutting *before* merge `best.1` leaves n − best.1 clusters.
        Some(self.n - best.1)
    }
}

impl MemoryEstimate for Dendrogram {
    fn estimated_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.steps.capacity() * std::mem::size_of::<MergeStep>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agglomerate::{agglomerate, AgglomerateConfig};
    use crate::data::{Transaction, TransactionSet};
    use crate::goodness::{Goodness, MarketBasket};
    use crate::links::LinkTable;
    use crate::neighbors::NeighborGraph;
    use crate::similarity::Jaccard;

    fn three_block_history() -> (usize, Vec<MergeStep>) {
        // Three blocks of 4 identical points each.
        let data: TransactionSet = (0..12u32)
            .map(|i| {
                let b = i / 4;
                Transaction::new([b * 10, b * 10 + 1, b * 10 + 2])
            })
            .collect();
        let g = NeighborGraph::compute(&data, &Jaccard, 0.9, 1).unwrap();
        let links = LinkTable::compute(&g);
        let good = Goodness::new(0.9, &MarketBasket).unwrap();
        let out = agglomerate(12, &links, &good, &AgglomerateConfig::new(3)).unwrap();
        (12, out.history)
    }

    #[test]
    fn cut_replays_merges() {
        let (n, history) = three_block_history();
        let d = Dendrogram::new(n, history);
        assert_eq!(d.num_points(), 12);
        assert_eq!(d.min_clusters(), 3);
        let c3 = d.cut(3).unwrap();
        assert_eq!(c3.len(), 3);
        assert_eq!(c3[0], vec![0, 1, 2, 3]);
        assert_eq!(c3[1], vec![4, 5, 6, 7]);
        assert_eq!(c3[2], vec![8, 9, 10, 11]);
    }

    #[test]
    fn cut_at_larger_k() {
        let (n, history) = three_block_history();
        let d = Dendrogram::new(n, history);
        for k in 3..=12 {
            let c = d.cut(k).unwrap();
            assert_eq!(c.len(), k, "cut at {k}");
            let total: usize = c.iter().map(Vec::len).sum();
            assert_eq!(total, 12);
        }
        assert_eq!(d.cut(12).unwrap().len(), 12);
    }

    #[test]
    fn cut_bounds() {
        let (n, history) = three_block_history();
        let d = Dendrogram::new(n, history);
        assert!(d.cut(0).is_none());
        assert!(d.cut(13).is_none());
        assert!(d.cut(2).is_none(), "below min_clusters");
    }

    #[test]
    fn cut_assignments_match_clusters() {
        let (n, history) = three_block_history();
        let d = Dendrogram::new(n, history);
        let clusters = d.cut(3).unwrap();
        let assign = d.cut_assignments(3).unwrap();
        for (c, members) in clusters.iter().enumerate() {
            for &p in members {
                assert_eq!(assign[p as usize], c as u32);
            }
        }
    }

    #[test]
    fn profiles_have_one_entry_per_merge() {
        let (n, history) = three_block_history();
        let d = Dendrogram::new(n, history);
        assert_eq!(d.goodness_profile().len(), d.num_merges());
        assert_eq!(d.criterion_profile().len(), d.num_merges());
        assert!(d.goodness_profile().iter().all(|&g| g > 0.0));
    }

    #[test]
    fn suggest_k_finds_block_structure() {
        // Three blocks chained by two bridge transactions: merging can
        // reach k = 1, within-block merges score high, cross/bridge merges
        // low; the goodness cliff should place the suggested cut near the
        // block structure.
        let mut data: Vec<Transaction> = (0..12u32)
            .map(|i| {
                let b = i / 4;
                Transaction::new([b * 10, b * 10 + 1, b * 10 + 2])
            })
            .collect();
        data.push(Transaction::new([0, 1, 10, 11])); // bridge 0-1
        data.push(Transaction::new([10, 11, 20, 21])); // bridge 1-2
        let ts: TransactionSet = data.into_iter().collect();
        let g = NeighborGraph::compute(&ts, &Jaccard, 0.3, 1).unwrap();
        let links = LinkTable::compute(&g);
        let good = Goodness::new(0.3, &MarketBasket).unwrap();
        let out = agglomerate(14, &links, &good, &AgglomerateConfig::new(1)).unwrap();
        assert_eq!(out.clusters.len(), 1, "bridges make full merging possible");
        let d = Dendrogram::new(14, out.history);
        assert_eq!(d.min_clusters(), 1);
        let k = d.suggest_k(3).expect("enough merges");
        assert!((2..=6).contains(&k), "suggested k = {k}");
        // Cutting at the suggestion keeps each block whole.
        let assign = d.cut_assignments(k).unwrap();
        for b in 0..3usize {
            let first = assign[b * 4];
            assert!(
                (1..4).all(|o| assign[b * 4 + o] == first),
                "block {b} split"
            );
        }
    }

    #[test]
    fn suggest_k_requires_two_merges() {
        let d = Dendrogram::new(2, vec![]);
        assert!(d.suggest_k(0).is_none());
    }
}
