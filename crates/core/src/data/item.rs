//! Item and attribute identifier newtypes.
//!
//! ROCK operates on *transactions*: sets of items. For market-basket data an
//! item is a product; for tabular categorical data an item is an
//! `(attribute, value)` pair, so that two records share an item exactly when
//! they agree on an attribute (records with missing values simply contribute
//! fewer items — the treatment the ROCK paper uses for the Congressional
//! Votes dataset).
//!
//! Identifiers are thin newtypes over integers so that the compiler keeps
//! item ids, attribute ids and cluster ids from being mixed up, at zero
//! runtime cost.

use std::fmt;

/// Identifier of an item in a [`Vocabulary`](super::Vocabulary).
///
/// Items are dense: a vocabulary with `m` items uses ids `0..m`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ItemId(pub u32);

impl ItemId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        crate::cast::u32_to_usize(self.0)
    }
}

impl From<u32> for ItemId {
    #[inline]
    fn from(v: u32) -> Self {
        ItemId(v)
    }
}

impl From<ItemId> for u32 {
    #[inline]
    fn from(v: ItemId) -> Self {
        v.0
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Identifier of an attribute (column) in a categorical table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrId(pub u16);

impl AttrId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl From<u16> for AttrId {
    #[inline]
    fn from(v: u16) -> Self {
        AttrId(v)
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "attr{}", self.0)
    }
}

/// Identifier of a cluster produced by the clustering pipeline.
///
/// Cluster ids returned by the public API are dense (`0..k`), re-numbered
/// from the internal merge-slot ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClusterId(pub u32);

impl ClusterId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        crate::cast::u32_to_usize(self.0)
    }
}

impl From<u32> for ClusterId {
    #[inline]
    fn from(v: u32) -> Self {
        ClusterId(v)
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_id_roundtrip() {
        let id = ItemId::from(7u32);
        assert_eq!(id.index(), 7);
        assert_eq!(u32::from(id), 7);
        assert_eq!(id.to_string(), "#7");
    }

    #[test]
    fn attr_id_roundtrip() {
        let id = AttrId::from(3u16);
        assert_eq!(id.index(), 3);
        assert_eq!(id.to_string(), "attr3");
    }

    #[test]
    fn cluster_id_display_and_order() {
        let a = ClusterId(1);
        let b = ClusterId(2);
        assert!(a < b);
        assert_eq!(b.to_string(), "C2");
    }

    #[test]
    fn ids_are_hashable() {
        use std::collections::HashSet;
        let set: HashSet<ItemId> = [ItemId(0), ItemId(1), ItemId(0)].into_iter().collect();
        assert_eq!(set.len(), 2);
    }
}
